// Bootstrap ablation: the cost of acquiring the time the paper assumes.
//
// Series: grid-size sweep of the flood-sync phase (ALOHA beacons from a
// corner root) before the network can switch to the tiling schedule.
// Expected shape: sync time grows roughly with network diameter (the
// flood progresses hop by hop), beacons DO collide during the anarchic
// phase, and after the switch the verification window records zero
// collisions — the schedule's guarantee restored.
#include <cstdio>

#include "bench_common.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/bootstrap.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

void report() {
  bench::section("Flood-sync bootstrap (corner root, ALOHA beacons)");
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  Table t({"grid", "sensors", "sync slots (mean of 5)", "beacon tx",
           "beacon collisions", "post-sync collisions"});
  for (std::int64_t n : {4, 8, 12, 16}) {
    const Deployment d = Deployment::grid(Box::cube(2, 0, n - 1), ball);
    const SensorSlots slots = assign_slots(sched, d);
    RunningStats sync, beacons, collisions, post;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      BootstrapConfig cfg;
      cfg.seed = seed;
      const BootstrapResult r = run_bootstrap(d, Point{0, 0}, slots, cfg);
      if (!r.converged) continue;
      sync.add(static_cast<double>(r.sync_slots));
      beacons.add(static_cast<double>(r.beacon_tx));
      collisions.add(static_cast<double>(r.beacon_collisions));
      post.add(static_cast<double>(r.post_sync_collisions));
    }
    t.begin_row();
    t.cell(std::to_string(n) + "x" + std::to_string(n));
    t.cell(d.size());
    t.cell(sync.mean(), 1);
    t.cell(beacons.mean(), 1);
    t.cell(collisions.mean(), 1);
    t.cell(post.mean(), 1);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nreading: synchronization costs a diameter-proportional "
              "anarchic phase with real\ncollisions; once converged, the "
              "schedule never collides again.  This quantifies\nthe "
              "paper's 'sensors have access to the current time' "
              "assumption.\n");

  bench::section("Beacon persistence sweep (12x12)");
  Table p({"beacon p", "sync slots", "beacon collisions"});
  const Deployment d = Deployment::grid(Box::cube(2, 0, 11), ball);
  const SensorSlots slots = assign_slots(sched, d);
  for (double prob : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    BootstrapConfig cfg;
    cfg.beacon_probability = prob;
    cfg.seed = 42;
    const BootstrapResult r = run_bootstrap(d, Point{0, 0}, slots, cfg);
    p.begin_row();
    p.cell(prob, 2);
    p.cell(r.sync_slots);
    p.cell(r.beacon_collisions);
  }
  std::printf("%s", p.to_string().c_str());
  std::printf("\nthe classic ALOHA trade-off: timid beacons converge "
              "slowly, aggressive beacons\ncollide; the optimum sits in "
              "between.\n");
}

void bm_bootstrap(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), ball);
  const SensorSlots slots = assign_slots(sched, d);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    BootstrapConfig cfg;
    cfg.seed = ++seed;
    cfg.verify_slots = 0;
    benchmark::DoNotOptimize(run_bootstrap(d, Point{0, 0}, slots, cfg));
  }
}
BENCHMARK(bm_bootstrap)->Arg(8)->Arg(12);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
