// Ablation (not in the paper): how fragile is determinism to clock skew?
//
// The schedules assume "sensors have access to the current time".  We
// inject per-node slot offsets (a fraction of nodes one slot ahead) and
// measure the collision rate of the tiling schedule vs TDMA.  Expected
// shape: both are perfectly collision-free at zero drift; under drift the
// tiling schedule collides (neighboring slots belong to nearby sensors),
// while TDMA — with its huge period — degrades more slowly, quantifying
// the robustness cost of the optimal schedule.
#include <cstdio>

#include "bench_common.hpp"
#include "baseline/tdma.hpp"
#include "core/guarded.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

std::vector<std::int64_t> drift_offsets(std::size_t n, double fraction,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> offsets(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_bool(fraction)) {
      offsets[i] = rng.next_bool(0.5) ? 1 : -1;
    }
  }
  return offsets;
}

void report() {
  bench::section("Clock drift ablation (12x12 grid, saturated)");
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 11), ball);
  SimConfig cfg;
  cfg.slots = 4000;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);

  Table t({"drifted nodes", "tiling collision rate", "tiling tput/sensor",
           "tdma collision rate", "tdma tput/sensor"});
  for (double fraction : {0.0, 0.05, 0.10, 0.25, 0.50}) {
    const auto offsets = drift_offsets(d.size(), fraction, 1234);
    SlotScheduleMac tiling_mac(assign_slots(sched, d), offsets);
    SlotScheduleMac tdma_mac(tdma_slots(d), offsets);
    const SimResult rt = sim.run(tiling_mac);
    const SimResult rd = sim.run(tdma_mac);
    t.begin_row();
    t.cell_percent(fraction, 0);
    t.cell_percent(rt.collision_rate(), 2);
    t.cell(rt.per_sensor_throughput(), 5);
    t.cell_percent(rd.collision_rate(), 2);
    t.cell(rd.per_sensor_throughput(), 5);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nreading: the optimal 9-slot schedule trades away skew "
              "robustness — a drifted node\nlands in a nearby sensor's "
              "slot with high probability.  TDMA pays 16x throughput\n"
              "for near-immunity.\n");

  bench::section("Guard slots buy the robustness back (guard factor 3)");
  Table g({"drifted nodes", "plain collisions", "plain tput",
           "guarded collisions", "guarded tput"});
  const SensorSlots plain = assign_slots(sched, d);
  const SensorSlots guarded = guarded_slots(plain, 3);
  for (double fraction : {0.0, 0.10, 0.25, 0.50}) {
    const auto offsets = drift_offsets(d.size(), fraction, 777);
    SlotScheduleMac plain_mac(plain, offsets);
    SlotScheduleMac guarded_mac(guarded, offsets);
    const SimResult rp = sim.run(plain_mac);
    const SimResult rg = sim.run(guarded_mac);
    g.begin_row();
    g.cell_percent(fraction, 0);
    g.cell_percent(rp.collision_rate(), 2);
    g.cell(rp.per_sensor_throughput(), 5);
    g.cell_percent(rg.collision_rate(), 2);
    g.cell(rg.per_sensor_throughput(), 5);
  }
  std::printf("%s", g.to_string().c_str());
  std::printf("\nguard factor 3 tolerates |offset| <= %lld by construction "
              "(guard_tolerance),\nso ±1 drift causes ZERO collisions — at "
              "exactly 1/3 of the optimal throughput.\nDeterminism vs "
              "optimality, made quantitative.\n",
              static_cast<long long>(guard_tolerance(3)));
}

void bm_drifted_sim(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 11), ball);
  SimConfig cfg;
  cfg.slots = 1000;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(assign_slots(sched, d),
                      drift_offsets(d.size(), 0.1, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(mac));
  }
}
BENCHMARK(bm_drifted_sim);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
