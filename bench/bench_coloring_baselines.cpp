// Related-work baselines: broadcast scheduling as conflict-graph coloring
// (McCormick / Lloyd–Ramanathan NP-hardness; Wang–Ansari and Shi–Wang
// heuristics).  The constructive tiling schedule achieves the optimum
// |N| without materializing any graph; the heuristics approach it from
// above at a runtime cost that grows with the window.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "baseline/coloring_schedule.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void report() {
  bench::section("Coloring baselines vs the constructive tiling optimum");
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  Table t({"window", "sensors", "conflict edges", "greedy", "welsh-powell",
           "dsatur", "annealing", "tiling (=|N|)", "exact optimum"});
  for (std::int64_t n : {5, 7, 9, 12}) {
    const Deployment d = Deployment::grid(Box::cube(2, 0, n - 1), ball);
    const Graph g = build_conflict_graph(d);
    SaConfig sa;
    sa.max_iters = 60'000;
    const std::uint32_t greedy =
        coloring_slots_on_graph(g, ColoringHeuristic::kGreedy).period;
    const std::uint32_t wp =
        coloring_slots_on_graph(g, ColoringHeuristic::kWelshPowell).period;
    const std::uint32_t ds =
        coloring_slots_on_graph(g, ColoringHeuristic::kDsatur).period;
    const std::uint32_t ann =
        coloring_slots_on_graph(g, ColoringHeuristic::kAnnealing, sa).period;
    ExactColoringConfig ec;
    ec.node_limit = 2'000'000;
    const ExactColoringResult exact = exact_chromatic(g, ec);
    t.begin_row();
    t.cell(std::to_string(n) + "x" + std::to_string(n));
    t.cell(d.size());
    t.cell(g.edge_count());
    t.cell(greedy);
    t.cell(wp);
    t.cell(ds);
    t.cell(ann);
    t.cell(sched.period());
    t.cell(std::to_string(exact.colors) +
           (exact.proven_optimal ? "" : "?"));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: optimal broadcast scheduling is NP-complete in "
              "general (McCormick;\nLloyd & Ramanathan), so the "
              "literature resorts to heuristics — on lattices the\n"
              "tiling schedule reads the optimum off the tile size.\n");

  bench::section("Heuristic runtime growth (wall-clock, single run)");
  Table rt({"window", "sensors", "graph build (ms)", "dsatur (ms)",
            "annealing (ms)", "tiling assign (ms)"});
  for (std::int64_t n : {8, 16, 24}) {
    const Deployment d = Deployment::grid(Box::cube(2, 0, n - 1), ball);
    auto t0 = std::chrono::steady_clock::now();
    const Graph g = build_conflict_graph(d);
    const double t_build = ms_since(t0);
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(dsatur_coloring(g));
    const double t_dsatur = ms_since(t0);
    SaConfig sa;
    sa.max_iters = 30'000;
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sa_min_coloring(g, sa));
    const double t_sa = ms_since(t0);
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(assign_slots(sched, d));
    const double t_tiling = ms_since(t0);
    rt.begin_row();
    rt.cell(std::to_string(n) + "x" + std::to_string(n));
    rt.cell(d.size());
    rt.cell(t_build, 2);
    rt.cell(t_dsatur, 2);
    rt.cell(t_sa, 2);
    rt.cell(t_tiling, 2);
  }
  std::printf("%s", rt.to_string().c_str());
}

void bm_conflict_graph_build(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_conflict_graph(d));
  }
}
BENCHMARK(bm_conflict_graph_build)->Arg(8)->Arg(16);

void bm_dsatur(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsatur_coloring(g));
  }
}
BENCHMARK(bm_dsatur)->Arg(8)->Arg(16);

void bm_greedy(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_coloring(g));
  }
}
BENCHMARK(bm_greedy)->Arg(8)->Arg(16);

void bm_exact_chromatic_small(benchmark::State& state) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 5),
                                        shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_chromatic(g));
  }
}
BENCHMARK(bm_exact_chromatic_small);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
