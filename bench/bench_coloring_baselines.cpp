// Related-work baselines: broadcast scheduling as conflict-graph coloring
// (McCormick / Lloyd–Ramanathan NP-hardness; Wang–Ansari and Shi–Wang
// heuristics).  The constructive tiling schedule achieves the optimum
// |N| without materializing any graph; the heuristics approach it from
// above at a runtime cost that grows with the window.  The whole
// comparison runs through the planner pipeline: one plan_all per window
// produces every backend's verified period and wall time.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/optimality.hpp"
#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

const std::vector<std::string> kBackends = {
    "greedy", "welsh-powell", "dsatur", "annealing", "tiling"};

// The scenario library's "grid" generator — the same instance the driver
// and the batch service plan.
Deployment grid_deployment(std::int64_t n) {
  ScenarioParams params;
  params.n = n;
  params.radius = 1;
  return ScenarioRegistry::global().build("grid", params).deployment;
}

void report() {
  bench::section("Coloring baselines vs the constructive tiling optimum");
  Table t({"window", "sensors", "conflict edges", "greedy", "welsh-powell",
           "dsatur", "annealing", "tiling (=|N|)", "exact optimum"});
  for (std::int64_t n : {5, 7, 9, 12}) {
    const Deployment d = grid_deployment(n);
    const Graph g = build_conflict_graph(d);
    PlanRequest request;
    request.deployment = &d;
    request.conflict_graph = &g;
    request.sa.max_iters = 60'000;
    const auto results =
        PlannerRegistry::global().plan_all(request, kBackends);
    ExactColoringConfig ec;
    ec.node_limit = 2'000'000;
    const ExactColoringResult exact = exact_chromatic(g, ec);
    t.begin_row();
    t.cell(std::to_string(n) + "x" + std::to_string(n));
    t.cell(d.size());
    t.cell(g.edge_count());
    for (const PlanResult& r : results) {
      if (!r.ok || !r.collision_free) {
        t.cell(r.backend + "!FAILED");
        continue;
      }
      t.cell(r.slots.period);
    }
    t.cell(std::to_string(exact.colors) +
           (exact.proven_optimal ? "" : "?"));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: optimal broadcast scheduling is NP-complete in "
              "general (McCormick;\nLloyd & Ramanathan), so the "
              "literature resorts to heuristics — on lattices the\n"
              "tiling schedule reads the optimum off the tile size.\n");

  bench::section("Backend runtime growth (planner wall clock, single run)");
  Table rt({"window", "sensors", "graph build (ms)", "dsatur (ms)",
            "annealing (ms)", "tiling (ms)"});
  for (std::int64_t n : {8, 16, 24}) {
    const Deployment d = grid_deployment(n);
    const auto t0 = std::chrono::steady_clock::now();
    const Graph g = build_conflict_graph(d);
    const double t_build = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    PlanRequest request;
    request.deployment = &d;
    request.conflict_graph = &g;
    request.sa.max_iters = 30'000;
    request.verify = false;  // timing section; correctness is above
    const auto results = PlannerRegistry::global().plan_all(
        request, {"dsatur", "annealing", "tiling"});
    rt.begin_row();
    rt.cell(std::to_string(n) + "x" + std::to_string(n));
    rt.cell(d.size());
    rt.cell(t_build, 2);
    for (const PlanResult& r : results) rt.cell(r.wall_seconds * 1e3, 2);
  }
  std::printf("%s", rt.to_string().c_str());
}

void bm_conflict_graph_build(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_conflict_graph(d));
  }
}
BENCHMARK(bm_conflict_graph_build)->Arg(8)->Arg(16);

void bm_dsatur(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsatur_coloring(g));
  }
}
BENCHMARK(bm_dsatur)->Arg(8)->Arg(16);

void bm_greedy(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_coloring(g));
  }
}
BENCHMARK(bm_greedy)->Arg(8)->Arg(16);

void bm_exact_chromatic_small(benchmark::State& state) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 5),
                                        shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_chromatic(g));
  }
}
BENCHMARK(bm_exact_chromatic_small);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
