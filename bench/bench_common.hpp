// Shared scaffolding for the benchmark binaries.
//
// Every bench binary does two jobs:
//  1. regenerate the paper artifact (figure/claim) it is responsible for,
//     printing the rows/series as aligned tables — this is the
//     "reproduction" output recorded in EXPERIMENTS.md;
//  2. run google-benchmark microbenchmarks of the operations involved.
//
// The REPRODUCTION_MAIN macro wires both together: the report runs first,
// then the registered benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace latticesched {
namespace bench {

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace latticesched

#define REPRODUCTION_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                    \
    report_fn();                                                       \
    ::benchmark::Initialize(&argc, argv);                              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                             \
    ::benchmark::Shutdown();                                           \
    return 0;                                                          \
  }
