// Shared scaffolding for the benchmark binaries.
//
// Every bench binary does two jobs:
//  1. regenerate the paper artifact (figure/claim) it is responsible for,
//     printing the rows/series as aligned tables — this is the
//     "reproduction" output recorded in EXPERIMENTS.md;
//  2. run google-benchmark microbenchmarks of the operations involved.
//
// The REPRODUCTION_MAIN macro wires both together: the report runs first,
// then the registered benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "util/stats.hpp"

namespace latticesched {
namespace bench {

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Peak RSS of this bench process so far, in MiB (0 where the probe is
/// unsupported).  Scale benches record it next to wall time so the
/// BENCH_*.json artifacts track the memory ceiling, not just speed.
inline double peak_rss_mb() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

}  // namespace bench
}  // namespace latticesched

#define REPRODUCTION_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                    \
    report_fn();                                                       \
    ::benchmark::Initialize(&argc, argv);                              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                             \
    ::benchmark::Shutdown();                                           \
    return 0;                                                          \
  }
