// Multi-hop data collection (the monitored-area workload, end to end).
//
// Series: grid-size sweep of convergecast to a corner sink.  The tiling
// schedule forwards every frame without collisions, so its delivery
// ratio stays at 100% while random MACs lose frames at every hop and the
// deficit compounds with route length.  A second series sweeps the
// arrival rate to locate each protocol's saturation point.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/convergecast.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

void report() {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);

  bench::section("Convergecast: grid-size sweep (rate 0.002, corner sink)");
  Table t({"grid", "protocol", "delivery%", "collisions", "p50 e2e",
           "p99 e2e", "energy/delivery"});
  for (std::int64_t n : {8, 12, 16}) {
    const Deployment field = Deployment::grid(Box::cube(2, 0, n - 1), ball);
    ConvergecastSimulator sim(field, Point{0, 0});
    ConvergecastConfig cfg;
    cfg.slots = 20'000;
    cfg.arrival_rate = 0.002;
    struct Entry {
      const char* label;
      std::unique_ptr<MacProtocol> mac;
    };
    std::vector<Entry> protocols;
    protocols.push_back({"tiling", std::make_unique<SlotScheduleMac>(
                                       assign_slots(sched, field))});
    protocols.push_back({"aloha p=0.1", std::make_unique<AlohaMac>(0.1)});
    protocols.push_back({"csma", std::make_unique<CsmaMac>()});
    for (auto& [label, mac] : protocols) {
      const ConvergecastResult r = sim.run(*mac, cfg);
      t.begin_row();
      t.cell(std::to_string(n) + "x" + std::to_string(n));
      t.cell(label);
      t.cell_percent(r.delivery_ratio(), 1);
      t.cell(r.failed_tx);
      t.cell(r.end_to_end_latency.percentile(50), 1);
      t.cell(r.end_to_end_latency.percentile(99), 1);
      t.cell(r.energy_per_delivery(), 2);
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nexpected shape: the tiling schedule is the only protocol "
              "with ZERO collisions at\nevery size; ALOHA loses frames at "
              "every hop.  Opportunistic CSMA is latency-\ncompetitive at "
              "this light load — the rate sweep below shows where "
              "contention\nflips the comparison.\n");

  bench::section("Arrival-rate sweep on 12x12 (saturation points)");
  Table s({"rate", "tiling delivery%", "tiling p99 e2e", "csma delivery%",
           "csma p99 e2e"});
  const Deployment field = Deployment::grid(Box::cube(2, 0, 11), ball);
  ConvergecastSimulator sim(field, Point{0, 0});
  for (double rate : {0.0005, 0.001, 0.002, 0.004, 0.008}) {
    ConvergecastConfig cfg;
    cfg.slots = 20'000;
    cfg.arrival_rate = rate;
    SlotScheduleMac tiling_mac(assign_slots(sched, field));
    CsmaMac csma;
    const ConvergecastResult rt = sim.run(tiling_mac, cfg);
    const ConvergecastResult rc = sim.run(csma, cfg);
    s.begin_row();
    s.cell(rate, 4);
    s.cell_percent(rt.delivery_ratio(), 1);
    s.cell(rt.end_to_end_latency.percentile(99), 1);
    s.cell_percent(rc.delivery_ratio(), 1);
    s.cell(rc.end_to_end_latency.percentile(99), 1);
  }
  std::printf("%s", s.to_string().c_str());
  std::printf(
      "\nhonest reading: the sink's funnel is the bottleneck, and the "
      "uniform tiling\nschedule grants each relay only 1/9 of slots — so "
      "it saturates EARLIER than\nopportunistic CSMA, which concentrates "
      "slots where the traffic is.  The paper's\noptimality concerns the "
      "all-nodes-broadcast pattern, not funnel workloads; what\nthe "
      "schedule uniquely keeps is zero collisions and a predictable "
      "saturation\npoint (1/(9·relays) of a slot per sensor), vs CSMA's "
      "load-dependent tail\n(p99 explodes past its own saturation).\n");
}

void bm_convergecast_run(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment field = Deployment::grid(Box::cube(2, 0, 11), ball);
  ConvergecastSimulator sim(field, Point{0, 0});
  ConvergecastConfig cfg;
  cfg.slots = 2000;
  cfg.arrival_rate = 0.002;
  SlotScheduleMac mac(assign_slots(sched, field));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(mac, cfg));
  }
}
BENCHMARK(bm_convergecast_run);

void bm_route_construction(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment field = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), ball);
  for (auto _ : state) {
    ConvergecastSimulator sim(field, Point{0, 0});
    benchmark::DoNotOptimize(sim.next_hop());
  }
}
BENCHMARK(bm_route_construction)->Arg(8)->Arg(16);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
