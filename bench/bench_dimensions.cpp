// "Arbitrary lattices in arbitrary dimensions": the dimension sweep.
//
// The paper stresses that its theorems are dimension-free.  Series:
// Chebyshev balls of radius 1 in d = 1..4 — tile size (2r+1)^d, schedule
// construction via the sublattice engine, collision-free verification,
// and the cost of each step as d grows.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/collision.hpp"
#include "core/tiling_scheduler.hpp"
#include "lattice/snf.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

void report() {
  bench::section("Dimension sweep: Chebyshev r=1 balls in Z^d");
  Table t({"d", "|N|", "exact via", "quotient group", "m", "window",
           "collision-free"});
  for (std::size_t d = 1; d <= 4; ++d) {
    const Prototile ball = shapes::chebyshev_ball(d, 1);
    const ExactnessResult ex = decide_exactness(ball);
    const TilingSchedule sched(*ex.tiling);
    // Window: 2 periods per axis, clamped for memory in high d.
    const std::int64_t half = d <= 2 ? 7 : (d == 3 ? 4 : 2);
    const Deployment dep =
        Deployment::grid(Box::centered(d, half), ball);
    const CollisionReport rep = check_collision_free(dep, sched);
    t.begin_row();
    t.cell(d);
    t.cell(ball.size());
    t.cell(to_string(ex.method));
    t.cell(quotient_group_name(ex.tiling->period()));
    t.cell(sched.period());
    t.cell(std::to_string(dep.size()) + " sensors");
    t.cell(rep.collision_free ? "yes" : "NO");
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: \"We formulate our results for arbitrary lattices "
              "in arbitrary dimensions\" —\nm = 3^d slots, always optimal, "
              "independent of the deployment size.\n");

  bench::section("Radius sweep in 3-D (underwater-style volumes)");
  Table r({"radius", "|N| = m", "construction (ms)"});
  for (std::int64_t radius : {1, 2}) {
    const auto t0 = std::chrono::steady_clock::now();
    const Prototile ball = shapes::chebyshev_ball(3, radius);
    const ExactnessResult ex = decide_exactness(ball);
    const TilingSchedule sched(*ex.tiling);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    r.begin_row();
    r.cell(radius);
    r.cell(sched.period());
    r.cell(ms, 2);
  }
  std::printf("%s", r.to_string().c_str());
}

void bm_exactness_by_dimension(benchmark::State& state) {
  const Prototile ball =
      shapes::chebyshev_ball(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_exactness(ball));
  }
}
BENCHMARK(bm_exactness_by_dimension)->Arg(1)->Arg(2)->Arg(3);

void bm_slot_of_3d(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(3, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  std::int64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(
        sched.slot_of(Point{i % 50, (i * 3) % 50, (i * 7) % 50}));
  }
}
BENCHMARK(bm_slot_of_3d);

void bm_collision_check_3d(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(3, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment dep = Deployment::grid(Box::centered(3, 3), ball);
  const SensorSlots slots = assign_slots(sched, dep);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_collision_free(dep, slots));
  }
}
BENCHMARK(bm_collision_check_3d);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
