// Distributed planning service benchmarks — the BENCH_dist.json
// trajectory.
//
// The report section runs the production sweep shape (full scenario
// registry + a grid radius sweep, tiling backend) through three
// execution modes and records them in machine-readable BENCH_dist.json
// (path override: LATTICESCHED_BENCH_DIST_JSON; CI artifact):
//
//   serial            in-process PlanService (the PR-3 baseline)
//   dist cold Nw      N worker processes, empty shared --cache-dir —
//                     pays process spawn + every torus search once
//   dist warm Nw      same fleet, populated --cache-dir — zero
//                     torus-search misses across all workers (the
//                     acceptance bar, asserted here too)
//   dist degraded     every spawn fault-crashes, the retry budget burns
//                     out, and the sweep completes by in-process serial
//                     fallback — the graceful-degradation overhead
//
// On CI-class runners (~4 vCPUs) the distributed speedup over serial is
// bounded by core count and spawn overhead; the headline number is the
// warm-vs-cold delta, which isolates what the persistent cache saves a
// fleet.
#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/plan_service.hpp"
#include "core/scenario.hpp"
#include "dist/coordinator.hpp"

namespace latticesched {
namespace {

namespace fs = std::filesystem;

struct DistRecord {
  std::string name;
  double ms = 0.0;
  double items_per_second = 0.0;
  double speedup_vs_serial = 0.0;
  std::uint64_t cache_misses = 0;
  std::uint64_t workers = 0;
};

std::vector<DistRecord>& records() {
  static std::vector<DistRecord> r;
  return r;
}

void write_bench_json() {
  const char* env = std::getenv("LATTICESCHED_BENCH_DIST_JSON");
  const std::string path = env != nullptr ? env : "BENCH_dist.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"benchmarks\": [\n";
  const auto& rs = records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ms\": %.3f, "
                  "\"items_per_second\": %.1f, \"speedup_vs_serial\": "
                  "%.2f, \"cache_misses\": %llu, \"workers\": %llu}%s\n",
                  rs[i].name.c_str(), rs[i].ms, rs[i].items_per_second,
                  rs[i].speedup_vs_serial,
                  static_cast<unsigned long long>(rs[i].cache_misses),
                  static_cast<unsigned long long>(rs[i].workers),
                  i + 1 < rs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu benchmark records to %s\n", rs.size(),
              path.c_str());
}

/// The bench workload: the full registry plus a grid radius sweep,
/// tiling backend, verification off — identical to bench_planner's so
/// the serial baselines line up across the two JSON artifacts.
std::vector<BatchItem> sweep_items() {
  PlanService service;
  ScenarioParams params;
  params.n = 10;
  std::vector<BatchItem> items = service.registry_batch(params, {"tiling"});
  for (const ScenarioQuery& q : radius_sweep("grid", params, {2, 3, 4})) {
    BatchItem item;
    item.query = q;
    item.backends = {"tiling"};
    items.push_back(std::move(item));
  }
  for (BatchItem& item : items) item.verify = false;
  return items;
}

dist::CoordinatorConfig fleet_config(std::size_t workers,
                                     const std::string& cache_dir) {
  dist::CoordinatorConfig config;
  config.workers = workers;
  config.cache_dir = cache_dir;
  config.worker_exe = LATTICESCHED_CLI_PATH;
  return config;
}

void report() {
  bench::section(
      "Distributed planning service: serial vs worker fleets, cold vs "
      "warm persistent cache");

  const std::vector<BatchItem> items = sweep_items();
  const double n = static_cast<double>(items.size());

  PlanService serial_service;
  const BatchReport serial = serial_service.run(items);
  std::printf("serial:        %7.2fms (%.0f scenarios/s, %llu miss(es))\n",
              serial.wall_seconds * 1e3, n / serial.wall_seconds,
              static_cast<unsigned long long>(serial.cache_misses));
  records().push_back({"serial", serial.wall_seconds * 1e3,
                       n / serial.wall_seconds, 1.0, serial.cache_misses,
                       0});

  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const std::string cache_dir =
        (fs::temp_directory_path() /
         ("latticesched_bench_dist_" + std::to_string(::getpid()) + "_" +
          std::to_string(workers)))
            .string();
    dist::ShardCoordinator coordinator(fleet_config(workers, cache_dir));

    const BatchReport cold = coordinator.run(items);
    std::printf(
        "dist cold %zuw:  %7.2fms (%.0f scenarios/s, %llu miss(es), "
        "%.2fx vs serial)\n",
        workers, cold.wall_seconds * 1e3, n / cold.wall_seconds,
        static_cast<unsigned long long>(cold.cache_misses),
        serial.wall_seconds / cold.wall_seconds);
    records().push_back({"dist_cold_" + std::to_string(workers) + "w",
                         cold.wall_seconds * 1e3, n / cold.wall_seconds,
                         serial.wall_seconds / cold.wall_seconds,
                         cold.cache_misses, workers});

    // Warm fleet: fresh worker processes, populated cache directory —
    // best of two to shield against scheduler noise.
    BatchReport warm = coordinator.run(items);
    {
      const BatchReport again = coordinator.run(items);
      if (again.wall_seconds < warm.wall_seconds) warm = again;
    }
    std::printf(
        "dist warm %zuw:  %7.2fms (%.0f scenarios/s, %llu miss(es), "
        "%.2fx vs serial, %.2fx vs cold)\n",
        workers, warm.wall_seconds * 1e3, n / warm.wall_seconds,
        static_cast<unsigned long long>(warm.cache_misses),
        serial.wall_seconds / warm.wall_seconds,
        cold.wall_seconds / warm.wall_seconds);
    if (warm.cache_misses != 0) {
      std::printf(
          "  WARNING: warm fleet missed the persistent cache %llu "
          "time(s)\n",
          static_cast<unsigned long long>(warm.cache_misses));
    }
    records().push_back({"dist_warm_" + std::to_string(workers) + "w",
                         warm.wall_seconds * 1e3, n / warm.wall_seconds,
                         serial.wall_seconds / warm.wall_seconds,
                         warm.cache_misses, workers});

    fs::remove_all(cache_dir);
  }

  // Degraded-mode floor: every spawn of every slot crashes pre-HELLO
  // (fault-injected), the retry budget burns out, and the coordinator
  // finishes the whole sweep in-process.  The record quantifies what
  // the graceful-degradation path costs relative to plain serial — the
  // delta is fleet spawn/teardown plus the backoff schedule, not lost
  // work.
  {
    dist::CoordinatorConfig config = fleet_config(2, "");
    config.fault_plan = "worker=*:crash:after-frames=0:gens=all";
    config.retries = 1;
    config.backoff_base_ms = 1;
    config.backoff_max_ms = 8;
    config.quarantine_crashes = 100;  // degrade, never quarantine
    dist::ShardCoordinator coordinator(std::move(config));
    const BatchReport degraded = coordinator.run(items);
    std::printf(
        "dist degraded: %7.2fms (%.0f scenarios/s, fleet exhausted -> "
        "serial fallback, %.2fx vs serial)\n",
        degraded.wall_seconds * 1e3, n / degraded.wall_seconds,
        serial.wall_seconds / degraded.wall_seconds);
    if (!degraded.degraded) {
      std::printf("  WARNING: degraded run did not actually degrade\n");
    }
    records().push_back({"dist_degraded_serial_fallback",
                         degraded.wall_seconds * 1e3,
                         n / degraded.wall_seconds,
                         serial.wall_seconds / degraded.wall_seconds,
                         degraded.cache_misses, 2});
  }

  write_bench_json();
}

void BM_DistributedRegistrySweepWarm(benchmark::State& state) {
  // One persistent fleet-equivalent measurement per iteration: 2
  // workers over a warm shared cache (the deployment steady state).
  static const std::vector<BatchItem> items = sweep_items();
  const std::string cache_dir =
      (fs::temp_directory_path() /
       ("latticesched_bm_dist_" + std::to_string(::getpid())))
          .string();
  dist::ShardCoordinator coordinator(fleet_config(2, cache_dir));
  (void)coordinator.run(items);  // populate the cache outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(coordinator.run(items));
  }
  fs::remove_all(cache_dir);
}
BENCHMARK(BM_DistributedRegistrySweepWarm);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
