// Dense-index engine before/after microbenchmarks.
//
// The seed implementations of the four hot paths (torus search, slot
// lookup, collision check, conflict-graph build) are retained behind
// flags/reference entry points precisely so this binary can measure the
// speedup of the dense engine against them on identical workloads.  The
// report section prints the headline ratios (the acceptance targets are
// >= 5x on torus-search nodes/sec and >= 10x on slot_of throughput); the
// registered google-benchmark cases record the same comparisons in the
// bench trajectory (run with --benchmark_format=json > BENCH_engine.json).
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>

#include "core/collision.hpp"
#include "core/tiling_scheduler.hpp"
#include "graph/interference.hpp"
#include "sim/simulator.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Shared workloads (identical for both engines)
// ---------------------------------------------------------------------------

std::vector<Prototile> mixed_tetrominoes() {
  return {shapes::s_tetromino(), shapes::z_tetromino()};
}

/// Pure-search workload: 13x13 has no S/Z tiling (169 is not a multiple
/// of 4), so the whole tree is explored with zero result emission — the
/// measured time is backtracking alone, and both engines expand the
/// identical node sequence.
std::uint64_t run_torus_search(bool dense, const Sublattice& period) {
  TorusSearchConfig cfg;
  cfg.use_dense_engine = dense;
  TorusSearchStats stats;
  cfg.stats = &stats;
  const auto found = all_tilings_on_torus(mixed_tetrominoes(), period,
                                          100'000, cfg);
  if (!found.empty()) std::abort();  // workload must stay search-only
  return stats.nodes;
}

TilingSchedule make_schedule() {
  const auto tiling = search_periodic_tiling({shapes::directional_antenna()});
  return TilingSchedule(*tiling);
}

/// The seed's slot_of, reproduced byte for byte in spirit: covering() as
/// a PointMap lookup materializing the Covering (translate included),
/// then a second hash lookup from element to slot.  The library paths
/// have all gone dense, so the seed baseline lives here in the bench.
struct SeedSlotOracle {
  explicit SeedSlotOracle(const TilingSchedule& sched)
      : tiling(&sched.tiling()) {
    for (const Point& rep : tiling->period().coset_representatives()) {
      const Covering c = tiling->covering(rep);
      cell_by_residue.emplace(rep,
                              SeedCell{c.prototile, c.element_index});
    }
    for (std::uint32_t k = 0; k < sched.union_points().size(); ++k) {
      slot_by_element.emplace(sched.union_points()[k], k);
    }
  }

  std::uint32_t slot_of(const Point& p) const {
    const Point rep = tiling->period().reduce(p);
    const SeedCell& cell = cell_by_residue.at(rep);
    const Point& element =
        tiling->prototile(cell.prototile).element(cell.element_index);
    Point translate = p - element;  // seed's Covering materialization
    benchmark::DoNotOptimize(translate);
    return slot_by_element.at(element);
  }

  struct SeedCell {
    std::uint32_t prototile = 0;
    std::uint32_t element_index = 0;
  };
  const Tiling* tiling;
  PointMap<SeedCell> cell_by_residue;
  PointMap<std::uint32_t> slot_by_element;
};

template <typename SlotFn>
std::uint64_t sweep_slots(const PointVec& pts, const SlotFn& slot_fn) {
  std::uint64_t sum = 0;
  for (const Point& p : pts) sum += slot_fn(p);
  return sum;
}

struct CollisionWorkload {
  Deployment deployment;
  SensorSlots slots;
};

CollisionWorkload make_collision_workload() {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tiling = find_tiling_on_torus(
      mixed_tetrominoes(), Sublattice::diagonal({4, 4}), cfg);
  const TilingSchedule sched(*tiling);
  Deployment d = Deployment::from_tiling(*tiling, Box::centered(2, 15));
  SensorSlots slots = assign_slots(sched, d);
  return CollisionWorkload{std::move(d), std::move(slots)};
}

Deployment make_graph_deployment() {
  return Deployment::grid(Box::centered(2, 14), shapes::chebyshev_ball(2, 1));
}

// Hashed conflict-graph builder for comparison: same structure the seed
// used, reproduced here via the public hash fallback (a deployment whose
// hull defeats the grid would take it; we time it directly instead by
// calling the reference collision path on a synthetic check).  To keep
// the comparison honest we rebuild with the exact seed algorithm.
Graph build_conflict_graph_seed(const Deployment& d) {
  Graph g(d.size());
  PointMap<std::vector<std::uint32_t>> covered_by;
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (const Point& p : d.coverage_of(i)) {
      covered_by[p].push_back(i);
    }
  }
  for (const auto& [p, ids] : covered_by) {
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        g.add_edge(ids[a], ids[b]);
      }
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Reproduction report: headline speedups
// ---------------------------------------------------------------------------

template <typename Fn>
double time_best_of(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

void report() {
  bench::section("Dense-index engine vs seed implementations");

  // Torus search: both engines expand the identical node sequence, so the
  // wall-time ratio equals the nodes/sec ratio.
  {
    const Sublattice period = Sublattice::diagonal({13, 13});
    std::uint64_t nodes_dense = 0, nodes_legacy = 0;
    const double t_dense = time_best_of(
        5, [&] { nodes_dense = run_torus_search(true, period); });
    const double t_legacy = time_best_of(
        3, [&] { nodes_legacy = run_torus_search(false, period); });
    std::printf(
        "torus search (S+Z on 13x13, %llu nodes): legacy %.1f Mnodes/s,"
        " dense %.1f Mnodes/s -> %.1fx (target >= 5x)\n",
        static_cast<unsigned long long>(nodes_dense),
        static_cast<double>(nodes_legacy) / t_legacy / 1e6,
        static_cast<double>(nodes_dense) / t_dense / 1e6,
        t_legacy / t_dense);
    if (nodes_dense != nodes_legacy) {
      std::printf("  WARNING: engines disagree (%llu vs %llu nodes)\n",
                  static_cast<unsigned long long>(nodes_dense),
                  static_cast<unsigned long long>(nodes_legacy));
    }
  }

  // slot_of: table load vs the seed's covering() + double hash lookup.
  {
    const TilingSchedule sched = make_schedule();
    const SeedSlotOracle seed(sched);
    const PointVec pts = Box::centered(2, 160).points();
    std::uint64_t sum_dense = 0, sum_seed = 0;
    const double t_dense = time_best_of(5, [&] {
      sum_dense = sweep_slots(pts, [&](const Point& p) {
        return sched.slot_of(p);
      });
    });
    const double t_seed = time_best_of(3, [&] {
      sum_seed = sweep_slots(pts, [&](const Point& p) {
        return seed.slot_of(p);
      });
    });
    const double n = static_cast<double>(pts.size());
    std::printf(
        "slot_of (%u-slot schedule, %.0f points): seed %.1f M/s, table"
        " %.1f M/s -> %.1fx throughput (target >= 10x)\n",
        sched.period(), n, n / t_seed / 1e6, n / t_dense / 1e6,
        t_seed / t_dense);
    if (sum_dense != sum_seed) {
      std::printf("  WARNING: slot sums disagree (%llu vs %llu)\n",
                  static_cast<unsigned long long>(sum_dense),
                  static_cast<unsigned long long>(sum_seed));
    }
  }

  // Collision check: stamped flat counters vs per-slot hash maps.
  {
    const CollisionWorkload w = make_collision_workload();
    bool free_dense = false, free_ref = false;
    const double t_dense = time_best_of(3, [&] {
      free_dense = check_collision_free(w.deployment, w.slots).collision_free;
    });
    const double t_ref = time_best_of(3, [&] {
      free_ref =
          check_collision_free_reference(w.deployment, w.slots)
              .collision_free;
    });
    std::printf(
        "collision check (%zu sensors, verdict %s/%s): reference %.2fms,"
        " dense %.2fms -> %.1fx\n",
        w.deployment.size(), free_dense ? "free" : "collision",
        free_ref ? "free" : "collision", t_ref * 1e3, t_dense * 1e3,
        t_ref / t_dense);
  }

  // Conflict-graph build: CSR inversion on the grid vs hash buckets.
  {
    const Deployment d = make_graph_deployment();
    std::size_t edges_dense = 0, edges_seed = 0;
    const double t_dense = time_best_of(
        3, [&] { edges_dense = build_conflict_graph(d).edge_count(); });
    const double t_seed = time_best_of(
        3, [&] { edges_seed = build_conflict_graph_seed(d).edge_count(); });
    std::printf(
        "conflict graph (%zu sensors, %zu/%zu edges): seed %.2fms, dense"
        " %.2fms -> %.1fx\n",
        d.size(), edges_dense, edges_seed, t_seed * 1e3, t_dense * 1e3,
        t_seed / t_dense);
  }
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks (recorded via --benchmark_format=json)
// ---------------------------------------------------------------------------

void BM_TorusSearchDense(benchmark::State& state) {
  // Odd x odd tori are unsatisfiable for S+Z: pure backtracking, and the
  // per-iteration node count is fixed, so time/op tracks nodes/sec.
  const Sublattice period =
      Sublattice::diagonal({state.range(0), state.range(0)});
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    nodes = run_torus_search(true, period);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_TorusSearchDense)->Arg(9)->Arg(11)->Arg(13);

void BM_TorusSearchLegacy(benchmark::State& state) {
  const Sublattice period =
      Sublattice::diagonal({state.range(0), state.range(0)});
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    nodes = run_torus_search(false, period);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_TorusSearchLegacy)->Arg(9)->Arg(11)->Arg(13);

void BM_SlotOfTable(benchmark::State& state) {
  const TilingSchedule sched = make_schedule();
  const PointVec pts = Box::centered(2, 40).points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_slots(pts, [&](const Point& p) {
      return sched.slot_of(p);
    }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_SlotOfTable);

void BM_SlotOfSeed(benchmark::State& state) {
  const TilingSchedule sched = make_schedule();
  const SeedSlotOracle seed(sched);
  const PointVec pts = Box::centered(2, 40).points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_slots(pts, [&](const Point& p) {
      return seed.slot_of(p);
    }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_SlotOfSeed);

void BM_CollisionCheckDense(benchmark::State& state) {
  const CollisionWorkload w = make_collision_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_collision_free(w.deployment, w.slots).collision_free);
  }
}
BENCHMARK(BM_CollisionCheckDense);

void BM_CollisionCheckReference(benchmark::State& state) {
  const CollisionWorkload w = make_collision_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_collision_free_reference(w.deployment, w.slots)
            .collision_free);
  }
}
BENCHMARK(BM_CollisionCheckReference);

void BM_ConflictGraphDense(benchmark::State& state) {
  const Deployment d = make_graph_deployment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_conflict_graph(d).edge_count());
  }
}
BENCHMARK(BM_ConflictGraphDense);

void BM_ConflictGraphSeed(benchmark::State& state) {
  const Deployment d = make_graph_deployment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_conflict_graph_seed(d).edge_count());
  }
}
BENCHMARK(BM_ConflictGraphSeed);

void BM_SimulatorConstruction(benchmark::State& state) {
  const Deployment d = make_graph_deployment();
  SimConfig cfg;
  for (auto _ : state) {
    SlotSimulator sim(d, cfg);
    benchmark::DoNotOptimize(sim.listeners().values.size());
  }
}
BENCHMARK(BM_SimulatorConstruction);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
