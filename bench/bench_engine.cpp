// Dense-index engine before/after microbenchmarks.
//
// The seed implementations of the four hot paths (torus search, slot
// lookup, collision check, conflict-graph build) are retained behind
// flags/reference entry points precisely so this binary can measure the
// speedup of the dense engine against them on identical workloads.  The
// report section prints the headline ratios (the acceptance targets are
// >= 5x on torus-search nodes/sec and >= 10x on slot_of throughput) and
// the parallel layer's sweep speedup, then records every case —
// ns/op, throughput, speedup — in machine-readable BENCH_engine.json
// (path override: LATTICESCHED_BENCH_JSON) so the perf trajectory is
// tracked across PRs; CI uploads the file as an artifact.  The
// registered google-benchmark cases cover the same comparisons.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/collision.hpp"
#include "core/planner.hpp"
#include "core/tiling_scheduler.hpp"
#include "graph/interference.hpp"
#include "sim/simulator.hpp"
#include "tiling/mask_kernels.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// BENCH_engine.json: one record per measured case
// ---------------------------------------------------------------------------

struct BenchRecord {
  std::string name;
  double ns_per_op = 0.0;        // wall time per operation (ns)
  double items_per_second = 0.0; // throughput, when an item count applies
  double speedup = 0.0;          // vs the seed/serial baseline, when paired
  double threads = 0.0;          // parallel cases only
};

std::vector<BenchRecord>& records() {
  static std::vector<BenchRecord> r;
  return r;
}

void write_bench_json() {
  const char* env = std::getenv("LATTICESCHED_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_engine.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"benchmarks\": [\n";
  const auto& rs = records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                  "\"items_per_second\": %.1f, \"speedup\": %.3f, "
                  "\"threads\": %.0f}%s\n",
                  rs[i].name.c_str(), rs[i].ns_per_op,
                  rs[i].items_per_second, rs[i].speedup, rs[i].threads,
                  i + 1 < rs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu benchmark records to %s\n", rs.size(),
              path.c_str());
}

// ---------------------------------------------------------------------------
// Shared workloads (identical for both engines)
// ---------------------------------------------------------------------------

std::vector<Prototile> mixed_tetrominoes() {
  return {shapes::s_tetromino(), shapes::z_tetromino()};
}

/// Pure-search workload: 13x13 has no S/Z tiling (169 is not a multiple
/// of 4), so the whole tree is explored with zero result emission — the
/// measured time is backtracking alone, and both engines expand the
/// identical node sequence.
std::uint64_t run_torus_search(bool dense, const Sublattice& period) {
  TorusSearchConfig cfg;
  cfg.use_dense_engine = dense;
  TorusSearchStats stats;
  cfg.stats = &stats;
  const auto found = all_tilings_on_torus(mixed_tetrominoes(), period,
                                          100'000, cfg);
  if (!found.empty()) std::abort();  // workload must stay search-only
  return stats.nodes;
}

TilingSchedule make_schedule() {
  const auto tiling = search_periodic_tiling({shapes::directional_antenna()});
  return TilingSchedule(*tiling);
}

/// The seed's slot_of, reproduced byte for byte in spirit: covering() as
/// a PointMap lookup materializing the Covering (translate included),
/// then a second hash lookup from element to slot.  The library paths
/// have all gone dense, so the seed baseline lives here in the bench.
struct SeedSlotOracle {
  explicit SeedSlotOracle(const TilingSchedule& sched)
      : tiling(&sched.tiling()) {
    for (const Point& rep : tiling->period().coset_representatives()) {
      const Covering c = tiling->covering(rep);
      cell_by_residue.emplace(rep,
                              SeedCell{c.prototile, c.element_index});
    }
    for (std::uint32_t k = 0; k < sched.union_points().size(); ++k) {
      slot_by_element.emplace(sched.union_points()[k], k);
    }
  }

  std::uint32_t slot_of(const Point& p) const {
    const Point rep = tiling->period().reduce(p);
    const SeedCell& cell = cell_by_residue.at(rep);
    const Point& element =
        tiling->prototile(cell.prototile).element(cell.element_index);
    Point translate = p - element;  // seed's Covering materialization
    benchmark::DoNotOptimize(translate);
    return slot_by_element.at(element);
  }

  struct SeedCell {
    std::uint32_t prototile = 0;
    std::uint32_t element_index = 0;
  };
  const Tiling* tiling;
  PointMap<SeedCell> cell_by_residue;
  PointMap<std::uint32_t> slot_by_element;
};

template <typename SlotFn>
std::uint64_t sweep_slots(const PointVec& pts, const SlotFn& slot_fn) {
  std::uint64_t sum = 0;
  for (const Point& p : pts) sum += slot_fn(p);
  return sum;
}

struct CollisionWorkload {
  Deployment deployment;
  SensorSlots slots;
};

CollisionWorkload make_collision_workload() {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tiling = find_tiling_on_torus(
      mixed_tetrominoes(), Sublattice::diagonal({4, 4}), cfg);
  const TilingSchedule sched(*tiling);
  Deployment d = Deployment::from_tiling(*tiling, Box::centered(2, 15));
  SensorSlots slots = assign_slots(sched, d);
  return CollisionWorkload{std::move(d), std::move(slots)};
}

Deployment make_graph_deployment() {
  return Deployment::grid(Box::centered(2, 14), shapes::chebyshev_ball(2, 1));
}

// Hashed conflict-graph builder for comparison: same structure the seed
// used, reproduced here via the public hash fallback (a deployment whose
// hull defeats the grid would take it; we time it directly instead by
// calling the reference collision path on a synthetic check).  To keep
// the comparison honest we rebuild with the exact seed algorithm.
Graph build_conflict_graph_seed(const Deployment& d) {
  Graph g(d.size());
  PointMap<std::vector<std::uint32_t>> covered_by;
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (const Point& p : d.coverage_of(i)) {
      covered_by[p].push_back(i);
    }
  }
  for (const auto& [p, ids] : covered_by) {
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        g.add_edge(ids[a], ids[b]);
      }
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Reproduction report: headline speedups
// ---------------------------------------------------------------------------

template <typename Fn>
double time_best_of(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

void report() {
  bench::section("Dense-index engine vs seed implementations");

  // Torus search: both engines expand the identical node sequence, so the
  // wall-time ratio equals the nodes/sec ratio.
  {
    const Sublattice period = Sublattice::diagonal({13, 13});
    std::uint64_t nodes_dense = 0, nodes_legacy = 0;
    const double t_dense = time_best_of(
        5, [&] { nodes_dense = run_torus_search(true, period); });
    const double t_legacy = time_best_of(
        3, [&] { nodes_legacy = run_torus_search(false, period); });
    std::printf(
        "torus search (S+Z on 13x13, %llu nodes): legacy %.1f Mnodes/s,"
        " dense %.1f Mnodes/s -> %.1fx (target >= 5x)\n",
        static_cast<unsigned long long>(nodes_dense),
        static_cast<double>(nodes_legacy) / t_legacy / 1e6,
        static_cast<double>(nodes_dense) / t_dense / 1e6,
        t_legacy / t_dense);
    if (nodes_dense != nodes_legacy) {
      std::printf("  WARNING: engines disagree (%llu vs %llu nodes)\n",
                  static_cast<unsigned long long>(nodes_dense),
                  static_cast<unsigned long long>(nodes_legacy));
    }
    records().push_back({"torus_search_legacy",
                         t_legacy * 1e9 / static_cast<double>(nodes_legacy),
                         static_cast<double>(nodes_legacy) / t_legacy, 0.0,
                         0.0});
    records().push_back({"torus_search_dense",
                         t_dense * 1e9 / static_cast<double>(nodes_dense),
                         static_cast<double>(nodes_dense) / t_dense,
                         t_legacy / t_dense, 0.0});
  }

  // slot_of: table load vs the seed's covering() + double hash lookup.
  {
    const TilingSchedule sched = make_schedule();
    const SeedSlotOracle seed(sched);
    const PointVec pts = Box::centered(2, 160).points();
    std::uint64_t sum_dense = 0, sum_seed = 0;
    const double t_dense = time_best_of(5, [&] {
      sum_dense = sweep_slots(pts, [&](const Point& p) {
        return sched.slot_of(p);
      });
    });
    const double t_seed = time_best_of(3, [&] {
      sum_seed = sweep_slots(pts, [&](const Point& p) {
        return seed.slot_of(p);
      });
    });
    const double n = static_cast<double>(pts.size());
    std::printf(
        "slot_of (%u-slot schedule, %.0f points): seed %.1f M/s, table"
        " %.1f M/s -> %.1fx throughput (target >= 10x)\n",
        sched.period(), n, n / t_seed / 1e6, n / t_dense / 1e6,
        t_seed / t_dense);
    if (sum_dense != sum_seed) {
      std::printf("  WARNING: slot sums disagree (%llu vs %llu)\n",
                  static_cast<unsigned long long>(sum_dense),
                  static_cast<unsigned long long>(sum_seed));
    }
    records().push_back(
        {"slot_of_seed", t_seed * 1e9 / n, n / t_seed, 0.0, 0.0});
    records().push_back({"slot_of_table", t_dense * 1e9 / n, n / t_dense,
                         t_seed / t_dense, 0.0});
  }

  // Collision check: stamped flat counters vs per-slot hash maps.
  {
    const CollisionWorkload w = make_collision_workload();
    bool free_dense = false, free_ref = false;
    const double t_dense = time_best_of(3, [&] {
      free_dense = check_collision_free(w.deployment, w.slots).collision_free;
    });
    const double t_ref = time_best_of(3, [&] {
      free_ref =
          check_collision_free_reference(w.deployment, w.slots)
              .collision_free;
    });
    std::printf(
        "collision check (%zu sensors, verdict %s/%s): reference %.2fms,"
        " dense %.2fms -> %.1fx\n",
        w.deployment.size(), free_dense ? "free" : "collision",
        free_ref ? "free" : "collision", t_ref * 1e3, t_dense * 1e3,
        t_ref / t_dense);
    records().push_back(
        {"collision_check_reference", t_ref * 1e9, 0.0, 0.0, 0.0});
    records().push_back({"collision_check_dense", t_dense * 1e9, 0.0,
                         t_ref / t_dense, 0.0});
  }

  // Conflict-graph build: CSR inversion on the grid vs hash buckets.
  {
    const Deployment d = make_graph_deployment();
    std::size_t edges_dense = 0, edges_seed = 0;
    const double t_dense = time_best_of(
        3, [&] { edges_dense = build_conflict_graph(d).edge_count(); });
    const double t_seed = time_best_of(
        3, [&] { edges_seed = build_conflict_graph_seed(d).edge_count(); });
    std::printf(
        "conflict graph (%zu sensors, %zu/%zu edges): seed %.2fms, dense"
        " %.2fms -> %.1fx\n",
        d.size(), edges_dense, edges_seed, t_seed * 1e3, t_dense * 1e3,
        t_seed / t_dense);
    records().push_back(
        {"conflict_graph_seed", t_seed * 1e9, 0.0, 0.0, 0.0});
    records().push_back({"conflict_graph_dense", t_dense * 1e9, 0.0,
                         t_seed / t_dense, 0.0});
  }

  bench::section("Parallel execution layer (util/parallel.hpp)");

  // Period-sweep speedup: the F-pentomino is not exact, so the sweep
  // explores EVERY torus up to the budget — the pure fan-out workload of
  // the speculative parallel sweep.  Serial and parallel return the
  // identical verdict (the determinism tests pin the satisfiable case).
  // Acceptance target: > 2x wall time at >= 4 threads; single-core hosts
  // necessarily report ~1x (the thread count is recorded alongside).
  {
    const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}},
                      "F-pentomino");
    TorusSearchConfig cfg;
    cfg.max_period_cells = 200;
    set_parallel_threads(1);
    const double t_serial =
        time_best_of(3, [&] { (void)search_periodic_tiling({f}, cfg); });
    set_parallel_threads(0);  // restore the environment default
    const double threads = static_cast<double>(parallel_threads());
    const double t_parallel =
        time_best_of(3, [&] { (void)search_periodic_tiling({f}, cfg); });
    std::printf(
        "period sweep (F-pentomino, all tori <= 200 cells): serial %.0fms,"
        " %.0f threads %.0fms -> %.2fx (target > 2x at >= 4 threads)\n",
        t_serial * 1e3, threads, t_parallel * 1e3, t_serial / t_parallel);
    records().push_back(
        {"period_sweep_serial", t_serial * 1e9, 0.0, 0.0, 1.0});
    records().push_back({"period_sweep_parallel", t_parallel * 1e9, 0.0,
                         t_serial / t_parallel, threads});
  }

  // Conflict-graph build at scale, serial vs the parallel per-sensor path.
  {
    const Deployment d =
        Deployment::grid(Box::centered(2, 40), shapes::chebyshev_ball(2, 2));
    set_parallel_threads(1);
    std::size_t edges_serial = 0;
    const double t_serial = time_best_of(
        3, [&] { edges_serial = build_conflict_graph(d).edge_count(); });
    set_parallel_threads(0);
    const double threads = static_cast<double>(parallel_threads());
    std::size_t edges_parallel = 0;
    const double t_parallel = time_best_of(
        3, [&] { edges_parallel = build_conflict_graph(d).edge_count(); });
    std::printf(
        "conflict graph (%zu sensors, %zu/%zu edges): serial %.1fms,"
        " %.0f threads %.1fms -> %.2fx\n",
        d.size(), edges_serial, edges_parallel, t_serial * 1e3, threads,
        t_parallel * 1e3, t_serial / t_parallel);
    records().push_back(
        {"conflict_graph_build_serial", t_serial * 1e9, 0.0, 0.0, 1.0});
    records().push_back({"conflict_graph_build_parallel", t_parallel * 1e9,
                         0.0, t_serial / t_parallel, threads});
  }

  bench::section("Work-stealing subtree search + SIMD mask kernels");

  // The skewed-subtree workload: S+Z on ONE unsatisfiable torus (odd
  // cell count; the task engine runs, not the cross-torus sweep), so the
  // whole tree is explored.  Its subtrees differ wildly in size — the
  // case root-only fan-out quantizes badly.
  const Sublattice skew_period = Sublattice::diagonal({15, 15});
  const auto stealing_search = [&](std::uint32_t spawn_depth,
                                   TorusSearchStats* stats) {
    TorusSearchConfig cfg;
    cfg.max_spawn_depth = spawn_depth;
    cfg.stats = stats;
    if (!all_tilings_on_torus(mixed_tetrominoes(), skew_period, 100'000,
                              cfg)
             .empty()) {
      std::abort();  // workload must stay search-only
    }
  };

  // SIMD kernels, serial engine, on a wider torus (21x21 = 441 cells =
  // 7 mask words — the 4-word torus above fits the scalar loop too well
  // to discriminate).  Both kernels expand the identical node sequence,
  // so the wall-time ratio equals the nodes/s ratio; the rounds
  // interleave the kernels (best-of each) so drift hits both equally.
  // The AVX2 row is absent on hosts/builds without AVX2.
  {
    set_parallel_threads(1);
    const Sublattice kernel_period = Sublattice::diagonal({21, 21});
    const auto kernel_search = [&](TorusSearchStats* stats) {
      TorusSearchConfig cfg;
      cfg.stats = stats;
      if (!all_tilings_on_torus(mixed_tetrominoes(), kernel_period,
                                100'000, cfg)
               .empty()) {
        std::abort();  // workload must stay search-only
      }
    };
    const bool have_avx2 = mask_kernels::avx2_ops() != nullptr;
    TorusSearchStats stats;
    double t_scalar = 1e300, t_avx2 = 1e300;
    for (int round = 0; round < 3; ++round) {
      mask_kernels::set_kernel(mask_kernels::Kernel::kScalar);
      t_scalar = std::min(t_scalar, time_best_of(1, [&] {
        kernel_search(&stats);
      }));
      if (have_avx2) {
        mask_kernels::set_kernel(mask_kernels::Kernel::kAvx2);
        t_avx2 = std::min(t_avx2, time_best_of(1, [&] {
          kernel_search(&stats);
        }));
      }
    }
    mask_kernels::set_kernel(mask_kernels::Kernel::kAuto);
    const std::uint64_t nodes = stats.nodes;
    std::printf(
        "mask kernels (S+Z on 21x21, %llu nodes): scalar %.1f Mnodes/s",
        static_cast<unsigned long long>(nodes),
        static_cast<double>(nodes) / t_scalar / 1e6);
    records().push_back({"mask_kernel_scalar",
                         t_scalar * 1e9 / static_cast<double>(nodes),
                         static_cast<double>(nodes) / t_scalar, 0.0, 1.0});
    if (have_avx2) {
      std::printf(", avx2 %.1f Mnodes/s -> %.2fx\n",
                  static_cast<double>(nodes) / t_avx2 / 1e6,
                  t_scalar / t_avx2);
      records().push_back({"mask_kernel_avx2",
                           t_avx2 * 1e9 / static_cast<double>(nodes),
                           static_cast<double>(nodes) / t_avx2,
                           t_scalar / t_avx2, 1.0});
    } else {
      std::printf(" (avx2 unavailable)\n");
    }
  }

  // Work stealing vs root-only fan-out on the skewed tree at 1/2/4
  // threads.  Acceptance target: stealing >= 1.5x the root fan-out at 4
  // threads on a multicore host; a single-core host necessarily reports
  // ~1x (thread count is recorded alongside, like the sweep above).
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    set_parallel_threads(threads);
    TorusSearchStats stats;
    double t_root = 1e300, t_steal = 1e300;
    std::uint64_t nodes = 0;
    for (int round = 0; round < 3; ++round) {
      t_root = std::min(t_root,
                        time_best_of(1, [&] { stealing_search(1, &stats); }));
      nodes = stats.nodes;
      t_steal = std::min(
          t_steal, time_best_of(1, [&] { stealing_search(0, &stats); }));
    }
    records().push_back({"subtree_search_rootfanout_t" +
                             std::to_string(threads),
                         t_root * 1e9 / static_cast<double>(nodes),
                         static_cast<double>(nodes) / t_root, 0.0,
                         static_cast<double>(threads)});
    std::printf(
        "subtree search, %zu thread(s): root fan-out %.1f Mnodes/s,"
        " stealing %.1f Mnodes/s -> %.2fx (%llu tasks, %llu steals)%s\n",
        threads, static_cast<double>(nodes) / t_root / 1e6,
        static_cast<double>(stats.nodes) / t_steal / 1e6, t_root / t_steal,
        static_cast<unsigned long long>(stats.subtree_tasks),
        static_cast<unsigned long long>(stats.steals),
        threads == 4 ? " (target >= 1.5x at 4 threads, multicore)" : "");
    records().push_back({"subtree_search_stealing_t" +
                             std::to_string(threads),
                         t_steal * 1e9 / static_cast<double>(stats.nodes),
                         static_cast<double>(stats.nodes) / t_steal,
                         t_root / t_steal, static_cast<double>(threads)});
  }
  set_parallel_threads(0);

  // Planner fan-out: all six backends on one deployment, one plan_all.
  {
    const Deployment d =
        Deployment::grid(Box::cube(2, 0, 15), shapes::chebyshev_ball(2, 1));
    PlanRequest request;
    request.deployment = &d;
    request.sa.max_iters = 20'000;
    set_parallel_threads(1);
    const double t_serial = time_best_of(
        2, [&] { (void)PlannerRegistry::global().plan_all(request); });
    set_parallel_threads(0);
    const double threads = static_cast<double>(parallel_threads());
    const double t_parallel = time_best_of(
        2, [&] { (void)PlannerRegistry::global().plan_all(request); });
    std::printf(
        "plan_all fan-out (6 backends, %zu sensors): serial %.1fms,"
        " %.0f threads %.1fms -> %.2fx\n",
        d.size(), t_serial * 1e3, threads, t_parallel * 1e3,
        t_serial / t_parallel);
    records().push_back(
        {"plan_all_serial", t_serial * 1e9, 0.0, 0.0, 1.0});
    records().push_back({"plan_all_parallel", t_parallel * 1e9, 0.0,
                         t_serial / t_parallel, threads});
  }

  write_bench_json();
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks (recorded via --benchmark_format=json)
// ---------------------------------------------------------------------------

void BM_TorusSearchDense(benchmark::State& state) {
  // Odd x odd tori are unsatisfiable for S+Z: pure backtracking, and the
  // per-iteration node count is fixed, so time/op tracks nodes/sec.
  const Sublattice period =
      Sublattice::diagonal({state.range(0), state.range(0)});
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    nodes = run_torus_search(true, period);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_TorusSearchDense)->Arg(9)->Arg(11)->Arg(13);

void BM_TorusSearchLegacy(benchmark::State& state) {
  const Sublattice period =
      Sublattice::diagonal({state.range(0), state.range(0)});
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    nodes = run_torus_search(false, period);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_TorusSearchLegacy)->Arg(9)->Arg(11)->Arg(13);

void BM_SlotOfTable(benchmark::State& state) {
  const TilingSchedule sched = make_schedule();
  const PointVec pts = Box::centered(2, 40).points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_slots(pts, [&](const Point& p) {
      return sched.slot_of(p);
    }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_SlotOfTable);

void BM_SlotOfSeed(benchmark::State& state) {
  const TilingSchedule sched = make_schedule();
  const SeedSlotOracle seed(sched);
  const PointVec pts = Box::centered(2, 40).points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep_slots(pts, [&](const Point& p) {
      return seed.slot_of(p);
    }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}
BENCHMARK(BM_SlotOfSeed);

void BM_CollisionCheckDense(benchmark::State& state) {
  const CollisionWorkload w = make_collision_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_collision_free(w.deployment, w.slots).collision_free);
  }
}
BENCHMARK(BM_CollisionCheckDense);

void BM_CollisionCheckReference(benchmark::State& state) {
  const CollisionWorkload w = make_collision_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_collision_free_reference(w.deployment, w.slots)
            .collision_free);
  }
}
BENCHMARK(BM_CollisionCheckReference);

void BM_ConflictGraphDense(benchmark::State& state) {
  const Deployment d = make_graph_deployment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_conflict_graph(d).edge_count());
  }
}
BENCHMARK(BM_ConflictGraphDense);

void BM_ConflictGraphSeed(benchmark::State& state) {
  const Deployment d = make_graph_deployment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_conflict_graph_seed(d).edge_count());
  }
}
BENCHMARK(BM_ConflictGraphSeed);

void BM_SimulatorConstruction(benchmark::State& state) {
  const Deployment d = make_graph_deployment();
  SimConfig cfg;
  for (auto _ : state) {
    SlotSimulator sim(d, cfg);
    benchmark::DoNotOptimize(sim.listeners().values.size());
  }
}
BENCHMARK(BM_SimulatorConstruction);

// Exhaustive period sweep (non-exact F-pentomino) at a given thread
// count; arg 1 = threads (0 = environment default).
void BM_PeriodSweep(benchmark::State& state) {
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}},
                    "F-pentomino");
  TorusSearchConfig cfg;
  cfg.max_period_cells = 150;
  set_parallel_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search_periodic_tiling({f}, cfg));
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_PeriodSweep)->Arg(1)->Arg(0);

// Skewed-subtree torus search; arg 0 = threads, arg 1 = max_spawn_depth
// (1 = root-only fan-out baseline, 0 = auto stealing frontier).
void BM_TorusSearchStealing(benchmark::State& state) {
  const Sublattice period = Sublattice::diagonal({15, 15});
  TorusSearchConfig cfg;
  cfg.max_spawn_depth = static_cast<std::uint32_t>(state.range(1));
  set_parallel_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        all_tilings_on_torus(mixed_tetrominoes(), period, 100'000, cfg));
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_TorusSearchStealing)
    ->Args({1, 0})
    ->Args({4, 1})
    ->Args({4, 0});

void BM_PlanAll(benchmark::State& state) {
  const Deployment d =
      Deployment::grid(Box::cube(2, 0, 11), shapes::chebyshev_ball(2, 1));
  PlanRequest request;
  request.deployment = &d;
  request.sa.max_iters = 10'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlannerRegistry::global().plan_all(request));
  }
}
BENCHMARK(BM_PlanAll);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
