// Section 3: deciding exactness is polynomial for polyominoes.
//
// The paper cites Wijshoff & van Leeuwen (polynomial), Beauquier & Nivat
// (O(n^4)) and Gambini & Vuillon (O(n^2)) for boundary words of length n.
// Series: BN-criterion wall time vs boundary length for exact tiles
// (Chebyshev balls) and for random polyominoes, plus the decider
// agreement census the correctness argument rests on.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "tiling/bn_criterion.hpp"
#include "tiling/enumerate.hpp"
#include "tiling/exactness.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "../tests/test_helpers.hpp"

namespace latticesched {
namespace {

void report() {
  bench::section("BN criterion wall time vs boundary length");
  Table t({"tile", "cells", "boundary n", "exact?", "time (ms)"});
  for (std::int64_t r = 1; r <= 6; ++r) {
    const Prototile ball = shapes::chebyshev_ball(2, r);
    const auto t0 = std::chrono::steady_clock::now();
    const BnResult bn = bn_exactness(ball);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    t.begin_row();
    t.cell("linf-ball r=" + std::to_string(r));
    t.cell(ball.size());
    t.cell(bn.boundary.length());
    t.cell(bn.exact ? "yes" : "no");
    t.cell(ms, 3);
  }
  // Long skinny rectangles stress the boundary length cheaply.
  for (std::int64_t k : {16, 32, 64}) {
    const Prototile rect = shapes::rectangle(k, 2);
    const auto t0 = std::chrono::steady_clock::now();
    const BnResult bn = bn_exactness(rect);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    t.begin_row();
    t.cell("rect " + std::to_string(k) + "x2");
    t.cell(rect.size());
    t.cell(bn.boundary.length());
    t.cell(bn.exact ? "yes" : "no");
    t.cell(ms, 3);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: polynomial-time decidability (Gambini-Vuillon "
              "O(n^2)); the run-table\nimplementation here is O(n^2) "
              "space with an O(n^3)-bounded factor search.\n");

  bench::section("Decider agreement census (random polyominoes)");
  Table c({"cells", "samples", "polyominoes", "exact", "BN==lattice-search"});
  for (std::size_t cells : {4u, 6u, 8u, 10u}) {
    Rng rng(77 + cells);
    int applicable = 0, exact_count = 0, agree = 0;
    const int kSamples = 150;
    for (int i = 0; i < kSamples; ++i) {
      const Prototile tile = test_helpers::random_polyomino(rng, cells);
      const BnResult bn = bn_exactness(tile);
      if (!bn.applicable) continue;
      ++applicable;
      const bool lattice = find_lattice_tiling(tile).has_value();
      if (bn.exact) ++exact_count;
      if (bn.exact == lattice) ++agree;
    }
    c.begin_row();
    c.cell(cells);
    c.cell(kSamples);
    c.cell(applicable);
    c.cell(exact_count);
    c.cell(std::to_string(agree) + "/" + std::to_string(applicable));
  }
  std::printf("%s", c.to_string().c_str());
  std::printf("\nthe last column must always be total agreement: exact "
              "polyominoes admit lattice\ntilings (Wijshoff-van Leeuwen), "
              "and our two deciders are independent programs.\n");

  bench::section("Exhaustive exactness census (ALL fixed polyominoes)");
  Table e({"cells", "fixed polyominoes", "exact", "share"});
  for (std::size_t cells = 1; cells <= 7; ++cells) {
    const ExactnessCensus census = exactness_census(cells);
    e.begin_row();
    e.cell(census.cells);
    e.cell(census.polyominoes);
    e.cell(census.exact);
    e.cell_percent(static_cast<double>(census.exact) /
                       static_cast<double>(census.polyominoes),
                   1);
  }
  std::printf("%s", e.to_string().c_str());
  std::printf("\nevery polyomino with <= 4 cells tiles the plane by "
              "translations; the first\nnon-exact shapes appear among the "
              "63 pentominoes.\n");
}

void bm_bn_chebyshev(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn_exactness(ball));
  }
}
BENCHMARK(bm_bn_chebyshev)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void bm_bn_rectangle(benchmark::State& state) {
  const Prototile rect = shapes::rectangle(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn_exactness(rect));
  }
}
BENCHMARK(bm_bn_rectangle)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_lattice_tiling_search(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_lattice_tiling(ball));
  }
}
BENCHMARK(bm_lattice_tiling_search)->Arg(1)->Arg(2);

void bm_torus_search_s_tetromino(benchmark::State& state) {
  const std::vector<Prototile> protos = {shapes::s_tetromino()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(search_periodic_tiling(protos));
  }
}
BENCHMARK(bm_torus_search_s_tetromino);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
