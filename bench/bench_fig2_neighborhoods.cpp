// Figure 2: the three neighborhood shapes — Chebyshev ball, Euclidean
// ball, directional antenna — and the paper's claim that each is exact.
//
// For each shape: exactness decision (method + boundary-word evidence),
// a concrete tiling, the Theorem-1 schedule with m = |N| slots, and a
// machine check that the schedule is collision-free and optimal on a
// deployment window.  Microbenchmarks time the decision pipeline.
#include <cstdio>

#include "bench_common.hpp"
#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

std::vector<Prototile> figure2_shapes() {
  return {shapes::chebyshev_ball(2, 1),
          shapes::euclidean_ball(Lattice::square(), 1.0),
          shapes::directional_antenna()};
}

void report() {
  bench::section("Figure 2: neighborhood shapes and their exactness");
  Table t({"neighborhood", "|N|", "exact?", "method", "boundary", "m",
           "collision-free", "window optimum"});
  for (const Prototile& shape : figure2_shapes()) {
    const ExactnessResult ex = decide_exactness(shape);
    t.begin_row();
    t.cell(shape.name());
    t.cell(shape.size());
    t.cell(ex.exact ? "yes" : "no");
    t.cell(to_string(ex.method));
    t.cell(ex.bn.has_value() ? ex.bn->boundary.str() : "-");
    const TilingSchedule sched(*ex.tiling);
    t.cell(sched.period());
    const Deployment d = Deployment::grid(Box::centered(2, 7), shape);
    t.cell(check_collision_free(d, sched).collision_free ? "yes" : "NO");
    const DeploymentOptimum opt = optimal_slots_for_deployment(d);
    t.cell(std::to_string(opt.optimal_slots) +
           (opt.proven ? " (proven)" : " (best)"));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper: \"it immediately follows that each prototile shown in "
      "Figure 2 is exact\" —\n"
      "and Theorem 1 gives optimal schedules with m = |N| = 9, 5, 8 "
      "slots respectively.\n");

  bench::section("Figure 2 shapes, rendered");
  for (const Prototile& shape : figure2_shapes()) {
    std::printf("%s:\n%s\n", shape.name().c_str(),
                shape.to_ascii().c_str());
  }
}

void bm_decide_exactness(benchmark::State& state) {
  const auto shapes_list = figure2_shapes();
  const Prototile& shape =
      shapes_list[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(decide_exactness(shape));
  }
}
BENCHMARK(bm_decide_exactness)->Arg(0)->Arg(1)->Arg(2);

void bm_schedule_construction(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const ExactnessResult ex = decide_exactness(ball);
  for (auto _ : state) {
    TilingSchedule sched(*ex.tiling);
    benchmark::DoNotOptimize(sched.period());
  }
}
BENCHMARK(bm_schedule_construction);

void bm_collision_check(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const ExactnessResult ex = decide_exactness(ball);
  const TilingSchedule sched(*ex.tiling);
  const Deployment d =
      Deployment::grid(Box::centered(2, state.range(0)), ball);
  const SensorSlots slots = assign_slots(sched, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_collision_free(d, slots));
  }
}
BENCHMARK(bm_collision_check)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
