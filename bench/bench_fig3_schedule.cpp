// Figure 3: the Theorem-1 schedule for the 2x4 directional-antenna
// neighborhood, rendered over a window, plus the figure's key structural
// observation: the senders of any fixed slot have neighborhoods that
// again tile the lattice (the slot-2 tiling is the slot-1 tiling
// shifted).
#include <cstdio>

#include "bench_common.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/ascii_canvas.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

TilingSchedule make_schedule() {
  const ExactnessResult ex = decide_exactness(shapes::directional_antenna());
  return TilingSchedule(*ex.tiling);
}

// Renders slot numbers (1-based like the paper) over a window, with tile
// boundaries every 2 columns / 4 rows of the found tiling left implicit.
void render_schedule(const TilingSchedule& sched) {
  const Box window = Box(Point{0, 0}, Point{15, 11});
  AsciiCanvas canvas(3 * 16 + 1, 12, ' ');
  window.for_each([&](const Point& p) {
    const std::uint32_t slot = sched.slot_of(p) + 1;  // paper is 1-based
    const std::string label = std::to_string(slot);
    canvas.put_text(3 * p[0], p[1], label);
  });
  std::printf("%s", canvas.to_string().c_str());
}

void report() {
  const TilingSchedule sched = make_schedule();
  bench::section("Figure 3: schedule from a tiling with the 2x4 "
                 "directional neighborhood");
  std::printf("m = %u slots; slots are assigned per tile element and\n"
              "repeat with the tiling (paper numbers slots 1..8):\n\n",
              sched.period());
  render_schedule(sched);

  bench::section("Figure 3 property: each slot class re-tiles the lattice");
  Table t({"slot", "senders in 25x25", "covers inner 13x13 exactly once"});
  const Box outer = Box::centered(2, 12);
  const Box inner = Box::centered(2, 6);
  for (std::uint32_t slot = 0; slot < sched.period(); ++slot) {
    const PointVec senders = sched.senders_in_slot(slot, outer);
    PointMap<int> coverage;
    for (const Point& s : senders) {
      for (const Point& p : sched.tiling().prototile(0).translated(s)) {
        ++coverage[p];
      }
    }
    bool exact_cover = true;
    inner.for_each([&](const Point& p) {
      const auto it = coverage.find(p);
      if (it == coverage.end() || it->second != 1) exact_cover = false;
    });
    t.begin_row();
    t.cell(slot + 1);
    t.cell(senders.size());
    t.cell(exact_cover ? "yes" : "NO");
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: \"Considering the neighborhoods of all sensors "
              "broadcasting during time slot 2\n"
              "one obtains once again a tiling\" — verified above for "
              "every slot.\n");
}

void bm_slot_of(benchmark::State& state) {
  const TilingSchedule sched = make_schedule();
  std::int64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(sched.slot_of(Point{i % 100, (3 * i) % 100}));
  }
}
BENCHMARK(bm_slot_of);

void bm_senders_in_slot(benchmark::State& state) {
  const TilingSchedule sched = make_schedule();
  const Box box = Box::centered(2, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.senders_in_slot(2, box));
  }
}
BENCHMARK(bm_senders_in_slot)->Arg(8)->Arg(16)->Arg(32);

void bm_assign_slots_window(benchmark::State& state) {
  const TilingSchedule sched = make_schedule();
  const Deployment d = Deployment::grid(Box::centered(2, state.range(0)),
                                        shapes::directional_antenna());
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_slots(sched, d));
  }
}
BENCHMARK(bm_assign_slots_window)->Arg(8)->Arg(16);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
