// Figure 4: Voronoi regions — unit squares for the square lattice
// (quasi-polyominoes) and hexagons for the hexagonal lattice
// (quasi-polyhexes) — and the lattice-tiling <-> plane-tiling bridge of
// Section 3: a tile of k lattice points corresponds to a quasi-polyform
// of area k x covolume.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "lattice/voronoi.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

void report() {
  bench::section("Figure 4: Voronoi cells of the two lattices");
  Table t({"lattice", "cell vertices", "cell area", "expected area",
           "circumradius"});
  for (const Lattice& lat : {Lattice::square(), Lattice::hexagonal()}) {
    const ConvexPolygon cell = voronoi_cell(lat);
    double circum = 0.0;
    for (const Vec2& v : cell.vertices()) {
      circum = std::max(circum, std::sqrt(v.x * v.x + v.y * v.y));
    }
    t.begin_row();
    t.cell(lat.name());
    t.cell(cell.vertex_count());
    t.cell(cell.area(), 6);
    t.cell(lat.covolume(), 6);
    t.cell(circum, 6);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: the square-lattice cell is the unit square (4 "
              "vertices, area 1);\nthe hex-lattice cell is a regular "
              "hexagon (6 vertices, area sqrt(3)/2 = 0.866025).\n");

  bench::section("Quasi-polyform areas (tile size x covolume)");
  Table q({"prototile", "|N|", "lattice", "quasi-polyform area"});
  struct Row {
    Prototile tile;
    Lattice lattice;
  };
  const Row rows[] = {
      {shapes::chebyshev_ball(2, 1), Lattice::square()},
      {shapes::euclidean_ball(Lattice::square(), 1.0), Lattice::square()},
      {shapes::directional_antenna(), Lattice::square()},
      {shapes::euclidean_ball(Lattice::hexagonal(), 1.0),
       Lattice::hexagonal()},
  };
  for (const Row& r : rows) {
    q.begin_row();
    q.cell(r.tile.name());
    q.cell(r.tile.size());
    q.cell(r.lattice.name());
    q.cell(quasi_polyform_area(r.lattice, r.tile.size()), 6);
  }
  std::printf("%s", q.to_string().c_str());

  bench::section("Voronoi vertex coordinates");
  for (const Lattice& lat : {Lattice::square(), Lattice::hexagonal()}) {
    std::printf("%s: ", lat.name().c_str());
    const ConvexPolygon cell = voronoi_cell(lat);
    for (const Vec2& v : cell.vertices()) {
      std::printf("(%.4f, %.4f) ", v.x, v.y);
    }
    std::printf("\n");
  }
}

void bm_voronoi_cell(benchmark::State& state) {
  const Lattice lat =
      state.range(0) == 0 ? Lattice::square() : Lattice::hexagonal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(voronoi_cell(lat));
  }
}
BENCHMARK(bm_voronoi_cell)->Arg(0)->Arg(1);

void bm_polygon_distance(benchmark::State& state) {
  const ConvexPolygon cell = voronoi_cell(Lattice::hexagonal());
  double x = -3.0;
  for (auto _ : state) {
    x += 0.013;
    if (x > 3) x = -3;
    benchmark::DoNotOptimize(cell.distance_to({x, 0.4 * x}));
  }
}
BENCHMARK(bm_polygon_distance);

void bm_clip_half_plane(benchmark::State& state) {
  const ConvexPolygon square = ConvexPolygon::centered_square(2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(square.clip_half_plane({0.7, 0.7}, 0.5));
  }
}
BENCHMARK(bm_clip_half_plane);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
