// Figure 5: non-respectable tilings with S- and Z-tetrominoes.
//
// The paper's claim: with the prototile set {S, Z} (neither contains the
// other, so no respectable prototile exists), the number of slots of an
// optimal schedule DEPENDS ON THE CHOSEN TILING — the figure's mixed
// tiling needs m = 6 (which the Theorem-2 algorithm delivers, since
// |S ∪ Z| = 6), while the symmetric tiling needs only m = 4.
//
// We enumerate ALL tilings of the 4x4 torus that use both prototiles,
// compute each tiling's exact optimum (chromatic number of its role
// conflict graph under the paper's ground rules), histogram the results,
// and render one witness tiling per extreme with its schedule.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/equivalence.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/ascii_canvas.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

std::vector<Tiling> mixed_tilings() {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  return all_tilings_on_torus({shapes::s_tetromino(), shapes::z_tetromino()},
                              Sublattice::diagonal({4, 4}), 10'000, cfg);
}

// Draws the schedule (1-based slots) with tile identities: S-tiles in
// plain digits, Z-tiles bracketed, over a 12x8 window.
void render(const Tiling& tiling, const Coloring& role_slots) {
  // Role id lookup must match build_role_conflict_graph's enumeration
  // order: roles are enumerated prototile-major, element-minor.
  std::vector<std::vector<std::uint32_t>> role_id(tiling.prototile_count());
  std::uint32_t next = 0;
  for (std::uint32_t k = 0; k < tiling.prototile_count(); ++k) {
    role_id[k].resize(tiling.prototile(k).size());
    for (std::uint32_t i = 0; i < tiling.prototile(k).size(); ++i) {
      role_id[k][i] = next++;
    }
  }
  AsciiCanvas canvas(4 * 12 + 1, 8, ' ');
  Box(Point{0, 0}, Point{11, 7}).for_each([&](const Point& p) {
    const Covering c = tiling.covering(p);
    const std::uint32_t slot =
        role_slots[role_id[c.prototile][c.element_index]] + 1;
    std::string label = std::to_string(slot);
    if (c.prototile == 1) label = "[" + label + "]";  // Z-tiles bracketed
    canvas.put_text(4 * p[0], p[1], label);
  });
  std::printf("%s", canvas.to_string().c_str());
}

void report() {
  bench::section("Figure 5: optimum depends on the tiling (S/Z tetrominoes)");
  std::printf("S ∪ Z has %zu elements -> the Theorem-2 algorithm always "
              "uses 6 slots.\n",
              sorted_unique([] {
                PointVec u = shapes::s_tetromino().points();
                const Prototile z = shapes::z_tetromino();
                for (const Point& p : z.points()) {
                  u.push_back(p);
                }
                return u;
              }()).size());

  const std::vector<Tiling> all = mixed_tilings();
  const std::vector<Tiling> tilings = dedup_tilings_up_to_translation(all);
  std::printf("%zu mixed tilings of the 4x4 torus = %zu translation "
              "classes:\n",
              all.size(), tilings.size());
  std::map<std::uint32_t, int> histogram;
  const Tiling* witness6 = nullptr;
  const Tiling* witness4 = nullptr;
  Coloring slots6, slots4;
  for (const Tiling& t : tilings) {
    const TilingOptimum opt = optimal_slots_for_tiling(t);
    ++histogram[opt.optimal_slots];
    if (opt.optimal_slots == 6 && witness6 == nullptr) {
      witness6 = &t;
      slots6 = opt.role_slots;
    }
    if (opt.optimal_slots == 4 && witness4 == nullptr) {
      witness4 = &t;
      slots4 = opt.role_slots;
    }
  }
  Table t({"optimal slots m", "translation classes"});
  for (const auto& [slots, count] : histogram) {
    t.begin_row();
    t.cell(slots);
    t.cell(count);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: the figure's mixed tiling has optimum m = 6; the "
              "symmetric tiling m = 4.\nBoth extremes exist above -> the "
              "optimum genuinely depends on the chosen tiling.\n");

  if (witness6 != nullptr) {
    bench::section("Witness tiling with optimum 6 (paper's Figure 5 left)");
    std::printf("slots 1..6; Z-tetromino cells bracketed:\n\n");
    render(*witness6, slots6);
    const TilingSchedule sched{Tiling(*witness6)};
    const Deployment d =
        Deployment::from_tiling(*witness6, Box::centered(2, 6));
    std::printf("\nTheorem-2 schedule: m=%u, %s\n", sched.period(),
                check_collision_free(d, sched).to_string().c_str());
  }
  if (witness4 != nullptr) {
    bench::section("Witness tiling with optimum 4 (Figure 5 right style)");
    std::printf("an optimal 4-slot schedule (not the Theorem-2 one):\n\n");
    render(*witness4, slots4);
  }

  bench::section("Pure-S lattice tiling (fully symmetric baseline)");
  const auto pure_s = make_lattice_tiling(shapes::s_tetromino());
  const TilingOptimum opt = optimal_slots_for_tiling(*pure_s);
  std::printf("optimal slots: %u (proven: %s); Theorem-1 schedule uses "
              "|S| = 4.\n",
              opt.optimal_slots, opt.proven ? "yes" : "no");
}

void bm_role_graph_build(benchmark::State& state) {
  const auto tilings = mixed_tilings();
  const Tiling& t = tilings.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_role_conflict_graph(t));
  }
}
BENCHMARK(bm_role_graph_build);

void bm_tiling_optimum(benchmark::State& state) {
  const auto tilings = mixed_tilings();
  const Tiling& t = tilings.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_slots_for_tiling(t));
  }
}
BENCHMARK(bm_tiling_optimum);

void bm_mixed_tiling_enumeration(benchmark::State& state) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const std::vector<Prototile> protos = {shapes::s_tetromino(),
                                         shapes::z_tetromino()};
  const Sublattice period = Sublattice::diagonal({4, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        all_tilings_on_torus(protos, period, 10'000, cfg));
  }
}
BENCHMARK(bm_mixed_tiling_enumeration);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
