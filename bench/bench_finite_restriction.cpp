// Conclusions: restriction to a finite D stays optimal when D contains a
// translate of N1 + N1.
//
// Series: w x w windows of Chebyshev-ball sensors for w = 2..9.  Below
// the threshold (w < 5) the window needs fewer than |N| slots — the
// infinite-lattice optimality claim genuinely fails there — while at and
// above the threshold the exact optimum equals |N| = 9, matching the
// Theorem-1 schedule.
#include <cstdio>

#include "bench_common.hpp"
#include "core/optimality.hpp"
#include "core/restriction.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

void report() {
  bench::section("Finite restriction: when does optimality survive?");
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  Table t({"window", "N1+N1 fits?", "exact optimum", "tiling slots",
           "restriction optimal?"});
  for (std::int64_t w = 2; w <= 9; ++w) {
    const Box window = Box::cube(2, 0, w - 1);
    const RestrictionAnalysis ra = analyze_restriction(window, ball);
    const Deployment d = Deployment::grid(window, ball);
    const DeploymentOptimum opt = optimal_slots_for_deployment(d);
    t.begin_row();
    t.cell(std::to_string(w) + "x" + std::to_string(w));
    t.cell(ra.optimality_guaranteed ? "yes" : "no");
    t.cell(std::to_string(opt.optimal_slots) +
           (opt.proven ? "" : "?"));
    t.cell(sched.period());
    t.cell(opt.optimal_slots == sched.period() ? "yes" : "NO (smaller)");
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper: optimality is guaranteed once D contains a translate of "
      "N1+N1 (a 5x5 block\nfor the radius-1 Chebyshev ball).  The sweep "
      "confirms: below 5x5 fewer slots suffice;\nfrom 5x5 on the exact "
      "optimum equals |N| = 9 and the Theorem-1 schedule is optimal.\n");

  bench::section("Same sweep for the directional antenna (threshold 3x7)");
  const Prototile ant = shapes::directional_antenna();
  const TilingSchedule ant_sched(*decide_exactness(ant).tiling);
  Table a({"window", "N1+N1 fits?", "exact optimum", "tiling slots"});
  struct Win {
    std::int64_t w, h;
  };
  for (const Win win : {Win{2, 4}, Win{2, 6}, Win{3, 6}, Win{3, 7},
                        Win{4, 8}, Win{6, 9}}) {
    const Box window(Point{0, 0}, Point{win.w - 1, win.h - 1});
    const RestrictionAnalysis ra = analyze_restriction(window, ant);
    const Deployment d = Deployment::grid(window, ant);
    const DeploymentOptimum opt = optimal_slots_for_deployment(d);
    a.begin_row();
    a.cell(std::to_string(win.w) + "x" + std::to_string(win.h));
    a.cell(ra.optimality_guaranteed ? "yes" : "no");
    a.cell(std::to_string(opt.optimal_slots) + (opt.proven ? "" : "?"));
    a.cell(ant_sched.period());
  }
  std::printf("%s", a.to_string().c_str());
}

void bm_analyze_restriction(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Box window = Box::cube(2, 0, state.range(0) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_restriction(window, ball));
  }
}
BENCHMARK(bm_analyze_restriction)->Arg(4)->Arg(8)->Arg(16);

void bm_window_exact_optimum(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d =
      Deployment::grid(Box::cube(2, 0, state.range(0) - 1), ball);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_slots_for_deployment(d));
  }
}
BENCHMARK(bm_window_exact_optimum)->Arg(5)->Arg(7);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
