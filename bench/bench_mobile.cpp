// Conclusions: location-based scheduling for mobile sensors.
//
// Series: sensor-density sweep under random-waypoint mobility.  The
// paper's rule ("a sensor within the Voronoi region of p sends at
// slot(p) iff its interference range fits within the tile of p") must be
// collision-free at every density; mobile slotted ALOHA collides
// increasingly often.  The price of determinism is the gate: sends
// forgone when the range does not fit or the cell is contested.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mobile.hpp"
#include "core/planner.hpp"
#include "sim/mobile_sim.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

// The `mobile` backend owns the scheduler construction (tiling search,
// static-window verification, location rule); the bench only consumes
// PlanResult::mobile.
MobileScheduler make_scheduler() {
  static const Deployment reference =
      Deployment::grid(Box::centered(2, 4), shapes::chebyshev_ball(2, 1));
  PlanRequest request;
  request.deployment = &reference;
  const PlanResult plan =
      PlannerRegistry::global().find("mobile")->plan(request);
  if (!plan.ok || !plan.collision_free || plan.mobile == nullptr) {
    std::fprintf(stderr, "mobile backend failed: %s\n", plan.error.c_str());
    std::abort();
  }
  return *plan.mobile;
}

void report() {
  bench::section("Mobile sensors: location-based rule vs mobile ALOHA");
  Table t({"sensors", "protocol", "attempts", "collisions", "collision rate",
           "success/slot", "blocked by gate"});
  for (std::size_t sensors : {8u, 16u, 32u, 64u}) {
    MobileConfig cfg;
    cfg.sensors = sensors;
    cfg.arena = 16.0;
    cfg.slots = 4000;
    cfg.range = 0.35;
    cfg.speed = 0.07;
    cfg.aloha_p = 0.15;
    MobileSimulator sim(make_scheduler(), cfg);
    const MobileResult loc = sim.run_location_schedule();
    const MobileResult alo = sim.run_aloha();
    t.begin_row();
    t.cell(sensors);
    t.cell("location-slot");
    t.cell(loc.attempts);
    t.cell(loc.collisions);
    t.cell_percent(loc.collision_rate(), 2);
    t.cell(loc.utilization(), 3);
    t.cell(loc.gate_blocked);
    t.begin_row();
    t.cell(sensors);
    t.cell("mobile aloha");
    t.cell(alo.attempts);
    t.cell(alo.collisions);
    t.cell_percent(alo.collision_rate(), 2);
    t.cell(alo.utilization(), 3);
    t.cell(alo.gate_blocked);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: \"Clearly, this yields a collision-free schedule "
              "for mobile sensors.\"\nexpected shape: location-slot rule "
              "has 0 collisions at every density; ALOHA's\ncollision rate "
              "grows with density.\n");

  bench::section("Fit-gate geometry: admissible range vs position");
  const MobileScheduler sched = make_scheduler();
  Table g({"position in tile", "rho=0.2", "rho=0.6", "rho=1.2", "rho=2.0"});
  struct Probe {
    const char* label;
    double x, y;
  };
  // The origin's tile is a 3x3 block; probe its center and edge cells.
  const Covering cov =
      sched.schedule().tiling().covering(Point{0, 0});
  double cx = 0, cy = 0;
  for (const Point& n : sched.schedule().tiling().prototile(0).points()) {
    cx += static_cast<double>(cov.translate[0] + n[0]);
    cy += static_cast<double>(cov.translate[1] + n[1]);
  }
  cx /= 9.0;
  cy /= 9.0;
  const Probe probes[] = {{"tile center", cx, cy},
                          {"edge cell", cx + 1.0, cy},
                          {"corner cell", cx + 1.0, cy + 1.0}};
  for (const Probe& p : probes) {
    g.begin_row();
    g.cell(p.label);
    for (double rho : {0.2, 0.6, 1.2, 2.0}) {
      g.cell(sched.range_fits({p.x, p.y}, rho) ? "fits" : "-");
    }
  }
  std::printf("%s", g.to_string().c_str());
}

void bm_range_fits(benchmark::State& state) {
  const MobileScheduler sched = make_scheduler();
  double x = 0.0;
  for (auto _ : state) {
    x += 0.37;
    if (x > 40) x = 0;
    benchmark::DoNotOptimize(sched.range_fits({x, 0.6 * x}, 0.35));
  }
}
BENCHMARK(bm_range_fits);

void bm_slot_of_location(benchmark::State& state) {
  const MobileScheduler sched = make_scheduler();
  double x = 0.0;
  for (auto _ : state) {
    x += 0.53;
    if (x > 40) x = 0;
    benchmark::DoNotOptimize(sched.slot_of_location({x, 1.3 * x}));
  }
}
BENCHMARK(bm_slot_of_location);

void bm_mobile_sim(benchmark::State& state) {
  MobileConfig cfg;
  cfg.sensors = 32;
  cfg.slots = 500;
  MobileSimulator sim(make_scheduler(), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_location_schedule());
  }
}
BENCHMARK(bm_mobile_sim);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
