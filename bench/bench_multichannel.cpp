// Multi-channel extension: slots x frequencies.
//
// With c orthogonal channels the slot period shrinks to ceil(|N|/c)
// while staying collision-free and (pigeonhole-)optimal.  Series: period
// and saturated per-sensor throughput vs channel count for the three
// Figure-2 neighborhoods.  Expected shape: throughput grows linearly in
// c until c reaches |N| (period 1: everyone transmits every slot on a
// private-per-tile channel), then flattens.
#include <cstdio>

#include "bench_common.hpp"
#include "core/multichannel.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

void report() {
  bench::section("Multi-channel schedules for the Figure-2 neighborhoods");
  Table t({"neighborhood", "|N|", "channels", "slot period",
           "duty cycle", "optimal?", "collision-free"});
  for (const Prototile& shape :
       {shapes::chebyshev_ball(2, 1),
        shapes::euclidean_ball(Lattice::square(), 1.0),
        shapes::directional_antenna()}) {
    const TilingSchedule base(*decide_exactness(shape).tiling);
    const Deployment d = Deployment::grid(Box::centered(2, 6), shape);
    for (std::uint32_t c : {1u, 2u, 4u, 8u}) {
      const MultiChannelSchedule mc(base, c);
      const CollisionReport rep = check_collision_free_multichannel(
          d, assign_multichannel(mc, d));
      t.begin_row();
      t.cell(shape.name());
      t.cell(shape.size());
      t.cell(c);
      t.cell(mc.period());
      t.cell(1.0 / static_cast<double>(mc.period()), 4);
      t.cell(mc.optimal() ? "yes" : "no");
      t.cell(rep.collision_free ? "yes" : "NO");
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nduty cycle = 1/period grows ~linearly with the channel "
              "count until saturating at 1\n(period can never go below "
              "1); optimality is by the pigeonhole bound "
              "ceil(|N1|/c).\n");
}

void bm_multichannel_assignment(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule base(*decide_exactness(ball).tiling);
  const MultiChannelSchedule mc(
      base, static_cast<std::uint32_t>(state.range(0)));
  std::int64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(
        mc.assignment_of(Point{i % 64, (i * 5) % 64}));
  }
}
BENCHMARK(bm_multichannel_assignment)->Arg(1)->Arg(4);

void bm_multichannel_check(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule base(*decide_exactness(ball).tiling);
  const MultiChannelSchedule mc(base, 3);
  const Deployment d = Deployment::grid(Box::centered(2, 8), ball);
  const MultiChannelSlots slots = assign_multichannel(mc, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_collision_free_multichannel(d, slots));
  }
}
BENCHMARK(bm_multichannel_check);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
