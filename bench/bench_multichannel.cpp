// Multi-channel extension: slots x frequencies.
//
// With c orthogonal channels the slot period shrinks to ceil(|N|/c)
// while staying collision-free and (pigeonhole-)optimal.  Series: period
// and duty cycle vs channel count for the three Figure-2 neighborhoods.
// Expected shape: duty cycle grows linearly in c until c reaches |N|
// (period 1: everyone transmits every slot on a private-per-tile
// channel), then flattens.
//
// Channels are planner currency: every row comes from the planner
// pipeline with request.channels = c (PlanResult::channel_slots carries
// the per-sensor (slot, channel) assignment, and the collision verdict
// covers it) — nothing here builds channel assignments by hand.  One
// TilingCache serves the whole sweep, so the torus search per
// neighborhood runs once, not once per channel count.
#include <cstdio>

#include "bench_common.hpp"
#include "core/multichannel.hpp"
#include "core/planner.hpp"
#include "core/tiling_cache.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

void report() {
  bench::section("Multi-channel schedules for the Figure-2 neighborhoods");
  TilingCache cache;
  Table t({"neighborhood", "|N|", "channels", "slot period",
           "duty cycle", "optimal?", "collision-free"});
  for (const Prototile& shape :
       {shapes::chebyshev_ball(2, 1),
        shapes::euclidean_ball(Lattice::square(), 1.0),
        shapes::directional_antenna()}) {
    const Deployment d = Deployment::grid(Box::centered(2, 6), shape);
    for (std::uint32_t c : {1u, 2u, 4u, 8u}) {
      PlanRequest request;
      request.deployment = &d;
      request.channels = c;
      request.tiling_cache = &cache;
      const PlanResult r =
          PlannerRegistry::global().find("tiling")->plan(request);
      t.begin_row();
      t.cell(shape.name());
      t.cell(shape.size());
      t.cell(c);
      t.cell(r.ok ? r.effective_period() : 0);
      t.cell(r.duty_cycle, 4);
      t.cell(r.ok && r.optimality_gap == 1.0 ? "yes" : "no");
      t.cell(r.collision_free ? "yes" : "NO");
    }
  }
  std::printf("%s", t.to_string().c_str());
  const TilingCache::Stats stats = cache.stats();
  std::printf("\nduty cycle = 1/period grows ~linearly with the channel "
              "count until saturating at 1\n(period can never go below "
              "1); optimality is by the pigeonhole bound "
              "ceil(|N1|/c).\ntiling cache over the sweep: %llu hits, "
              "%llu misses (one search per neighborhood)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
}

PlanResult plan_multichannel(const Deployment& d, std::uint32_t channels,
                             TilingCache* cache) {
  PlanRequest request;
  request.deployment = &d;
  request.channels = channels;
  request.tiling_cache = cache;
  request.verify = false;
  return PlannerRegistry::global().find("tiling")->plan(request);
}

void bm_multichannel_fold(benchmark::State& state) {
  TilingCache cache;
  const Deployment d = Deployment::grid(Box::centered(2, 8),
                                        shapes::chebyshev_ball(2, 1));
  const PlanResult base = plan_multichannel(d, 1, &cache);
  const auto channels = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fold_channels(base.slots, channels));
  }
}
BENCHMARK(bm_multichannel_fold)->Arg(1)->Arg(4);

void bm_multichannel_check(benchmark::State& state) {
  TilingCache cache;
  const Deployment d = Deployment::grid(Box::centered(2, 8),
                                        shapes::chebyshev_ball(2, 1));
  const PlanResult r = plan_multichannel(d, 3, &cache);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_collision_free_multichannel(d, *r.channel_slots));
  }
}
BENCHMARK(bm_multichannel_check);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
