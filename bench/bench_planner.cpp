// Batch planning service benchmarks — the BENCH_planner.json trajectory.
//
// The report section measures the production workload shape: a batch
// over the FULL scenario registry plus a radius sweep, cold (empty
// TilingCache — every distinct neighborhood pays its torus search) and
// warm (same service, second identical batch — every search hits the
// cache).  Headline numbers: batch throughput (scenarios/s), the
// warm-vs-cold speedup, and the cache hit rate, all recorded in
// machine-readable BENCH_planner.json (path override:
// LATTICESCHED_BENCH_PLANNER_JSON) and uploaded as a CI artifact.
#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/plan_service.hpp"
#include "core/scenario.hpp"
#include "core/tiling_cache.hpp"
#include "tiling/shapes.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

struct PlannerRecord {
  std::string name;
  double ms = 0.0;              // wall time of the measured batch
  double items_per_second = 0.0;
  double speedup = 0.0;         // vs the paired cold baseline
  double cache_hit_rate = 0.0;  // hits / (hits + misses) of the run
};

std::vector<PlannerRecord>& records() {
  static std::vector<PlannerRecord> r;
  return r;
}

void write_bench_json() {
  const char* env = std::getenv("LATTICESCHED_BENCH_PLANNER_JSON");
  const std::string path = env != nullptr ? env : "BENCH_planner.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"benchmarks\": [\n";
  const auto& rs = records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ms\": %.3f, "
                  "\"items_per_second\": %.1f, \"speedup\": %.2f, "
                  "\"cache_hit_rate\": %.3f}%s\n",
                  rs[i].name.c_str(), rs[i].ms, rs[i].items_per_second,
                  rs[i].speedup, rs[i].cache_hit_rate,
                  i + 1 < rs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu benchmark records to %s\n", rs.size(),
              path.c_str());
}

/// The benchmark workload: every registry scenario plus a grid radius
/// sweep — 11 items, 9 distinct torus-search keys.  Verification is off
/// so the cold-vs-warm delta isolates what the cache can save (the
/// collision checker is uncached by design and measured separately by
/// the all-backends batch below).
std::vector<BatchItem> sweep_items(const PlanService& service) {
  ScenarioParams params;
  params.n = 10;
  std::vector<BatchItem> items = service.registry_batch(params, {"tiling"});
  for (const ScenarioQuery& q : radius_sweep("grid", params, {2, 3, 4})) {
    BatchItem item;
    item.query = q;
    item.backends = {"tiling"};
    items.push_back(std::move(item));
  }
  for (BatchItem& item : items) item.verify = false;
  return items;
}

void report() {
  bench::section("Batch planning service: cold vs warm registry sweeps");

  PlanService service;
  const std::vector<BatchItem> items = sweep_items(service);

  const BatchReport cold = service.run(items);
  const double cold_s = cold.wall_seconds;
  const double cold_rate =
      static_cast<double>(cold.cache_hits) /
      std::max<double>(1.0, static_cast<double>(cold.cache_hits +
                                                cold.cache_misses));
  if (!cold.all_ok()) std::printf("  WARNING: cold batch had failures\n");

  // Warm: best of three identical batches against the now-hot cache.
  double warm_s = 1e300;
  BatchReport warm;
  for (int rep = 0; rep < 3; ++rep) {
    warm = service.run(items);
    warm_s = std::min(warm_s, warm.wall_seconds);
  }
  const double warm_rate =
      static_cast<double>(warm.cache_hits) /
      std::max<double>(1.0, static_cast<double>(warm.cache_hits +
                                                warm.cache_misses));

  const double n = static_cast<double>(items.size());
  std::printf(
      "batch of %.0f scenarios (tiling backend, full registry + radius "
      "sweep):\n  cold %.2fms (%.0f scenarios/s, cache hit rate %.2f)\n"
      "  warm %.2fms (%.0f scenarios/s, cache hit rate %.2f)\n"
      "  warm-vs-cold speedup %.1fx (acceptance target >= 5x)\n",
      n, cold_s * 1e3, n / cold_s, cold_rate, warm_s * 1e3, n / warm_s,
      warm_rate, cold_s / warm_s);
  if (warm.cache_misses != 0) {
    std::printf("  WARNING: warm batch missed the cache %llu time(s)\n",
                static_cast<unsigned long long>(warm.cache_misses));
  }
  records().push_back(
      {"batch_registry_cold", cold_s * 1e3, n / cold_s, 0.0, cold_rate});
  records().push_back({"batch_registry_warm", warm_s * 1e3, n / warm_s,
                       cold_s / warm_s, warm_rate});

  // Full-backend batch (the driver's --scenario all): planner fan-out
  // plus verification on every scenario, warm cache.
  {
    ScenarioParams params;
    params.n = 10;
    const std::vector<BatchItem> all = service.registry_batch(params);
    const BatchReport rep = service.run(all);
    const double items_n = static_cast<double>(all.size());
    std::printf(
        "batch of %.0f scenarios (ALL backends + verification, warm "
        "cache): %.1fms (%.0f scenarios/s)\n",
        items_n, rep.wall_seconds * 1e3, items_n / rep.wall_seconds);
    records().push_back({"batch_registry_all_backends",
                         rep.wall_seconds * 1e3,
                         items_n / rep.wall_seconds, 0.0,
                         static_cast<double>(rep.cache_hits) /
                             std::max<double>(
                                 1.0, static_cast<double>(
                                          rep.cache_hits +
                                          rep.cache_misses))});
  }

  write_bench_json();
}

void BM_BatchRegistryCold(benchmark::State& state) {
  for (auto _ : state) {
    PlanService service;  // fresh cache: every search is cold
    benchmark::DoNotOptimize(service.run(sweep_items(service)));
  }
}
BENCHMARK(BM_BatchRegistryCold);

void BM_BatchRegistryWarm(benchmark::State& state) {
  static PlanService* service = new PlanService();
  static const std::vector<BatchItem> items = sweep_items(*service);
  (void)service->run(items);  // prime the cache outside the timing loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->run(items));
  }
}
BENCHMARK(BM_BatchRegistryWarm);

void BM_TilingCacheHit(benchmark::State& state) {
  TilingCache cache;
  const std::vector<Prototile> prototiles = {shapes::chebyshev_ball(2, 2)};
  (void)cache.find_or_search(prototiles);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find_or_search(prototiles));
  }
}
BENCHMARK(BM_TilingCacheHit);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
