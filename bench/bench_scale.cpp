// Million-sensor scale benchmarks — the BENCH_scale.json trajectory.
//
// The report section measures what spatial region sharding
// (core/region_shard.hpp) buys at deployment sizes where the
// materialized all-pairs conflict graph stops being an option:
//
//  1. region x thread sweep on a mid-size grid: the region-greedy
//     backend (streaming per-region conflict blocks + seam stitch)
//     against the unsharded greedy backend (full conflict graph), at
//     1 thread and at the pool default.  Acceptance target: >= 2x at
//     >= 4 regions on multicore.  On a 1-vCPU container the region
//     path has no parallelism to exploit and the sweep reads ~1x —
//     expected, and why the records carry a `threads` column.
//  2. stitch-cost sweep: seam sensors and stitch recolors as a function
//     of region count at fixed fleet size (finer partitions = more
//     seam, cheaper blocks).
//  3. the headline: a 1,000,000-sensor grid planned end-to-end by the
//     region path, with the peak-RSS column recording the memory
//     ceiling the run actually hit.
//
// Records land in BENCH_scale.json (path override:
// LATTICESCHED_BENCH_SCALE_JSON) and upload as a CI artifact.
// Verification is off throughout: the checker is identical on both
// sides and would only blur the planning cost under measurement.
#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/region_shard.hpp"
#include "core/scenario.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

struct ScaleRecord {
  std::string name;
  std::size_t sensors = 0;
  std::size_t regions = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 0.0;  // unsharded wall / this wall (0 = no baseline)
  std::uint64_t seam_sensors = 0;
  std::uint64_t stitch_recolored = 0;
  double peak_rss_mb = 0.0;
  /// Knob-sweep provenance (tune::KnobSpace names): set on records that
  /// measure one knob setting, so tooling can join sweeps against the
  /// registry without parsing record names.
  std::string knob;
  double value = 0.0;
};

std::vector<ScaleRecord>& records() {
  static std::vector<ScaleRecord> r;
  return r;
}

void write_bench_json() {
  const char* env = std::getenv("LATTICESCHED_BENCH_SCALE_JSON");
  const std::string path = env != nullptr ? env : "BENCH_scale.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"benchmarks\": [\n";
  const auto& rs = records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    char buf[640];
    std::string knob_fields;
    if (!rs[i].knob.empty()) {
      char kb[128];
      std::snprintf(kb, sizeof kb, ", \"knob\": \"%s\", \"value\": %g",
                    rs[i].knob.c_str(), rs[i].value);
      knob_fields = kb;
    }
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"sensors\": %zu, \"regions\": %zu, "
        "\"threads\": %zu, \"wall_ms\": %.3f, \"speedup\": %.2f, "
        "\"seam_sensors\": %llu, \"stitch_recolored\": %llu, "
        "\"peak_rss_mb\": %.1f%s}%s\n",
        rs[i].name.c_str(), rs[i].sensors, rs[i].regions, rs[i].threads,
        rs[i].wall_ms, rs[i].speedup,
        static_cast<unsigned long long>(rs[i].seam_sensors),
        static_cast<unsigned long long>(rs[i].stitch_recolored),
        rs[i].peak_rss_mb, knob_fields.c_str(), i + 1 < rs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu benchmark records to %s\n", rs.size(),
              path.c_str());
}

Deployment large_grid(std::int64_t sensors) {
  ScenarioParams params;
  params.n = sensors;
  return ScenarioRegistry::global().build("grid-large", params).deployment;
}

/// Min wall over `reps` region plans; the last rep's stats stick.
double region_ms(const Deployment& d, std::size_t regions, int reps,
                 RegionShardStats* stats) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    if (stats != nullptr) *stats = RegionShardStats{};
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(plan_regions(d, regions, -1, nullptr, stats));
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - t0).count() * 1e3);
  }
  return best;
}

/// Min wall over `reps` unsharded plans (full conflict graph + greedy
/// first-fit) — the baseline the sharded sweep is judged against.
double unsharded_ms(const Deployment& d, int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const Clock::time_point t0 = Clock::now();
    const Graph g = build_conflict_graph(d);
    benchmark::DoNotOptimize(greedy_coloring(g));
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - t0).count() * 1e3);
  }
  return best;
}

void report() {
  bench::section("region sharding vs unsharded greedy (region x threads)");

  const std::size_t pool_threads = parallel_threads();
  const std::int64_t kSweepSensors = 20000;
  const Deployment sweep = large_grid(kSweepSensors);
  const int reps = 3;

  for (const std::size_t threads :
       std::vector<std::size_t>{1, pool_threads}) {
    set_parallel_threads(threads);
    const double baseline = unsharded_ms(sweep, reps);
    ScaleRecord base;
    base.name = "unsharded_greedy_t" + std::to_string(threads);
    base.sensors = sweep.size();
    base.regions = 1;
    base.threads = threads;
    base.wall_ms = baseline;
    base.speedup = 1.0;
    base.peak_rss_mb = bench::peak_rss_mb();
    records().push_back(base);
    std::printf("threads=%zu unsharded (full graph): %.2fms\n", threads,
                baseline);
    for (const std::size_t regions : {1, 4, 16}) {
      RegionShardStats stats;
      const double ms = region_ms(sweep, regions, reps, &stats);
      ScaleRecord rec;
      rec.name = "region_greedy_r" + std::to_string(regions) + "_t" +
                 std::to_string(threads);
      rec.sensors = sweep.size();
      rec.regions = regions;
      rec.threads = threads;
      rec.wall_ms = ms;
      rec.speedup = baseline / ms;
      rec.seam_sensors = stats.seam_sensors;
      rec.stitch_recolored = stats.stitch_recolored;
      rec.peak_rss_mb = bench::peak_rss_mb();
      rec.knob = "regions";
      rec.value = static_cast<double>(regions);
      records().push_back(rec);
      std::printf(
          "threads=%zu regions=%zu: %.2fms (%.2fx vs unsharded), %llu "
          "seam sensor(s), %llu recolor(s)\n",
          threads, regions, ms, rec.speedup,
          static_cast<unsigned long long>(stats.seam_sensors),
          static_cast<unsigned long long>(stats.stitch_recolored));
    }
    if (pool_threads == 1) break;  // both sweep points are the same
  }
  set_parallel_threads(pool_threads);

  bench::section("stitch cost vs region count (fixed fleet)");
  for (const std::size_t regions : {4, 16, 64}) {
    RegionShardStats stats;
    const double ms = region_ms(sweep, regions, 1, &stats);
    std::printf(
        "regions=%zu: %.2fms, seam %llu / %zu sensors (%.1f%%), %llu "
        "stitch recolor(s)\n",
        regions, ms, static_cast<unsigned long long>(stats.seam_sensors),
        sweep.size(),
        100.0 * static_cast<double>(stats.seam_sensors) /
            static_cast<double>(sweep.size()),
        static_cast<unsigned long long>(stats.stitch_recolored));
  }

  bench::section("million-sensor grid (region path, bounded memory)");
  {
    const Deployment million = large_grid(1000000);
    RegionShardStats stats;
    const Clock::time_point t0 = Clock::now();
    const Coloring colors = plan_regions(million, 64, -1, nullptr, &stats);
    const double ms =
        std::chrono::duration<double>(Clock::now() - t0).count() * 1e3;
    std::uint32_t period = 0;
    for (std::uint32_t c : colors) period = std::max(period, c + 1);
    ScaleRecord rec;
    rec.name = "million_sensor_grid_r64";
    rec.sensors = million.size();
    rec.regions = 64;
    rec.threads = pool_threads;
    rec.wall_ms = ms;
    rec.seam_sensors = stats.seam_sensors;
    rec.stitch_recolored = stats.stitch_recolored;
    rec.peak_rss_mb = bench::peak_rss_mb();
    records().push_back(rec);
    std::printf(
        "1,000,000 sensors, 64 regions: %.0fms, period %u, %llu seam "
        "sensor(s), peak RSS %.1f MiB\n",
        ms, period, static_cast<unsigned long long>(stats.seam_sensors),
        rec.peak_rss_mb);
  }

  write_bench_json();
}

void BM_RegionPlan20k(benchmark::State& state) {
  static const Deployment* d = new Deployment(large_grid(20000));
  const auto regions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_regions(*d, regions, -1, nullptr, nullptr));
  }
}
BENCHMARK(BM_RegionPlan20k)->Arg(1)->Arg(4)->Arg(16);

void BM_ConflictBlock(benchmark::State& state) {
  static const Deployment* d = new Deployment(large_grid(20000));
  static const RegionGrid* grid = new RegionGrid(partition_regions(*d, 16, -1));
  for (auto _ : state) {
    for (const auto& members : grid->members) {
      benchmark::DoNotOptimize(build_conflict_block(*d, members));
    }
  }
}
BENCHMARK(BM_ConflictBlock);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
