// Planning-server latency benchmarks — the BENCH_serve.json
// trajectory.
//
// The report section measures the REPLAN round-trip on warm server
// sessions (session open, first replan done, every later replan
// preceded by one delta so the work is real, not a memo hit) at 1, 8
// and 64 concurrent sessions, against the in-process floor: a local
// PlanSession driven through the identical delta/replan cycle with no
// wire in the way.  Records land in machine-readable BENCH_serve.json
// (path override: LATTICESCHED_BENCH_SERVE_JSON; CI artifact):
//
//   inprocess baseline   PlanSession::replan() after apply() — the
//                        compute floor a remote session cannot beat
//   serve 1 session      one client, one warm session: wire + framing
//                        overhead over the floor
//   serve 8 sessions     the acceptance-bar concurrency: 8 clients
//                        replanning simultaneously over the shared
//                        fork-join pool and TilingCache
//   serve 64 sessions    oversubscribed: more sessions than cores,
//                        queueing shows up in the p99
//
// Latencies are client-observed wall times per replan; p50/p99 come
// from SampleSet (exact nearest-rank over every sample).
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_service.hpp"
#include "core/plan_session.hpp"
#include "core/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace latticesched {
namespace {

/// Delta/replan cycles measured per session (after the warming replan).
constexpr int kCyclesPerSession = 25;

struct ServeRecord {
  std::string name;
  std::uint64_t sessions = 0;
  std::uint64_t replans = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

std::vector<ServeRecord>& records() {
  static std::vector<ServeRecord> r;
  return r;
}

void write_bench_json() {
  const char* env = std::getenv("LATTICESCHED_BENCH_SERVE_JSON");
  const std::string path = env != nullptr ? env : "BENCH_serve.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"benchmarks\": [\n";
  const auto& rs = records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"sessions\": %llu, "
                  "\"replans\": %llu, \"p50_ms\": %.4f, \"p99_ms\": "
                  "%.4f, \"mean_ms\": %.4f}%s\n",
                  rs[i].name.c_str(),
                  static_cast<unsigned long long>(rs[i].sessions),
                  static_cast<unsigned long long>(rs[i].replans),
                  rs[i].p50_ms, rs[i].p99_ms, rs[i].mean_ms,
                  i + 1 < rs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu benchmark records to %s\n", rs.size(),
              path.c_str());
}

/// The session workload: a static grid, greedy backend, verification
/// off — small enough that the wire overhead is visible next to the
/// planning work instead of drowned by it.
BatchItem warm_item() {
  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 12;
  item.backends = {"greedy"};
  item.verify = false;
  return item;
}

/// Cycle `i`'s mutation: sensor (0, 0) oscillates out of and back into
/// the fleet, so every replan follows a real graph patch.  The server
/// shifts `step 1` past the session's last step, so the same script
/// works every cycle.
std::string cycle_script(int i) {
  return i % 2 == 0 ? std::string("step 1\nremove 0 0\n")
                    : std::string("step 1\nadd 0 0 r 1\n");
}

ServeRecord summarize(const std::string& name, std::uint64_t sessions,
                      const SampleSet& lat) {
  ServeRecord rec;
  rec.name = name;
  rec.sessions = sessions;
  rec.replans = lat.count();
  rec.p50_ms = lat.percentile(50.0);
  rec.p99_ms = lat.percentile(99.0);
  rec.mean_ms = lat.mean();
  std::printf("%-22s %4llu replan(s): p50 %8.3fms  p99 %8.3fms  mean "
              "%8.3fms\n",
              name.c_str(), static_cast<unsigned long long>(rec.replans),
              rec.p50_ms, rec.p99_ms, rec.mean_ms);
  return rec;
}

/// The in-process floor: the same grid, the same oscillating delta,
/// PlanSession::replan() timed directly.
ServeRecord inprocess_baseline() {
  const BatchItem item = warm_item();
  const ScenarioInstance inst = ScenarioRegistry::global().build(
      item.query.scenario, item.query.params);
  SessionConfig config;
  config.backends = item.backends;
  config.verify = item.verify;
  config.channels = inst.channels;
  PlanSession session(inst.deployment, config);
  (void)session.replan();  // warm, like the remote sessions
  SampleSet lat;
  for (int i = 0; i < kCyclesPerSession; ++i) {
    const MutationTrace trace = parse_mutation_script(cycle_script(i));
    session.apply(trace.steps.front().delta);
    const auto t0 = std::chrono::steady_clock::now();
    (void)session.replan();
    lat.add(std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
  }
  return summarize("inprocess_baseline", 1, lat);
}

/// `sessions` clients, one warm session each, replanning concurrently
/// against one PlanServer.  Latency is the client-observed REPLAN
/// round-trip.
ServeRecord serve_level(serve::PlanServer& server, std::uint64_t sessions) {
  SampleSet lat;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::uint64_t c = 0; c < sessions; ++c) {
    threads.emplace_back([&server, &lat, &mu] {
      serve::ClientConfig config;
      config.port = server.port();
      serve::PlanClient client(config);
      const serve::OpenInfo info = client.open(warm_item());
      (void)client.replan(info.session);  // warm
      std::vector<double> samples;
      samples.reserve(kCyclesPerSession);
      for (int i = 0; i < kCyclesPerSession; ++i) {
        (void)client.delta_script(info.session, cycle_script(i));
        const auto t0 = std::chrono::steady_clock::now();
        (void)client.replan(info.session);
        samples.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
      }
      (void)client.close_session(info.session);
      std::lock_guard<std::mutex> lock(mu);
      for (double s : samples) lat.add(s);
    });
  }
  for (std::thread& t : threads) t.join();
  return records().emplace_back(summarize(
      "serve_" + std::to_string(sessions) + "_sessions", sessions, lat));
}

void report() {
  bench::section(
      "Planning server: warm-session REPLAN latency, 1/8/64 concurrent "
      "sessions vs the in-process floor");

  records().push_back(inprocess_baseline());

  serve::PlanServer server{serve::ServerConfig{}};
  server.start();
  for (const std::uint64_t sessions :
       {std::uint64_t{1}, std::uint64_t{8}, std::uint64_t{64}}) {
    (void)serve_level(server, sessions);
  }
  const serve::PlanServer::Stats stats = server.stats();
  std::printf("server totals: %llu session(s) opened, %llu closed, %llu "
              "still open\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.sessions_closed),
              static_cast<unsigned long long>(stats.open_sessions));
  server.stop();

  write_bench_json();
}

void BM_ServeReplanRoundtrip(benchmark::State& state) {
  // One warm session over loopback; each iteration is one delta + one
  // replan round-trip, the steady-state unit of a long-lived client.
  static serve::PlanServer* server = [] {
    auto* s = new serve::PlanServer{serve::ServerConfig{}};
    s->start();
    return s;
  }();
  serve::ClientConfig config;
  config.port = server->port();
  serve::PlanClient client(config);
  const serve::OpenInfo info = client.open(warm_item());
  (void)client.replan(info.session);
  int i = 0;
  for (auto _ : state) {
    (void)client.delta_script(info.session, cycle_script(i++));
    benchmark::DoNotOptimize(client.replan(info.session));
  }
  (void)client.close_session(info.session);
}
BENCHMARK(BM_ServeReplanRoundtrip);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
