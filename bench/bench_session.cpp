// PlanSession benchmarks — the BENCH_session.json trajectory.
//
// The report section measures the session API's reason to exist:
// replanning after a SMALL deployment delta (one sensor dies) must be
// far cheaper than a cold plan of the same deployment, because the
// session reuses the memoized torus search, patches the conflict graph
// instead of rebuilding it, and warm-starts the greedy coloring.
// Headline number: incremental-vs-cold speedup on small-delta steps of
// the warm grid scenario (acceptance target >= 5x), recorded in
// machine-readable BENCH_session.json (path override:
// LATTICESCHED_BENCH_SESSION_JSON) and uploaded as a CI artifact.
//
// Verification is off throughout: the collision checker is
// delta-independent and identical on both sides, so including it would
// only blur what the session can and cannot save.
#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/plan_session.hpp"
#include "core/scenario.hpp"
#include "tiling/shapes.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

struct SessionRecord {
  std::string name;
  double cold_ms = 0.0;         // cold plan of the mutated deployment
  double incremental_ms = 0.0;  // session replan after the delta
  double speedup = 0.0;
  /// Knob-sweep provenance (tune::KnobSpace names): set on records that
  /// measure one knob setting, so tooling can join sweeps against the
  /// registry without parsing record names.
  std::string knob;
  double value = 0.0;
};

std::vector<SessionRecord>& records() {
  static std::vector<SessionRecord> r;
  return r;
}

void write_bench_json() {
  const char* env = std::getenv("LATTICESCHED_BENCH_SESSION_JSON");
  const std::string path = env != nullptr ? env : "BENCH_session.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"benchmarks\": [\n";
  const auto& rs = records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    char buf[384];
    std::string knob_fields;
    if (!rs[i].knob.empty()) {
      char kb[128];
      std::snprintf(kb, sizeof kb, ", \"knob\": \"%s\", \"value\": %g",
                    rs[i].knob.c_str(), rs[i].value);
      knob_fields = kb;
    }
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"cold_ms\": %.3f, "
                  "\"incremental_ms\": %.3f, \"speedup\": %.2f%s}%s\n",
                  rs[i].name.c_str(), rs[i].cold_ms, rs[i].incremental_ms,
                  rs[i].speedup, knob_fields.c_str(),
                  i + 1 < rs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu benchmark records to %s\n", rs.size(),
              path.c_str());
}

Deployment grid_deployment(std::int64_t n, std::int64_t r) {
  return Deployment::grid(Box::cube(2, 0, n - 1),
                          shapes::chebyshev_ball(2, r));
}

/// Cold plan of the session's current deployment: fresh plan_all,
/// fresh scoped cache, fresh conflict graph.
double cold_seconds(const PlanSession& session,
                    const std::vector<std::string>& backends) {
  PlanRequest request;
  request.deployment = &session.deployment();
  request.channels = session.channels();
  request.verify = false;
  const Clock::time_point t0 = Clock::now();
  benchmark::DoNotOptimize(
      PlannerRegistry::global().plan_all(request, backends));
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Applies `delta_for(step)` + replan for `steps` rounds, returning the
/// best (min) incremental and cold wall times over the rounds.
template <typename DeltaFor>
SessionRecord measure(const std::string& name, PlanSession& session,
                      const std::vector<std::string>& backends, int steps,
                      DeltaFor&& delta_for) {
  (void)session.replan();  // warm: search memoized, graph built, colors set
  SessionRecord record;
  record.name = name;
  record.cold_ms = 1e300;
  record.incremental_ms = 1e300;
  for (int step = 0; step < steps; ++step) {
    session.apply(delta_for(step));
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(session.replan());
    record.incremental_ms = std::min(
        record.incremental_ms,
        std::chrono::duration<double>(Clock::now() - t0).count() * 1e3);
    record.cold_ms =
        std::min(record.cold_ms, cold_seconds(session, backends) * 1e3);
  }
  record.speedup = record.cold_ms / record.incremental_ms;
  return record;
}

void report() {
  bench::section(
      "PlanSession: incremental replan vs cold plan after small deltas");

  const std::vector<std::string> backends = {"tiling", "greedy"};

  // The acceptance workload: warm grid (n=16, r=2), one sensor dies per
  // step.
  {
    SessionConfig config;
    config.backends = backends;
    config.verify = false;
    PlanSession session(grid_deployment(16, 2), config);
    const SessionRecord record = measure(
        "grid_small_delta_remove", session, backends, 5, [&](int step) {
          DeploymentDelta delta;
          delta.remove_sensors = {session.deployment().position(
              static_cast<std::size_t>(11 + 13 * step))};
          return delta;
        });
    std::printf(
        "grid(n=16 r=2), remove 1 sensor/step:\n  cold %.2fms vs "
        "incremental %.3fms -> %.1fx (acceptance target >= 5x)\n",
        record.cold_ms, record.incremental_ms, record.speedup);
    records().push_back(record);
    const PlanSession::Stats& stats = session.stats();
    std::printf(
        "  session stats: %llu replans, %llu graph build(s), %llu "
        "patch(es), %llu warm greedy\n",
        static_cast<unsigned long long>(stats.replans),
        static_cast<unsigned long long>(stats.graph_builds),
        static_cast<unsigned long long>(stats.graph_patches),
        static_cast<unsigned long long>(stats.warm_greedy));
  }

  // Joins instead of failures.
  {
    SessionConfig config;
    config.backends = backends;
    config.verify = false;
    PlanSession session(grid_deployment(16, 2), config);
    const SessionRecord record = measure(
        "grid_small_delta_add", session, backends, 5, [](int step) {
          DeploymentDelta delta;
          delta.add_sensors.push_back(DeploymentDelta::SensorAdd{
              Point{16, static_cast<std::int64_t>(step)}, std::nullopt});
          return delta;
        });
    std::printf(
        "grid(n=16 r=2), add 1 sensor/step:\n  cold %.2fms vs "
        "incremental %.3fms -> %.1fx\n",
        record.cold_ms, record.incremental_ms, record.speedup);
    records().push_back(record);
  }

  // A full dynamic-scenario trace end to end (the driver's
  // --scenario grid-failures --steps 5 path), total wall per mode.
  {
    ScenarioParams params;
    params.n = 12;
    params.steps = 5;
    ScenarioInstance instance =
        ScenarioRegistry::global().build("grid-failures", params);
    SessionConfig config;
    config.backends = backends;
    config.verify = false;
    PlanSession session(std::move(instance.deployment), config);
    const Clock::time_point t0 = Clock::now();
    (void)session.replan();
    for (const MutationStep& step : instance.trace.steps) {
      session.apply(step.delta);
      benchmark::DoNotOptimize(session.replan());
    }
    const double session_ms =
        std::chrono::duration<double>(Clock::now() - t0).count() * 1e3;

    // The pre-session alternative: a cold plan per step.
    ScenarioInstance cold_instance =
        ScenarioRegistry::global().build("grid-failures", params);
    SessionConfig cold_config;
    cold_config.backends = backends;
    cold_config.verify = false;
    PlanSession replay(std::move(cold_instance.deployment), cold_config);
    const Clock::time_point t1 = Clock::now();
    double cold_total = cold_seconds(replay, backends) * 1e3;
    for (const MutationStep& step : cold_instance.trace.steps) {
      replay.apply(step.delta);
      cold_total += cold_seconds(replay, backends) * 1e3;
    }
    (void)t1;
    SessionRecord record;
    record.name = "grid_failures_trace_steps5";
    record.cold_ms = cold_total;
    record.incremental_ms = session_ms;
    record.speedup = cold_total / session_ms;
    std::printf(
        "grid-failures(n=12 steps=5) full trace:\n  per-step cold "
        "%.2fms vs session %.2fms -> %.1fx\n",
        record.cold_ms, record.incremental_ms, record.speedup);
    records().push_back(record);
  }

  // Graph-patch threshold sweep: the same medium-sized delta (an 8-sensor
  // outage) replanned under different
  // SessionConfig::graph_patch_dirty_denominator settings.  0 = always
  // rebuild (the baseline the knob is judged against); the default
  // kGraphPatchDirtyDenominator = 4 patches anything up to a quarter of
  // the fleet.  This is the measurement behind the default.
  {
    bench::section("graph-patch threshold sweep (denominator knob)");
    const std::size_t denominators[] = {0, 1, kGraphPatchDirtyDenominator, 16};
    double rebuild_ms = 0.0;  // denominator 0 baseline
    for (const std::size_t denom : denominators) {
      SessionConfig config;
      config.backends = backends;
      config.verify = false;
      config.graph_patch_dirty_denominator = denom;
      PlanSession session(grid_deployment(16, 2), config);
      const SessionRecord timed = measure(
          std::string("grid_patch_denominator_") + std::to_string(denom),
          session, backends, 5, [&](int step) {
            DeploymentDelta delta;
            for (int j = 0; j < 8; ++j) {
              delta.remove_sensors.push_back(session.deployment().position(
                  static_cast<std::size_t>(3 + 17 * step + 2 * j)));
            }
            return delta;
          });
      SessionRecord record = timed;
      record.knob = "graph_patch_dirty_denominator";
      record.value = static_cast<double>(denom);
      if (denom == 0) rebuild_ms = timed.incremental_ms;
      // For the sweep the interesting ratio is vs the always-rebuild
      // mode, not vs a cold plan.
      record.cold_ms = rebuild_ms;
      record.speedup =
          record.incremental_ms > 0.0 && rebuild_ms > 0.0
              ? rebuild_ms / record.incremental_ms
              : 0.0;
      const PlanSession::Stats& stats = session.stats();
      std::printf(
          "denominator %zu: replan %.3fms (%.2fx vs rebuild), %llu "
          "build(s), %llu patch(es)\n",
          denom, record.incremental_ms, record.speedup,
          static_cast<unsigned long long>(stats.graph_builds),
          static_cast<unsigned long long>(stats.graph_patches));
      records().push_back(record);
    }
  }

  write_bench_json();
}

void BM_SessionIncrementalReplan(benchmark::State& state) {
  SessionConfig config;
  config.backends = {"tiling", "greedy"};
  config.verify = false;
  static PlanSession* session =
      new PlanSession(grid_deployment(16, 2), config);
  (void)session->replan();
  bool flip = false;
  for (auto _ : state) {
    // Oscillate one sensor between two spare cells: a steady stream of
    // 1-sensor deltas against a warm session.
    DeploymentDelta delta;
    delta.move_sensors.push_back(DeploymentDelta::SensorMove{
        session->deployment().position(7),
        Point{16, flip ? std::int64_t{8} : std::int64_t{9}}});
    flip = !flip;
    session->apply(delta);
    benchmark::DoNotOptimize(session->replan());
  }
}
BENCHMARK(BM_SessionIncrementalReplan);

void BM_ColdPlanSameDeployment(benchmark::State& state) {
  const Deployment d = grid_deployment(16, 2);
  for (auto _ : state) {
    PlanRequest request;
    request.deployment = &d;
    request.verify = false;
    benchmark::DoNotOptimize(
        PlannerRegistry::global().plan_all(request, {"tiling", "greedy"}));
  }
}
BENCHMARK(BM_ColdPlanSameDeployment);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
