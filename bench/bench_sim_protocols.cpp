// Systems evaluation the paper gestures at: deterministic tiling schedule
// vs TDMA vs the probabilistic MACs "most communication protocols" use.
//
// Two series on a 12x12 Chebyshev-ball network:
//  (a) saturated capacity: throughput, collision rate, energy per
//      delivered broadcast, fairness;
//  (b) Bernoulli arrival sweep: delivery latency percentiles.
// The paper's qualitative claims to reproduce: the tiling schedule is
// collision-free (0% collisions) and optimal (highest deterministic
// throughput with 9 slots); probabilistic protocols collide and "waste
// energy"; TDMA is collision-free but starves throughput.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "baseline/coloring_schedule.hpp"
#include "baseline/tdma.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

struct NamedMac {
  std::string label;
  std::unique_ptr<MacProtocol> mac;
};

std::vector<NamedMac> make_protocols(const Deployment& d,
                                     const TilingSchedule& sched) {
  std::vector<NamedMac> out;
  out.push_back({"tiling (m=9)", std::make_unique<SlotScheduleMac>(
                                     assign_slots(sched, d))});
  out.push_back({"tdma (m=144)",
                 std::make_unique<SlotScheduleMac>(tdma_slots(d))});
  out.push_back({"dsatur coloring",
                 std::make_unique<SlotScheduleMac>(coloring_slots(
                     d, ColoringHeuristic::kDsatur))});
  out.push_back({"aloha p=1/9", std::make_unique<AlohaMac>(1.0 / 9.0)});
  out.push_back({"aloha p=0.3", std::make_unique<AlohaMac>(0.3)});
  out.push_back({"csma", std::make_unique<CsmaMac>()});
  return out;
}

void report() {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 11), ball);

  bench::section("Saturated capacity on a 12x12 grid (Chebyshev r=1)");
  {
    SimConfig cfg;
    cfg.slots = 6000;
    cfg.saturated = true;
    cfg.seed = 12345;
    SlotSimulator sim(d, cfg);
    Table t({"protocol", "tput/sensor", "collision rate", "energy/delivery",
             "fairness"});
    for (auto& [label, mac] : make_protocols(d, sched)) {
      const SimResult r = sim.run(*mac);
      t.begin_row();
      t.cell(label);
      t.cell(r.per_sensor_throughput(), 5);
      t.cell_percent(r.collision_rate(), 1);
      t.cell(r.energy_per_delivery(), 2);
      t.cell(r.fairness(), 3);
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("\nexpected shape: tiling = 0%% collisions at ~1/9 "
                "throughput per sensor (optimal);\nTDMA = 0%% collisions "
                "at ~1/144; ALOHA/CSMA collide and burn energy per "
                "delivery.\n");
  }

  bench::section("Bernoulli arrivals: latency (slots) at 60% of tiling "
                 "capacity");
  {
    SimConfig cfg;
    cfg.slots = 20'000;
    cfg.arrival_rate = 0.6 / 9.0;  // 60% load of the 1/9 service rate
    cfg.seed = 99;
    SlotSimulator sim(d, cfg);
    Table t({"protocol", "delivered", "drops", "p50 latency", "p99 latency",
             "collision rate"});
    for (auto& [label, mac] : make_protocols(d, sched)) {
      const SimResult r = sim.run(*mac);
      t.begin_row();
      t.cell(label);
      t.cell(r.successful_tx);
      t.cell(r.drops);
      t.cell(r.latency.percentile(50), 1);
      t.cell(r.latency.percentile(99), 1);
      t.cell_percent(r.collision_rate(), 1);
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("\nexpected shape: tiling delivers everything with "
                "latency ~ one period; TDMA's\nlatency is an order of "
                "magnitude higher (period 144); random MACs drop or "
                "retry.\n");
  }
}

void bm_sim_slots_per_sec(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 11), ball);
  SimConfig cfg;
  cfg.slots = static_cast<std::uint64_t>(state.range(0));
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(assign_slots(sched, d));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(mac));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sim_slots_per_sec)->Arg(1000)->Arg(4000);

void bm_sim_aloha(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 11), ball);
  SimConfig cfg;
  cfg.slots = 1000;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  AlohaMac mac(0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(mac));
  }
}
BENCHMARK(bm_sim_aloha);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
