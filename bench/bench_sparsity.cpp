// Sparse deployments: what happens when not every lattice point hosts a
// sensor (failed nodes, irregular fields)?
//
// Two facts the paper implies but does not measure:
//  1. Restriction safety: the tiling schedule restricted to ANY subset of
//     the lattice stays collision-free (removing sensors removes
//     conflicts) — verified per density.
//  2. Optimality erosion: the schedule still spends |N| slots, but the
//     exact optimum of a sparse deployment can be smaller — at low
//     density the conflict graph thins out.  The sweep locates where the
//     gap opens.
#include <cstdio>

#include "bench_common.hpp"
#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

Deployment random_subset(const Box& box, const Prototile& tile,
                         double density, Rng& rng) {
  PointVec positions;
  box.for_each([&](const Point& p) {
    if (rng.next_bool(density)) positions.push_back(p);
  });
  if (positions.empty()) positions.push_back(box.lo());
  return Deployment::uniform(std::move(positions), tile);
}

void report() {
  bench::section("Sparse deployments on a 10x10 window (Chebyshev r=1)");
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  Table t({"density", "sensors (mean)", "schedule collisions",
           "exact optimum (mean)", "tiling slots", "slots wasted"});
  Rng rng(2718);
  for (double density : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    RunningStats sensors, optimum;
    bool all_collision_free = true;
    for (int trial = 0; trial < 5; ++trial) {
      const Deployment d =
          random_subset(Box::cube(2, 0, 9), ball, density, rng);
      sensors.add(static_cast<double>(d.size()));
      all_collision_free &=
          check_collision_free(d, assign_slots(sched, d)).collision_free;
      const DeploymentOptimum opt = optimal_slots_for_deployment(d);
      optimum.add(static_cast<double>(opt.optimal_slots));
    }
    t.begin_row();
    t.cell(density, 2);
    t.cell(sensors.mean(), 1);
    t.cell(all_collision_free ? "none" : "SOME");
    t.cell(optimum.mean(), 1);
    t.cell(sched.period());
    t.cell(static_cast<double>(sched.period()) - optimum.mean(), 1);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nreading: the schedule stays collision-free at every density "
      "(restriction safety),\nbut below full density it over-provisions — "
      "at 25%% density roughly half its 9\nslots are wasted.  The paper's "
      "optimality claim is specifically about complete\nlattice "
      "deployments, which the full-density row recovers exactly.\n");
}

void bm_sparse_collision_check(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  Rng rng(1);
  const Deployment d = random_subset(Box::cube(2, 0, 19), ball, 0.5, rng);
  const SensorSlots slots = assign_slots(sched, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_collision_free(d, slots));
  }
}
BENCHMARK(bm_sparse_collision_check);

void bm_sparse_exact_optimum(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  Rng rng(2);
  const Deployment d = random_subset(Box::cube(2, 0, 9), ball, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_slots_for_deployment(d));
  }
}
BENCHMARK(bm_sparse_exact_optimum);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
