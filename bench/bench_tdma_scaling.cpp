// Scaling claim (Introduction / Related Work): plain TDMA assigns every
// sensor its own slot, so its period grows with the network and
// per-sensor throughput collapses; the tiling schedule's period is |N|
// regardless of network size.
//
// Series: n x n deployments of Chebyshev-ball sensors, n in {4..32}:
// slots and saturated per-sensor throughput for TDMA vs the tiling
// schedule; plus a radius sweep showing the tiling period tracking |N|
// only.
#include <cstdio>

#include "bench_common.hpp"
#include "baseline/tdma.hpp"
#include "core/planner.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

double saturated_throughput(const Deployment& d, const SensorSlots& slots) {
  SimConfig cfg;
  cfg.slots = 2000;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(slots);
  return sim.run(mac).per_sensor_throughput();
}

void report() {
  bench::section("TDMA does not scale; the tiling schedule does");
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  Table t({"grid", "sensors", "TDMA slots", "tiling slots",
           "TDMA tput/sensor", "tiling tput/sensor", "speedup"});
  for (std::int64_t n : {4, 8, 12, 16, 24, 32}) {
    const Deployment d =
        Deployment::grid(Box::cube(2, 0, n - 1), ball);
    // Both schedules come out of the planner pipeline, already verified
    // collision-free; the simulator then measures saturated throughput.
    PlanRequest request;
    request.deployment = &d;
    const auto plans =
        PlannerRegistry::global().plan_all(request, {"tdma", "tiling"});
    if (!plans[0].collision_free || !plans[1].collision_free) {
      std::printf("PLANNER FAILURE on %ldx%ld\n", n, n);
      continue;
    }
    const SensorSlots& tdma = plans[0].slots;
    const SensorSlots& tiling = plans[1].slots;
    const double tput_tdma = saturated_throughput(d, tdma);
    const double tput_tiling = saturated_throughput(d, tiling);
    t.begin_row();
    t.cell(std::to_string(n) + "x" + std::to_string(n));
    t.cell(d.size());
    t.cell(tdma.period);
    t.cell(tiling.period);
    t.cell(tput_tdma, 5);
    t.cell(tput_tiling, 5);
    t.cell(tput_tiling / tput_tdma, 1);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: \"The obvious disadvantage of TDMA is that it "
              "does not scale\" — the tiling\nschedule's period stays at "
              "|N| = 9 while TDMA's grows with the sensor count,\nso the "
              "speedup factor grows like n²/9.\n");

  bench::section("Tiling slots track |N| only (radius sweep at 24x24)");
  Table r({"radius", "|N|", "tiling slots", "TDMA slots"});
  for (std::int64_t radius : {1, 2, 3}) {
    const Prototile shape = shapes::chebyshev_ball(2, radius);
    const Deployment d = Deployment::grid(Box::cube(2, 0, 23), shape);
    PlanRequest request;
    request.deployment = &d;
    request.verify = false;  // verified in the scaling table above
    const auto plans =
        PlannerRegistry::global().plan_all(request, {"tiling", "tdma"});
    r.begin_row();
    r.cell(radius);
    r.cell(shape.size());
    r.cell(plans[0].slots.period);
    r.cell(plans[1].slots.period);
  }
  std::printf("%s", r.to_string().c_str());
}

void bm_tdma_assignment(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdma_slots(d));
  }
}
BENCHMARK(bm_tdma_assignment)->Arg(8)->Arg(16)->Arg(32);

void bm_tiling_assignment(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment d =
      Deployment::grid(Box::cube(2, 0, state.range(0) - 1), ball);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_slots(sched, d));
  }
}
BENCHMARK(bm_tiling_assignment)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
