// Scaling claim (Introduction / Related Work): plain TDMA assigns every
// sensor its own slot, so its period grows with the network and
// per-sensor throughput collapses; the tiling schedule's period is |N|
// regardless of network size.
//
// Series: n x n deployments of Chebyshev-ball sensors, n in {4..32}:
// slots and saturated per-sensor throughput for TDMA vs the tiling
// schedule; plus a radius sweep showing the tiling period tracking |N|
// only.  Both series run as ONE batch each through the planning service
// (scenario library "grid" + size/radius sweep helpers), so the tiling
// search for the shared neighborhood runs once per distinct radius.
#include <cstdio>

#include "bench_common.hpp"
#include "baseline/tdma.hpp"
#include "core/plan_service.hpp"
#include "core/scenario.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

double saturated_throughput(const Deployment& d, const SensorSlots& slots) {
  SimConfig cfg;
  cfg.slots = 2000;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(slots);
  return sim.run(mac).per_sensor_throughput();
}

void report() {
  bench::section("TDMA does not scale; the tiling schedule does");
  PlanService service;
  const std::vector<std::int64_t> sizes = {4, 8, 12, 16, 24, 32};
  const BatchReport batch = service.run(PlanService::items_for(
      size_sweep("grid", ScenarioParams{}, sizes), {"tdma", "tiling"}));

  Table t({"grid", "sensors", "TDMA slots", "tiling slots",
           "TDMA tput/sensor", "tiling tput/sensor", "speedup"});
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    const BatchItemReport& item = batch.items[i];
    if (!item.all_ok()) {
      std::printf("PLANNER FAILURE on %s\n", item.label.c_str());
      continue;
    }
    const SensorSlots& tdma = item.results[0].slots;
    const SensorSlots& tiling = item.results[1].slots;
    // The simulator needs the deployment itself; rebuild the instance
    // from the registry (deterministic) for the throughput runs.
    ScenarioParams params;
    params.n = sizes[i];
    const ScenarioInstance inst =
        ScenarioRegistry::global().build("grid", params);
    const double tput_tdma = saturated_throughput(inst.deployment, tdma);
    const double tput_tiling = saturated_throughput(inst.deployment, tiling);
    t.begin_row();
    t.cell(std::to_string(sizes[i]) + "x" + std::to_string(sizes[i]));
    t.cell(item.sensors);
    t.cell(tdma.period);
    t.cell(tiling.period);
    t.cell(tput_tdma, 5);
    t.cell(tput_tiling, 5);
    t.cell(tput_tiling / tput_tdma, 1);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper: \"The obvious disadvantage of TDMA is that it "
              "does not scale\" — the tiling\nschedule's period stays at "
              "|N| = 9 while TDMA's grows with the sensor count,\nso the "
              "speedup factor grows like n²/9.\ntiling cache over the "
              "size sweep: %llu hits, %llu misses (repeat searches are "
              "served from cache)\n",
              static_cast<unsigned long long>(batch.cache_hits),
              static_cast<unsigned long long>(batch.cache_misses));

  bench::section("Tiling slots track |N| only (radius sweep at 24x24)");
  ScenarioParams base;
  base.n = 24;
  const std::vector<std::int64_t> radii = {1, 2, 3};
  std::vector<BatchItem> items = PlanService::items_for(
      radius_sweep("grid", base, radii), {"tiling", "tdma"});
  for (BatchItem& item : items) {
    item.verify = false;  // verified in the scaling table above
  }
  const BatchReport sweep = service.run(items);
  Table r({"radius", "|N|", "tiling slots", "TDMA slots"});
  for (std::size_t i = 0; i < sweep.items.size(); ++i) {
    const BatchItemReport& item = sweep.items[i];
    if (!item.built || item.results.size() < 2 || !item.results[0].ok ||
        !item.results[1].ok) {
      std::printf("PLANNER FAILURE on %s\n", item.label.c_str());
      continue;
    }
    r.begin_row();
    r.cell(radii[i]);
    r.cell(item.results[0].lower_bound);  // |N| = max prototile size
    r.cell(item.results[0].slots.period);
    r.cell(item.results[1].slots.period);
  }
  std::printf("%s", r.to_string().c_str());
}

void bm_tdma_assignment(benchmark::State& state) {
  const Deployment d = Deployment::grid(
      Box::cube(2, 0, state.range(0) - 1), shapes::chebyshev_ball(2, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdma_slots(d));
  }
}
BENCHMARK(bm_tdma_assignment)->Arg(8)->Arg(16)->Arg(32);

void bm_tiling_assignment(benchmark::State& state) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const Deployment d =
      Deployment::grid(Box::cube(2, 0, state.range(0) - 1), ball);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_slots(sched, d));
  }
}
BENCHMARK(bm_tiling_assignment)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
