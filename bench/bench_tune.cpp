// Auto-tuning benchmarks — the BENCH_tune.json trajectory.
//
// The report section measures what the tuning subsystem (src/tune/)
// buys and what it costs:
//
//  1. tuned-vs-default: per scenario family, the deterministic cost
//     (effective period, then work proxy) of the config the seeded
//     tuner picks vs the default config.  The tuner measures the
//     default as trial 0, so the picked config can never lose —
//     `period_gain` >= 1.0 is asserted, not hoped.
//  2. cold-vs-warm sweep: a registry sweep on the `auto` backend with a
//     persistent --cache-dir, run cold (every family searched) and then
//     warm from a fresh service (every family served from disk).  The
//     warm run performing ZERO searches is the subsystem's acceptance
//     pin and is asserted here, so the CI smoke catches a cache
//     regression without parsing the JSON.
//
// Records land in BENCH_tune.json (path override:
// LATTICESCHED_BENCH_TUNE_JSON) and upload as a CI artifact.
#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/plan_service.hpp"
#include "core/scenario.hpp"
#include "tiling/shapes.hpp"
#include "tune/tune_cache.hpp"
#include "tune/tuner.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

struct TuneRecord {
  std::string name;
  double default_period = 0.0;
  double tuned_period = 0.0;
  double default_work = 0.0;
  double tuned_work = 0.0;
  double period_gain = 0.0;  // default_period / tuned_period (>= 1.0)
  double work_gain = 0.0;    // default_work / tuned_work at equal period
  std::uint64_t searches = 0;
  std::uint64_t trials = 0;
  double wall_ms = 0.0;
};

std::vector<TuneRecord>& records() {
  static std::vector<TuneRecord> r;
  return r;
}

void write_bench_json() {
  const char* env = std::getenv("LATTICESCHED_BENCH_TUNE_JSON");
  const std::string path = env != nullptr ? env : "BENCH_tune.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"benchmarks\": [\n";
  const auto& rs = records();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"default_period\": %g, "
        "\"tuned_period\": %g, \"default_work\": %g, \"tuned_work\": %g, "
        "\"period_gain\": %.3f, \"work_gain\": %.3f, \"searches\": %llu, "
        "\"trials\": %llu, \"wall_ms\": %.3f}%s\n",
        rs[i].name.c_str(), rs[i].default_period, rs[i].tuned_period,
        rs[i].default_work, rs[i].tuned_work, rs[i].period_gain,
        rs[i].work_gain, static_cast<unsigned long long>(rs[i].searches),
        static_cast<unsigned long long>(rs[i].trials), rs[i].wall_ms,
        i + 1 < rs.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu benchmark records to %s\n", rs.size(),
              path.c_str());
}

void fail(const char* what) {
  std::fprintf(stderr, "bench_tune: ACCEPTANCE FAILURE: %s\n", what);
  write_bench_json();
  std::exit(1);
}

void report() {
  bench::section("tuned vs default config (deterministic cost, per family)");
  {
    struct Family {
      const char* scenario;
      std::int64_t n;
    };
    const Family families[] = {{"grid", 8}, {"hex", 8}, {"mobile", 10}};
    for (const Family& fam : families) {
      ScenarioParams params;
      params.n = fam.n;
      ScenarioInstance instance =
          ScenarioRegistry::global().build(fam.scenario, params);
      PlanRequest request;
      request.deployment = &instance.deployment;
      request.verify = false;
      request.sa.max_iters = 10'000;
      request.tune_family = fam.scenario;

      tune::TuneCache cache;
      tune::Tuner tuner(&PlannerRegistry::global(), &cache);
      tune::TuneOptions options;
      options.trials = 8;
      const Clock::time_point t0 = Clock::now();
      const tune::TuneOutcome outcome = tuner.search(request, options);
      const double wall_ms =
          std::chrono::duration<double>(Clock::now() - t0).count() * 1e3;

      if (outcome.trials.empty()) fail("tuner measured zero candidates");
      const tune::TrialOutcome& def = outcome.trials.front();
      const tune::TrialOutcome* best = nullptr;
      for (const tune::TrialOutcome& t : outcome.trials) {
        if (t.config == outcome.best) best = &t;
      }
      if (best == nullptr || !best->ok) fail("picked config was not measured ok");

      TuneRecord rec;
      rec.name = std::string("tuned_vs_default_") + fam.scenario;
      rec.default_period = def.effective_period;
      rec.tuned_period = best->effective_period;
      rec.default_work = def.work;
      rec.tuned_work = best->work;
      rec.period_gain = rec.tuned_period > 0.0
                            ? rec.default_period / rec.tuned_period
                            : 0.0;
      rec.work_gain =
          rec.tuned_work > 0.0 ? rec.default_work / rec.tuned_work : 0.0;
      rec.searches = 1;
      rec.trials = outcome.trials.size();
      rec.wall_ms = wall_ms;
      records().push_back(rec);
      std::printf(
          "%s(n=%lld): default period %g / work %g, tuned period %g / "
          "work %g -> %.2fx period, %.2fx work (%zu trial(s), %zu "
          "pruned, %.1fms)\n",
          fam.scenario, static_cast<long long>(fam.n), rec.default_period,
          rec.default_work, rec.tuned_period, rec.tuned_work,
          rec.period_gain, rec.work_gain, outcome.trials.size(),
          outcome.pruned, wall_ms);
      // Trial 0 IS the default, so losing to it is a tuner bug, not a
      // bad day.
      if (rec.period_gain < 1.0) fail("picked config lost to the default");
    }
  }

  bench::section("cold vs warm auto sweep (persistent tune cache)");
  {
    char tmpl[] = "/tmp/latticesched_bench_tune_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) fail("mkdtemp failed");

    ScenarioParams params;
    params.n = 6;
    PlanService cold_service;
    std::vector<BatchItem> items =
        cold_service.registry_batch(params, {"auto"});
    for (BatchItem& item : items) item.tune_trials = 2;

    cold_service.tiling_cache().set_persist_dir(dir);
    cold_service.tune_cache().set_persist_dir(dir);
    const Clock::time_point t0 = Clock::now();
    const BatchReport cold = cold_service.run(items);
    const double cold_ms =
        std::chrono::duration<double>(Clock::now() - t0).count() * 1e3;

    PlanService warm_service;
    warm_service.tiling_cache().set_persist_dir(dir);
    warm_service.tune_cache().set_persist_dir(dir);
    const Clock::time_point t1 = Clock::now();
    const BatchReport warm = warm_service.run(items);
    const double warm_ms =
        std::chrono::duration<double>(Clock::now() - t1).count() * 1e3;
    std::filesystem::remove_all(dir);

    TuneRecord cold_rec;
    cold_rec.name = "registry_sweep_cold";
    cold_rec.searches = cold.tune_searches;
    cold_rec.trials = cold.tune_trials_run;
    cold_rec.wall_ms = cold_ms;
    records().push_back(cold_rec);
    TuneRecord warm_rec;
    warm_rec.name = "registry_sweep_warm";
    warm_rec.searches = warm.tune_searches;
    warm_rec.trials = warm.tune_trials_run;
    warm_rec.wall_ms = warm_ms;
    records().push_back(warm_rec);
    std::printf(
        "cold: %.1fms, %llu search(es), %llu trial(s); warm: %.1fms, "
        "%llu search(es), %llu miss(es) -> %.1fx\n",
        cold_ms, static_cast<unsigned long long>(cold.tune_searches),
        static_cast<unsigned long long>(cold.tune_trials_run), warm_ms,
        static_cast<unsigned long long>(warm.tune_searches),
        static_cast<unsigned long long>(warm.tune_misses),
        warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);

    if (!cold.all_ok() || !warm.all_ok()) fail("auto sweep produced failures");
    if (cold.tune_searches == 0) fail("cold sweep ran no tuning searches");
    if (warm.tune_misses != 0 || warm.tune_searches != 0) {
      fail("warm sweep missed the tune cache");
    }
  }

  write_bench_json();
}

void BM_TunerSearchGrid8(benchmark::State& state) {
  static const Deployment* d = new Deployment(Deployment::grid(
      Box::cube(2, 0, 7), shapes::chebyshev_ball(2, 1)));
  PlanRequest request;
  request.deployment = d;
  request.verify = false;
  request.sa.max_iters = 5'000;
  tune::TuneOptions options;
  options.trials = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    tune::TuneCache cache;  // fresh: measure the search, not the memo
    tune::Tuner tuner(&PlannerRegistry::global(), &cache);
    benchmark::DoNotOptimize(tuner.search(request, options));
  }
}
BENCHMARK(BM_TunerSearchGrid8)->Arg(2)->Arg(8);

void BM_AutoBackendWarmHit(benchmark::State& state) {
  static const Deployment* d = new Deployment(Deployment::grid(
      Box::cube(2, 0, 7), shapes::chebyshev_ball(2, 1)));
  static tune::TuneCache* cache = new tune::TuneCache();
  PlanRequest request;
  request.deployment = d;
  request.verify = false;
  request.tune_cache = cache;
  request.tune_trials = 2;
  const Planner* auto_planner = PlannerRegistry::global().find("auto");
  (void)auto_planner->plan(request);  // populate: every iteration hits
  for (auto _ : state) {
    benchmark::DoNotOptimize(auto_planner->plan(request));
  }
}
BENCHMARK(BM_AutoBackendWarmHit);

}  // namespace
}  // namespace latticesched

REPRODUCTION_MAIN(latticesched::report)
