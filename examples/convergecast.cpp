// Convergecast: periodic measurements flow hop-by-hop to a sink.
//
// The paper's motivating deployment ("sensors are sometimes distributed
// in a regular fashion to monitor an area") ultimately collects data.
// This example routes greedily toward a corner sink over the same radio
// model the schedules are proved against, and compares the collision-free
// tiling schedule with slotted ALOHA and CSMA end to end.
//
//   $ convergecast --n=12 --rate=0.002 --slots=30000
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "sim/convergecast.hpp"
#include "tiling/shapes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latticesched;
  CliParser cli("Multi-hop data collection to a corner sink.");
  cli.add_flag("n", "12", "grid side length");
  cli.add_flag("rate", "0.002", "measurement arrivals per sensor per slot");
  cli.add_flag("slots", "30000", "simulated slots");
  cli.add_flag("seed", "1", "simulation seed");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help_text().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  const std::int64_t n = cli.get_int("n");
  // The field is the scenario library's "grid" generator; the
  // collision-free slot table comes out of the planner pipeline,
  // already verified against the paper's predicate.
  ScenarioParams params;
  params.n = n;
  params.radius = 1;
  const ScenarioInstance grid =
      ScenarioRegistry::global().build("grid", params);
  const Deployment& field = grid.deployment;
  PlanRequest request;
  request.deployment = &field;
  const PlanResult plan =
      PlannerRegistry::global().find("tiling")->plan(request);
  if (!plan.ok || !plan.collision_free) {
    std::fprintf(stderr, "planner failed: %s\n", plan.error.c_str());
    return 1;
  }
  const Point sink{0, 0};
  ConvergecastSimulator sim(field, sink);

  std::printf("field %ldx%ld, sink at %s; longest route: ", n, n,
              sink.to_string().c_str());
  std::uint32_t longest = 0;
  for (std::uint32_t i = 0; i < field.size(); ++i) {
    longest = std::max(longest, sim.route_length(i));
  }
  std::printf("%u hops\n\n", longest);

  ConvergecastConfig cfg;
  cfg.slots = static_cast<std::uint64_t>(cli.get_int("slots"));
  cfg.arrival_rate = cli.get_double("rate");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  struct Entry {
    std::string label;
    std::unique_ptr<MacProtocol> mac;
  };
  std::vector<Entry> protocols;
  protocols.push_back(
      {"tiling", std::make_unique<SlotScheduleMac>(plan.slots)});
  protocols.push_back({"aloha p=0.1", std::make_unique<AlohaMac>(0.1)});
  protocols.push_back({"csma", std::make_unique<CsmaMac>()});

  Table t({"protocol", "arrivals", "delivered", "delivery%", "collisions",
           "p50 e2e", "p99 e2e", "mean hops", "energy/delivery"});
  for (auto& [label, mac] : protocols) {
    const ConvergecastResult r = sim.run(*mac, cfg);
    t.begin_row();
    t.cell(label);
    t.cell(r.arrivals);
    t.cell(r.delivered);
    t.cell_percent(r.delivery_ratio(), 1);
    t.cell(r.failed_tx);
    t.cell(r.end_to_end_latency.percentile(50), 1);
    t.cell(r.end_to_end_latency.percentile(99), 1);
    t.cell(r.hops.mean(), 2);
    t.cell(r.energy_per_delivery(), 2);
  }
  t.print(std::cout);
  std::printf(
      "\nreading: the tiling schedule never collides, so its energy per "
      "delivery and its\nsaturation point are deterministic.  At light "
      "load opportunistic CSMA can beat its\nlatency (a scheduled node "
      "waits for its slot even on an idle channel); raise\n--rate to see "
      "contention flip the comparison.\n");
  return 0;
}
