// Heterogeneous antennas (Section 4 / Theorem 2).
//
// A field mixes long-range omnidirectional sensors (3x3 Chebyshev ball)
// with low-power bar sensors (1x3).  The ball contains the bar, so a
// respectable tiling exists and Theorem 2 yields an optimal schedule with
// m = |N1| = 9 slots under deployment rule D1.  The example builds such a
// tiling explicitly, schedules it, renders the slot map, and verifies
// collision-freedom.
//
//   $ directional_antennas
#include <cstdio>

#include "core/optimality.hpp"
#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/shapes.hpp"
#include "util/ascii_canvas.hpp"

int main() {
  using namespace latticesched;

  // The "antennas" scenario builds the whole Theorem-2 instance: the
  // 3x6-period respectable tiling mixing both prototiles and the rule-D1
  // deployment over the window.
  ScenarioParams params;
  params.n = 18;
  const ScenarioInstance antennas =
      ScenarioRegistry::global().build("antennas", params);
  const Tiling& tiling = *antennas.tiling;
  const std::vector<Prototile>& protos = tiling.prototiles();
  std::printf("N1 (omni, 9 pts):\n%s\nN2 (bar, 3 pts):\n%s\n",
              protos[0].to_ascii().c_str(), protos[1].to_ascii().c_str());
  std::printf("N1 contains N2: %s -> a respectable tiling is possible\n\n",
              protos[0].contains_tile(protos[1]) ? "yes" : "no");

  std::printf("tiling: %zu placements per 3x6 period; respectable: %s\n",
              tiling.placements().size(),
              tiling.is_respectable() ? "yes" : "no");

  const TilingSchedule schedule{Tiling(tiling)};
  std::printf("Theorem-2 schedule: %s\n\n", schedule.description().c_str());

  // Render the slot map; bar-sensor cells are bracketed.
  AsciiCanvas canvas(4 * 12 + 1, 12, ' ');
  Box(Point{0, 0}, Point{11, 11}).for_each([&](const Point& p) {
    const Covering c = tiling.covering(p);
    std::string label = std::to_string(schedule.slot_of(p) + 1);
    if (c.prototile == 1) label = "[" + label + "]";
    canvas.put_text(4 * p[0], p[1], label);
  });
  std::printf("slot map (1-based; bar sensors bracketed):\n%s\n",
              canvas.to_string().c_str());

  // Deployment rule D1 (built by the scenario), scheduled and verified
  // through the planner pipeline (the tiling rides along in the request).
  const Deployment& field = antennas.deployment;
  PlanRequest request;
  request.deployment = &field;
  request.tiling = &tiling;
  const PlanResult plan =
      PlannerRegistry::global().find("tiling")->plan(request);
  if (!plan.ok) {
    std::fprintf(stderr, "planner failed: %s\n", plan.error.c_str());
    return 1;
  }
  std::printf("deployment of %zu sensors (rule D1): %s\n", field.size(),
              plan.report.to_string().c_str());

  // Machine-check optimality: the tiling-constrained optimum equals 9.
  const TilingOptimum opt = optimal_slots_for_tiling(tiling);
  std::printf("exact optimum for this tiling: %u slots (proven: %s); "
              "Theorem-2 algorithm used %u\n",
              opt.optimal_slots, opt.proven ? "yes" : "no",
              opt.theorem2_slots);
  return plan.collision_free && opt.optimal_slots == plan.slots.period
             ? 0
             : 1;
}
