// Grid monitoring: the workload the paper's introduction motivates.
//
// An n x n field of sensors reports periodic measurements over shared
// radio.  This example builds the optimal tiling schedule for the chosen
// interference radius, then simulates it against TDMA and slotted ALOHA
// and prints the delivery/energy comparison.
//
//   $ grid_monitoring --n=16 --radius=1 --rate=0.05 --slots=20000
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "sim/simulator.hpp"
#include "tiling/shapes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latticesched;
  CliParser cli("Simulate an n x n monitoring grid under different MACs.");
  cli.add_flag("n", "16", "grid side length (sensors per side)");
  cli.add_flag("radius", "1", "interference radius (Chebyshev metric)");
  cli.add_flag("rate", "0.05", "per-sensor message arrivals per slot");
  cli.add_flag("slots", "20000", "simulated time slots");
  cli.add_flag("seed", "1", "simulation seed");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help_text().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  // The field comes from the scenario library — the same "grid"
  // generator the driver and batch service use.
  ScenarioParams params;
  params.n = cli.get_int("n");
  params.radius = cli.get_int("radius");
  const ScenarioInstance grid =
      ScenarioRegistry::global().build("grid", params);
  const Deployment& field = grid.deployment;
  const Prototile& shape = field.prototiles().front();
  std::printf("field %s: %zu sensors, neighborhood %s (%zu points)\n",
              grid.label.c_str(), field.size(), shape.name().c_str(),
              shape.size());

  // Planner pipeline: tiling + TDMA schedules, produced and verified in
  // one fan-out.
  PlanRequest request;
  request.deployment = &field;
  const auto plans =
      PlannerRegistry::global().plan_all(request, {"tiling", "tdma"});
  for (const PlanResult& p : plans) {
    if (!p.ok) {
      std::fprintf(stderr, "%s backend failed: %s\n", p.backend.c_str(),
                   p.error.c_str());
      return 1;
    }
  }
  std::printf("tiling schedule: %u slots (lower bound %u -> %s)\n",
              plans[0].slots.period, plans[0].lower_bound,
              plans[0].optimality_gap == 1.0 ? "optimal"
                                             : "not proven optimal");
  std::printf("static check: %s\n\n",
              plans[0].report.to_string().c_str());

  SimConfig cfg;
  cfg.slots = static_cast<std::uint64_t>(cli.get_int("slots"));
  cfg.arrival_rate = cli.get_double("rate");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  SlotSimulator sim(field, cfg);

  struct Entry {
    std::string label;
    std::unique_ptr<MacProtocol> mac;
  };
  std::vector<Entry> protocols;
  protocols.push_back(
      {"tiling", std::make_unique<SlotScheduleMac>(plans[0].slots)});
  protocols.push_back(
      {"tdma", std::make_unique<SlotScheduleMac>(plans[1].slots)});
  protocols.push_back({"aloha", std::make_unique<AlohaMac>(0.15)});
  protocols.push_back({"csma", std::make_unique<CsmaMac>()});

  Table t({"protocol", "delivered", "collisions", "drops", "p50 lat",
           "p99 lat", "energy/delivery", "fairness"});
  for (auto& [label, mac] : protocols) {
    const SimResult r = sim.run(*mac);
    t.begin_row();
    t.cell(label);
    t.cell(r.successful_tx);
    t.cell(r.failed_tx);
    t.cell(r.drops);
    t.cell(r.latency.percentile(50), 1);
    t.cell(r.latency.percentile(99), 1);
    t.cell(r.energy_per_delivery(), 2);
    t.cell(r.fairness(), 3);
  }
  t.print(std::cout);
  return 0;
}
