// Hexagonal deployments (Figure 1 right / Figure 4b).
//
// Sensors packed on the hexagonal lattice L_H with omnidirectional radios
// of Euclidean radius 1: the neighborhood is the 7-point hexagonal ball
// (center + 6 kissing neighbors).  The combinatorics run on Z²
// coordinates; the geometry (Voronoi hexagons, quasi-polyhexes) comes
// from the lattice embedding.
//
//   $ hexagonal_field
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/optimality.hpp"
#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "lattice/voronoi.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

int main() {
  using namespace latticesched;
  const Lattice hex = Lattice::hexagonal();

  // Geometry (Figure 4b): Voronoi cells are regular hexagons.
  const ConvexPolygon cell = voronoi_cell(hex);
  std::printf("hexagonal lattice: covolume %.6f; Voronoi cell has %zu "
              "vertices, area %.6f\n",
              hex.covolume(), cell.vertex_count(), cell.area());

  // Interference neighborhood: Euclidean ball of radius 1 in L_H.
  const Prototile ball = shapes::euclidean_ball(hex, 1.0);
  std::printf("neighborhood %s: %zu points (center + 6 neighbors)\n",
              ball.name().c_str(), ball.size());
  std::printf("in Z^2 coordinates:\n%s\n", ball.to_ascii().c_str());

  // The hexagonal ball tiles (perfect 1-error-correcting hexagonal code);
  // Theorem 1 then gives a 7-slot optimal schedule.
  const ExactnessResult exact = decide_exactness(ball);
  if (!exact.exact) {
    std::fprintf(stderr, "unexpected: hex ball not exact\n");
    return 1;
  }
  std::printf("exact via %s; quasi-polyhex area %.6f (= 7 x covolume)\n",
              to_string(exact.method),
              quasi_polyform_area(hex, ball.size()));

  // Deploy a rhombic patch (the scenario library's "hex" generator) and
  // run every relevant backend through the planner pipeline: the
  // constructive schedule against the coloring heuristics and TDMA,
  // each verified.
  ScenarioParams params;
  params.n = 12;
  const ScenarioInstance hex_field =
      ScenarioRegistry::global().build("hex", params);
  const Deployment& field = hex_field.deployment;
  PlanRequest request;
  request.deployment = &field;
  request.tiling = &*exact.tiling;
  const auto plans = PlannerRegistry::global().plan_all(
      request, {"tiling", "dsatur", "tdma"});
  std::printf("\ndeployment of %zu sensors, backend comparison:\n",
              field.size());
  Table t({"backend", "slots", "collision-free", "balance", "duty cycle"});
  bool all_free = true;
  for (const PlanResult& p : plans) {
    if (!p.ok) {
      std::fprintf(stderr, "%s backend failed: %s\n", p.backend.c_str(),
                   p.error.c_str());
      return 1;
    }
    all_free = all_free && p.collision_free;
    t.begin_row();
    t.cell(p.backend);
    t.cell(p.slots.period);
    t.cell(p.collision_free ? "yes" : "NO");
    t.cell(p.slot_balance, 3);
    t.cell(p.duty_cycle, 4);
  }
  t.print(std::cout);

  // Optimality: the window optimum equals |N| = 7, which the tiling
  // backend meets exactly (the paper's Theorem 1).
  const DeploymentOptimum opt = optimal_slots_for_deployment(field);
  std::printf("exact window optimum: %u slots (proven: %s); tiling "
              "backend used %u\n",
              opt.optimal_slots, opt.proven ? "yes" : "no",
              plans[0].slots.period);
  return all_free ? 0 : 1;
}
