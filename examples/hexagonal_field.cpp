// Hexagonal deployments (Figure 1 right / Figure 4b).
//
// Sensors packed on the hexagonal lattice L_H with omnidirectional radios
// of Euclidean radius 1: the neighborhood is the 7-point hexagonal ball
// (center + 6 kissing neighbors).  The combinatorics run on Z²
// coordinates; the geometry (Voronoi hexagons, quasi-polyhexes) comes
// from the lattice embedding.
//
//   $ hexagonal_field
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "lattice/voronoi.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

int main() {
  using namespace latticesched;
  const Lattice hex = Lattice::hexagonal();

  // Geometry (Figure 4b): Voronoi cells are regular hexagons.
  const ConvexPolygon cell = voronoi_cell(hex);
  std::printf("hexagonal lattice: covolume %.6f; Voronoi cell has %zu "
              "vertices, area %.6f\n",
              hex.covolume(), cell.vertex_count(), cell.area());

  // Interference neighborhood: Euclidean ball of radius 1 in L_H.
  const Prototile ball = shapes::euclidean_ball(hex, 1.0);
  std::printf("neighborhood %s: %zu points (center + 6 neighbors)\n",
              ball.name().c_str(), ball.size());
  std::printf("in Z^2 coordinates:\n%s\n", ball.to_ascii().c_str());

  // The hexagonal ball tiles (perfect 1-error-correcting hexagonal code);
  // Theorem 1 then gives a 7-slot optimal schedule.
  const ExactnessResult exact = decide_exactness(ball);
  if (!exact.exact) {
    std::fprintf(stderr, "unexpected: hex ball not exact\n");
    return 1;
  }
  std::printf("exact via %s; quasi-polyhex area %.6f (= 7 x covolume)\n",
              to_string(exact.method),
              quasi_polyform_area(hex, ball.size()));
  const TilingSchedule schedule(*exact.tiling);
  std::printf("schedule: %s\n", schedule.description().c_str());

  // Deploy a rhombic patch (natural for hex coordinates) and verify.
  const Deployment field = Deployment::grid(Box::centered(2, 6), ball);
  const CollisionReport report = check_collision_free(field, schedule);
  std::printf("deployment of %zu sensors: %s\n", field.size(),
              report.to_string().c_str());

  // Optimality: the window optimum equals |N| = 7.
  const DeploymentOptimum opt = optimal_slots_for_deployment(field);
  std::printf("exact window optimum: %u slots (proven: %s)\n",
              opt.optimal_slots, opt.proven ? "yes" : "no");

  // Slot usage census: every slot serves ~1/7 of the sensors.
  Table t({"slot", "sensors", "share"});
  std::vector<std::size_t> counts(schedule.period(), 0);
  for (std::size_t i = 0; i < field.size(); ++i) {
    ++counts[schedule.slot_of(field.position(i))];
  }
  for (std::uint32_t s = 0; s < schedule.period(); ++s) {
    t.begin_row();
    t.cell(s + 1);
    t.cell(counts[s]);
    t.cell_percent(static_cast<double>(counts[s]) /
                       static_cast<double>(field.size()),
                   1);
  }
  t.print(std::cout);
  return report.collision_free ? 0 : 1;
}
