// Mobile sensors (Conclusions): slots belong to LOCATIONS, not sensors.
//
// Random-waypoint sensors roam a square arena; a sensor may transmit only
// when the current slot matches its Voronoi cell's slot and its
// interference disc fits inside the cell's tile region.  The example
// compares the rule against mobile slotted ALOHA.
//
//   $ mobile_network --sensors=32 --arena=16 --range=0.35 --slots=5000
#include <cstdio>
#include <iostream>

#include "core/mobile.hpp"
#include "core/planner.hpp"
#include "sim/mobile_sim.hpp"
#include "tiling/shapes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latticesched;
  CliParser cli("Mobile sensors under the paper's location-based rule.");
  cli.add_flag("sensors", "32", "number of mobile sensors");
  cli.add_flag("arena", "16", "arena side length (lattice units)");
  cli.add_flag("range", "0.35", "interference disc radius rho");
  cli.add_flag("speed", "0.07", "movement per slot");
  cli.add_flag("slots", "5000", "simulated slots");
  cli.add_flag("aloha_p", "0.15", "ALOHA transmit probability");
  cli.add_flag("seed", "7", "simulation seed");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help_text().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  // Location slots come from the 3x3-ball tiling schedule on Z².  The
  // `mobile` backend owns the whole construction: it finds the tiling,
  // verifies the lattice schedule on the reference window, and hands
  // back the ready-made location scheduler in PlanResult::mobile.
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment reference =
      Deployment::grid(Box::centered(2, 4), ball);
  PlanRequest request;
  request.deployment = &reference;
  const PlanResult plan =
      PlannerRegistry::global().find("mobile")->plan(request);
  if (!plan.ok || !plan.collision_free || plan.mobile == nullptr) {
    std::fprintf(stderr, "planner failed: %s\n", plan.error.c_str());
    return 1;
  }
  std::printf("location schedule: %u slots (verified %s on a static "
              "window); Voronoi cells are unit\nsquares; tile regions "
              "are 3x3 blocks\n\n",
              plan.mobile->period(),
              plan.collision_free ? "collision-free" : "NOT collision-free");

  MobileConfig cfg;
  cfg.sensors = static_cast<std::size_t>(cli.get_int("sensors"));
  cfg.arena = cli.get_double("arena");
  cfg.range = cli.get_double("range");
  cfg.speed = cli.get_double("speed");
  cfg.slots = static_cast<std::uint64_t>(cli.get_int("slots"));
  cfg.aloha_p = cli.get_double("aloha_p");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  MobileSimulator sim(*plan.mobile, cfg);
  const MobileResult location = sim.run_location_schedule();
  const MobileResult aloha = sim.run_aloha();

  Table t({"protocol", "attempts", "successes", "collisions",
           "collision rate", "successes/slot"});
  for (const auto& [label, r] :
       {std::pair<const char*, const MobileResult&>{"location-slot",
                                                    location},
        std::pair<const char*, const MobileResult&>{"mobile aloha",
                                                    aloha}}) {
    t.begin_row();
    t.cell(label);
    t.cell(r.attempts);
    t.cell(r.successes);
    t.cell(r.collisions);
    t.cell_percent(r.collision_rate(), 2);
    t.cell(r.utilization(), 3);
  }
  t.print(std::cout);
  std::printf("\nthe location rule must report ZERO collisions "
              "(paper, Conclusions).\n");
  return location.collisions == 0 ? 0 : 1;
}
