// Quickstart: from an interference neighborhood to a provably optimal,
// collision-free broadcast schedule in ~30 lines of user code.
//
//   $ quickstart
//
// Walks the full pipeline of the paper: choose a neighborhood N, decide
// exactness (Section 3), build the Theorem-1 schedule (m = |N| slots),
// verify collision-freedom on a deployment window, and export the
// per-sensor slot table as CSV.
#include <cstdio>
#include <iostream>

#include "core/collision.hpp"
#include "core/serialization.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"

int main() {
  using namespace latticesched;

  // 1. Interference neighborhood: every sensor disturbs the 3x3 block of
  //    lattice points around itself (Figure 2, left).
  const Prototile neighborhood = shapes::chebyshev_ball(2, 1);
  std::printf("neighborhood %s (%zu points):\n%s\n",
              neighborhood.name().c_str(), neighborhood.size(),
              neighborhood.to_ascii().c_str());

  // 2. Does N tile the lattice?  (Always required for Theorem 1; the
  //    library decides it via the Beauquier-Nivat criterion.)
  const ExactnessResult exact = decide_exactness(neighborhood);
  if (!exact.exact) {
    std::printf("neighborhood is not exact -- no tiling schedule exists\n");
    return 1;
  }
  std::printf("exact (decided by %s); translate lattice basis: %s\n",
              to_string(exact.method),
              exact.tiling->period().to_string().c_str());

  // 3. The Theorem-1 schedule: m = |N| slots, provably minimal.
  const TilingSchedule schedule(*exact.tiling);
  std::printf("schedule: %s\n", schedule.description().c_str());
  std::printf("slot of sensor at (0,0):  %u\n",
              schedule.slot_of(Point{0, 0}));
  std::printf("slot of sensor at (5,-3): %u\n",
              schedule.slot_of(Point{5, -3}));

  // 4. Deploy 11x11 sensors and verify the paper's collision predicate.
  const Deployment field =
      Deployment::grid(Box::centered(2, 5), neighborhood);
  const CollisionReport report = check_collision_free(field, schedule);
  std::printf("deployment of %zu sensors: %s\n", field.size(),
              report.to_string().c_str());

  // 5. Ship the slot table.
  std::printf("\nfirst lines of the deployable CSV:\n");
  const std::string csv =
      schedule_to_csv(field, assign_slots(schedule, field));
  std::printf("%s...\n", csv.substr(0, 120).c_str());
  return report.collision_free ? 0 : 1;
}
