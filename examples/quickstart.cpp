// Quickstart: from an interference neighborhood to a provably optimal,
// collision-free broadcast schedule in ~30 lines of user code.
//
//   $ quickstart
//
// Walks the full pipeline of the paper: choose a neighborhood N, decide
// exactness (Section 3), then let the planner registry produce the
// Theorem-1 schedule (m = |N| slots), verify collision-freedom and
// report diagnostics in one call — and export the per-sensor slot table
// as CSV.
#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "core/serialization.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"

int main() {
  using namespace latticesched;

  // 1. Interference neighborhood: every sensor disturbs the 3x3 block of
  //    lattice points around itself (Figure 2, left).
  const Prototile neighborhood = shapes::chebyshev_ball(2, 1);
  std::printf("neighborhood %s (%zu points):\n%s\n",
              neighborhood.name().c_str(), neighborhood.size(),
              neighborhood.to_ascii().c_str());

  // 2. Does N tile the lattice?  (Always required for Theorem 1; the
  //    library decides it via the Beauquier-Nivat criterion.)
  const ExactnessResult exact = decide_exactness(neighborhood);
  if (!exact.exact) {
    std::printf("neighborhood is not exact -- no tiling schedule exists\n");
    return 1;
  }
  std::printf("exact (decided by %s); translate lattice basis: %s\n",
              to_string(exact.method),
              exact.tiling->period().to_string().c_str());

  // 3. Deploy 11x11 sensors — the "grid" scenario from the scenario
  //    library (the same generator the driver and the batch service
  //    use) — and run the planner pipeline: the tiling backend builds
  //    the Theorem-1 schedule, verifies the paper's collision predicate
  //    and attaches the diagnostics.
  ScenarioParams params;
  params.n = 11;
  params.radius = 1;
  const ScenarioInstance grid =
      ScenarioRegistry::global().build("grid", params);
  const Deployment& field = grid.deployment;
  PlanRequest request;
  request.deployment = &field;
  request.tiling = &*exact.tiling;
  const PlanResult plan =
      PlannerRegistry::global().find("tiling")->plan(request);
  if (!plan.ok) {
    std::printf("planner failed: %s\n", plan.error.c_str());
    return 1;
  }
  std::printf("schedule: %s\n", plan.detail.c_str());
  std::printf("deployment of %zu sensors: %s\n", field.size(),
              plan.report.to_string().c_str());
  std::printf("period %u = lower bound %u -> optimal; duty cycle %.3f, "
              "slot balance %.3f\n",
              plan.slots.period, plan.lower_bound, plan.duty_cycle,
              plan.slot_balance);

  // 4. Ship the slot table.
  std::printf("\nfirst lines of the deployable CSV:\n");
  const std::string csv = schedule_to_csv(field, plan.slots);
  std::printf("%s...\n", csv.substr(0, 120).c_str());
  return plan.collision_free ? 0 : 1;
}
