// Three-dimensional deployments (the paper's "arbitrary dimensions").
//
// "We formulate our results for arbitrary lattices in arbitrary
// dimensions, since the proofs are not more complicated than in the
// familiar case of the two-dimensional square lattice."  This example
// schedules an underwater-style 3-D sensor cube: sensors on Z³ with a
// 3x3x3 Chebyshev interference volume, scheduled with 27 slots by
// Theorem 1, verified collision-free, and simulated.
//
//   $ sensor_cube_3d
#include <cstdio>
#include <iostream>

#include "baseline/tdma.hpp"
#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "lattice/snf.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

int main() {
  using namespace latticesched;

  const Prototile volume = shapes::chebyshev_ball(3, 1);  // 27 cells
  std::printf("interference volume: %s, %zu lattice points\n",
              volume.name().c_str(), volume.size());

  // Exactness in 3-D: no boundary words here; the sublattice engine
  // takes over (3·Z³ is the obvious witness, found automatically).
  const ExactnessResult exact = decide_exactness(volume);
  if (!exact.exact) {
    std::fprintf(stderr, "3-D ball unexpectedly not exact\n");
    return 1;
  }
  std::printf("exact via %s; translate lattice: %s; quotient group: %s\n",
              to_string(exact.method),
              exact.tiling->period().to_string().c_str(),
              quotient_group_name(exact.tiling->period()).c_str());

  const TilingSchedule schedule(*exact.tiling);
  std::printf("Theorem-1 schedule: %s (optimal: %s)\n\n",
              schedule.description().c_str(),
              schedule.optimal() ? "yes" : "no");

  // A 6x6x6 sensor cube = 216 sensors.
  const Deployment cube = Deployment::grid(Box::cube(3, 0, 5), volume);
  const CollisionReport report = check_collision_free(cube, schedule);
  std::printf("deployment: %zu sensors in a 6x6x6 cube -> %s\n",
              cube.size(), report.to_string().c_str());

  // Saturated throughput vs TDMA, as in the 2-D experiments.
  SimConfig cfg;
  cfg.slots = 2700;
  cfg.saturated = true;
  SlotSimulator sim(cube, cfg);
  SlotScheduleMac tiling_mac(assign_slots(schedule, cube));
  SlotScheduleMac tdma_mac(tdma_slots(cube));
  const SimResult r_tiling = sim.run(tiling_mac);
  const SimResult r_tdma = sim.run(tdma_mac);

  Table t({"schedule", "slots", "collisions", "tput/sensor"});
  t.begin_row();
  t.cell("tiling (Thm 1)");
  t.cell(schedule.period());
  t.cell(r_tiling.failed_tx);
  t.cell(r_tiling.per_sensor_throughput(), 5);
  t.begin_row();
  t.cell("tdma");
  t.cell(static_cast<std::uint64_t>(cube.size()));
  t.cell(r_tdma.failed_tx);
  t.cell(r_tdma.per_sensor_throughput(), 5);
  t.print(std::cout);

  std::printf("\n27 slots regardless of cube size vs one slot per sensor: "
              "the paper's scaling\nargument is dimension-free.\n");
  return report.collision_free ? 0 : 1;
}
