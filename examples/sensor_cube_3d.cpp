// Three-dimensional deployments (the paper's "arbitrary dimensions").
//
// "We formulate our results for arbitrary lattices in arbitrary
// dimensions, since the proofs are not more complicated than in the
// familiar case of the two-dimensional square lattice."  This example
// schedules an underwater-style 3-D sensor cube: sensors on Z³ with a
// 3x3x3 Chebyshev interference volume, scheduled with 27 slots by
// Theorem 1, verified collision-free, and simulated.
//
//   $ sensor_cube_3d
#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "lattice/snf.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/table.hpp"

int main() {
  using namespace latticesched;

  const Prototile volume = shapes::chebyshev_ball(3, 1);  // 27 cells
  std::printf("interference volume: %s, %zu lattice points\n",
              volume.name().c_str(), volume.size());

  // Exactness in 3-D: no boundary words here; the sublattice engine
  // takes over (3·Z³ is the obvious witness, found automatically).
  const ExactnessResult exact = decide_exactness(volume);
  if (!exact.exact) {
    std::fprintf(stderr, "3-D ball unexpectedly not exact\n");
    return 1;
  }
  std::printf("exact via %s; translate lattice: %s; quotient group: %s\n",
              to_string(exact.method),
              exact.tiling->period().to_string().c_str(),
              quotient_group_name(exact.tiling->period()).c_str());

  // A 6x6x6 sensor cube = 216 sensors (the scenario library's "cube3d"
  // generator); the planner pipeline produces and verifies the
  // Theorem-1 schedule and the TDMA foil in one call.
  ScenarioParams params;
  params.n = 6;
  params.radius = 1;
  const ScenarioInstance cube3d =
      ScenarioRegistry::global().build("cube3d", params);
  const Deployment& cube = cube3d.deployment;
  PlanRequest request;
  request.deployment = &cube;
  request.tiling = &*exact.tiling;
  const auto plans =
      PlannerRegistry::global().plan_all(request, {"tiling", "tdma"});
  for (const PlanResult& p : plans) {
    if (!p.ok) {
      std::fprintf(stderr, "%s backend failed: %s\n", p.backend.c_str(),
                   p.error.c_str());
      return 1;
    }
  }
  std::printf("Theorem-1 schedule: %s (gap %.2f)\n",
              plans[0].detail.c_str(), plans[0].optimality_gap);
  std::printf("deployment: %zu sensors in a 6x6x6 cube -> %s\n",
              cube.size(), plans[0].report.to_string().c_str());

  // Saturated throughput vs TDMA, as in the 2-D experiments.
  SimConfig cfg;
  cfg.slots = 2700;
  cfg.saturated = true;
  SlotSimulator sim(cube, cfg);
  SlotScheduleMac tiling_mac(plans[0].slots);
  SlotScheduleMac tdma_mac(plans[1].slots);
  const SimResult r_tiling = sim.run(tiling_mac);
  const SimResult r_tdma = sim.run(tdma_mac);

  Table t({"schedule", "slots", "collisions", "tput/sensor"});
  t.begin_row();
  t.cell("tiling (Thm 1)");
  t.cell(plans[0].slots.period);
  t.cell(r_tiling.failed_tx);
  t.cell(r_tiling.per_sensor_throughput(), 5);
  t.begin_row();
  t.cell("tdma");
  t.cell(plans[1].slots.period);
  t.cell(r_tdma.failed_tx);
  t.cell(r_tdma.per_sensor_throughput(), 5);
  t.print(std::cout);

  std::printf("\n27 slots regardless of cube size vs one slot per sensor: "
              "the paper's scaling\nargument is dimension-free.\n");
  return plans[0].collision_free && plans[1].collision_free ? 0 : 1;
}
