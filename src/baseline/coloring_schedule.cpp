#include "baseline/coloring_schedule.hpp"

namespace latticesched {

const char* to_string(ColoringHeuristic h) {
  switch (h) {
    case ColoringHeuristic::kGreedy: return "greedy";
    case ColoringHeuristic::kWelshPowell: return "welsh-powell";
    case ColoringHeuristic::kDsatur: return "dsatur";
    case ColoringHeuristic::kAnnealing: return "annealing";
  }
  return "?";
}

SensorSlots coloring_slots_on_graph(const Graph& g, ColoringHeuristic h,
                                    const SaConfig& sa_config) {
  Coloring coloring;
  switch (h) {
    case ColoringHeuristic::kGreedy:
      coloring = greedy_coloring(g);
      break;
    case ColoringHeuristic::kWelshPowell:
      coloring = welsh_powell_coloring(g);
      break;
    case ColoringHeuristic::kDsatur:
      coloring = dsatur_coloring(g);
      break;
    case ColoringHeuristic::kAnnealing:
      coloring = sa_min_coloring(g, sa_config).coloring;
      break;
  }
  SensorSlots out;
  out.slot = std::move(coloring);
  out.period = color_count(out.slot);
  out.source = std::string("coloring-") + to_string(h);
  return out;
}

SensorSlots coloring_slots(const Deployment& d, ColoringHeuristic h,
                           const SaConfig& sa_config) {
  return coloring_slots_on_graph(build_conflict_graph(d), h, sa_config);
}

}  // namespace latticesched
