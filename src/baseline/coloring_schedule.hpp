// Graph-coloring schedulers (the related-work baselines).
//
// Broadcast scheduling = coloring the conflict graph.  These wrappers run
// the heuristics of graph/coloring.hpp and graph/sa_coloring.hpp on a
// deployment's conflict graph and package the result as a slot table, so
// they can be compared head-to-head with the constructive tiling schedule
// (which achieves the optimum without ever materializing the graph).
#pragma once

#include "core/schedule.hpp"
#include "graph/interference.hpp"
#include "graph/sa_coloring.hpp"

namespace latticesched {

enum class ColoringHeuristic {
  kGreedy,        ///< first-fit in index order
  kWelshPowell,   ///< first-fit by decreasing degree
  kDsatur,        ///< Brélaz saturation heuristic
  kAnnealing,     ///< simulated annealing (Wang–Ansari-style stand-in)
};

const char* to_string(ColoringHeuristic h);

/// Colors the deployment's conflict graph with the chosen heuristic.
SensorSlots coloring_slots(const Deployment& d, ColoringHeuristic h,
                           const SaConfig& sa_config = {});

/// Convenience: runs the heuristic on a prebuilt conflict graph (lets
/// benchmarks reuse one graph across heuristics).
SensorSlots coloring_slots_on_graph(const Graph& g, ColoringHeuristic h,
                                    const SaConfig& sa_config = {});

}  // namespace latticesched
