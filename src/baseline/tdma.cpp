#include "baseline/tdma.hpp"

#include <numeric>
#include <stdexcept>

namespace latticesched {

SensorSlots tdma_slots(const Deployment& d) {
  if (d.size() == 0) {
    throw std::invalid_argument("tdma_slots: empty deployment");
  }
  SensorSlots out;
  out.period = static_cast<std::uint32_t>(d.size());
  out.slot.resize(d.size());
  std::iota(out.slot.begin(), out.slot.end(), 0);
  out.source = "tdma";
  return out;
}

}  // namespace latticesched
