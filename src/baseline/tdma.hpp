// Plain TDMA baseline (paper's Introduction / Related Work).
//
// "The simplest way to ensure that the communication will be
// collision-free is to use a time division multiple access (TDMA)
// scheme ... The obvious disadvantage of TDMA is that it does not scale:
// if the number k of sensors is large, then the sensors cannot
// communicate frequently enough."
//
// Each sensor gets its own slot; the period equals the deployment size.
// Trivially collision-free and maximally wasteful — the foil the tiling
// schedule is measured against in the scaling experiments.
#pragma once

#include "core/schedule.hpp"
#include "graph/interference.hpp"

namespace latticesched {

/// Round-robin slot table: sensor i gets slot i, period = #sensors.
SensorSlots tdma_slots(const Deployment& d);

}  // namespace latticesched
