#include "core/analysis.hpp"

#include <algorithm>

namespace latticesched {

std::vector<std::uint64_t> slot_histogram(const Schedule& schedule,
                                          const Box& window) {
  std::vector<std::uint64_t> counts(schedule.period(), 0);
  window.for_each(
      [&](const Point& p) { ++counts[schedule.slot_of(p)]; });
  return counts;
}

double slot_balance(const std::vector<std::uint64_t>& histogram) {
  if (histogram.empty()) return 1.0;
  const auto [lo, hi] =
      std::minmax_element(histogram.begin(), histogram.end());
  if (*hi == 0) return 1.0;
  return static_cast<double>(*lo) / static_cast<double>(*hi);
}

double duty_cycle(const Schedule& schedule) {
  return 1.0 / static_cast<double>(schedule.period());
}

}  // namespace latticesched
