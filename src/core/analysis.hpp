// Schedule analysis utilities.
//
// Small diagnostics used by the examples and benches: how evenly a
// schedule spreads sensors over its slots (perfectly evenly for tiling
// schedules on whole periods — each slot class is a translate of the
// tiling, Figure 3), and the per-slot sender counts on a window.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "lattice/region.hpp"

namespace latticesched {

/// Number of window points assigned to each slot.
std::vector<std::uint64_t> slot_histogram(const Schedule& schedule,
                                          const Box& window);

/// max/min sender count over slots (min never 0 on windows at least one
/// period wide); 1.0 means perfectly balanced.
double slot_balance(const std::vector<std::uint64_t>& histogram);

/// Duty cycle of a sensor under the schedule: fraction of time it may
/// transmit (= 1/period for any single-slot-per-sensor schedule).
double duty_cycle(const Schedule& schedule);

}  // namespace latticesched
