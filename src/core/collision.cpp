#include "core/collision.hpp"

#include <sstream>
#include <stdexcept>

namespace latticesched {

std::string CollisionReport::to_string() const {
  if (collision_free) return "collision-free";
  std::ostringstream os;
  os << "collision in slot " << witness->slot << ": sensors #"
     << witness->sensor_a << " and #" << witness->sensor_b
     << " both cover " << witness->point;
  return os.str();
}

CollisionReport check_collision_free(const Deployment& d,
                                     const SensorSlots& slots) {
  if (slots.slot.size() != d.size()) {
    throw std::invalid_argument("check_collision_free: size mismatch");
  }
  if (slots.period == 0) {
    throw std::invalid_argument("check_collision_free: zero period");
  }
  CollisionReport report;
  // Bucket sensors by slot, then count coverage per lattice point.
  std::vector<std::vector<std::uint32_t>> by_slot(slots.period);
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    if (slots.slot[i] >= slots.period) {
      throw std::invalid_argument("check_collision_free: slot >= period");
    }
    by_slot[slots.slot[i]].push_back(i);
  }
  for (std::uint32_t s = 0; s < slots.period; ++s) {
    PointMap<std::uint32_t> first_cover;
    for (std::uint32_t i : by_slot[s]) {
      for (const Point& p : d.coverage_of(i)) {
        auto [it, inserted] = first_cover.emplace(p, i);
        if (!inserted) {
          ++report.pairs_checked;
          if (report.collision_free) {
            report.collision_free = false;
            report.witness =
                CollisionWitness{s, static_cast<std::size_t>(it->second),
                                 static_cast<std::size_t>(i), p};
          }
        }
      }
    }
  }
  return report;
}

CollisionReport check_collision_free(const Deployment& d,
                                     const Schedule& schedule) {
  return check_collision_free(d, assign_slots(schedule, d));
}

}  // namespace latticesched
