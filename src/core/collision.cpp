#include "core/collision.hpp"

#include <sstream>
#include <stdexcept>

#include "lattice/point_index.hpp"
#include "util/csr.hpp"

namespace latticesched {

std::string CollisionReport::to_string() const {
  if (collision_free) return "collision-free";
  std::ostringstream os;
  os << "collision in slot " << witness->slot << ": sensors #"
     << witness->sensor_a << " and #" << witness->sensor_b
     << " both cover " << witness->point;
  return os.str();
}

namespace {

void validate(const Deployment& d, const SensorSlots& slots) {
  if (slots.slot.size() != d.size()) {
    throw std::invalid_argument("check_collision_free: size mismatch");
  }
  if (slots.period == 0) {
    throw std::invalid_argument("check_collision_free: zero period");
  }
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    if (slots.slot[i] >= slots.period) {
      throw std::invalid_argument("check_collision_free: slot >= period");
    }
  }
}

/// Sensors grouped by slot as a CSR (row = slot, values = sensor ids in
/// ascending order, matching the seed's bucket fill order).
CsrU32 sensors_by_slot(const Deployment& d, const SensorSlots& slots) {
  CsrU32 by_slot;
  by_slot.begin_counting(slots.period);
  for (std::uint32_t i = 0; i < d.size(); ++i) by_slot.count(slots.slot[i]);
  by_slot.finish_counting();
  for (std::uint32_t i = 0; i < d.size(); ++i) by_slot.push(slots.slot[i], i);
  return by_slot;
}

}  // namespace

CollisionReport check_collision_free(const Deployment& d,
                                     const SensorSlots& slots) {
  validate(d, slots);
  const auto grid = d.coverage_grid();
  if (!grid.has_value()) return check_collision_free_reference(d, slots);
  CollisionReport report;
  const CsrU32 cov = coverage_ids(d, *grid);
  const CsrU32 by_slot = sensors_by_slot(d, slots);
  // stamp[id] == s + 1 marks grid cell `id` as covered in slot s by
  // owner[id]; stamps from earlier slots are simply stale, so the two
  // arrays are allocated once and never cleared.
  std::vector<std::uint32_t> stamp(grid->size(), 0);
  std::vector<std::uint32_t> owner(grid->size(), 0);
  for (std::uint32_t s = 0; s < slots.period; ++s) {
    const std::uint32_t mark = s + 1;
    for (std::uint32_t i : by_slot.row(s)) {
      for (std::uint32_t id : cov.row(i)) {
        if (stamp[id] == mark) {
          ++report.pairs_checked;
          if (report.collision_free) {
            report.collision_free = false;
            report.witness =
                CollisionWitness{s, static_cast<std::size_t>(owner[id]),
                                 static_cast<std::size_t>(i),
                                 grid->point_of(id)};
          }
        } else {
          stamp[id] = mark;
          owner[id] = i;
        }
      }
    }
  }
  return report;
}

CollisionReport check_collision_free_reference(const Deployment& d,
                                               const SensorSlots& slots) {
  validate(d, slots);
  CollisionReport report;
  // Bucket sensors by slot, then count coverage per lattice point.
  std::vector<std::vector<std::uint32_t>> by_slot(slots.period);
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    by_slot[slots.slot[i]].push_back(i);
  }
  for (std::uint32_t s = 0; s < slots.period; ++s) {
    PointMap<std::uint32_t> first_cover;
    for (std::uint32_t i : by_slot[s]) {
      for (const Point& p : d.coverage_of(i)) {
        auto [it, inserted] = first_cover.emplace(p, i);
        if (!inserted) {
          ++report.pairs_checked;
          if (report.collision_free) {
            report.collision_free = false;
            report.witness =
                CollisionWitness{s, static_cast<std::size_t>(it->second),
                                 static_cast<std::size_t>(i), p};
          }
        }
      }
    }
  }
  return report;
}

CollisionReport check_collision_free(const Deployment& d,
                                     const Schedule& schedule) {
  return check_collision_free(d, assign_slots(schedule, d));
}

}  // namespace latticesched
