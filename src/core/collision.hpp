// Collision checking — the paper's predicate, verbatim.
//
// A schedule is collision-free when no two sensors scheduled in the same
// slot have intersecting interference ranges: for simultaneous senders
// s, t we require (s + N_s) ∩ (t + N_t) = ∅.  The checker verifies this
// exhaustively for a finite deployment by counting, per slot, how many
// senders cover each lattice point; any point covered twice witnesses a
// collision.  This is the ground truth every schedule in the library is
// validated against.
//
// Engine note: the checker runs on the deployment's dense coverage grid —
// coverage lists become flat id arrays (CSR) and the per-slot "covered
// twice?" test is a stamped array write, no hashing.  The seed's hash-map
// implementation survives as check_collision_free_reference; it is also
// the automatic fallback when the deployment hull defeats the grid.
// Both produce identical reports (same witness, same pair counts).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/schedule.hpp"
#include "graph/interference.hpp"

namespace latticesched {

struct CollisionWitness {
  std::uint32_t slot = 0;
  std::size_t sensor_a = 0;
  std::size_t sensor_b = 0;
  Point point;  ///< lattice point covered by both senders
};

struct CollisionReport {
  bool collision_free = true;
  std::optional<CollisionWitness> witness;  ///< first violation found
  std::uint64_t pairs_checked = 0;          ///< same-slot coverage overlaps examined
  std::string to_string() const;
};

/// Checks the paper's collision-freedom predicate for a finite deployment
/// under a per-sensor slot table.
CollisionReport check_collision_free(const Deployment& d,
                                     const SensorSlots& slots);

/// Convenience overload evaluating a point-schedule on the deployment.
CollisionReport check_collision_free(const Deployment& d,
                                     const Schedule& schedule);

/// Seed implementation (per-slot hash maps); kept as the comparison
/// baseline for benches and the cross-validation oracle for tests.
CollisionReport check_collision_free_reference(const Deployment& d,
                                               const SensorSlots& slots);

}  // namespace latticesched
