#include "core/guarded.hpp"

#include <stdexcept>

namespace latticesched {

SensorSlots guarded_slots(const SensorSlots& base,
                          std::uint32_t guard_factor) {
  if (guard_factor == 0) {
    throw std::invalid_argument("guarded_slots: guard_factor == 0");
  }
  if (base.period == 0) {
    throw std::invalid_argument("guarded_slots: zero base period");
  }
  SensorSlots out;
  out.period = base.period * guard_factor;
  out.slot.reserve(base.slot.size());
  for (std::uint32_t s : base.slot) {
    out.slot.push_back(s * guard_factor);
  }
  out.source = base.source + "+guard" + std::to_string(guard_factor);
  return out;
}

std::int64_t guard_tolerance(std::uint32_t guard_factor) {
  return (static_cast<std::int64_t>(guard_factor) - 1) / 2;
}

}  // namespace latticesched
