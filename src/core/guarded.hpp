// Guard slots: buying clock-skew robustness with period.
//
// The paper assumes perfectly synchronized time.  The clock-drift
// ablation (bench_clock_drift) shows the optimal m-slot schedule is
// brittle: a node one slot off lands in a neighbor's slot.  The classic
// remedy is guard slots — stretch the period by a factor g and transmit
// only on multiples of g, so a drifted transmission lands in an idle
// guard slot instead of someone else's active slot.
//
// Guarantee (proved in the tests): if every node's offset satisfies
// |offset| < g/2... more precisely, with drift bounded by floor((g-1)/2)
// slots, a drifted node can only occupy guard positions of its OWN slot
// group, so two nodes collide only if their *undrifted* slots already
// collided.  The price is a g-fold throughput reduction — the schedule
// is no longer optimal in the paper's sense, quantifying exactly what
// the synchronized-time assumption is worth.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"

namespace latticesched {

/// Stretches a slot table: slot k (period m) becomes slot k·g
/// (period m·g); the g-1 slots after each active slot are guards.
SensorSlots guarded_slots(const SensorSlots& base, std::uint32_t guard_factor);

/// Largest per-node clock offset magnitude the guarded schedule
/// tolerates while preserving collision-freedom: floor((g-1)/2).
std::int64_t guard_tolerance(std::uint32_t guard_factor);

}  // namespace latticesched
