#include "core/mobile.hpp"

#include <cmath>
#include <stdexcept>

namespace latticesched {

MobileScheduler::MobileScheduler(Lattice lattice, TilingSchedule schedule)
    : lattice_(std::move(lattice)), schedule_(std::move(schedule)),
      cell_(voronoi_cell(lattice_)), cell_circumradius_(0.0) {
  if (lattice_.dim() != 2) {
    throw std::invalid_argument("MobileScheduler: 2-D lattices only");
  }
  if (schedule_.tiling().dim() != 2) {
    throw std::invalid_argument("MobileScheduler: schedule must be 2-D");
  }
  for (const Vec2& v : cell_.vertices()) {
    cell_circumradius_ =
        std::max(cell_circumradius_, std::sqrt(v.x * v.x + v.y * v.y));
  }
}

Point MobileScheduler::home_point(const RealVec& x) const {
  return lattice_.nearest_point(x);
}

std::uint32_t MobileScheduler::slot_of_location(const RealVec& x) const {
  return schedule_.slot_of(home_point(x));
}

bool MobileScheduler::range_fits(const RealVec& x, double rho) const {
  const Point home = home_point(x);
  const Covering cov = schedule_.tiling().covering(home);
  const Prototile& tile = schedule_.tiling().prototile(cov.prototile);
  // Tile membership set (lattice points of the covering tile).
  PointSet tile_points;
  for (const Point& n : tile.points()) {
    tile_points.insert(cov.translate + n);
  }
  // Any Voronoi cell that intersects the disc has its center within
  // rho + circumradius of x; scan that neighborhood for outside cells.
  const double reach = rho + cell_circumradius_ + 1e-9;
  const double min_len = std::sqrt(lattice_.minimum_sq());
  const auto bound =
      static_cast<std::int64_t>(std::ceil(reach / std::max(min_len, 1e-9))) +
      2;
  const Point base = home;
  Point off(2);
  for (off[0] = -bound; off[0] <= bound; ++off[0]) {
    for (off[1] = -bound; off[1] <= bound; ++off[1]) {
      const Point q = base + off;
      if (tile_points.count(q) != 0) continue;  // inside the tile region
      const RealVec e = lattice_.embed(q);
      const ConvexPolygon cell_q = cell_.translated({e[0], e[1]});
      if (cell_q.distance_to({x[0], x[1]}) <= rho) {
        return false;  // an outside cell reaches into the disc
      }
    }
  }
  return true;
}

bool MobileScheduler::may_send(const RealVec& x, double rho,
                               std::uint64_t t) const {
  if (t % period() != slot_of_location(x)) return false;
  return range_fits(x, rho);
}

}  // namespace latticesched
