// Location-based scheduling for mobile sensors (Conclusions section).
//
// The paper's extension: assign slots to *locations* rather than sensors.
// Lattice points carry the tiling schedule's slots; a sensor s inside the
// open Voronoi region of lattice point p may send at time t iff
// t ≡ slot(p) (mod m) AND the interference range of s fits within the
// tile of p (the quasi-polyform of Voronoi cells of the tile covering p).
// Both senders of a collision would have to occupy the same tile region —
// impossible since each tile has exactly one transmitting cell per slot —
// so the rule is collision-free for arbitrarily moving sensors.
#pragma once

#include <cstdint>

#include "core/tiling_scheduler.hpp"
#include "lattice/lattice.hpp"
#include "lattice/voronoi.hpp"

namespace latticesched {

class MobileScheduler {
 public:
  /// `lattice` supplies geometry (2-D), `schedule` the slot structure.
  MobileScheduler(Lattice lattice, TilingSchedule schedule);

  std::uint32_t period() const { return schedule_.period(); }
  const Lattice& lattice() const { return lattice_; }
  const TilingSchedule& schedule() const { return schedule_; }

  /// Nearest lattice point (the p whose Voronoi region contains x).
  Point home_point(const RealVec& x) const;

  /// Slot assigned to the location x.
  std::uint32_t slot_of_location(const RealVec& x) const;

  /// The paper's gate: whether a disc of radius rho centered at x lies
  /// inside the tile region of x's home point.  Decided exactly: the disc
  /// escapes the region iff some Voronoi cell of a lattice point OUTSIDE
  /// the home tile comes within rho of x; only cells whose centers lie
  /// within rho + cell circumradius can, so finitely many are checked
  /// via exact point-to-polygon distances.
  bool range_fits(const RealVec& x, double rho) const;

  /// Combined rule: may the sensor at x with range rho send at time t?
  bool may_send(const RealVec& x, double rho, std::uint64_t t) const;

 private:
  Lattice lattice_;
  TilingSchedule schedule_;
  ConvexPolygon cell_;        // Voronoi cell of the origin
  double cell_circumradius_;  // max vertex distance from the center
};

}  // namespace latticesched
