#include "core/multichannel.hpp"

#include <sstream>
#include <stdexcept>

namespace latticesched {

namespace {
std::uint32_t checked_ceil_div(std::uint32_t num, std::uint32_t den) {
  if (den == 0) {
    throw std::invalid_argument("MultiChannelSchedule: zero channels");
  }
  return (num + den - 1) / den;
}
}  // namespace

MultiChannelSchedule::MultiChannelSchedule(TilingSchedule base,
                                           std::uint32_t channels)
    : base_(std::move(base)), channels_(channels),
      period_(checked_ceil_div(base_.period(), channels)) {}

SlotChannel MultiChannelSchedule::assignment_of(const Point& p) const {
  const std::uint32_t e = base_.slot_of(p);
  return SlotChannel{e / channels_, e % channels_};
}

std::uint32_t MultiChannelSchedule::lower_bound_slots() const {
  const std::uint32_t clique = base_.lower_bound_slots();
  return (clique + channels_ - 1) / channels_;
}

std::string MultiChannelSchedule::description() const {
  std::ostringstream os;
  os << "multichannel(" << base_.description() << ", c=" << channels_
     << ", m=" << period_ << ")";
  return os.str();
}

MultiChannelSlots assign_multichannel(const MultiChannelSchedule& schedule,
                                      const Deployment& d) {
  MultiChannelSlots out;
  out.period = schedule.period();
  out.channels = schedule.channels();
  out.assignment.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    out.assignment.push_back(schedule.assignment_of(d.position(i)));
  }
  return out;
}

MultiChannelSlots fold_channels(const SensorSlots& slots,
                                std::uint32_t channels) {
  MultiChannelSlots out;
  out.channels = channels;
  out.period = checked_ceil_div(slots.period, channels);
  out.assignment.reserve(slots.slot.size());
  for (std::uint32_t e : slots.slot) {
    out.assignment.push_back(SlotChannel{e / channels, e % channels});
  }
  return out;
}

CollisionReport check_collision_free_multichannel(
    const Deployment& d, const MultiChannelSlots& slots) {
  if (slots.assignment.size() != d.size()) {
    throw std::invalid_argument(
        "check_collision_free_multichannel: size mismatch");
  }
  CollisionReport report;
  // Bucket by (slot, channel); coverage counting within each bucket.
  std::vector<std::vector<std::uint32_t>> buckets(
      static_cast<std::size_t>(slots.period) * slots.channels);
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    const SlotChannel& a = slots.assignment[i];
    if (a.slot >= slots.period || a.channel >= slots.channels) {
      throw std::invalid_argument(
          "check_collision_free_multichannel: assignment out of range");
    }
    buckets[a.slot * slots.channels + a.channel].push_back(i);
  }
  for (std::uint32_t b = 0; b < buckets.size(); ++b) {
    PointMap<std::uint32_t> first_cover;
    for (std::uint32_t i : buckets[b]) {
      for (const Point& p : d.coverage_of(i)) {
        auto [it, inserted] = first_cover.emplace(p, i);
        if (!inserted) {
          ++report.pairs_checked;
          if (report.collision_free) {
            report.collision_free = false;
            report.witness = CollisionWitness{
                b / slots.channels, static_cast<std::size_t>(it->second),
                static_cast<std::size_t>(i), p};
          }
        }
      }
    }
  }
  return report;
}

}  // namespace latticesched
