// Multi-channel tiling schedules (a natural extension the paper leaves
// open: sensors with c orthogonal frequency channels).
//
// Construction: enumerate the union N = {n_0 < … < n_{m-1}} exactly as in
// Theorems 1/2, then give element e the pair
//     slot(e)    = e / c   (period  ceil(m / c))
//     channel(e) = e % c.
// Two sensors transmitting simultaneously on the same channel share the
// same element index e, hence belong to different translates of the same
// tiling slot class — the Theorem-1 disjointness argument applies
// per-channel, so the schedule is collision-free.  By pigeonhole, no
// collision-free c-channel schedule beats ceil(|N1| / c) slots (the |N1|
// pairwise-conflicting sensors of one tile admit at most c per slot), so
// the construction is optimal for respectable tilings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/collision.hpp"
#include "core/tiling_scheduler.hpp"

namespace latticesched {

/// A (slot, channel) assignment.
struct SlotChannel {
  std::uint32_t slot = 0;
  std::uint32_t channel = 0;
  bool operator==(const SlotChannel& o) const {
    return slot == o.slot && channel == o.channel;
  }
};

class MultiChannelSchedule {
 public:
  /// Wraps a tiling schedule; `channels` must be >= 1.
  MultiChannelSchedule(TilingSchedule base, std::uint32_t channels);

  std::uint32_t channels() const { return channels_; }
  /// Slot period: ceil(|N| / channels).
  std::uint32_t period() const { return period_; }

  SlotChannel assignment_of(const Point& p) const;

  /// Whether the sensor at p may transmit at time t (on its channel).
  bool may_send(const Point& p, std::uint64_t t) const {
    return t % period_ == assignment_of(p).slot;
  }

  /// Pigeonhole lower bound: ceil(max_k |N_k| / channels).
  std::uint32_t lower_bound_slots() const;
  bool optimal() const { return lower_bound_slots() == period_; }

  const TilingSchedule& base() const { return base_; }
  std::string description() const;

 private:
  TilingSchedule base_;
  std::uint32_t channels_;
  std::uint32_t period_;
};

/// Collision check for multi-channel slot tables: sensors collide iff
/// they share slot AND channel and their coverages intersect.
struct MultiChannelSlots {
  std::vector<SlotChannel> assignment;
  std::uint32_t period = 0;
  std::uint32_t channels = 0;
};

MultiChannelSlots assign_multichannel(const MultiChannelSchedule& schedule,
                                      const Deployment& d);

/// Folds ANY collision-free slot table onto c channels by the same map
/// the theorem construction uses: slot e becomes (e / c, e % c), period
/// ceil(m / c).  Two sensors share (slot, channel) iff they shared the
/// original slot, so collision-freedom is preserved verbatim — this is
/// how the planner pipeline extends every backend (not just tiling) to
/// multichannel radios.  For the tiling schedule the folding coincides
/// with MultiChannelSchedule's assignment exactly.
MultiChannelSlots fold_channels(const SensorSlots& slots,
                                std::uint32_t channels);

CollisionReport check_collision_free_multichannel(
    const Deployment& d, const MultiChannelSlots& slots);

}  // namespace latticesched
