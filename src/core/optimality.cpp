#include "core/optimality.hpp"

#include <algorithm>

namespace latticesched {

RoleConflictGraph build_role_conflict_graph(const Tiling& tiling) {
  RoleConflictGraph out;
  // Enumerate roles and remember each role's vertex id.
  std::vector<std::vector<std::uint32_t>> role_id(tiling.prototile_count());
  for (std::uint32_t k = 0; k < tiling.prototile_count(); ++k) {
    role_id[k].resize(tiling.prototile(k).size());
    for (std::uint32_t i = 0; i < tiling.prototile(k).size(); ++i) {
      role_id[k][i] = static_cast<std::uint32_t>(out.roles.size());
      out.roles.push_back(Role{k, i});
    }
  }
  out.graph = Graph(out.roles.size());

  // Window wide enough that every interference offset between two
  // placements appears: tile reach covers |n_i| + |N_k| extents, the
  // period HNF diagonal covers the canonical placement offsets.
  std::int64_t reach = 0;
  for (const Prototile& t : tiling.prototiles()) {
    const Box bb = t.bounding_box();
    for (std::size_t i = 0; i < t.dim(); ++i) {
      reach = std::max(reach,
                       static_cast<std::int64_t>(std::llabs(bb.lo()[i])));
      reach = std::max(reach,
                       static_cast<std::int64_t>(std::llabs(bb.hi()[i])));
    }
  }
  std::int64_t period_extent = 0;
  for (std::size_t i = 0; i < tiling.dim(); ++i) {
    period_extent =
        std::max(period_extent, tiling.period().basis().at(i, i));
  }
  const Box window = Box::centered(tiling.dim(), 4 * reach + period_extent);

  // Anchor one placement at each canonical class; the partner ranges over
  // the window.  The conflict relation is invariant under translating
  // both placements by a period vector, so this enumerates all placement
  // pairs up to symmetry.
  const auto partners = tiling.placements_in(window);
  for (const auto& [s, k] : tiling.placements()) {
    const Prototile& nk = tiling.prototile(k);
    // Coverage index: lattice point -> roles of tile (s, k) covering it.
    for (const auto& [t, l] : partners) {
      if (s == t && k == l) continue;  // same placement: same tile
      const Prototile& nl = tiling.prototile(l);
      // Roles (k, i) and (l, j) conflict iff
      //   (s + n_i + N_k) ∩ (t + n_j + N_l) ≠ ∅.
      for (std::uint32_t i = 0; i < nk.size(); ++i) {
        const Point base_i = s + nk.element(i);
        PointVec cov_i = nk.translated(base_i);
        PointSet cov_set(cov_i.begin(), cov_i.end());
        for (std::uint32_t j = 0; j < nl.size(); ++j) {
          if (out.graph.has_edge(role_id[k][i], role_id[l][j])) continue;
          const Point base_j = t + nl.element(j);
          bool intersect = false;
          for (const Point& q : nl.points()) {
            if (cov_set.count(base_j + q) != 0) {
              intersect = true;
              break;
            }
          }
          if (intersect) {
            out.graph.add_edge(role_id[k][i], role_id[l][j]);
          }
        }
      }
    }
    // Same-tile roles always conflict pairwise: for i != j the point
    // s + n_i + n_j lies in both neighborhoods.
    for (std::uint32_t i = 0; i < nk.size(); ++i) {
      for (std::uint32_t j = i + 1; j < nk.size(); ++j) {
        out.graph.add_edge(role_id[k][i], role_id[k][j]);
      }
    }
  }
  return out;
}

TilingOptimum optimal_slots_for_tiling(const Tiling& tiling,
                                       const ExactColoringConfig& config) {
  TilingOptimum out;
  const RoleConflictGraph rcg = build_role_conflict_graph(tiling);
  const ExactColoringResult ec = exact_chromatic(rcg.graph, config);
  out.optimal_slots = ec.colors;
  out.proven = ec.proven_optimal;
  out.role_slots = ec.coloring;
  // Theorem 2's algorithm uses the union of the prototiles.
  PointVec all;
  for (const Prototile& t : tiling.prototiles()) {
    for (const Point& p : t.points()) all.push_back(p);
  }
  out.theorem2_slots =
      static_cast<std::uint32_t>(sorted_unique(std::move(all)).size());
  return out;
}

DeploymentOptimum optimal_slots_for_deployment(
    const Deployment& d, const ExactColoringConfig& config) {
  DeploymentOptimum out;
  const Graph g = build_conflict_graph(d);
  const ExactColoringResult ec = exact_chromatic(g, config);
  out.optimal_slots = ec.colors;
  out.proven = ec.proven_optimal;
  out.clique_lower_bound = ec.clique_lower_bound;
  return out;
}

}  // namespace latticesched
