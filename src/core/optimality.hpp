// Optimality analysis of tiling schedules (Theorem 1/2 bounds, Section 4).
//
// Two notions are machine-checked here:
//
//  * Deployment optimum — the chromatic number of the conflict graph of a
//    finite deployment: the fewest slots ANY collision-free periodic
//    schedule can use on it.  For windows containing a full tile this is
//    at least max_k |N_k| (the tile's sensors conflict pairwise), and
//    Theorems 1/2 say the tiling schedule meets |∪N_k| — equal for
//    respectable tilings.
//
//  * Tiling-constrained optimum — Section 4's ground rules: every
//    translate of a prototile uses the same internal schedule, schedules
//    of different prototiles chosen independently.  Then a schedule is a
//    proper coloring of the *role conflict graph* on roles
//    (prototile k, element i), with an edge whenever SOME pair of
//    placements in the tiling makes the two roles interfere.  Its
//    chromatic number is the optimum the paper reports for Figure 5
//    (m = 6 for the mixed S/Z tiling, m = 4 for the symmetric one).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coloring.hpp"
#include "graph/interference.hpp"
#include "tiling/tiling.hpp"

namespace latticesched {

/// A role: element `element_index` of prototile `prototile`.
struct Role {
  std::uint32_t prototile = 0;
  std::uint32_t element_index = 0;
};

struct RoleConflictGraph {
  Graph graph;              ///< vertices follow `roles` order
  std::vector<Role> roles;  ///< all (prototile, element) pairs
};

/// Builds the role conflict graph of a periodic tiling.  Placement pairs
/// are enumerated up to period translation (one tile anchored at its
/// canonical classes, the other ranging over a window wide enough to
/// cover all possible interference offsets).
RoleConflictGraph build_role_conflict_graph(const Tiling& tiling);

struct TilingOptimum {
  std::uint32_t optimal_slots = 0;   ///< χ(role conflict graph)
  bool proven = false;               ///< exact search completed
  std::uint32_t theorem2_slots = 0;  ///< |∪N_k| used by the paper's algorithm
  Coloring role_slots;               ///< an optimal role → slot assignment
};

/// Exact tiling-constrained optimum (Section 4 ground rules).
TilingOptimum optimal_slots_for_tiling(
    const Tiling& tiling, const ExactColoringConfig& config = {});

struct DeploymentOptimum {
  std::uint32_t optimal_slots = 0;  ///< χ(conflict graph) (or best found)
  bool proven = false;
  std::uint32_t clique_lower_bound = 0;
};

/// Exact (or best-effort) optimum over ALL collision-free periodic
/// schedules of a finite deployment.
DeploymentOptimum optimal_slots_for_deployment(
    const Deployment& d, const ExactColoringConfig& config = {});

}  // namespace latticesched
