#include "core/plan_service.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "core/plan_session.hpp"
#include "util/parallel.hpp"

namespace latticesched {

bool BatchItemReport::all_ok() const {
  if (!built) return false;
  const auto clean = [](const std::vector<PlanResult>& rs) {
    for (const PlanResult& r : rs) {
      if (!r.ok || !r.collision_free) return false;
    }
    return true;
  };
  if (!steps.empty()) {
    for (const BatchStepReport& step : steps) {
      if (!clean(step.results)) return false;
    }
    return true;
  }
  return clean(results);
}

bool BatchReport::all_ok() const {
  for (const BatchItemReport& item : items) {
    if (!item.all_ok()) return false;
  }
  return true;
}

PlanService::PlanService(const PlannerRegistry* planners,
                         const ScenarioRegistry* scenarios)
    : planners_(planners != nullptr ? planners : &PlannerRegistry::global()),
      scenarios_(scenarios != nullptr ? scenarios
                                      : &ScenarioRegistry::global()) {}

BatchReport PlanService::run(const std::vector<BatchItem>& items) {
  // Fail fast on unknown backend names so a typo cannot surface as a
  // mid-batch exception from a pool worker.
  for (const BatchItem& item : items) {
    for (const std::string& name : item.backends) {
      if (planners_->find(name) == nullptr) {
        throw std::invalid_argument("PlanService: unknown backend '" + name +
                                    "'");
      }
    }
  }

  const TilingCache::Stats before = cache_.stats();
  const tune::TuneCache::Stats tune_before = tune_cache_.stats();
  const auto t0 = std::chrono::steady_clock::now();

  BatchReport report;
  report.items.resize(items.size());
  // Region-shard counters accumulate across the item fan-out: `regions`
  // is a running max (largest partition any session planned), the rest
  // are sums.
  std::atomic<std::uint64_t> regions_max{0};
  std::atomic<std::uint64_t> seam_total{0};
  std::atomic<std::uint64_t> recolor_total{0};
  // Item fan-out; each item's own plan_all fan-out degrades to serial
  // inside this region (the pool never nests), so the parallelism grain
  // is one scenario per worker.
  parallel_for(0, items.size(), [&](std::size_t i) {
    const BatchItem& item = items[i];
    BatchItemReport& out = report.items[i];
    out.scenario = item.query.scenario;
    try {
      ScenarioInstance instance =
          scenarios_->build(item.query.scenario, item.query.params, &cache_);
      out.label = instance.label;
      out.sensors = instance.deployment.size();
      out.channels = instance.channels;
      out.built = true;

      // An explicit script overrides the scenario's generated trace.
      MutationTrace trace = std::move(instance.trace);
      if (!item.trace_script.empty()) {
        trace = parse_mutation_script(item.trace_script);
      }

      // Every item — static or dynamic — runs through one PlanSession;
      // a static item is simply a zero-delta session, so the two paths
      // cannot drift apart.
      SessionConfig config;
      config.backends = item.backends;
      config.search = item.search;
      config.sa = item.sa;
      config.verify = item.verify;
      config.regions = item.regions;
      config.region_halo = item.region_halo;
      config.channels = instance.channels;
      if (instance.lattice.has_value()) config.lattice = &*instance.lattice;
      if (instance.tiling.has_value()) config.tiling = &*instance.tiling;
      config.tiling_cache = &cache_;
      config.planners = planners_;
      config.tune_cache = &tune_cache_;
      config.tune_trials = item.tune_trials;
      config.tune_budget_ms = item.tune_budget_ms;
      // Families bucket by scenario name, so a sweep's items of the
      // same family share tuned configs (and the distributed shards of
      // one sweep agree on them).
      config.tune_family = item.query.scenario;
      PlanSession session(std::move(instance.deployment), config);
      if (trace.empty()) {
        out.results = session.replan();
      } else {
        // Dynamic item: replay the trace; every step after the first
        // replans incrementally.
        out.steps.push_back(BatchStepReport{
            0, session.deployment().size(), session.replan()});
        for (const MutationStep& step : trace.steps) {
          session.apply(step.delta);
          out.steps.push_back(BatchStepReport{
              step.at, session.deployment().size(), session.replan()});
        }
        out.results = out.steps.back().results;
      }
      const PlanSession::Stats& st = session.stats();
      std::uint64_t seen = regions_max.load(std::memory_order_relaxed);
      while (st.regions > seen &&
             !regions_max.compare_exchange_weak(seen, st.regions,
                                                std::memory_order_relaxed)) {
      }
      seam_total.fetch_add(st.seam_sensors, std::memory_order_relaxed);
      recolor_total.fetch_add(st.stitch_recolored, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      out.built = false;
      out.error = e.what();
      out.results.clear();
      out.steps.clear();
    }
  });

  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  const TilingCache::Stats after = cache_.stats();
  report.cache_hits = after.hits - before.hits;
  report.cache_misses = after.misses - before.misses;
  report.search_subtree_tasks =
      after.search_subtree_tasks - before.search_subtree_tasks;
  report.search_steals = after.search_steals - before.search_steals;
  report.search_kernel = after.search_kernel;
  report.regions = regions_max.load(std::memory_order_relaxed);
  report.seam_sensors = seam_total.load(std::memory_order_relaxed);
  report.stitch_recolored = recolor_total.load(std::memory_order_relaxed);
  const tune::TuneCache::Stats tune_after = tune_cache_.stats();
  report.tune_hits = tune_after.hits - tune_before.hits;
  report.tune_misses = tune_after.misses - tune_before.misses;
  report.tune_searches = tune_after.searches - tune_before.searches;
  report.tune_trials_run = tune_after.trials - tune_before.trials;
  return report;
}

std::vector<BatchItem> PlanService::registry_batch(
    const ScenarioParams& params,
    const std::vector<std::string>& backends) const {
  std::vector<BatchItem> items;
  for (const std::string& name : scenarios_->names()) {
    BatchItem item;
    item.query = ScenarioQuery{name, params};
    item.backends = backends;
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<BatchItem> PlanService::items_for(
    const std::vector<ScenarioQuery>& queries,
    const std::vector<std::string>& backends) {
  std::vector<BatchItem> items;
  items.reserve(queries.size());
  for (const ScenarioQuery& q : queries) {
    BatchItem item;
    item.query = q;
    item.backends = backends;
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace latticesched
