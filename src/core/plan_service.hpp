// Batched planning service: many (scenario, backend-set) pairs in one
// call, fanned over the shared thread pool, with torus-search results
// memoized in a TilingCache.
//
// This is the workload shape a production scheduler serves (the related
// work frames sensor scheduling as batch optimization over many
// instances): a client submits a sweep — every registry scenario, a
// radius sweep, seed replicas — and the service plans them all.  The
// cache makes repeated sweeps near-free: the period sweep for a given
// (prototile set, search budget) runs once per service lifetime, and
// the hit/miss counters come back in every BatchReport so reports can
// prove it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "core/tiling_cache.hpp"

namespace latticesched {

/// One unit of batch work: build the scenario, plan it on the backends.
struct BatchItem {
  ScenarioQuery query;
  /// Backend names; empty = every registered backend supporting the
  /// request (PlannerRegistry::plan_all semantics).
  std::vector<std::string> backends;
  TorusSearchConfig search;
  SaConfig sa;
  bool verify = true;
};

struct BatchItemReport {
  std::string scenario;        ///< registry name
  std::string label;           ///< instance label (report key)
  std::size_t sensors = 0;
  std::uint32_t channels = 1;
  bool built = false;          ///< scenario generator succeeded
  std::string error;           ///< generator failure (built == false)
  std::vector<PlanResult> results;

  /// Built, and every backend produced a verified collision-free plan.
  bool all_ok() const;
};

struct BatchReport {
  std::vector<BatchItemReport> items;  ///< in request order
  std::uint64_t cache_hits = 0;        ///< TilingCache hits of THIS run
  std::uint64_t cache_misses = 0;      ///< TilingCache misses of THIS run
  /// Worker processes that died (or exited nonzero) during a distributed
  /// run (src/dist); their shards were reassigned, so a nonzero count
  /// with all_ok() means the sweep survived the failures.  Always 0 for
  /// in-process PlanService runs.
  std::uint64_t worker_failures = 0;
  double wall_seconds = 0.0;

  bool all_ok() const;
};

class PlanService {
 public:
  /// Uses the global planner/scenario registries unless given others.
  /// The service owns its TilingCache; keep one service alive across
  /// batches to keep the cache warm.
  explicit PlanService(const PlannerRegistry* planners = nullptr,
                       const ScenarioRegistry* scenarios = nullptr);

  TilingCache& tiling_cache() { return cache_; }

  /// Plans every item (fanned over the shared pool; results in request
  /// order at any thread count).  Scenario-build failures are reported
  /// per item, never thrown; unknown backend names throw
  /// std::invalid_argument before any work starts.
  BatchReport run(const std::vector<BatchItem>& items);

  /// Convenience: one BatchItem per registered scenario, sharing params
  /// and backend set — "plan the whole registry".
  std::vector<BatchItem> registry_batch(
      const ScenarioParams& params = {},
      const std::vector<std::string>& backends = {}) const;

  /// Lifts (scenario, params) queries (e.g. sweep-helper output) into
  /// batch items sharing one backend set.
  static std::vector<BatchItem> items_for(
      const std::vector<ScenarioQuery>& queries,
      const std::vector<std::string>& backends = {});

 private:
  const PlannerRegistry* planners_;
  const ScenarioRegistry* scenarios_;
  TilingCache cache_;
};

}  // namespace latticesched
