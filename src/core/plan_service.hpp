// Batched planning service: many (scenario, backend-set) pairs in one
// call, fanned over the shared thread pool, with torus-search results
// memoized in a TilingCache.
//
// This is the workload shape a production scheduler serves (the related
// work frames sensor scheduling as batch optimization over many
// instances): a client submits a sweep — every registry scenario, a
// radius sweep, seed replicas — and the service plans them all.  The
// cache makes repeated sweeps near-free: the period sweep for a given
// (prototile set, search budget) runs once per service lifetime, and
// the hit/miss counters come back in every BatchReport so reports can
// prove it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "core/tiling_cache.hpp"
#include "tune/tune_cache.hpp"

namespace latticesched {

/// One unit of batch work: build the scenario, plan it on the backends.
/// Dynamic scenarios (a non-empty ScenarioInstance::trace, or an
/// explicit `trace_script`) run through a PlanSession: step 0 plans the
/// initial deployment, then every trace delta is applied and replanned
/// incrementally.
struct BatchItem {
  ScenarioQuery query;
  /// Backend names; empty = every registered backend supporting the
  /// request (PlannerRegistry::plan_all semantics).
  std::vector<std::string> backends;
  TorusSearchConfig search;
  SaConfig sa;
  bool verify = true;
  /// Spatial shard count for the region-sharded backend
  /// (SessionConfig::regions; 1 = unsharded).  Ships over the
  /// distributed wire alongside the other planning knobs.
  std::size_t regions = 1;
  /// Region halo override (SessionConfig::region_halo); -1 = the
  /// deployment's interference reach.
  std::int64_t region_halo = -1;
  /// Optional mutation trace in the parse_mutation_script text format
  /// (core/plan_session.hpp); overrides the scenario's own trace.  The
  /// driver's --script flag ships through here — including over the
  /// distributed wire.
  std::string trace_script;
  /// Auto-backend tuning budgets (SessionConfig::{tune_trials,
  /// tune_budget_ms}); ship over the distributed wire like every other
  /// planning knob.
  std::size_t tune_trials = 8;
  std::uint64_t tune_budget_ms = 0;
};

/// Results of one step of a dynamic item.
struct BatchStepReport {
  std::uint64_t step = 0;   ///< 0 = initial deployment, else the trace `at`
  std::size_t sensors = 0;  ///< fleet size at this step
  std::vector<PlanResult> results;
};

struct BatchItemReport {
  std::string scenario;        ///< registry name
  std::string label;           ///< instance label (report key)
  std::size_t sensors = 0;     ///< initial fleet size
  std::uint32_t channels = 1;
  bool built = false;          ///< scenario generator succeeded
  std::string error;           ///< generator failure (built == false)
  /// Static items: the backends' results.  Dynamic items: the FINAL
  /// step's results (the full sequence lives in `steps`).
  std::vector<PlanResult> results;
  /// Per-step results of a dynamic item, in step order (empty for
  /// static items).
  std::vector<BatchStepReport> steps;

  /// Built, and every backend produced a verified collision-free plan
  /// (on every step, for dynamic items).
  bool all_ok() const;
};

struct BatchReport {
  std::vector<BatchItemReport> items;  ///< in request order
  std::uint64_t cache_hits = 0;        ///< TilingCache hits of THIS run
  std::uint64_t cache_misses = 0;      ///< TilingCache misses of THIS run
  /// Work-stealing torus-search counters of THIS run (see
  /// TorusSearchStats): subtree tasks the parallel dense engine
  /// executed, and how many of them were stolen across workers.  Both 0
  /// when every search was a cache hit or ran serially.
  std::uint64_t search_subtree_tasks = 0;
  std::uint64_t search_steals = 0;
  /// Mask-kernel implementation the searches dispatched to ("scalar" /
  /// "avx2"; empty when no search ran this batch).
  std::string search_kernel;
  /// Tuning counters of THIS run (TuneCache::Stats deltas): auto-backend
  /// cache hits/misses, bounded tuning searches run on misses, and
  /// candidate configs measured by those searches.  All 0 when no item
  /// planned with the `auto` backend.
  std::uint64_t tune_hits = 0;
  std::uint64_t tune_misses = 0;
  std::uint64_t tune_searches = 0;
  std::uint64_t tune_trials_run = 0;
  /// Region-shard counters of THIS run: `regions` is the largest region
  /// partition any item planned with; the other two sum over every
  /// item's stitch passes (SessionStats).  All 0 when no item ran the
  /// region-sharded backend.
  std::uint64_t regions = 0;
  std::uint64_t seam_sensors = 0;
  std::uint64_t stitch_recolored = 0;
  /// Worker processes that died (or exited nonzero) during a distributed
  /// run (src/dist); their shards were reassigned, so a nonzero count
  /// with all_ok() means the sweep survived the failures.  Always 0 for
  /// in-process PlanService runs.
  std::uint64_t worker_failures = 0;
  /// Workers killed by the coordinator for missing their deadlines
  /// (hung handshake, silent Suspect probe, mid-frame stall) — counted
  /// separately from worker_failures because a hang usually means a
  /// deadline/budget problem, not a crash.  Always 0 in-process.
  std::uint64_t worker_timeouts = 0;
  /// True when the coordinator exhausted every worker slot (spawns plus
  /// retries) and finished the remaining items by in-process serial
  /// execution instead of throwing away completed work.
  bool degraded = false;
  /// Indices (into `items`) quarantined after their assignment crashed
  /// repeated workers; reported as built=false items with a quarantine
  /// error instead of being retried forever.  Sorted ascending.
  std::vector<std::size_t> quarantined_items;
  double wall_seconds = 0.0;

  bool all_ok() const;
};

class PlanService {
 public:
  /// Uses the global planner/scenario registries unless given others.
  /// The service owns its TilingCache; keep one service alive across
  /// batches to keep the cache warm.
  explicit PlanService(const PlannerRegistry* planners = nullptr,
                       const ScenarioRegistry* scenarios = nullptr);

  TilingCache& tiling_cache() { return cache_; }
  tune::TuneCache& tune_cache() { return tune_cache_; }

  /// Plans every item (fanned over the shared pool; results in request
  /// order at any thread count).  Scenario-build failures are reported
  /// per item, never thrown; unknown backend names throw
  /// std::invalid_argument before any work starts.
  BatchReport run(const std::vector<BatchItem>& items);

  /// Convenience: one BatchItem per registered scenario, sharing params
  /// and backend set — "plan the whole registry".
  std::vector<BatchItem> registry_batch(
      const ScenarioParams& params = {},
      const std::vector<std::string>& backends = {}) const;

  /// Lifts (scenario, params) queries (e.g. sweep-helper output) into
  /// batch items sharing one backend set.
  static std::vector<BatchItem> items_for(
      const std::vector<ScenarioQuery>& queries,
      const std::vector<std::string>& backends = {});

 private:
  const PlannerRegistry* planners_;
  const ScenarioRegistry* scenarios_;
  TilingCache cache_;
  tune::TuneCache tune_cache_;
};

}  // namespace latticesched
