#include "core/plan_session.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/region_shard.hpp"
#include "graph/coloring.hpp"
#include "tiling/shapes.hpp"
#include "util/parallel.hpp"

namespace latticesched {

// ---------------------------------------------------------------------------
// Script parsing / emission
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    tokens.push_back(tok);
  }
  return tokens;
}

[[noreturn]] void script_error(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("script line " + std::to_string(line_no) +
                              ": " + what);
}

std::int64_t parse_int(const std::string& tok, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(tok, &used);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    script_error(line_no, "expected an integer, got '" + tok + "'");
  }
}

/// Reads `dim` coordinates starting at tokens[at].
Point parse_point(const std::vector<std::string>& tokens, std::size_t at,
                  std::size_t dim, std::size_t line_no) {
  if (at + dim > tokens.size()) {
    script_error(line_no, "expected " + std::to_string(dim) +
                              " coordinates");
  }
  std::vector<std::int64_t> coords(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    coords[i] = parse_int(tokens[at + i], line_no);
  }
  return Point(coords);
}

}  // namespace

MutationTrace parse_mutation_script(const std::string& text) {
  MutationTrace trace;
  std::size_t dim = 2;
  bool dim_fixed = false;  // dim may only change before the first step
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  DeploymentDelta* current = nullptr;
  std::uint64_t last_at = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& op = tokens[0];

    if (op == "dim") {
      if (dim_fixed) script_error(line_no, "'dim' after the first step");
      if (tokens.size() != 2) script_error(line_no, "usage: dim D");
      const std::int64_t d = parse_int(tokens[1], line_no);
      if (d < 1 || d > 8) script_error(line_no, "dimension out of range");
      dim = static_cast<std::size_t>(d);
      continue;
    }
    if (op == "step") {
      if (tokens.size() > 2) script_error(line_no, "usage: step [AT]");
      const std::uint64_t at =
          tokens.size() == 2
              ? static_cast<std::uint64_t>(parse_int(tokens[1], line_no))
              : last_at + 1;
      if (at <= last_at) {
        script_error(line_no, "step timestamps must be strictly increasing");
      }
      last_at = at;
      dim_fixed = true;
      trace.steps.push_back(MutationStep{at, {}});
      current = &trace.steps.back().delta;
      continue;
    }
    if (current == nullptr) {
      script_error(line_no, "'" + op + "' before the first 'step'");
    }

    if (op == "add") {
      DeploymentDelta::SensorAdd add;
      add.position = parse_point(tokens, 1, dim, line_no);
      if (tokens.size() == 1 + dim) {
        // neighborhood inherited
      } else if (tokens.size() == 3 + dim && tokens[1 + dim] == "r") {
        const std::int64_t r = parse_int(tokens[2 + dim], line_no);
        if (r < 0) script_error(line_no, "radius must be >= 0");
        add.neighborhood = shapes::chebyshev_ball(dim, r);
      } else {
        script_error(line_no, "usage: add X.. [r R]");
      }
      current->add_sensors.push_back(std::move(add));
    } else if (op == "remove") {
      if (tokens.size() != 1 + dim) script_error(line_no, "usage: remove X..");
      current->remove_sensors.push_back(parse_point(tokens, 1, dim, line_no));
    } else if (op == "move") {
      if (tokens.size() != 1 + 2 * dim) {
        script_error(line_no, "usage: move X.. Y..");
      }
      current->move_sensors.push_back(DeploymentDelta::SensorMove{
          parse_point(tokens, 1, dim, line_no),
          parse_point(tokens, 1 + dim, dim, line_no)});
    } else if (op == "radius") {
      if (tokens.size() < 2) script_error(line_no, "usage: radius R [at X..]");
      DeploymentDelta::RadiusChange rc;
      rc.radius = parse_int(tokens[1], line_no);
      if (rc.radius < 0) script_error(line_no, "radius must be >= 0");
      if (tokens.size() > 2) {
        if (tokens[2] != "at" || (tokens.size() - 3) % dim != 0 ||
            tokens.size() == 3) {
          script_error(line_no, "usage: radius R at X.. [Y.. ...]");
        }
        for (std::size_t at = 3; at < tokens.size(); at += dim) {
          rc.sensors.push_back(parse_point(tokens, at, dim, line_no));
        }
      }
      current->set_radius.push_back(std::move(rc));
    } else if (op == "channels") {
      if (tokens.size() != 2) script_error(line_no, "usage: channels C");
      const std::int64_t c = parse_int(tokens[1], line_no);
      if (c < 1) script_error(line_no, "channels must be >= 1");
      current->set_channels = static_cast<std::uint32_t>(c);
    } else {
      script_error(line_no, "unknown directive '" + op + "'");
    }
  }
  return trace;
}

namespace {

void emit_point(std::ostream& os, const Point& p) {
  for (std::size_t i = 0; i < p.dim(); ++i) os << ' ' << p[i];
}

/// Chebyshev radius of a ball prototile, or nullopt when the shape is
/// not a Chebyshev ball (not representable in the script format).
std::optional<std::int64_t> ball_radius(const Prototile& shape) {
  const Box bb = shape.bounding_box();
  const std::int64_t r = bb.hi()[0];
  if (shape == shapes::chebyshev_ball(shape.dim(), std::max<std::int64_t>(
                                                       0, r))) {
    return std::max<std::int64_t>(0, r);
  }
  return std::nullopt;
}

}  // namespace

std::string mutation_trace_to_script(const MutationTrace& trace,
                                     std::size_t dim) {
  std::ostringstream os;
  os << "dim " << dim << '\n';
  for (const MutationStep& step : trace.steps) {
    os << "step " << step.at << '\n';
    const DeploymentDelta& delta = step.delta;
    for (const Point& p : delta.remove_sensors) {
      os << "remove";
      emit_point(os, p);
      os << '\n';
    }
    for (const DeploymentDelta::SensorMove& m : delta.move_sensors) {
      os << "move";
      emit_point(os, m.from);
      emit_point(os, m.to);
      os << '\n';
    }
    for (const DeploymentDelta::RadiusChange& rc : delta.set_radius) {
      std::int64_t radius = rc.radius;
      if (rc.neighborhood.has_value()) {
        const auto r = ball_radius(*rc.neighborhood);
        if (!r.has_value()) {
          throw std::invalid_argument(
              "mutation_trace_to_script: non-Chebyshev neighborhood "
              "override is not representable");
        }
        radius = *r;
      }
      os << "radius " << radius;
      if (!rc.sensors.empty()) {
        os << " at";
        for (const Point& p : rc.sensors) emit_point(os, p);
      }
      os << '\n';
    }
    for (const DeploymentDelta::SensorAdd& add : delta.add_sensors) {
      os << "add";
      emit_point(os, add.position);
      if (add.neighborhood.has_value()) {
        const auto r = ball_radius(*add.neighborhood);
        if (!r.has_value()) {
          throw std::invalid_argument(
              "mutation_trace_to_script: non-Chebyshev neighborhood "
              "override is not representable");
        }
        os << " r " << *r;
      }
      os << '\n';
    }
    if (delta.set_channels.has_value()) {
      os << "channels " << *delta.set_channels << '\n';
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// PlanSession
// ---------------------------------------------------------------------------

PlanSession::PlanSession(Deployment initial, SessionConfig config)
    : planners_(config.planners != nullptr ? config.planners
                                           : &PlannerRegistry::global()),
      backends_(std::move(config.backends)) {
  base_.search = config.search;
  base_.sa = config.sa;
  base_.verify = config.verify;
  base_.channels = config.channels;
  base_.lattice = config.lattice;
  base_.tiling = config.tiling;
  base_.tiling_cache = config.tiling_cache;
  base_.regions = std::max<std::size_t>(config.regions, 1);
  base_.region_halo = config.region_halo;
  base_.tune_cache = config.tune_cache;
  base_.tune_trials = config.tune_trials;
  base_.tune_budget_ms = config.tune_budget_ms;
  base_.tune_family = config.tune_family;
  patch_denominator_ = config.graph_patch_dirty_denominator;
  owned_.emplace(std::move(initial));
  deployment_ = &*owned_;
}

PlanSession::PlanSession(const PlanRequest& request,
                         const PlannerRegistry& planners,
                         std::vector<std::string> backends)
    : base_(request), planners_(&planners), backends_(std::move(backends)) {
  if (request.deployment == nullptr) {
    throw std::invalid_argument("plan_all: deployment is required");
  }
  deployment_ = request.deployment;
}

std::vector<const Planner*> PlanSession::select_backends() const {
  PlanRequest probe = base_;
  probe.deployment = deployment_;
  std::vector<const Planner*> selected;
  if (backends_.empty()) {
    // Default selection: every backend that supports the request (the
    // mobile backend, e.g., sits out 3-D deployments instead of
    // failing).  Meta-backends (`auto`) opt out of the default set —
    // they delegate to a backend that is already in it.
    for (const std::string& name : planners_->names()) {
      const Planner* p = planners_->find(name);
      if (p != nullptr && p->in_default_set() && p->supports(probe)) {
        selected.push_back(p);
      }
    }
  } else {
    for (const std::string& name : backends_) {
      const Planner* p = planners_->find(name);
      if (p == nullptr) {
        throw std::invalid_argument("plan_all: unknown backend '" + name +
                                    "'");
      }
      selected.push_back(p);
    }
  }
  return selected;
}

void PlanSession::apply(const DeploymentDelta& delta) {
  const Deployment& d = *deployment_;
  const std::size_t n_old = d.size();
  const std::size_t dim =
      n_old > 0 ? d.position(0).dim() : d.prototiles().front().dim();

  if (delta.set_channels.has_value() && *delta.set_channels == 0) {
    throw std::invalid_argument("apply: set_channels must be >= 1");
  }

  // --- stage the delta against the pre-delta deployment ---------------
  // Everything below builds NEW state; members are only committed once
  // the new deployment validated, so a throwing delta leaves the
  // session untouched.
  const auto resolve = [&](const Point& p, const char* op) -> std::size_t {
    if (p.dim() != dim) {
      throw std::invalid_argument(std::string(op) +
                                  ": coordinate dimension mismatch");
    }
    const auto i = d.sensor_at(p);
    if (!i.has_value()) {
      throw std::invalid_argument(std::string(op) + ": no sensor at " +
                                  p.to_string());
    }
    return *i;
  };

  std::vector<char> removed(n_old, 0);
  std::vector<char> touched(n_old, 0);  // moved or reshaped in place
  PointVec pos(d.positions());
  std::vector<std::uint32_t> type(n_old);
  for (std::size_t i = 0; i < n_old; ++i) {
    type[i] = d.type_of(i);
  }
  std::vector<Prototile> protos = d.prototiles();

  for (const Point& p : delta.remove_sensors) {
    removed[resolve(p, "remove_sensors")] = 1;
  }
  for (const DeploymentDelta::SensorMove& m : delta.move_sensors) {
    const std::size_t i = resolve(m.from, "move_sensors");
    if (removed[i]) {
      throw std::invalid_argument(
          "move_sensors: sensor removed in the same delta");
    }
    if (m.to.dim() != dim) {
      throw std::invalid_argument(
          "move_sensors: coordinate dimension mismatch");
    }
    pos[i] = m.to;
    touched[i] = 1;
  }

  // New shapes are interned into the working prototile list (deduped by
  // element set, so a radius restored to an existing shape reuses its
  // type and cache key).
  const auto intern = [&protos, dim](Prototile shape) -> std::uint32_t {
    if (shape.dim() != dim) {
      throw std::invalid_argument(
          "apply: neighborhood dimension mismatch");
    }
    for (std::uint32_t t = 0; t < protos.size(); ++t) {
      if (protos[t] == shape) return t;
    }
    protos.push_back(std::move(shape));
    return static_cast<std::uint32_t>(protos.size() - 1);
  };

  for (const DeploymentDelta::RadiusChange& rc : delta.set_radius) {
    if (!rc.neighborhood.has_value() && rc.radius < 0) {
      throw std::invalid_argument("set_radius: radius must be >= 0");
    }
    const std::uint32_t t =
        intern(rc.neighborhood.has_value()
                   ? *rc.neighborhood
                   : shapes::chebyshev_ball(dim, rc.radius));
    if (rc.sensors.empty()) {
      for (std::size_t i = 0; i < n_old; ++i) {
        if (!removed[i] && type[i] != t) {
          type[i] = t;
          touched[i] = 1;
        }
      }
    } else {
      for (const Point& p : rc.sensors) {
        const std::size_t i = resolve(p, "set_radius");
        if (removed[i]) {
          throw std::invalid_argument(
              "set_radius: sensor removed in the same delta");
        }
        if (type[i] != t) {
          type[i] = t;
          touched[i] = 1;
        }
      }
    }
  }

  struct StagedAdd {
    Point position;
    std::uint32_t type;
  };
  std::vector<StagedAdd> adds;
  adds.reserve(delta.add_sensors.size());
  for (const DeploymentDelta::SensorAdd& add : delta.add_sensors) {
    if (add.position.dim() != dim) {
      throw std::invalid_argument(
          "add_sensors: coordinate dimension mismatch");
    }
    // Default neighborhood: the pre-delta deployment's type 0 (intern
    // only appends, so index 0 still names it).
    const std::uint32_t t =
        add.neighborhood.has_value() ? intern(*add.neighborhood) : 0;
    adds.push_back(StagedAdd{add.position, t});
  }

  // --- compact into the post-delta arrays ------------------------------
  PointVec new_pos;
  std::vector<std::uint32_t> new_type;
  new_pos.reserve(n_old + adds.size());
  new_type.reserve(n_old + adds.size());
  std::vector<std::uint32_t> old_to_new(n_old, kRemovedSensor);
  std::vector<std::uint32_t> dirty;  // new ids whose conflict rows rebuild
  for (std::size_t i = 0; i < n_old; ++i) {
    if (removed[i]) continue;
    old_to_new[i] = static_cast<std::uint32_t>(new_pos.size());
    if (touched[i]) dirty.push_back(old_to_new[i]);
    new_pos.push_back(pos[i]);
    new_type.push_back(type[i]);
  }
  for (const StagedAdd& add : adds) {
    dirty.push_back(static_cast<std::uint32_t>(new_pos.size()));
    new_pos.push_back(add.position);
    new_type.push_back(add.type);
  }

  // Prototile GC: drop shapes no sensor uses anymore (they would
  // otherwise leak into lower bounds and multi-prototile torus
  // searches), preserving the survivors' relative order for stable
  // cache keys.
  std::vector<char> used(protos.size(), 0);
  for (std::uint32_t t : new_type) used[t] = 1;
  std::vector<std::uint32_t> proto_map(protos.size(), kRemovedSensor);
  std::vector<Prototile> new_protos;
  for (std::uint32_t t = 0; t < protos.size(); ++t) {
    if (used[t]) {
      proto_map[t] = static_cast<std::uint32_t>(new_protos.size());
      new_protos.push_back(std::move(protos[t]));
    }
  }
  if (new_protos.empty()) {
    // Every sensor removed: keep one prototile so the (empty)
    // deployment stays constructible.
    new_protos.push_back(d.prototiles().front());
  }
  for (std::uint32_t& t : new_type) t = proto_map[t];

  // Throws on duplicate positions (colliding moves/adds) BEFORE any
  // member changes.
  Deployment next = Deployment::assemble(std::move(new_pos),
                                         std::move(new_type),
                                         std::move(new_protos));

  // --- patch the incremental state -------------------------------------
  std::sort(dirty.begin(), dirty.end());
  // Patch only small deltas: past 1/denominator of the fleet (a quarter
  // at the default kGraphPatchDirtyDenominator) the localized rebuild
  // probes more cells than one clean build would.  The threshold is a
  // SessionConfig knob; bench_session sweeps it.
  const bool patchable =
      graph_.has_value() && patch_denominator_ != 0 &&
      dirty.size() * patch_denominator_ <= next.size();
  std::optional<Graph> next_graph;
  bool next_warm_valid = false;
  std::vector<std::uint32_t> next_prev;
  std::vector<std::uint32_t> next_color_dirty;
  if (patchable) {
    next_graph = patch_conflict_graph(*graph_, next, old_to_new, dirty);
    ++stats_.graph_patches;
    if (warm_valid_ && prev_greedy_.size() == n_old) {
      // Carry the greedy table onto the new ids and seed the
      // incremental recoloring with every sensor whose conflict row
      // changed: the delta's own sensors, their new neighborhoods, and
      // the old neighborhoods of anything removed, moved or reshaped.
      next_prev.assign(next.size(), kUncolored);
      for (std::size_t i = 0; i < n_old; ++i) {
        if (old_to_new[i] != kRemovedSensor) {
          next_prev[old_to_new[i]] = prev_greedy_[i];
        }
      }
      std::vector<std::uint32_t> seeds;
      for (std::uint32_t u : color_dirty_) {
        if (old_to_new[u] != kRemovedSensor) {
          seeds.push_back(old_to_new[u]);
        }
      }
      for (std::size_t i = 0; i < n_old; ++i) {
        if (!removed[i] && !touched[i]) continue;
        for (std::uint32_t t : graph_->neighbors(
                 static_cast<std::uint32_t>(i))) {
          if (old_to_new[t] != kRemovedSensor) {
            seeds.push_back(old_to_new[t]);
          }
        }
      }
      for (std::uint32_t u : dirty) {
        seeds.push_back(u);
        for (std::uint32_t v : next_graph->neighbors(u)) {
          seeds.push_back(v);
        }
      }
      std::sort(seeds.begin(), seeds.end());
      seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
      next_color_dirty = std::move(seeds);
      next_warm_valid = true;
    }
  }

  // Region warm state: carry the stitched table onto the new ids and
  // record every position where the conflict structure changed — the
  // old positions of removed/moved/reshaped sensors and the new
  // positions of the delta's own sensors.  plan_regions routes these to
  // dirty shards; regions untouched within the halo keep their colors.
  bool next_region_warm = false;
  std::vector<std::uint32_t> next_region_colors;
  PointVec next_region_dirty;
  std::int64_t next_region_reach = region_dirty_reach_;
  if (region_warm_valid_ && prev_region_colors_.size() == n_old) {
    next_region_colors.assign(next.size(), kUncolored);
    for (std::size_t i = 0; i < n_old; ++i) {
      if (old_to_new[i] != kRemovedSensor) {
        next_region_colors[old_to_new[i]] = prev_region_colors_[i];
      }
    }
    next_region_dirty = region_dirty_positions_;
    for (std::size_t i = 0; i < n_old; ++i) {
      if (removed[i] || touched[i]) next_region_dirty.push_back(pos[i]);
    }
    for (std::size_t i = 0; i < n_old; ++i) {
      // A moved sensor dirties its OLD cell too (neighbors there lost
      // the conflict); pos[] already holds the new cell.
      if (touched[i] && !(pos[i] == d.position(i))) {
        next_region_dirty.push_back(d.position(i));
      }
    }
    for (std::uint32_t u : dirty) {
      next_region_dirty.push_back(next.position(u));
    }
    // Routing must cover the widest reach any of these positions ever
    // conflicted at (a radius decrease still dirties the old, larger
    // neighborhood).
    next_region_reach = std::max(next_region_reach, interference_reach(d));
    // Past one dirty position per sensor the routing saves nothing —
    // drop the warm state and let the next replan run cold.
    next_region_warm = next_region_dirty.size() <= next.size();
  }
  if (!next_region_warm) {
    next_region_colors.clear();
    next_region_dirty.clear();
    next_region_reach = 0;
  }

  // --- commit -----------------------------------------------------------
  owned_.emplace(std::move(next));
  deployment_ = &*owned_;
  graph_ = std::move(next_graph);
  warm_valid_ = next_warm_valid;
  prev_greedy_ = std::move(next_prev);
  color_dirty_ = std::move(next_color_dirty);
  region_warm_valid_ = next_region_warm;
  prev_region_colors_ = std::move(next_region_colors);
  region_dirty_positions_ = std::move(next_region_dirty);
  region_dirty_reach_ = next_region_reach;
  if (delta.set_channels.has_value()) base_.channels = *delta.set_channels;
  // A delta invalidates the scenario-supplied tiling and any borrowed
  // one-shot conflict graph; the memoized search / patched graph take
  // over from here.
  base_.tiling = nullptr;
  base_.conflict_graph = nullptr;
  ++stats_.deltas;
}

std::vector<PlanResult> PlanSession::replan() {
  const std::vector<const Planner*> selected = select_backends();

  PlanRequest request = base_;
  request.deployment = deployment_;

  // Same scoped-cache rule as the one-shot plan_all: memoize torus
  // searches in the session cache unless the caller brought a cache or
  // an explicit tiling makes searching unnecessary.
  if (request.tiling == nullptr && request.tiling_cache == nullptr) {
    request.tiling_cache = &own_cache_;
  }

  // Build the conflict graph once for every coloring backend — and keep
  // it: subsequent deltas patch it instead of rebuilding.
  if (request.conflict_graph == nullptr) {
    const bool wants_graph =
        std::any_of(selected.begin(), selected.end(), [](const Planner* p) {
          return p->wants_conflict_graph();
        });
    if (wants_graph) {
      if (!graph_.has_value()) {
        graph_.emplace(build_conflict_graph(*deployment_));
        ++stats_.graph_builds;
      }
      request.conflict_graph = &*graph_;
    }
  }

  // Warm-start the greedy backend with the previous slot table: only
  // the dirty region is re-colored, and the fixpoint reproduces the
  // cold greedy coloring exactly.
  PlanWarmStart warm;
  if (warm_valid_ && graph_.has_value() &&
      request.conflict_graph == &*graph_ &&
      prev_greedy_.size() == deployment_->size() &&
      std::any_of(selected.begin(), selected.end(), [](const Planner* p) {
        return p->wants_warm_start();
      })) {
    warm.greedy_colors = prev_greedy_;
    warm.dirty = color_dirty_;
    request.warm = &warm;
    ++stats_.warm_greedy;
  }

  // Region-sharded warm start: the carried stitched table plus the
  // accumulated dirty positions route this replan to the shards the
  // deltas touched (exact, like the greedy warm start above).
  RegionWarmStart region_warm;
  RegionShardStats region_stats;
  request.region_stats = &region_stats;
  if (region_warm_valid_ &&
      prev_region_colors_.size() == deployment_->size() &&
      std::any_of(selected.begin(), selected.end(), [](const Planner* p) {
        return p->wants_region_shard();
      })) {
    region_warm.colors = prev_region_colors_;
    region_warm.dirty_positions = region_dirty_positions_;
    region_warm.dirty_reach = region_dirty_reach_;
    request.region_warm = &region_warm;
  }

  // Backend fan-out: results land in their request slots, so the output
  // order is the request order at any thread count.  Backends that
  // themselves use the pool (tiling search) degrade to serial inside
  // this region — the pool never nests.
  std::vector<PlanResult> results(selected.size());
  parallel_for(0, selected.size(), [&](std::size_t i) {
    results[i] = selected[i]->plan(request);
  });

  // Record the greedy table for the next warm start (when greedy ran on
  // the session-maintained graph).  When greedy sat this replan out the
  // previous table stays valid — color_dirty_ keeps accumulating.
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (selected[i]->wants_warm_start() && results[i].ok &&
        graph_.has_value() && request.conflict_graph == &*graph_) {
      prev_greedy_ = results[i].slots.slot;
      color_dirty_.clear();
      warm_valid_ = true;
      break;
    }
  }
  // Likewise for the region-sharded table: its stitched result becomes
  // the carried state and the dirty-position log restarts empty.
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (selected[i]->wants_region_shard() && results[i].ok) {
      prev_region_colors_ = results[i].slots.slot;
      region_dirty_positions_.clear();
      region_dirty_reach_ = 0;
      region_warm_valid_ = true;
      break;
    }
  }
  stats_.regions = std::max(stats_.regions, region_stats.regions);
  stats_.regions_replanned += region_stats.regions_planned;
  stats_.seam_sensors += region_stats.seam_sensors;
  stats_.stitch_recolored += region_stats.stitch_recolored;
  ++stats_.replans;
  return results;
}

}  // namespace latticesched
