// Session-oriented incremental planning: the PlanSession API.
//
// Real fleets are not static — nodes die, get redeployed, change radio
// range or join late — yet a one-shot `PlanRequest -> PlanResult` query
// recomputes the world from scratch on any change.  A PlanSession is
// the long-lived form of the planner: open it on a deployment, apply
// DeploymentDeltas (add / remove / move / set_radius / set_channels)
// and call replan() for a fresh set of PlanResults that reuses
// everything the delta did not invalidate:
//
//   * torus searches stay memoized in the session's TilingCache (the
//     tiling/mobile backends re-search only when the prototile geometry
//     itself changed — a new cache key);
//   * the conflict graph is patched incrementally (clean rows remapped,
//     dirty rows rebuilt locally via the affects relation) instead of
//     re-running build_conflict_graph;
//   * the previous greedy slot table warm-starts the greedy backend:
//     only the dirty region — changed sensors plus their conflict
//     neighborhoods — is re-colored (incremental_greedy_coloring).
//
// The session is exact, not approximate: replan() after ANY delta
// sequence returns results identical (slots, verdict, optimality gap)
// to a cold Planner::plan of the final deployment — pinned by the
// delta/cold property tests.  PlannerRegistry::plan_all is a thin
// wrapper over a single-step session, so every existing consumer
// (examples, PlanService, the distributed worker loop) already runs on
// this API.
//
// MutationTrace packages a timestamped delta sequence; dynamic
// scenarios (core/scenario.hpp) generate them and the driver's
// --script flag parses them from the text format documented at
// parse_mutation_script.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/tiling_cache.hpp"

namespace latticesched {

/// One batch of deployment mutations.  Application order within a
/// delta: removals, moves, radius changes, additions, channel change.
/// Every position reference resolves against the PRE-delta deployment;
/// unknown positions throw std::invalid_argument and leave the session
/// untouched (strong exception safety).
struct DeploymentDelta {
  struct SensorAdd {
    Point position;
    /// Neighborhood of the new sensor; nullopt inherits the pre-delta
    /// deployment's first prototile (type 0).
    std::optional<Prototile> neighborhood;
  };
  struct SensorMove {
    Point from;
    Point to;
  };
  struct RadiusChange {
    PointVec sensors;        ///< positions to reshape; empty = every sensor
    std::int64_t radius = 1; ///< Chebyshev radius of the new neighborhood
    /// Explicit shape override (non-Chebyshev radio footprints); when
    /// set, `radius` is ignored.
    std::optional<Prototile> neighborhood;
  };

  std::vector<SensorAdd> add_sensors;
  PointVec remove_sensors;
  std::vector<SensorMove> move_sensors;
  std::vector<RadiusChange> set_radius;
  std::optional<std::uint32_t> set_channels;

  bool empty() const {
    return add_sensors.empty() && remove_sensors.empty() &&
           move_sensors.empty() && set_radius.empty() &&
           !set_channels.has_value();
  }
};

/// A timestamped delta of a dynamic scenario or session script.
struct MutationStep {
  std::uint64_t at = 0;  ///< step timestamp; strictly increasing, >= 1
  DeploymentDelta delta;
};

/// A scripted evolution of a deployment, replayed by PlanSession (step
/// 0 is the initial deployment; step `at` the state after that delta).
struct MutationTrace {
  std::vector<MutationStep> steps;
  bool empty() const { return steps.empty(); }
};

/// Parses the driver's --script text format into a trace.  Lines hold
/// whitespace-separated tokens; '#' starts a comment.  Directives:
///
///   dim D                 coordinate dimension (default 2; before any step)
///   step [AT]             begins a step (AT strictly increasing; default +1)
///   add X..               add a sensor at (X..), inheriting prototile 0
///   add X.. r R           ... with a Chebyshev radius-R neighborhood
///   remove X..            remove the sensor at (X..)
///   move X.. Y..          move the sensor at (X..) to (Y..)
///   radius R              reshape every sensor to Chebyshev radius R
///   radius R at X.. ..    reshape only the listed sensors
///   channels C            plan subsequent steps with C channels
///
/// Throws std::invalid_argument (with the line number) on malformed
/// input or operations before the first `step`.
MutationTrace parse_mutation_script(const std::string& text);

/// Emits a trace in the parse_mutation_script format (only Chebyshev
/// radius changes and default-neighborhood adds are representable;
/// explicit prototile overrides throw std::invalid_argument).
std::string mutation_trace_to_script(const MutationTrace& trace,
                                     std::size_t dim = 2);

/// Default SessionConfig::graph_patch_dirty_denominator: a delta is
/// patched incrementally while dirty <= fleet / denominator, i.e. up to
/// a quarter of the fleet.  Past that the localized rebuild probes more
/// candidate cells than one clean build_conflict_graph would (measured
/// by bench_session's patch-threshold sweep).
inline constexpr std::size_t kGraphPatchDirtyDenominator = 4;

struct SessionConfig {
  /// Backend names; empty = every registered backend supporting the
  /// request (PlannerRegistry::plan_all semantics).
  std::vector<std::string> backends;
  TorusSearchConfig search;
  SaConfig sa;
  bool verify = true;
  std::uint32_t channels = 1;
  /// Conflict-graph patch threshold: apply() patches the graph
  /// incrementally when dirty_sensors * denominator <= fleet_size and
  /// falls back to a full rebuild otherwise.  1 patches any delta up to
  /// the whole fleet; larger values are stricter (the default 4 stops
  /// at a quarter); 0 disables patching entirely — every delta rebuilds
  /// (the A/B baseline of bench_session's threshold sweep).  Purely a
  /// performance knob: patched and rebuilt graphs are identical (pinned
  /// by the session property tests).
  std::size_t graph_patch_dirty_denominator = kGraphPatchDirtyDenominator;
  /// Spatial shard count for the region-sharded backend
  /// (PlanRequest::regions).  When a selected backend plans by region,
  /// the session routes every delta to the shards it dirties and replans
  /// only those (SessionStats::regions_replanned counts them).
  std::size_t regions = 1;
  /// Region halo override (PlanRequest::region_halo); -1 = the
  /// deployment's interference reach.
  std::int64_t region_halo = -1;
  /// Euclidean geometry of the coordinates (PlanRequest::lattice).
  /// Must outlive the session.
  const Lattice* lattice = nullptr;
  /// Known tiling of the INITIAL deployment (PlanRequest::tiling); the
  /// first applied delta invalidates it and the memoized torus search
  /// takes over.  Must outlive the session.
  const Tiling* tiling = nullptr;
  /// Shared memoization cache (e.g. the PlanService cache); null =
  /// the session owns a private cache.
  TilingCache* tiling_cache = nullptr;
  /// Planner registry; null = PlannerRegistry::global().
  const PlannerRegistry* planners = nullptr;
  /// Shared tuning cache for the `auto` backend (PlanRequest::tune_cache);
  /// null = each auto plan tunes into a private in-memory cache.
  tune::TuneCache* tune_cache = nullptr;
  /// Auto-backend tuning budgets (PlanRequest::{tune_trials,
  /// tune_budget_ms}) and scenario-family label (PlanRequest::tune_family).
  std::size_t tune_trials = 8;
  std::uint64_t tune_budget_ms = 0;
  std::string tune_family;
};

class PlanSession {
 public:
  /// Opens a session owning `initial`.
  explicit PlanSession(Deployment initial, SessionConfig config = {});

  /// One-shot borrow: plans `request.deployment` in place without
  /// copying it (the PlannerRegistry::plan_all fast path).  The first
  /// apply() deep-copies the deployment into the session, so the
  /// borrowed pointer only needs to outlive the steps that precede it.
  /// Throws std::invalid_argument on a null deployment.
  PlanSession(const PlanRequest& request, const PlannerRegistry& planners,
              std::vector<std::string> backends);

  PlanSession(const PlanSession&) = delete;
  PlanSession& operator=(const PlanSession&) = delete;

  /// Applies one delta to the deployment, patching the session's
  /// incremental state (conflict graph, warm slot tables, index maps).
  /// Throws std::invalid_argument on an invalid delta (unknown
  /// position, duplicate target cell, zero channels); the session is
  /// unchanged when it throws.
  void apply(const DeploymentDelta& delta);

  /// Plans the current deployment on the session's backends.  Reuses
  /// the patched conflict graph, the memoized torus searches and the
  /// previous greedy slot table; the results are identical to a cold
  /// plan of the current deployment.  Throws std::invalid_argument on
  /// unknown backend names.
  std::vector<PlanResult> replan();

  const Deployment& deployment() const { return *deployment_; }
  std::uint32_t channels() const { return base_.channels; }
  /// The scenario-supplied tiling still in force (null after a delta).
  const Tiling* tiling() const { return base_.tiling; }
  /// Deltas applied so far.
  std::uint64_t steps_applied() const { return stats_.deltas; }

  /// Incremental-reuse accounting (what the session saved).
  struct Stats {
    std::uint64_t replans = 0;
    std::uint64_t deltas = 0;
    std::uint64_t graph_builds = 0;   ///< full build_conflict_graph runs
    std::uint64_t graph_patches = 0;  ///< incremental patches instead
    std::uint64_t warm_greedy = 0;    ///< greedy replans seeded warm
    std::uint64_t regions = 0;            ///< largest region partition planned
    std::uint64_t regions_replanned = 0;  ///< region shards (re)colored
    std::uint64_t seam_sensors = 0;       ///< seam sensors seen by stitches
    std::uint64_t stitch_recolored = 0;   ///< vertices stitches recolored
  };
  const Stats& stats() const { return stats_; }

  /// The cache the session memoizes torus searches in (its own, unless
  /// SessionConfig supplied a shared one).
  TilingCache& tiling_cache() {
    return base_.tiling_cache != nullptr ? *base_.tiling_cache : own_cache_;
  }

 private:
  std::vector<const Planner*> select_backends() const;

  PlanRequest base_;  ///< request template (deployment/graph/warm set per call)
  const PlannerRegistry* planners_;
  std::vector<std::string> backends_;
  /// SessionConfig::graph_patch_dirty_denominator (0 = never patch).
  std::size_t patch_denominator_ = kGraphPatchDirtyDenominator;

  std::optional<Deployment> owned_;     ///< engaged once the session mutates
  const Deployment* deployment_;        ///< current deployment (owned or borrowed)

  TilingCache own_cache_;               ///< used when no shared cache given

  /// Conflict graph of `deployment_`, patched across deltas; absent
  /// until a coloring backend needs it (or after a delta too large to
  /// patch profitably).
  std::optional<Graph> graph_;

  /// Previous greedy slot table carried onto current sensor ids, plus
  /// the sensors whose conflict rows changed since it was produced.
  bool warm_valid_ = false;
  std::vector<std::uint32_t> prev_greedy_;
  std::vector<std::uint32_t> color_dirty_;

  /// Previous region-sharded slot table carried onto current sensor
  /// ids, plus every position where the conflict structure changed
  /// since (and the largest pre-delta interference reach those
  /// positions were recorded against) — the dirty-region routing state
  /// of core/region_shard.hpp.
  bool region_warm_valid_ = false;
  std::vector<std::uint32_t> prev_region_colors_;
  PointVec region_dirty_positions_;
  std::int64_t region_dirty_reach_ = 0;

  Stats stats_;
};

}  // namespace latticesched
