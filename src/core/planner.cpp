#include "core/planner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "baseline/coloring_schedule.hpp"
#include "baseline/tdma.hpp"
#include "core/analysis.hpp"
#include "core/tiling_scheduler.hpp"
#include "util/parallel.hpp"

namespace latticesched {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Built-in backends
// ---------------------------------------------------------------------------

class TilingPlanner final : public Planner {
 public:
  std::string name() const override { return "tiling"; }

 protected:
  Raw compute(const PlanRequest& request) const override {
    const Deployment& d = *request.deployment;
    std::optional<Tiling> tiling;
    if (request.tiling != nullptr) {
      tiling = *request.tiling;
    } else {
      TorusSearchConfig search = request.search;
      // Rule-D1 deployments carry several prototiles; a schedule that
      // covers them all needs a tiling using every one (Theorem 2).
      if (d.prototiles().size() > 1) search.require_all_prototiles = true;
      tiling = search_periodic_tiling(d.prototiles(), search);
      if (!tiling.has_value()) {
        throw std::runtime_error(
            "no periodic tiling found within the search budget "
            "(prototile set may not be exact)");
      }
    }
    const TilingSchedule schedule(*tiling);
    Raw raw;
    raw.slots = assign_slots(schedule, d);
    raw.detail = schedule.description();
    raw.tiling = std::move(tiling);
    return raw;
  }
};

class ColoringPlanner final : public Planner {
 public:
  explicit ColoringPlanner(ColoringHeuristic h) : heuristic_(h) {}
  std::string name() const override { return to_string(heuristic_); }

 protected:
  Raw compute(const PlanRequest& request) const override {
    const Deployment& d = *request.deployment;
    Raw raw;
    if (request.conflict_graph != nullptr) {
      raw.slots = coloring_slots_on_graph(*request.conflict_graph,
                                          heuristic_, request.sa);
    } else {
      raw.slots = coloring_slots(d, heuristic_, request.sa);
    }
    std::ostringstream os;
    os << "conflict-graph coloring (" << to_string(heuristic_) << "), "
       << raw.slots.period << " slots";
    raw.detail = os.str();
    return raw;
  }

 private:
  ColoringHeuristic heuristic_;
};

class TdmaPlanner final : public Planner {
 public:
  std::string name() const override { return "tdma"; }

 protected:
  Raw compute(const PlanRequest& request) const override {
    Raw raw;
    raw.slots = tdma_slots(*request.deployment);
    std::ostringstream os;
    os << "TDMA round-robin, one slot per sensor (period "
       << raw.slots.period << ")";
    raw.detail = os.str();
    return raw;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Planner base pipeline
// ---------------------------------------------------------------------------

PlanResult Planner::plan(const PlanRequest& request) const {
  if (request.deployment == nullptr) {
    throw std::invalid_argument("Planner::plan: deployment is required");
  }
  const Deployment& d = *request.deployment;
  PlanResult result;
  result.backend = name();
  for (const Prototile& n : d.prototiles()) {
    result.lower_bound = std::max(result.lower_bound,
                                  static_cast<std::uint32_t>(n.size()));
  }

  const Clock::time_point t0 = Clock::now();
  try {
    Raw raw = compute(request);
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.slots = std::move(raw.slots);
    result.detail = std::move(raw.detail);
    result.tiling = std::move(raw.tiling);
    result.ok = true;
  } catch (const std::exception& e) {
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.error = e.what();
    return result;
  }

  if (result.slots.slot.size() != d.size()) {
    result.ok = false;
    result.error = "backend produced a slot table of the wrong size";
    return result;
  }
  // Custom backends can be registered, so the pipeline must not trust the
  // table: a slot >= period would corrupt the histogram below.
  for (std::uint32_t s : result.slots.slot) {
    if (s >= result.slots.period) {
      result.ok = false;
      result.error = "backend produced a slot outside [0, period)";
      return result;
    }
  }

  if (request.verify) {
    result.report = check_collision_free(d, result.slots);
    result.collision_free = result.report.collision_free;
  } else {
    result.collision_free = true;
  }

  if (result.slots.period > 0) {
    std::vector<std::uint64_t> histogram(result.slots.period, 0);
    for (std::uint32_t s : result.slots.slot) ++histogram[s];
    result.slot_balance = slot_balance(histogram);
    result.duty_cycle = 1.0 / static_cast<double>(result.slots.period);
    if (result.lower_bound > 0) {
      result.optimality_gap =
          static_cast<double>(result.slots.period) /
          static_cast<double>(result.lower_bound);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void PlannerRegistry::register_planner(std::unique_ptr<Planner> planner) {
  if (planner == nullptr) {
    throw std::invalid_argument("register_planner: null planner");
  }
  const std::string name = planner->name();
  for (auto& existing : planners_) {
    if (existing->name() == name) {
      existing = std::move(planner);
      return;
    }
  }
  planners_.push_back(std::move(planner));
}

std::vector<std::string> PlannerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(planners_.size());
  for (const auto& p : planners_) out.push_back(p->name());
  return out;
}

const Planner* PlannerRegistry::find(const std::string& name) const {
  for (const auto& p : planners_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<PlanResult> PlannerRegistry::plan_all(
    const PlanRequest& request,
    const std::vector<std::string>& backends) const {
  if (request.deployment == nullptr) {
    throw std::invalid_argument("plan_all: deployment is required");
  }
  std::vector<const Planner*> selected;
  if (backends.empty()) {
    for (const auto& p : planners_) selected.push_back(p.get());
  } else {
    for (const std::string& name : backends) {
      const Planner* p = find(name);
      if (p == nullptr) {
        throw std::invalid_argument("plan_all: unknown backend '" + name +
                                    "'");
      }
      selected.push_back(p);
    }
  }

  // Build the conflict graph once for every coloring backend (they are
  // the only consumers, and each would otherwise rebuild it).
  PlanRequest shared = request;
  std::optional<Graph> graph;
  if (shared.conflict_graph == nullptr) {
    const bool wants_graph =
        std::any_of(selected.begin(), selected.end(), [](const Planner* p) {
          const std::string n = p->name();
          return n != "tiling" && n != "tdma";
        });
    if (wants_graph) {
      graph.emplace(build_conflict_graph(*request.deployment));
      shared.conflict_graph = &*graph;
    }
  }

  // Backend fan-out: results land in their request slots, so the output
  // order is the request order at any thread count.  Backends that
  // themselves use the pool (tiling search) degrade to serial inside
  // this region — the pool never nests.
  std::vector<PlanResult> results(selected.size());
  parallel_for(0, selected.size(), [&](std::size_t i) {
    results[i] = selected[i]->plan(shared);
  });
  return results;
}

PlannerRegistry& PlannerRegistry::global() {
  static PlannerRegistry* registry = [] {
    auto* r = new PlannerRegistry();
    r->register_planner(std::make_unique<TilingPlanner>());
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kGreedy));
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kWelshPowell));
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kDsatur));
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kAnnealing));
    r->register_planner(std::make_unique<TdmaPlanner>());
    return r;
  }();
  return *registry;
}

// ---------------------------------------------------------------------------
// Report helpers
// ---------------------------------------------------------------------------

std::vector<std::string> parse_backend_list(const std::string& csv) {
  if (csv.empty() || csv == "all") return {};
  std::vector<std::string> out;
  std::string token;
  std::istringstream is(csv);
  while (std::getline(is, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string plan_results_to_csv(const std::vector<PlanResult>& results,
                                const std::string& scenario) {
  std::ostringstream os;
  os << "scenario,backend,ok,sensors,period,lower_bound,optimality_gap,"
        "collision_free,slot_balance,duty_cycle,wall_ms,error\n";
  for (const PlanResult& r : results) {
    os << scenario << ',' << r.backend << ',' << (r.ok ? 1 : 0) << ','
       << r.slots.slot.size() << ',' << r.slots.period << ','
       << r.lower_bound << ',' << format_double(r.optimality_gap) << ','
       << (r.collision_free ? 1 : 0) << ','
       << format_double(r.slot_balance) << ','
       << format_double(r.duty_cycle) << ','
       << format_double(r.wall_seconds * 1e3) << ','
       << '"' << r.error << '"' << '\n';
  }
  return os.str();
}

std::string plan_results_to_json(const std::vector<PlanResult>& results,
                                 const std::string& scenario) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PlanResult& r = results[i];
    os << "  {\"scenario\": \"" << json_escape(scenario)
       << "\", \"backend\": \"" << json_escape(r.backend)
       << "\", \"ok\": " << (r.ok ? "true" : "false")
       << ", \"sensors\": " << r.slots.slot.size()
       << ", \"period\": " << r.slots.period
       << ", \"lower_bound\": " << r.lower_bound
       << ", \"optimality_gap\": " << format_double(r.optimality_gap)
       << ", \"collision_free\": " << (r.collision_free ? "true" : "false")
       << ", \"slot_balance\": " << format_double(r.slot_balance)
       << ", \"duty_cycle\": " << format_double(r.duty_cycle)
       << ", \"wall_ms\": " << format_double(r.wall_seconds * 1e3)
       << ", \"detail\": \"" << json_escape(r.detail)
       << "\", \"error\": \"" << json_escape(r.error) << "\"}"
       << (i + 1 < results.size() ? "," : "") << '\n';
  }
  os << "]\n";
  return os.str();
}

}  // namespace latticesched
