#include "core/planner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "baseline/coloring_schedule.hpp"
#include "baseline/tdma.hpp"
#include "core/analysis.hpp"
#include "core/mobile.hpp"
#include "core/plan_session.hpp"
#include "core/region_shard.hpp"
#include "core/tiling_cache.hpp"
#include "core/tiling_scheduler.hpp"
#include "graph/coloring.hpp"
#include "lattice/lattice.hpp"
#include "tune/auto_planner.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"

namespace latticesched {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Built-in backends
// ---------------------------------------------------------------------------

/// Obtains the tiling behind a request: a caller-provided one, a cached
/// torus-search result (request.tiling_cache), or a fresh period sweep.
/// Throws when the search budget is exhausted without a tiling.
Tiling acquire_tiling(const PlanRequest& request) {
  if (request.tiling != nullptr) return *request.tiling;
  const Deployment& d = *request.deployment;
  TorusSearchConfig search = request.search;
  // Rule-D1 deployments carry several prototiles; a schedule that
  // covers them all needs a tiling using every one (Theorem 2).
  if (d.prototiles().size() > 1) search.require_all_prototiles = true;
  std::optional<Tiling> tiling =
      request.tiling_cache != nullptr
          ? request.tiling_cache->find_or_search(d.prototiles(), search)
          : search_periodic_tiling(d.prototiles(), search);
  if (!tiling.has_value()) {
    throw std::runtime_error(
        "no periodic tiling found within the search budget "
        "(prototile set may not be exact)");
  }
  return *std::move(tiling);
}

class TilingPlanner final : public Planner {
 public:
  std::string name() const override { return "tiling"; }

 protected:
  Raw compute(const PlanRequest& request) const override {
    Tiling tiling = acquire_tiling(request);
    const TilingSchedule schedule(tiling);
    Raw raw;
    raw.slots = assign_slots(schedule, *request.deployment);
    raw.detail = schedule.description();
    raw.tiling = std::move(tiling);
    return raw;
  }
};

// The Conclusions' location-based rule as a first-class backend: the
// Theorem-1/2 schedule for the deployment's prototiles plus a
// MobileScheduler over the square lattice, so consumers simulate roaming
// sensors straight from the PlanResult instead of hand-wiring the
// scheduler from PlanResult::tiling.
class MobilePlanner final : public Planner {
 public:
  std::string name() const override { return "mobile"; }

  bool supports(const PlanRequest& request) const override {
    // The Voronoi-cell geometry of the mobile rule is 2-D.
    return request.deployment != nullptr && request.deployment->size() > 0 &&
           request.deployment->position(0).dim() == 2;
  }

 protected:
  Raw compute(const PlanRequest& request) const override {
    if (!supports(request)) {
      throw std::runtime_error(
          "mobile backend needs a non-empty 2-D deployment");
    }
    Tiling tiling = acquire_tiling(request);
    TilingSchedule schedule(tiling);
    Raw raw;
    raw.slots = assign_slots(schedule, *request.deployment);
    raw.detail = "location-based rule over " + schedule.description();
    // The Voronoi-cell geometry follows the request's lattice (hex
    // deployments get hexagonal cells), square by default.
    raw.mobile = std::make_shared<const MobileScheduler>(
        request.lattice != nullptr ? *request.lattice : Lattice::square(),
        std::move(schedule));
    raw.tiling = std::move(tiling);
    return raw;
  }
};

class ColoringPlanner final : public Planner {
 public:
  explicit ColoringPlanner(ColoringHeuristic h) : heuristic_(h) {}
  std::string name() const override { return to_string(heuristic_); }
  bool wants_conflict_graph() const override { return true; }
  bool wants_warm_start() const override {
    // Greedy first-fit is a fixpoint of local recoloring, so it is the
    // one heuristic a warm start can repair incrementally AND exactly;
    // the order-sensitive heuristics re-run on the (patched) graph.
    return heuristic_ == ColoringHeuristic::kGreedy;
  }

 protected:
  Raw compute(const PlanRequest& request) const override {
    const Deployment& d = *request.deployment;
    Raw raw;
    if (heuristic_ == ColoringHeuristic::kGreedy &&
        request.warm != nullptr && request.conflict_graph != nullptr &&
        request.warm->greedy_colors.size() ==
            request.conflict_graph->size()) {
      // Incremental repair of the previous greedy table: only the dirty
      // region is re-colored, and the fixpoint equals the cold result.
      raw.slots.slot = incremental_greedy_coloring(
          *request.conflict_graph, request.warm->greedy_colors,
          request.warm->dirty);
      raw.slots.period = color_count(raw.slots.slot);
      raw.slots.source = std::string("coloring-") + to_string(heuristic_);
    } else if (request.conflict_graph != nullptr) {
      raw.slots = coloring_slots_on_graph(*request.conflict_graph,
                                          heuristic_, request.sa);
    } else {
      raw.slots = coloring_slots(d, heuristic_, request.sa);
    }
    std::ostringstream os;
    os << "conflict-graph coloring (" << to_string(heuristic_) << "), "
       << raw.slots.period << " slots";
    raw.detail = os.str();
    return raw;
  }

 private:
  ColoringHeuristic heuristic_;
};

// Spatial region sharding (core/region_shard.hpp): the deployment's
// window is partitioned into halo-grown rectangular shards, each
// first-fit colored from a streaming per-region CSR block, and the seams
// stitched back to the exact serial greedy fixpoint.  The one backend
// that plans million-sensor deployments without materializing the
// all-pairs conflict graph.
class RegionGreedyPlanner final : public Planner {
 public:
  std::string name() const override { return "region-greedy"; }
  bool wants_region_shard() const override { return true; }

 protected:
  Raw compute(const PlanRequest& request) const override {
    const Deployment& d = *request.deployment;
    RegionShardStats local;
    RegionShardStats* stats =
        request.region_stats != nullptr ? request.region_stats : &local;
    const std::uint64_t regions_before = stats->regions;
    Raw raw;
    raw.slots.slot =
        plan_regions(d, std::max<std::size_t>(request.regions, 1),
                     request.region_halo, request.region_warm, stats);
    raw.slots.period = color_count(raw.slots.slot);
    raw.slots.source = "region-greedy";
    std::ostringstream os;
    os << "region-sharded greedy ("
       << (stats->regions - regions_before) << " region(s), "
       << raw.slots.period << " slots)";
    raw.detail = os.str();
    return raw;
  }
};

class TdmaPlanner final : public Planner {
 public:
  std::string name() const override { return "tdma"; }

 protected:
  Raw compute(const PlanRequest& request) const override {
    Raw raw;
    raw.slots = tdma_slots(*request.deployment);
    std::ostringstream os;
    os << "TDMA round-robin, one slot per sensor (period "
       << raw.slots.period << ")";
    raw.detail = os.str();
    return raw;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Planner base pipeline
// ---------------------------------------------------------------------------

PlanResult Planner::plan(const PlanRequest& request) const {
  if (request.deployment == nullptr) {
    throw std::invalid_argument("Planner::plan: deployment is required");
  }
  if (request.channels == 0) {
    throw std::invalid_argument("Planner::plan: channels must be >= 1");
  }
  const Deployment& d = *request.deployment;
  PlanResult result;
  result.backend = name();
  result.channels = request.channels;
  for (const Prototile& n : d.prototiles()) {
    result.lower_bound = std::max(result.lower_bound,
                                  static_cast<std::uint32_t>(n.size()));
  }

  const Clock::time_point t0 = Clock::now();
  try {
    Raw raw = compute(request);
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.slots = std::move(raw.slots);
    result.detail = std::move(raw.detail);
    result.tiling = std::move(raw.tiling);
    result.mobile = std::move(raw.mobile);
    result.ok = true;
  } catch (const std::exception& e) {
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.error = e.what();
    return result;
  }

  if (result.slots.slot.size() != d.size()) {
    result.ok = false;
    result.error = "backend produced a slot table of the wrong size";
    return result;
  }
  // Custom backends can be registered, so the pipeline must not trust the
  // table: a slot >= period would corrupt the histogram below.
  for (std::uint32_t s : result.slots.slot) {
    if (s >= result.slots.period) {
      result.ok = false;
      result.error = "backend produced a slot outside [0, period)";
      return result;
    }
  }

  // Multichannel is planner currency: every backend's table folds onto c
  // channels (collision-freedom is preserved — sensors share
  // (slot, channel) iff they shared the original slot), and the verdict
  // below covers the folded schedule, which is what gets deployed.
  if (request.channels > 1) {
    result.channel_slots = fold_channels(result.slots, request.channels);
  }

  if (request.verify) {
    result.report =
        result.channel_slots.has_value()
            ? check_collision_free_multichannel(d, *result.channel_slots)
            : check_collision_free(d, result.slots);
    result.collision_free = result.report.collision_free;
    result.verified = true;
  } else {
    result.collision_free = true;
    result.verified = false;
  }

  if (result.slots.period > 0) {
    // Every diagnostic describes the DEPLOYED schedule: with channels
    // the histogram counts senders per folded time slot (across
    // channels), the duty cycle uses the folded period, and the
    // optimality gap is judged against the pigeonhole bound
    // ceil(lower_bound / c) (at most c of one tile's
    // pairwise-conflicting sensors can share a slot).
    std::vector<std::uint64_t> histogram(result.effective_period(), 0);
    if (result.channel_slots.has_value()) {
      for (const SlotChannel& a : result.channel_slots->assignment) {
        ++histogram[a.slot];
      }
    } else {
      for (std::uint32_t s : result.slots.slot) ++histogram[s];
    }
    result.slot_balance = slot_balance(histogram);
    const std::uint32_t period = result.effective_period();
    result.duty_cycle = 1.0 / static_cast<double>(period);
    const std::uint32_t bound =
        (result.lower_bound + request.channels - 1) / request.channels;
    if (bound > 0) {
      result.optimality_gap = static_cast<double>(period) /
                              static_cast<double>(bound);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void PlannerRegistry::register_planner(std::unique_ptr<Planner> planner) {
  if (planner == nullptr) {
    throw std::invalid_argument("register_planner: null planner");
  }
  const std::string name = planner->name();
  for (auto& existing : planners_) {
    if (existing->name() == name) {
      existing = std::move(planner);
      return;
    }
  }
  planners_.push_back(std::move(planner));
}

std::vector<std::string> PlannerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(planners_.size());
  for (const auto& p : planners_) out.push_back(p->name());
  return out;
}

const Planner* PlannerRegistry::find(const std::string& name) const {
  for (const auto& p : planners_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<PlanResult> PlannerRegistry::plan_all(
    const PlanRequest& request,
    const std::vector<std::string>& backends) const {
  // The one-shot form of the session API: a single-step PlanSession
  // borrowing the request's deployment.  The session owns the shared
  // conflict-graph build, the scoped tiling cache and the backend
  // fan-out — one code path whether the deployment is planned once or
  // evolved delta by delta.
  PlanSession session(request, *this, backends);
  return session.replan();
}

PlannerRegistry& PlannerRegistry::global() {
  static PlannerRegistry* registry = [] {
    auto* r = new PlannerRegistry();
    r->register_planner(std::make_unique<TilingPlanner>());
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kGreedy));
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kWelshPowell));
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kDsatur));
    r->register_planner(
        std::make_unique<ColoringPlanner>(ColoringHeuristic::kAnnealing));
    r->register_planner(std::make_unique<RegionGreedyPlanner>());
    r->register_planner(std::make_unique<TdmaPlanner>());
    r->register_planner(std::make_unique<MobilePlanner>());
    r->register_planner(std::make_unique<tune::AutoPlanner>());
    return r;
  }();
  return *registry;
}

// ---------------------------------------------------------------------------
// Report helpers
// ---------------------------------------------------------------------------

std::vector<std::string> parse_backend_list(const std::string& csv) {
  if (csv.empty() || csv == "all") return {};
  return split_csv_list(csv);
}

}  // namespace latticesched
