// Unified planner pipeline: one way to produce and evaluate schedules.
//
// Every consumer used to hand-wire deployment → scheduler → verification
// → metrics; this subsystem folds that pipeline into a single
// `PlanRequest → PlanResult` call behind a registry of backends, so the
// paper's head-to-head comparison (constructive tiling schedules vs.
// coloring/TDMA baselines) is one `plan_all` invocation — the examples,
// the comparison benches and the `latticesched` CLI driver all run
// through here.  Backends:
//
//   tiling        Theorem-1/2 constructive schedule (torus/lattice search)
//   greedy        first-fit conflict-graph coloring
//   welsh-powell  first-fit by decreasing degree
//   dsatur        Brélaz saturation coloring
//   annealing     simulated-annealing coloring (Wang–Ansari stand-in)
//   tdma          one slot per sensor (the paper's non-scaling foil)
//
// plan_all fans the selected backends out over the shared thread pool
// (util/parallel.hpp) and prebuilds the conflict graph once for all
// coloring backends; results come back in request order regardless of
// thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/collision.hpp"
#include "core/schedule.hpp"
#include "graph/interference.hpp"
#include "graph/sa_coloring.hpp"
#include "tiling/tiling.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {

struct PlanRequest {
  /// Deployment to schedule.  Required; must outlive the call.
  const Deployment* deployment = nullptr;

  /// Known tiling consistent with the deployment (e.g. the one a rule-D1
  /// deployment was built from).  The tiling backend uses it directly
  /// instead of searching for one.
  const Tiling* tiling = nullptr;

  /// Torus-search knobs for the tiling backend's period sweep.
  TorusSearchConfig search;

  /// Annealing knobs for the `annealing` backend.
  SaConfig sa;

  /// Run the paper's exhaustive collision checker on the produced slots.
  bool verify = true;

  /// Prebuilt conflict graph of `deployment` (coloring backends).  When
  /// null, plan_all builds it once and shares it; a lone Planner::plan
  /// call builds its own.
  const Graph* conflict_graph = nullptr;
};

struct PlanResult {
  std::string backend;
  bool ok = false;       ///< slots were produced (false: see `error`)
  std::string error;     ///< why the backend failed (ok == false)

  SensorSlots slots;     ///< per-sensor slot table (ok == true)
  std::string detail;    ///< backend-specific description of the schedule

  /// Collision verdict (request.verify; trivially true when skipped).
  bool collision_free = false;
  CollisionReport report;

  /// Paper's lower bound max_k |N_k| on any collision-free periodic
  /// schedule of a window containing a full tile (Theorems 1/2).
  std::uint32_t lower_bound = 0;
  /// slots.period / lower_bound; 1.0 = provably optimal slot count.
  double optimality_gap = 0.0;

  /// min/max sensors per slot over the deployment, as in
  /// analysis.hpp's slot_balance: 1.0 = perfectly even, 0 = some slot idle.
  double slot_balance = 0.0;
  /// Fraction of time a sensor may transmit (= 1 / period).
  double duty_cycle = 0.0;

  double wall_seconds = 0.0;  ///< scheduling time (verification excluded)

  /// The tiling the tiling backend scheduled (reusable by callers that
  /// need the point-schedule, e.g. mobile location scheduling).
  std::optional<Tiling> tiling;
};

/// A scheduling backend.  Implementations produce a slot table; the base
/// class wraps it with timing, verification and the shared diagnostics so
/// every backend reports the same PlanResult surface.
class Planner {
 public:
  virtual ~Planner() = default;

  virtual std::string name() const = 0;

  /// Full pipeline: compute slots, verify, attach diagnostics.  Never
  /// throws for backend-level failures — those come back as ok == false.
  PlanResult plan(const PlanRequest& request) const;

 protected:
  struct Raw {
    SensorSlots slots;
    std::string detail;
    std::optional<Tiling> tiling;
  };

  /// Backend-specific slot production; throws on failure (the base turns
  /// the exception into ok == false).
  virtual Raw compute(const PlanRequest& request) const = 0;
};

/// Name-indexed planner collection.  The global() registry comes
/// pre-populated with the six built-in backends; register_planner adds
/// custom ones (replacing any existing planner of the same name).
class PlannerRegistry {
 public:
  PlannerRegistry() = default;

  void register_planner(std::unique_ptr<Planner> planner);

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The planner registered under `name`, or nullptr.
  const Planner* find(const std::string& name) const;

  /// Runs the named backends ("" or empty list = all registered, in
  /// registration order) concurrently on the shared pool and returns
  /// their results in the same order.  Builds the conflict graph once
  /// for all coloring backends when the request doesn't carry one.
  /// Throws std::invalid_argument on unknown names or a null deployment.
  std::vector<PlanResult> plan_all(
      const PlanRequest& request,
      const std::vector<std::string>& backends = {}) const;

  /// Process-wide registry with the built-in backends.
  static PlannerRegistry& global();

 private:
  std::vector<std::unique_ptr<Planner>> planners_;
};

/// Splits "a,b,c" (or "all" / "") into backend names for plan_all.
std::vector<std::string> parse_backend_list(const std::string& csv);

/// Writes results as a CSV / JSON report (one row or object per result).
std::string plan_results_to_csv(const std::vector<PlanResult>& results,
                                const std::string& scenario = "");
std::string plan_results_to_json(const std::vector<PlanResult>& results,
                                 const std::string& scenario = "");

}  // namespace latticesched
