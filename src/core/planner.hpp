// Unified planner pipeline: one way to produce and evaluate schedules.
//
// Every consumer used to hand-wire deployment → scheduler → verification
// → metrics; this subsystem folds that pipeline into a single
// `PlanRequest → PlanResult` call behind a registry of backends, so the
// paper's head-to-head comparison (constructive tiling schedules vs.
// coloring/TDMA baselines) is one `plan_all` invocation — the examples,
// the comparison benches and the `latticesched` CLI driver all run
// through here.  Backends:
//
//   tiling        Theorem-1/2 constructive schedule (torus/lattice search)
//   greedy        first-fit conflict-graph coloring
//   welsh-powell  first-fit by decreasing degree
//   dsatur        Brélaz saturation coloring
//   annealing     simulated-annealing coloring (Wang–Ansari stand-in)
//   region-greedy spatially sharded greedy: per-region streaming conflict
//                 blocks + seam stitching (exactly the greedy table,
//                 without materializing the full conflict graph)
//   tdma          one slot per sensor (the paper's non-scaling foil)
//   mobile        tiling schedule + the Conclusions' location-based rule
//                 (2-D only; PlanResult::mobile carries the scheduler)
//   auto          meta-backend: picks a delegate backend + knob config via
//                 the tuning subsystem (src/tune/), consulting a persistent
//                 TuneCache and falling back to a bounded search on miss;
//                 excluded from the default "all" selection
//
// Two extensions are part of the planner currency rather than bolted on
// by consumers: multi-channel schedules (request.channels > 1 folds every
// backend's slot table into per-sensor (slot, channel) assignments,
// verified by the multichannel collision checker) and tiling memoization
// (request.tiling_cache routes the torus search through a TilingCache so
// scenario sweeps re-pay only the first search).
//
// plan_all fans the selected backends out over the shared thread pool
// (util/parallel.hpp) and prebuilds the conflict graph once for all
// coloring backends; results come back in request order regardless of
// thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/collision.hpp"
#include "core/multichannel.hpp"
#include "core/schedule.hpp"
#include "graph/interference.hpp"
#include "graph/sa_coloring.hpp"
#include "tiling/tiling.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {

class Lattice;
class MobileScheduler;
class TilingCache;
struct RegionShardStats;
struct RegionWarmStart;

namespace tune {
class TuneCache;
}  // namespace tune

/// Previous-plan state a PlanSession hands back to the backends so a
/// replan after a small deployment delta touches only the dirty region.
/// The contract is exactness: a warm plan equals the cold plan of the
/// same request (greedy first-fit is the unique fixpoint of
/// c(u) = mex of lower-neighbor colors, so incremental repair converges
/// to the cold answer — see graph/coloring.hpp).
struct PlanWarmStart {
  /// Greedy slot table of the previous replan, carried onto the CURRENT
  /// sensor ids (kUncolored for sensors without a prior slot).
  std::vector<std::uint32_t> greedy_colors;
  /// Sensor ids whose conflict rows changed since those colors — the
  /// seeds of the incremental recoloring.
  std::vector<std::uint32_t> dirty;
};

struct PlanRequest {
  /// Deployment to schedule.  Required; must outlive the call.
  const Deployment* deployment = nullptr;

  /// Known tiling consistent with the deployment (e.g. the one a rule-D1
  /// deployment was built from).  The tiling backend uses it directly
  /// instead of searching for one.
  const Tiling* tiling = nullptr;

  /// Torus-search knobs for the tiling backend's period sweep.
  TorusSearchConfig search;

  /// Annealing knobs for the `annealing` backend.
  SaConfig sa;

  /// Run the paper's exhaustive collision checker on the produced slots.
  bool verify = true;

  /// Orthogonal frequency channels (>= 1).  When > 1 the pipeline folds
  /// the backend's slot table into (slot, channel) assignments — slot
  /// e maps to (e / channels, e % channels), the multichannel extension's
  /// construction — and the collision verdict covers the folded schedule.
  std::uint32_t channels = 1;

  /// Memoization cache for the torus search (tiling/mobile backends).
  /// When null every plan re-runs the period sweep; the batch service
  /// always supplies its cache.
  TilingCache* tiling_cache = nullptr;

  /// Euclidean geometry of the deployment's coordinates (the mobile
  /// backend's Voronoi cells).  Null = the square lattice Z².  Must
  /// outlive the call.
  const Lattice* lattice = nullptr;

  /// Prebuilt conflict graph of `deployment` (coloring backends).  When
  /// null, plan_all builds it once and shares it; a lone Planner::plan
  /// call builds its own.
  const Graph* conflict_graph = nullptr;

  /// Warm-start state from a previous plan of a slightly different
  /// deployment (supplied by PlanSession::replan).  Backends that
  /// declare wants_warm_start() may use it to re-plan only the dirty
  /// region; the result MUST equal the cold plan.  Must outlive the
  /// call.
  const PlanWarmStart* warm = nullptr;

  /// Spatial shard count for the region-sharded backend (>= 1; 1 = one
  /// region, still planned via the streaming builder).  Other backends
  /// ignore it.
  std::size_t regions = 1;

  /// Region halo override; any value below the deployment's interference
  /// reach (including the -1 "auto" default) is raised to the reach, so
  /// the override can only widen dirty-region routing, never break it.
  std::int64_t region_halo = -1;

  /// Previous region plan for incremental dirty-region replans (supplied
  /// by PlanSession::replan; see core/region_shard.hpp).  Must outlive
  /// the call.
  const RegionWarmStart* region_warm = nullptr;

  /// When non-null, the region-sharded backend accumulates its partition
  /// / seam / stitch counters here (flows into SessionStats and the
  /// batch report footer).
  RegionShardStats* region_stats = nullptr;

  /// Persistent tuning cache for the `auto` backend (tune/tune_cache.hpp).
  /// Null = the auto backend tunes into a private in-memory cache that
  /// dies with the call; the batch service always supplies its cache.
  tune::TuneCache* tune_cache = nullptr;

  /// Trial budget for an auto-backend tuning search on a tune-cache miss
  /// (measured candidate configs; the default config is always trial 0).
  std::size_t tune_trials = 8;

  /// Wall-clock budget (ms) for that search; 0 = trials-only.  A wall
  /// budget is inherently timing-dependent, so seeded-determinism
  /// guarantees hold only under a pure trial budget.
  std::uint64_t tune_budget_ms = 0;

  /// Scenario-family label for the tuning fingerprint ("" = derived from
  /// the deployment's dimension / channel / prototile shape).  The batch
  /// service stamps the scenario name here so sweeps of the same family
  /// share tuned configs.
  std::string tune_family;
};

struct PlanResult {
  std::string backend;
  bool ok = false;       ///< slots were produced (false: see `error`)
  std::string error;     ///< why the backend failed (ok == false)

  SensorSlots slots;     ///< per-sensor slot table (ok == true)
  std::string detail;    ///< backend-specific description of the schedule

  /// Collision verdict (request.verify; trivially true when skipped —
  /// `verified` below records whether the checker actually ran, so
  /// reports can render an unchecked schedule as such).
  bool collision_free = false;
  bool verified = false;
  CollisionReport report;

  /// Paper's lower bound max_k |N_k| on any collision-free periodic
  /// schedule of a window containing a full tile (Theorems 1/2).
  std::uint32_t lower_bound = 0;
  /// slots.period / lower_bound; 1.0 = provably optimal slot count.
  double optimality_gap = 0.0;

  /// min/max sensors per slot over the deployment, as in
  /// analysis.hpp's slot_balance: 1.0 = perfectly even, 0 = some slot idle.
  double slot_balance = 0.0;
  /// Fraction of time a sensor may transmit (= 1 / period).
  double duty_cycle = 0.0;

  double wall_seconds = 0.0;  ///< scheduling time (verification excluded)

  /// The tiling the tiling backend scheduled (reusable by callers that
  /// need the point-schedule, e.g. mobile location scheduling).
  std::optional<Tiling> tiling;

  /// Channel count the request planned with (recorded even when the
  /// backend failed, so report rows of a multichannel sweep never
  /// misreport their channel count).
  std::uint32_t channels = 1;

  /// Per-sensor (slot, channel) assignments (request.channels > 1); the
  /// collision verdict above covers them when present.
  std::optional<MultiChannelSlots> channel_slots;

  /// The mobile backend's location scheduler, ready to drive a
  /// MobileSimulator — no consumer rebuilds it from `tiling` by hand.
  std::shared_ptr<const MobileScheduler> mobile;

  /// Auto-backend provenance: "" for ordinary backends, "cache-hit" when
  /// the tuned config came straight from the TuneCache, "searched" when a
  /// bounded tuning run picked it.
  std::string tuned;

  /// Serialized TunedConfig the auto backend delegated with
  /// (tune/knob_space.hpp; e.g. "backend=tiling;node_limit=20000000").
  std::string tuned_config;

  /// Slot period actually deployed: the folded multichannel period when
  /// channels were requested, the plain slot period otherwise.
  std::uint32_t effective_period() const {
    return channel_slots.has_value() ? channel_slots->period : slots.period;
  }
};

/// A scheduling backend.  Implementations produce a slot table; the base
/// class wraps it with timing, verification and the shared diagnostics so
/// every backend reports the same PlanResult surface.
class Planner {
 public:
  virtual ~Planner() = default;

  virtual std::string name() const = 0;

  /// Whether this backend can plan the request at all (e.g. the mobile
  /// backend is 2-D only).  plan_all's default "all backends" selection
  /// skips non-supporting backends; explicitly named backends always run
  /// and report their failure through PlanResult::error.
  virtual bool supports(const PlanRequest& request) const {
    (void)request;
    return true;
  }

  /// Whether the backend consumes PlanRequest::conflict_graph (plan_all
  /// prebuilds the graph once iff some selected backend wants it).
  virtual bool wants_conflict_graph() const { return false; }

  /// Whether the backend can exploit PlanRequest::warm (the greedy
  /// coloring backend re-colors only the dirty region).
  virtual bool wants_warm_start() const { return false; }

  /// Whether the backend consumes PlanRequest::region_warm — the
  /// region-sharded backend replans only the shards a delta dirtied.
  /// PlanSession maintains the region warm state iff some selected
  /// backend asks for it.
  virtual bool wants_region_shard() const { return false; }

  /// Whether plan_all's default "all backends" selection includes this
  /// backend.  The `auto` meta-backend opts out: it delegates to another
  /// registered backend, so an "all" sweep running it too would plan the
  /// winning backend twice.  Explicitly naming it always works.
  virtual bool in_default_set() const { return true; }

  /// Full pipeline: compute slots, verify, attach diagnostics.  Never
  /// throws for backend-level failures — those come back as ok == false.
  /// Virtual so meta-backends (the `auto` tuner) can wrap a delegate's
  /// full pipeline instead of contributing a compute() step.
  virtual PlanResult plan(const PlanRequest& request) const;

 protected:
  struct Raw {
    SensorSlots slots;
    std::string detail;
    std::optional<Tiling> tiling;
    std::shared_ptr<const MobileScheduler> mobile;
  };

  /// Backend-specific slot production; throws on failure (the base turns
  /// the exception into ok == false).
  virtual Raw compute(const PlanRequest& request) const = 0;
};

/// Name-indexed planner collection.  The global() registry comes
/// pre-populated with the eight built-in backends; register_planner adds
/// custom ones (replacing any existing planner of the same name).
class PlannerRegistry {
 public:
  PlannerRegistry() = default;

  void register_planner(std::unique_ptr<Planner> planner);

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The planner registered under `name`, or nullptr.
  const Planner* find(const std::string& name) const;

  /// Runs the named backends ("" or empty list = all registered backends
  /// supporting the request, in registration order) concurrently on the
  /// shared pool and returns their results in the same order.  Builds the
  /// conflict graph once for all coloring backends when the request
  /// doesn't carry one.  Throws std::invalid_argument on unknown names or
  /// a null deployment.  This is a thin wrapper over a single-step
  /// PlanSession (core/plan_session.hpp) — open a session instead when
  /// the deployment will change.
  std::vector<PlanResult> plan_all(
      const PlanRequest& request,
      const std::vector<std::string>& backends = {}) const;

  /// Process-wide registry with the built-in backends.
  static PlannerRegistry& global();

 private:
  std::vector<std::unique_ptr<Planner>> planners_;
};

/// Splits "a,b,c" (or "all" / "") into backend names for plan_all.
std::vector<std::string> parse_backend_list(const std::string& csv);

// Report emission/parsing (CSV and JSON) lives in core/report.hpp.

}  // namespace latticesched
