#include "core/region_shard.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/parallel.hpp"

namespace latticesched {

namespace {

/// Streaming one-row builder for the stitch pass: the candidate offset
/// sets are computed once and shared across every lazily requested row
/// (build_conflict_block amortizes them per block; the stitch asks for
/// single rows).
class RowBuilder {
 public:
  explicit RowBuilder(const Deployment& d)
      : d_(d), offsets_by_type_(d.prototiles().size()),
        uniform_tiles_(d.prototiles().size() == 1) {}

  void build(std::uint32_t u, std::vector<std::uint32_t>& row) const {
    row.clear();
    const std::uint32_t type = d_.type_of(u);
    PointVec& offsets = offsets_by_type_[type];
    if (offsets.empty()) offsets = conflict_candidate_offsets(d_, type);
    const Point& pos = d_.position(u);
    for (const Point& off : offsets) {
      const auto v = d_.sensor_at(pos + off);
      // Single prototile: a candidate-offset hit is a conflict by
      // construction (same fast path as build_conflict_block).
      if (v.has_value() && *v != u &&
          (uniform_tiles_ || sensors_conflict(d_, u, *v))) {
        row.push_back(static_cast<std::uint32_t>(*v));
      }
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }

 private:
  const Deployment& d_;
  mutable std::vector<PointVec> offsets_by_type_;
  const bool uniform_tiles_;
};

}  // namespace

RegionGrid partition_regions(const Deployment& d, std::size_t regions,
                             std::int64_t halo) {
  RegionGrid grid;
  grid.halo = std::max(halo, interference_reach(d));
  const std::size_t n = d.size();
  if (n == 0) return grid;

  const std::size_t dim = d.position(0).dim();
  Point lo = d.position(0);
  Point hi = d.position(0);
  for (const Point& p : d.positions()) {
    for (std::size_t a = 0; a < dim; ++a) {
      lo[a] = std::min(lo[a], p[a]);
      hi[a] = std::max(hi[a], p[a]);
    }
  }
  const Box hull(lo, hi);

  // Axis split counts: repeatedly halve the axis with the widest current
  // slice until the grid reaches the requested region count (or every
  // slice is a single lattice line).
  const std::size_t target = std::max<std::size_t>(1, std::min(regions, n));
  std::vector<std::size_t> parts(dim, 1);
  std::size_t prod = 1;
  while (prod < target) {
    std::size_t best = dim;
    double best_width = 1.0;
    for (std::size_t a = 0; a < dim; ++a) {
      const double width = static_cast<double>(hull.extent(a)) /
                           static_cast<double>(parts[a]);
      if (width > best_width) {
        best_width = width;
        best = a;
      }
    }
    if (best == dim) break;  // all slices are single points already
    prod = prod / parts[best] * (parts[best] + 1);
    ++parts[best];
  }

  // Chunk widths ceil(extent / parts): (extent-1)/width <= parts-1, so
  // every coordinate lands in a valid chunk without wide arithmetic.
  // With the width fixed, only ceil(extent / width) chunks are non-empty
  // — shrink parts to that count so no box degenerates past the hull
  // (e.g. extent 13 split 8 ways rounds to width 2 = 7 real chunks).
  std::vector<std::int64_t> width(dim, 1);
  std::size_t total = 1;
  for (std::size_t a = 0; a < dim; ++a) {
    width[a] = (hull.extent(a) + static_cast<std::int64_t>(parts[a]) - 1) /
               static_cast<std::int64_t>(parts[a]);
    parts[a] = static_cast<std::size_t>((hull.extent(a) + width[a] - 1) /
                                        width[a]);
    total *= parts[a];
  }

  grid.boxes.reserve(total);
  for (std::size_t r = 0; r < total; ++r) {
    Point box_lo(dim);
    Point box_hi(dim);
    std::size_t rest = r;
    for (std::size_t a = 0; a < dim; ++a) {
      const std::int64_t chunk = static_cast<std::int64_t>(rest % parts[a]);
      rest /= parts[a];
      box_lo[a] = lo[a] + chunk * width[a];
      box_hi[a] = std::min(hi[a], box_lo[a] + width[a] - 1);
    }
    grid.boxes.emplace_back(box_lo, box_hi);
  }

  grid.region_of.resize(n);
  grid.members.resize(total);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = d.position(i);
    std::size_t r = 0;
    std::size_t stride = 1;
    for (std::size_t a = 0; a < dim; ++a) {
      r += stride * static_cast<std::size_t>((p[a] - lo[a]) / width[a]);
      stride *= parts[a];
    }
    grid.region_of[i] = static_cast<std::uint32_t>(r);
    grid.members[r].push_back(static_cast<std::uint32_t>(i));
  }
  return grid;
}

Coloring plan_regions(const Deployment& d, std::size_t regions,
                      std::int64_t halo, const RegionWarmStart* warm,
                      RegionShardStats* stats) {
  const std::size_t n = d.size();
  Coloring colors(n, kUncolored);
  if (n == 0) return colors;

  const RegionGrid grid = partition_regions(d, regions, halo);
  const std::size_t total = grid.boxes.size();

  // Dirty-region routing: with warm state, a shard needs re-coloring iff
  // its halo-expanded box contains a position where the conflict
  // structure changed — everything further away kept both its row and
  // (pending the stitch) its fixpoint color.
  std::vector<std::uint32_t> planned;
  bool warm_ok = warm != nullptr && warm->colors.size() == n;
  if (warm_ok) {
    colors = warm->colors;
    const std::int64_t route_halo = std::max(grid.halo, warm->dirty_reach);
    for (std::size_t r = 0; r < total; ++r) {
      const Box reach = grid.boxes[r].expanded(route_halo);
      for (const Point& p : warm->dirty_positions) {
        if (reach.contains(p)) {
          planned.push_back(static_cast<std::uint32_t>(r));
          break;
        }
      }
    }
    // Safety net: a sensor without a carried color must sit in a planned
    // shard; inconsistent warm state degrades to a cold region plan.
    std::vector<char> is_planned(total, 0);
    for (std::uint32_t r : planned) is_planned[r] = 1;
    for (std::size_t i = 0; i < n && warm_ok; ++i) {
      if (colors[i] == kUncolored && !is_planned[grid.region_of[i]]) {
        warm_ok = false;
      }
    }
  }
  if (!warm_ok) {
    colors.assign(n, kUncolored);
    planned.resize(total);
    std::iota(planned.begin(), planned.end(), 0);
  }

  // Phase 1 (cold plans): first-fit each shard independently from its
  // streaming CSR block (intra-region edges only; blocks are discarded
  // as soon as the shard is colored, so memory stays bounded per region
  // times the worker count).  Writes touch disjoint index sets, and
  // cross-region colors are never read, so the fan-out is race-free.
  //
  // Warm plans skip this phase: the stitch's change detection compares
  // against the table it is handed, which must hold exactly the values
  // the UNTOUCHED shards last observed — the carried fixpoint.  Local
  // re-coloring would overwrite dirty members with values their clean
  // neighbors never saw and silently suppress propagation, so dirty
  // members enter the stitch uncolored instead (the fixpoint repair
  // seeds every uncolored vertex and always propagates from it).
  std::vector<char> seam(n, 0);
  std::uint64_t seam_count = 0;
  std::vector<std::uint32_t> seeds;
  if (warm_ok) {
    for (std::uint32_t r : planned) {
      for (std::uint32_t u : grid.members[r]) colors[u] = kUncolored;
    }
  } else {
    parallel_for(0, planned.size(), [&](std::size_t k) {
      const std::uint32_t r = planned[k];
      const std::vector<std::uint32_t>& mem = grid.members[r];
      if (mem.empty()) return;
      const CsrU32 block = build_conflict_block(d, mem);
      std::vector<bool> used;
      for (std::size_t li = 0; li < mem.size(); ++li) {
        const std::uint32_t u = mem[li];
        const auto row = block.row(li);
        used.assign(row.size() + 2, false);
        for (std::uint32_t v : row) {
          if (grid.region_of[v] != r) {
            seam[u] = 1;
            continue;
          }
          if (v < u && colors[v] != kUncolored && colors[v] < used.size()) {
            used[colors[v]] = true;
          }
        }
        std::uint32_t c = 0;
        while (used[c]) ++c;
        colors[u] = c;
      }
    });
    // Phase 2 seeds: every seam sensor (interior vertices already
    // satisfy their mex equation against the local colors).
    for (std::uint32_t u = 0; u < n; ++u) {
      if (seam[u]) {
        ++seam_count;
        seeds.push_back(u);
      }
    }
  }

  // Phase 2: stitch back to the global greedy fixpoint.  Rows are
  // streamed lazily and memoized — only seams, dirty members and
  // vertices reached by color propagation are ever materialized.
  const RowBuilder builder(d);
  std::vector<std::vector<std::uint32_t>> rows(n);
  std::vector<char> have(n, 0);
  const NeighborProvider provider =
      [&](std::uint32_t u) -> const std::vector<std::uint32_t>& {
    if (!have[u]) {
      builder.build(u, rows[u]);
      have[u] = 1;
    }
    return rows[u];
  };
  const Coloring before = colors;
  colors = incremental_greedy_coloring(n, provider, std::move(colors), seeds);

  if (stats != nullptr) {
    stats->regions += total;
    stats->regions_planned += planned.size();
    stats->seam_sensors += seam_count;
    for (std::size_t i = 0; i < n; ++i) {
      if (colors[i] != before[i]) ++stats->stitch_recolored;
    }
  }
  return colors;
}

}  // namespace latticesched
