// Spatial region sharding: plan huge deployments region by region.
//
// The paper's schedules are defined pointwise, so a deployment can be
// planned in rectangular spatial shards as long as the slot tables agree
// across interference seams.  This module owns the three pieces every
// consumer (planner backend, PlanSession, batch service, coordinator,
// driver) shares:
//
//   1. The partitioner: the deployment's bounding window split into an
//      axis-aligned grid of ~`regions` rectangular core boxes, each
//      sensor assigned to exactly one.  Conflicts reach at most the
//      interference halo (graph/interference.hpp's interference_reach),
//      so a box grown by the halo bounds everything a region can see.
//   2. The region planner: each shard first-fit colored independently
//      (parallel_for over shards) from a streaming per-region CSR block
//      (build_conflict_block) — the full all-pairs conflict graph is
//      never materialized, keeping memory bounded per region.
//   3. The seam stitcher: sensors with cross-region conflicts are
//      repaired with the lazy-row incremental_greedy_coloring fixpoint
//      pass.  Greedy first-fit is the unique fixpoint of
//      c(u) = mex{c(v) : v ~ u, v < u}, so the stitched table is
//      EXACTLY greedy_coloring(build_conflict_graph(d)) — the serial
//      cold plan — while only seam rows are ever streamed in.
//
// Incremental replans route a DeploymentDelta to the regions it touches:
// a region is dirty iff its halo-expanded box contains a position where
// the conflict structure changed; only dirty shards are re-colored and
// the stitch re-runs seeded with their members.  Exactness is preserved
// (same fixpoint argument), so a warm region plan equals the cold one.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coloring.hpp"
#include "graph/interference.hpp"
#include "lattice/region.hpp"

namespace latticesched {

/// Counters of one plan_regions call.  PlanSession accumulates them into
/// SessionStats; the batch service and the distributed coordinator merge
/// them into the report footer.
struct RegionShardStats {
  std::uint64_t regions = 0;          ///< shards in the partition
  std::uint64_t regions_planned = 0;  ///< shards (re)colored by this call
  std::uint64_t seam_sensors = 0;     ///< planned sensors with cross-region conflicts
  std::uint64_t stitch_recolored = 0; ///< vertices the stitch pass recolored
};

/// The spatial partition: disjoint core boxes covering the deployment's
/// bounding window, plus the per-sensor assignment.
struct RegionGrid {
  std::vector<Box> boxes;                ///< core box per region
  std::vector<std::uint32_t> region_of;  ///< region index per sensor
  /// Sensor ids per region, ascending (global first-fit order).
  std::vector<std::vector<std::uint32_t>> members;
  std::int64_t halo = 0;  ///< effective halo (>= interference_reach)
};

/// Previous-plan state for an incremental region replan, maintained by
/// PlanSession across deltas.  The contract mirrors PlanWarmStart:
/// exactness — a warm region plan equals the cold one.
struct RegionWarmStart {
  /// Stitched slot table of the previous region plan, carried onto the
  /// CURRENT sensor ids (kUncolored for sensors without a prior slot).
  std::vector<std::uint32_t> colors;
  /// Every position where the conflict structure changed since `colors`:
  /// old positions of removed/moved/reshaped sensors plus new positions
  /// of added/moved/reshaped ones.  Routes the delta to dirty regions.
  PointVec dirty_positions;
  /// Largest interference reach of the pre-delta deployments those
  /// positions were recorded against (a radius decrease must still dirty
  /// the regions the OLD, larger prototile reached).
  std::int64_t dirty_reach = 0;
};

/// Splits the deployment's bounding window into an axis-aligned grid of
/// roughly `regions` rectangular shards (axes with the largest extent are
/// split first) and assigns every sensor to its shard.  `halo` < the
/// interference reach (including any negative value, the "auto" request)
/// is raised to the reach — a smaller halo would let deltas slip past
/// dirty-region routing.
RegionGrid partition_regions(const Deployment& d, std::size_t regions,
                             std::int64_t halo);

/// Plans `d` region by region and stitches the seams; returns a slot
/// table identical to greedy_coloring(build_conflict_graph(d)) without
/// ever materializing the full conflict graph.  With `warm`, only the
/// shards dirtied by warm->dirty_positions are re-colored before the
/// re-stitch (the result is still exactly the cold table).  Counters are
/// accumulated into `stats` when non-null.
Coloring plan_regions(const Deployment& d, std::size_t regions,
                      std::int64_t halo, const RegionWarmStart* warm,
                      RegionShardStats* stats);

}  // namespace latticesched
