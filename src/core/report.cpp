#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/cli.hpp"

namespace latticesched {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
        }
        break;
      default: out += s[i];
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Round-trip-exact double form for the wire (shard assignments must
/// reproduce the coordinator's instances bit-for-bit; %.6g would round
/// a swept density into a different deployment).
std::string format_double_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

constexpr const char* kCsvHeader =
    "scenario,step,backend,ok,sensors,period,lower_bound,optimality_gap,"
    "collision_free,verified,slot_balance,duty_cycle,wall_ms,channels,"
    "effective_period,tuned,tuned_config,error";

void emit_csv_row(std::ostream& os, const PlanResultRow& row) {
  os << row.scenario << ',' << row.step << ',' << row.backend << ','
     << (row.ok ? 1 : 0) << ','
     << row.sensors << ',' << row.period << ',' << row.lower_bound << ','
     << format_double(row.optimality_gap) << ','
     << (row.collision_free ? 1 : 0) << ',' << (row.verified ? 1 : 0)
     << ',' << format_double(row.slot_balance) << ','
     << format_double(row.duty_cycle) << ','
     << format_double(row.wall_ms) << ',' << row.channels << ','
     << row.effective_period << ',' << row.tuned << ','
     << row.tuned_config << ',' << '"' << row.error << '"' << '\n';
}

void emit_json_object(std::ostream& os, const PlanResultRow& row,
                      const std::string& indent) {
  os << indent << "{\"scenario\": \"" << json_escape(row.scenario)
     << "\", \"step\": " << row.step
     << ", \"backend\": \"" << json_escape(row.backend)
     << "\", \"ok\": " << (row.ok ? "true" : "false")
     << ", \"sensors\": " << row.sensors << ", \"period\": " << row.period
     << ", \"lower_bound\": " << row.lower_bound
     << ", \"optimality_gap\": " << format_double(row.optimality_gap)
     << ", \"collision_free\": " << (row.collision_free ? "true" : "false")
     << ", \"verified\": " << (row.verified ? "true" : "false")
     << ", \"slot_balance\": " << format_double(row.slot_balance)
     << ", \"duty_cycle\": " << format_double(row.duty_cycle)
     << ", \"wall_ms\": " << format_double(row.wall_ms)
     << ", \"channels\": " << row.channels
     << ", \"effective_period\": " << row.effective_period
     << ", \"tuned\": \"" << json_escape(row.tuned)
     << "\", \"tuned_config\": \"" << json_escape(row.tuned_config)
     << "\", \"detail\": \"" << json_escape(row.detail) << "\", \"error\": \""
     << json_escape(row.error) << "\"}";
}

// -- Minimal parsers for the exact formats emitted above ------------------

std::vector<std::string> split_line(const std::string& line) {
  // The only quoted field is the trailing `error`, so split the first 17
  // commas and treat the rest as the error payload.
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (int field = 0; field < 17; ++field) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) {
      throw std::invalid_argument("plan-results CSV: short row: " + line);
    }
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  std::string error = line.substr(pos);
  if (error.size() >= 2 && error.front() == '"' && error.back() == '"') {
    error = error.substr(1, error.size() - 2);
  }
  out.push_back(error);
  return out;
}

/// Extracts the JSON value (raw text) following `"key": ` in `obj`.
std::string json_field(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) {
    throw std::invalid_argument("plan-results JSON: missing key '" + key +
                                "'");
  }
  std::size_t pos = at + needle.size();
  if (obj[pos] == '"') {
    // String value: scan to the closing quote, stepping over escape
    // pairs so a value ending in an (escaped) backslash terminates
    // correctly.
    std::size_t end = pos + 1;
    while (end < obj.size() && obj[end] != '"') {
      end += obj[end] == '\\' ? 2 : 1;
    }
    if (end > obj.size()) end = obj.size();
    return json_unescape(obj.substr(pos + 1, end - pos - 1));
  }
  std::size_t end = pos;
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}') ++end;
  return obj.substr(pos, end - pos);
}

PlanResultRow row_from_json_object(const std::string& obj) {
  PlanResultRow row;
  row.scenario = json_field(obj, "scenario");
  row.step = std::stoull(json_field(obj, "step"));
  row.backend = json_field(obj, "backend");
  row.ok = json_field(obj, "ok") == "true";
  row.sensors = std::stoull(json_field(obj, "sensors"));
  row.period = static_cast<std::uint32_t>(
      std::stoul(json_field(obj, "period")));
  row.lower_bound = static_cast<std::uint32_t>(
      std::stoul(json_field(obj, "lower_bound")));
  row.optimality_gap = std::stod(json_field(obj, "optimality_gap"));
  row.collision_free = json_field(obj, "collision_free") == "true";
  row.verified = json_field(obj, "verified") == "true";
  row.slot_balance = std::stod(json_field(obj, "slot_balance"));
  row.duty_cycle = std::stod(json_field(obj, "duty_cycle"));
  row.wall_ms = std::stod(json_field(obj, "wall_ms"));
  row.channels = static_cast<std::uint32_t>(
      std::stoul(json_field(obj, "channels")));
  row.effective_period = static_cast<std::uint32_t>(
      std::stoul(json_field(obj, "effective_period")));
  row.tuned = json_field(obj, "tuned");
  row.tuned_config = json_field(obj, "tuned_config");
  row.detail = json_field(obj, "detail");
  row.error = json_field(obj, "error");
  return row;
}

}  // namespace

PlanResultRow to_row(const PlanResult& result, const std::string& scenario,
                     std::uint64_t step) {
  PlanResultRow row;
  row.scenario = scenario;
  row.step = step;
  row.backend = result.backend;
  row.ok = result.ok;
  row.sensors = result.slots.slot.size();
  row.period = result.slots.period;
  row.lower_bound = result.lower_bound;
  row.optimality_gap = result.optimality_gap;
  row.collision_free = result.collision_free;
  row.verified = result.verified;
  row.slot_balance = result.slot_balance;
  row.duty_cycle = result.duty_cycle;
  row.wall_ms = result.wall_seconds * 1e3;
  row.channels = result.channels;
  row.effective_period = result.effective_period();
  row.tuned = result.tuned;
  row.tuned_config = result.tuned_config;
  row.detail = result.detail;
  row.error = result.error;
  return row;
}

std::string plan_results_to_csv(const std::vector<PlanResult>& results,
                                const std::string& scenario) {
  std::ostringstream os;
  os << kCsvHeader << '\n';
  for (const PlanResult& r : results) emit_csv_row(os, to_row(r, scenario));
  return os.str();
}

std::string plan_results_to_json(const std::vector<PlanResult>& results,
                                 const std::string& scenario) {
  return plan_results_to_json(results, scenario, 0);
}

std::string plan_results_to_json(const std::vector<PlanResult>& results,
                                 const std::string& scenario,
                                 std::uint64_t step) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    emit_json_object(os, to_row(results[i], scenario, step), "  ");
    os << (i + 1 < results.size() ? "," : "") << '\n';
  }
  os << "]\n";
  return os.str();
}

std::vector<PlanResultRow> parse_plan_results_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line) || line != kCsvHeader) {
    throw std::invalid_argument("plan-results CSV: bad header");
  }
  std::vector<PlanResultRow> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = split_line(line);
    PlanResultRow row;
    row.scenario = f[0];
    row.step = std::stoull(f[1]);
    row.backend = f[2];
    row.ok = f[3] == "1";
    row.sensors = std::stoull(f[4]);
    row.period = static_cast<std::uint32_t>(std::stoul(f[5]));
    row.lower_bound = static_cast<std::uint32_t>(std::stoul(f[6]));
    row.optimality_gap = std::stod(f[7]);
    row.collision_free = f[8] == "1";
    row.verified = f[9] == "1";
    row.slot_balance = std::stod(f[10]);
    row.duty_cycle = std::stod(f[11]);
    row.wall_ms = std::stod(f[12]);
    row.channels = static_cast<std::uint32_t>(std::stoul(f[13]));
    row.effective_period = static_cast<std::uint32_t>(std::stoul(f[14]));
    row.tuned = f[15];
    row.tuned_config = f[16];
    row.error = f[17];
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<PlanResultRow> parse_plan_results_json(const std::string& json) {
  // The emitters write one result object per line; batch JSON nests the
  // same per-line objects under "items", so scanning for lines holding a
  // "backend" key parses both forms.
  std::vector<PlanResultRow> rows;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"backend\": ") == std::string::npos) continue;
    rows.push_back(row_from_json_object(line));
  }
  return rows;
}

std::string batch_report_to_csv(const BatchReport& report) {
  std::ostringstream os;
  os << kCsvHeader << '\n';
  for (const BatchItemReport& item : report.items) {
    if (!item.built) {
      PlanResultRow row;
      row.scenario = item.label.empty() ? item.scenario : item.label;
      row.backend = "-";
      row.error = item.error;
      emit_csv_row(os, row);
      continue;
    }
    if (!item.steps.empty()) {
      for (const BatchStepReport& step : item.steps) {
        for (const PlanResult& r : step.results) {
          emit_csv_row(os, to_row(r, item.label, step.step));
        }
      }
      continue;
    }
    for (const PlanResult& r : item.results) {
      emit_csv_row(os, to_row(r, item.label));
    }
  }
  return os.str();
}

std::string batch_report_to_json(const BatchReport& report) {
  std::ostringstream os;
  os << "{\n  \"items\": [\n";
  for (std::size_t i = 0; i < report.items.size(); ++i) {
    const BatchItemReport& item = report.items[i];
    os << "    {\"scenario\": \"" << json_escape(item.scenario)
       << "\", \"label\": \"" << json_escape(item.label)
       << "\", \"sensors\": " << item.sensors
       << ", \"channels\": " << item.channels
       << ", \"steps\": " << item.steps.size()
       << ", \"built\": " << (item.built ? "true" : "false")
       << ", \"error\": \"" << json_escape(item.error)
       << "\", \"results\": [\n";
    if (!item.steps.empty()) {
      // Dynamic item: one row per (step, backend); the step column
      // groups them back on parse (item.results is the final step's
      // results and is NOT emitted separately).
      std::size_t emitted = 0, total = 0;
      for (const BatchStepReport& step : item.steps) {
        total += step.results.size();
      }
      for (const BatchStepReport& step : item.steps) {
        for (const PlanResult& r : step.results) {
          emit_json_object(os, to_row(r, item.label, step.step), "      ");
          os << (++emitted < total ? "," : "") << '\n';
        }
      }
    } else {
      for (std::size_t j = 0; j < item.results.size(); ++j) {
        emit_json_object(os, to_row(item.results[j], item.label), "      ");
        os << (j + 1 < item.results.size() ? "," : "") << '\n';
      }
    }
    os << "    ]}" << (i + 1 < report.items.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  os << "  \"cache\": {\"hits\": " << report.cache_hits
     << ", \"misses\": " << report.cache_misses << "},\n";
  os << "  \"search\": {\"subtree_tasks\": " << report.search_subtree_tasks
     << ", \"steals\": " << report.search_steals << ", \"kernel\": \""
     << json_escape(report.search_kernel) << "\"},\n";
  os << "  \"regions\": {\"count\": " << report.regions
     << ", \"seam_sensors\": " << report.seam_sensors
     << ", \"stitch_recolored\": " << report.stitch_recolored << "},\n";
  os << "  \"tuning\": {\"hits\": " << report.tune_hits
     << ", \"misses\": " << report.tune_misses
     << ", \"searches\": " << report.tune_searches
     << ", \"trials\": " << report.tune_trials_run << "},\n";
  os << "  \"worker_failures\": " << report.worker_failures << ",\n";
  os << "  \"worker_timeouts\": " << report.worker_timeouts << ",\n";
  os << "  \"degraded\": " << (report.degraded ? "true" : "false") << ",\n";
  os << "  \"quarantined_items\": [";
  for (std::size_t i = 0; i < report.quarantined_items.size(); ++i) {
    os << (i == 0 ? "" : ", ") << report.quarantined_items[i];
  }
  os << "],\n";
  os << "  \"wall_ms\": " << format_double(report.wall_seconds * 1e3)
     << "\n}\n";
  return os.str();
}

PlanResult result_from_row(const PlanResultRow& row) {
  PlanResult result;
  result.backend = row.backend;
  result.ok = row.ok;
  result.error = row.error;
  result.detail = row.detail;
  result.collision_free = row.collision_free;
  result.verified = row.verified;
  result.lower_bound = row.lower_bound;
  result.optimality_gap = row.optimality_gap;
  result.slot_balance = row.slot_balance;
  result.duty_cycle = row.duty_cycle;
  result.wall_seconds = row.wall_ms / 1e3;
  result.channels = row.channels;
  result.tuned = row.tuned;
  result.tuned_config = row.tuned_config;
  result.slots.period = row.period;
  // The row stores the sensor count as the slot-table size; a
  // placeholder table keeps that invariant without shipping the slots.
  result.slots.slot.assign(row.sensors, 0);
  // A successful multichannel plan carries its folded period through
  // channel_slots (effective_period() reads it); failures record the
  // channel count only, exactly like the live pipeline.
  if (row.channels > 1 && row.ok) {
    MultiChannelSlots folded;
    folded.period = row.effective_period;
    folded.channels = row.channels;
    result.channel_slots = std::move(folded);
  }
  return result;
}

BatchReport parse_batch_report_json(const std::string& json) {
  BatchReport report;
  std::istringstream is(json);
  std::string line;
  bool saw_cache = false;
  bool saw_wall = false;
  std::size_t declared_steps = 0;  // of the item currently being parsed
  while (std::getline(is, line)) {
    if (line.find("\"label\": ") != std::string::npos) {
      BatchItemReport item;
      item.scenario = json_field(line, "scenario");
      item.label = json_field(line, "label");
      item.sensors = std::stoull(json_field(line, "sensors"));
      item.channels = static_cast<std::uint32_t>(
          std::stoul(json_field(line, "channels")));
      declared_steps = std::stoull(json_field(line, "steps"));
      item.built = json_field(line, "built") == "true";
      item.error = json_field(line, "error");
      report.items.push_back(std::move(item));
    } else if (line.find("\"backend\": ") != std::string::npos) {
      if (report.items.empty()) {
        throw std::invalid_argument(
            "batch JSON: result row before any item");
      }
      const PlanResultRow row = row_from_json_object(line);
      BatchItemReport& item = report.items.back();
      if (declared_steps > 0) {
        // Dynamic item: the step column groups rows back into
        // BatchStepReports (rows of one step are consecutive).  The
        // fleet size is the max over the step's rows — a FAILED
        // backend's row carries sensors=0 (no slot table) and must not
        // zero the step.
        if (item.steps.empty() || item.steps.back().step != row.step) {
          item.steps.push_back(BatchStepReport{row.step, 0, {}});
        }
        item.steps.back().sensors =
            std::max(item.steps.back().sensors, row.sensors);
        item.steps.back().results.push_back(result_from_row(row));
      } else {
        item.results.push_back(result_from_row(row));
      }
    } else if (line.find("\"cache\": ") != std::string::npos) {
      report.cache_hits = std::stoull(json_field(line, "hits"));
      report.cache_misses = std::stoull(json_field(line, "misses"));
      saw_cache = true;
    } else if (line.find("\"search\": ") != std::string::npos) {
      // Optional (absent in pre-v4 payloads): work-stealing counters.
      report.search_subtree_tasks =
          std::stoull(json_field(line, "subtree_tasks"));
      report.search_steals = std::stoull(json_field(line, "steals"));
      report.search_kernel = json_field(line, "kernel");
    } else if (line.find("\"regions\": {") != std::string::npos) {
      // Optional (absent in pre-v5 payloads): region-shard counters.
      report.regions = std::stoull(json_field(line, "count"));
      report.seam_sensors = std::stoull(json_field(line, "seam_sensors"));
      report.stitch_recolored =
          std::stoull(json_field(line, "stitch_recolored"));
    } else if (line.find("\"tuning\": {") != std::string::npos) {
      // Optional (absent in pre-v7 payloads): auto-tuner counters.
      report.tune_hits = std::stoull(json_field(line, "hits"));
      report.tune_misses = std::stoull(json_field(line, "misses"));
      report.tune_searches = std::stoull(json_field(line, "searches"));
      report.tune_trials_run = std::stoull(json_field(line, "trials"));
    } else if (line.find("\"worker_failures\": ") != std::string::npos) {
      report.worker_failures =
          std::stoull(json_field(line, "worker_failures"));
    } else if (line.find("\"worker_timeouts\": ") != std::string::npos) {
      report.worker_timeouts =
          std::stoull(json_field(line, "worker_timeouts"));
    } else if (line.find("\"degraded\": ") != std::string::npos) {
      report.degraded = json_field(line, "degraded") == "true";
    } else if (line.find("\"quarantined_items\": ") != std::string::npos) {
      // "quarantined_items": [i, j, ...] — split the bracketed list.
      const std::size_t open = line.find('[');
      const std::size_t close = line.find(']', open);
      if (open == std::string::npos || close == std::string::npos) {
        throw std::invalid_argument(
            "batch JSON: malformed quarantined_items");
      }
      std::istringstream list(line.substr(open + 1, close - open - 1));
      std::string token;
      while (std::getline(list, token, ',')) {
        if (token.find_first_not_of(" \t") == std::string::npos) continue;
        report.quarantined_items.push_back(std::stoull(token));
      }
    } else if (line.find("\"wall_ms\": ") != std::string::npos) {
      report.wall_seconds = std::stod(json_field(line, "wall_ms")) / 1e3;
      saw_wall = true;
    }
  }
  if (!saw_cache || !saw_wall) {
    throw std::invalid_argument("batch JSON: missing cache/wall_ms footer");
  }
  // Dynamic items mirror the live shape: results == the final step's.
  for (BatchItemReport& item : report.items) {
    if (!item.steps.empty()) item.results = item.steps.back().results;
  }
  return report;
}

std::string batch_items_to_json(const std::vector<BatchItem>& items) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    std::string backends;
    for (std::size_t b = 0; b < item.backends.size(); ++b) {
      if (b > 0) backends += ',';
      backends += item.backends[b];
    }
    os << "  {\"scenario\": \"" << json_escape(item.query.scenario)
       << "\", \"n\": " << item.query.params.n
       << ", \"radius\": " << item.query.params.radius
       << ", \"seed\": " << item.query.params.seed
       << ", \"channels\": " << item.query.params.channels
       << ", \"density\": " << format_double_exact(item.query.params.density)
       << ", \"steps\": " << item.query.params.steps
       << ", \"trace_script\": \"" << json_escape(item.trace_script)
       << "\", \"backends\": \"" << json_escape(backends)
       << "\", \"verify\": " << (item.verify ? "true" : "false")
       << ", \"regions\": " << item.regions
       << ", \"region_halo\": " << item.region_halo
       << ", \"max_period_cells\": " << item.search.max_period_cells
       << ", \"node_limit\": " << item.search.node_limit
       << ", \"require_all_prototiles\": "
       << (item.search.require_all_prototiles ? "true" : "false")
       << ", \"use_dense_engine\": "
       << (item.search.use_dense_engine ? "true" : "false")
       << ", \"use_parallel\": "
       << (item.search.use_parallel ? "true" : "false")
       << ", \"sa_max_iters\": " << item.sa.max_iters
       << ", \"sa_initial_temperature\": "
       << format_double_exact(item.sa.initial_temperature)
       << ", \"sa_cooling\": " << format_double_exact(item.sa.cooling)
       << ", \"sa_seed\": " << item.sa.seed
       << ", \"sa_restarts\": " << item.sa.restarts
       << ", \"tune_trials\": " << item.tune_trials
       << ", \"tune_budget_ms\": " << item.tune_budget_ms << "}"
       << (i + 1 < items.size() ? "," : "") << '\n';
  }
  os << "]\n";
  return os.str();
}

std::vector<BatchItem> parse_batch_items_json(const std::string& json) {
  std::vector<BatchItem> items;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"scenario\": ") == std::string::npos) continue;
    BatchItem item;
    item.query.scenario = json_field(line, "scenario");
    item.query.params.n = std::stoll(json_field(line, "n"));
    item.query.params.radius = std::stoll(json_field(line, "radius"));
    item.query.params.seed = std::stoull(json_field(line, "seed"));
    item.query.params.channels = static_cast<std::uint32_t>(
        std::stoul(json_field(line, "channels")));
    item.query.params.density = std::stod(json_field(line, "density"));
    item.query.params.steps = std::stoll(json_field(line, "steps"));
    item.trace_script = json_field(line, "trace_script");
    item.backends = split_csv_list(json_field(line, "backends"));
    item.verify = json_field(line, "verify") == "true";
    item.regions = std::stoull(json_field(line, "regions"));
    item.region_halo = std::stoll(json_field(line, "region_halo"));
    item.search.max_period_cells =
        std::stoll(json_field(line, "max_period_cells"));
    item.search.node_limit = std::stoull(json_field(line, "node_limit"));
    item.search.require_all_prototiles =
        json_field(line, "require_all_prototiles") == "true";
    item.search.use_dense_engine =
        json_field(line, "use_dense_engine") == "true";
    item.search.use_parallel = json_field(line, "use_parallel") == "true";
    item.sa.max_iters = std::stoull(json_field(line, "sa_max_iters"));
    item.sa.initial_temperature =
        std::stod(json_field(line, "sa_initial_temperature"));
    item.sa.cooling = std::stod(json_field(line, "sa_cooling"));
    item.sa.seed = std::stoull(json_field(line, "sa_seed"));
    item.sa.restarts = std::stoull(json_field(line, "sa_restarts"));
    // Optional (absent in pre-v7 payloads): auto-backend tuning budgets.
    if (line.find("\"tune_trials\": ") != std::string::npos) {
      item.tune_trials = std::stoull(json_field(line, "tune_trials"));
      item.tune_budget_ms =
          std::stoull(json_field(line, "tune_budget_ms"));
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace latticesched
