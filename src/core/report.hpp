// Machine-readable plan reports: CSV and JSON emission AND parsing.
//
// The emitters serialize PlanResults (one row/object per backend result,
// including the multichannel fields) and whole BatchReports (items plus
// the TilingCache hit/miss counters, so a sweep report proves its cache
// behavior).  The parsers read exactly the formats the emitters write —
// they exist so round-trips are testable and downstream tooling can
// rely on the schema staying parseable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan_service.hpp"
#include "core/planner.hpp"

namespace latticesched {

/// Writes results as a CSV / JSON report (one row or object per result).
std::string plan_results_to_csv(const std::vector<PlanResult>& results,
                                const std::string& scenario = "");
std::string plan_results_to_json(const std::vector<PlanResult>& results,
                                 const std::string& scenario = "");

/// JSON rows tagged with a session step — the REPLAN/EVENT result body
/// of the serve protocol (src/serve); parse_plan_results_json reads it
/// back, so a remote client reassembles the exact rows a local
/// PlanSession run would emit.
std::string plan_results_to_json(const std::vector<PlanResult>& results,
                                 const std::string& scenario,
                                 std::uint64_t step);

/// The serialized surface of a PlanResult — what a report row carries
/// (slot tables themselves ship via core/serialization.hpp).
struct PlanResultRow {
  std::string scenario;
  /// Session step the result belongs to (0 = initial deployment / any
  /// static plan; dynamic items tag each step's rows with its `at`).
  std::uint64_t step = 0;
  std::string backend;
  bool ok = false;
  std::size_t sensors = 0;
  std::uint32_t period = 0;
  std::uint32_t lower_bound = 0;
  double optimality_gap = 0.0;
  bool collision_free = false;
  bool verified = false;  ///< collision checker actually ran
  double slot_balance = 0.0;
  double duty_cycle = 0.0;
  double wall_ms = 0.0;
  std::uint32_t channels = 1;
  std::uint32_t effective_period = 0;  ///< folded period (== period at c=1)
  /// Auto-backend provenance ("" / "cache-hit" / "searched") and the
  /// serialized TunedConfig it delegated with (PlanResult::{tuned,
  /// tuned_config}; both token-safe, so they sit unquoted in the CSV).
  std::string tuned;
  std::string tuned_config;
  std::string detail;                  ///< JSON only (CSV omits it)
  std::string error;
};

/// The row the emitters would write for `result` (`step` tags dynamic
/// session steps; 0 for one-shot plans).
PlanResultRow to_row(const PlanResult& result, const std::string& scenario,
                     std::uint64_t step = 0);

/// Parse the emitters' output; throw std::invalid_argument on malformed
/// input.  parse_plan_results_csv leaves `detail` empty (CSV omits it).
std::vector<PlanResultRow> parse_plan_results_csv(const std::string& csv);
std::vector<PlanResultRow> parse_plan_results_json(const std::string& json);

/// Batch reports: CSV is the per-result rows of every item (labelled by
/// the item's scenario label) — cache counters don't fit a row stream
/// and are surfaced by the JSON form and the driver's footer.  JSON is
/// one object: {"items": [...], "cache": {...}, "worker_failures": ...,
/// "worker_timeouts": ..., "degraded": ..., "quarantined_items": [...],
/// "wall_ms": ...}.  Dynamic items emit one row per (step, backend)
/// with the row's `step` column set and `"steps": <count>` in the item
/// header; parse groups the rows back into BatchStepReports.
std::string batch_report_to_csv(const BatchReport& report);
std::string batch_report_to_json(const BatchReport& report);

/// Inverse of to_row: a PlanResult carrying the row's serialized surface.
/// Only what a report row ships comes back — the slot table is a
/// placeholder of the right size/period, and live objects (tiling,
/// mobile scheduler, per-sensor channel assignments, collision witness)
/// stay empty — but to_row(result_from_row(r)) == r, which is what the
/// distributed merge needs to reproduce a single-process report
/// byte-for-byte.
PlanResult result_from_row(const PlanResultRow& row);

/// Parses batch_report_to_json output back into a BatchReport whose
/// results are result_from_row reconstructions; throws
/// std::invalid_argument on malformed input.  Emit ∘ parse ∘ emit is the
/// identity on serialized reports — pinned by test and relied on by the
/// distributed wire protocol (src/dist).
BatchReport parse_batch_report_json(const std::string& json);

/// Wire form of a shard assignment: the BatchItems themselves (scenario
/// query, backend list, search/SA budgets, verify flag), one JSON object
/// per line.  Doubles are emitted with full precision so a worker plans
/// EXACTLY the instance the coordinator sharded.
std::string batch_items_to_json(const std::vector<BatchItem>& items);
std::vector<BatchItem> parse_batch_items_json(const std::string& json);

}  // namespace latticesched
