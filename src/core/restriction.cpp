#include "core/restriction.hpp"

namespace latticesched {

RestrictionAnalysis analyze_restriction(const Box& d, const Prototile& n1) {
  RestrictionAnalysis out;
  const PointVec sum = n1.minkowski_sum(n1);
  out.required_size = sum.size();

  // x + sum ⊆ D for a box D is equivalent to a per-axis interval check on
  // the bounding box of `sum`, but the sum need not be box-shaped, so we
  // test the point set directly; candidate x values are constrained per
  // axis to [d.lo - min_i, d.hi - max_i].
  Point lo = sum.front(), hi = sum.front();
  for (const Point& p : sum) {
    for (std::size_t i = 0; i < p.dim(); ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  Point x_lo(d.dim()), x_hi(d.dim());
  for (std::size_t i = 0; i < d.dim(); ++i) {
    x_lo[i] = d.lo()[i] - lo[i];
    x_hi[i] = d.hi()[i] - hi[i];
    if (x_lo[i] > x_hi[i]) return out;  // no room on this axis
  }
  // Any x in the candidate box works because membership is monotone per
  // axis for box D; verify the first candidate defensively.
  const Point x = x_lo;
  for (const Point& p : sum) {
    if (!d.contains(x + p)) return out;
  }
  out.optimality_guaranteed = true;
  out.witness = x;
  return out;
}

}  // namespace latticesched
