// Finite restriction of the infinite schedule (Conclusions section).
//
// "A natural question is whether the schedule remains optimal if one
// restricts the schedule from the lattice L to a finite subset D of L.
// This question has an affirmative answer if D contains a translate of
// the set N1 + N1, as the latter set consists of the respectable
// prototile N1 and its neighbors, in which case our optimality proof
// carries over without change."
//
// This module decides that containment for box-shaped D and supplies a
// witness translate, so the experiments can show optimality holding above
// the threshold and (possibly) degrading below it.
#pragma once

#include <optional>

#include "lattice/region.hpp"
#include "tiling/prototile.hpp"

namespace latticesched {

struct RestrictionAnalysis {
  /// Whether D contains x + (N1 + N1) for some x.
  bool optimality_guaranteed = false;
  /// A witness translate x when guaranteed.
  std::optional<Point> witness;
  /// |N1 + N1| (size of the Minkowski sum that must fit).
  std::size_t required_size = 0;
};

/// Checks the Conclusions' sufficient condition on a box window D for the
/// respectable prototile n1.
RestrictionAnalysis analyze_restriction(const Box& d, const Prototile& n1);

}  // namespace latticesched
