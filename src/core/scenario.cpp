#include "core/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/tiling_cache.hpp"
#include "lattice/lattice.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/rng.hpp"

namespace latticesched {

namespace {

std::string fmt_density(double d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", d);
  return buf;
}

/// Runs a torus search through the cache when one is supplied.
std::optional<Tiling> cached_torus_search(
    TilingCache* cache, const std::vector<Prototile>& prototiles,
    const Sublattice& period, const TorusSearchConfig& config) {
  if (cache != nullptr) {
    return cache->find_or_search_on_torus(prototiles, period, config);
  }
  return find_tiling_on_torus(prototiles, period, config);
}

Tiling figure5_tiling(TilingCache* cache) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  auto tiling = cached_torus_search(
      cache, {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), cfg);
  if (!tiling.has_value()) {
    throw std::runtime_error("figure5: no mixed S/Z tiling on 4x4");
  }
  return *std::move(tiling);
}

Tiling antennas_tiling() {
  // Period 3x6: one 3x3 ball block + three 1x3 bars (Theorem 2's
  // respectable mixed tiling, as in examples/directional_antennas).
  return Tiling::periodic(
      {shapes::chebyshev_ball(2, 1), shapes::rectangle(3, 1, 1, 0)},
      Sublattice::diagonal({3, 6}),
      {{Point{1, 1}, 0}, {Point{1, 3}, 1}, {Point{1, 4}, 1},
       {Point{1, 5}, 1}});
}

/// Window side above which random_cells switches from
/// materialize-and-shuffle (O(n²) intermediates) to rejection sampling
/// (O(kept) memory).
constexpr std::int64_t kSparseScatterSide = 2048;

/// Seeded random subset of the n x n grid cells at the given density
/// (at least one sensor), shared by the mobile and random-subset
/// scenarios.  Small windows shuffle the full cell list (the historical
/// path — byte-identical instances for every pinned seed); windows past
/// kSparseScatterSide rejection-sample cells instead, so a sparse
/// scatter over a million-cell window never allocates the window.
PointVec random_cells(std::int64_t n, std::uint64_t seed, double density) {
  if (density <= 0.0 || density > 1.0) {
    throw std::invalid_argument("scenario: density must be in (0, 1]");
  }
  if (n <= kSparseScatterSide) {
    PointVec cells = Box::cube(2, 0, n - 1).points();
    Rng rng(seed);
    rng.shuffle(cells);
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(cells.size()) * density);
    cells.resize(std::max<std::size_t>(1, keep));
    return cells;
  }
  // Rejection sampling stays O(kept) only while misses are rare; past
  // half occupancy the expected probe count blows up, and the dense
  // path would need the quadratic window anyway.
  if (density > 0.5) {
    throw std::invalid_argument(
        "scenario: density > 0.5 needs the dense scatter path, which "
        "materializes the whole window — use n <= " +
        std::to_string(kSparseScatterSide));
  }
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) *
                                  static_cast<double>(n) * density));
  Rng rng(seed);
  PointVec cells;
  cells.reserve(keep);
  PointSet taken;
  while (cells.size() < keep) {
    const Point c{
        static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(n))),
        static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(n)))};
    if (taken.insert(c).second) cells.push_back(c);
  }
  return cells;
}

/// Row-major prefix of the smallest square window holding `sensors`
/// cells — the O(sensors) generator behind grid-large (and the grid
/// scenario's large-n delegation).
ScenarioInstance grid_large_instance(const ScenarioParams& p) {
  const std::int64_t sensors = std::max<std::int64_t>(1, p.n);
  std::int64_t side = 1;
  while (side * side < sensors) ++side;
  PointVec cells;
  cells.reserve(static_cast<std::size_t>(sensors));
  for (std::int64_t i = 0; i < sensors; ++i) {
    cells.push_back(Point{i / side, i % side});
  }
  std::ostringstream label;
  label << "grid-large(sensors=" << sensors << " side=" << side
        << " r=" << p.radius << ")";
  return ScenarioInstance{
      "grid-large", label.str(),
      Deployment::uniform(std::move(cells),
                          shapes::chebyshev_ball(2, p.radius)),
      std::nullopt, 1};
}

/// Grid sizes at or past this --n are sensor COUNTS (grid-large
/// semantics): a million-sensor request means 10^6 sensors, not a
/// 10^6-sided window with 10^12 cells.
constexpr std::int64_t kGridLargeThreshold = 100000;

ScenarioSpec make_grid_spec() {
  return ScenarioSpec{
      "grid",
      "n x n field of Chebyshev-ball sensors (the paper's motivating grid)",
      {{"n", "12", "grid side length (>= 100000: sensor count, see "
        "grid-large)"},
       {"radius", "1", "Chebyshev interference radius"}},
      [](const ScenarioParams& p, TilingCache*) {
        if (p.n >= kGridLargeThreshold) return grid_large_instance(p);
        std::ostringstream label;
        label << "grid(n=" << p.n << " r=" << p.radius << ")";
        return ScenarioInstance{
            "grid", label.str(),
            Deployment::grid(Box::cube(2, 0, p.n - 1),
                             shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, 1};
      }};
}

ScenarioSpec make_grid_large_spec() {
  return ScenarioSpec{
      "grid-large",
      "row-major prefix of the smallest square window holding n "
      "sensors — the O(n) generator for million-sensor region-sharded "
      "runs",
      {{"n", "100000", "sensor count"},
       {"radius", "1", "Chebyshev interference radius"}},
      [](const ScenarioParams& p, TilingCache*) {
        return grid_large_instance(p);
      }};
}

ScenarioSpec make_hex_spec() {
  return ScenarioSpec{
      "hex",
      "hexagonal-lattice patch with the 7-point Euclidean-ball "
      "neighborhood (Figure 1 right)",
      {{"n", "12", "patch diameter (rhombic window)"}},
      [](const ScenarioParams& p, TilingCache*) {
        Lattice hex = Lattice::hexagonal();
        const Prototile ball = shapes::euclidean_ball(hex, 1.0);
        std::ostringstream label;
        label << "hex(n=" << p.n << ")";
        return ScenarioInstance{
            "hex", label.str(),
            Deployment::grid(Box::centered(2, p.n / 2), ball), std::nullopt,
            1, std::move(hex)};
      }};
}

ScenarioSpec make_cube3d_spec() {
  return ScenarioSpec{
      "cube3d",
      "n^3 sensor cube with a 3-D Chebyshev interference volume "
      "(\"arbitrary dimensions\")",
      {{"n", "12", "cube side length"},
       {"radius", "1", "Chebyshev interference radius"}},
      [](const ScenarioParams& p, TilingCache*) {
        std::ostringstream label;
        label << "cube3d(n=" << p.n << " r=" << p.radius << ")";
        return ScenarioInstance{
            "cube3d", label.str(),
            Deployment::grid(Box::cube(3, 0, p.n - 1),
                             shapes::chebyshev_ball(3, p.radius)),
            std::nullopt, 1};
      }};
}

ScenarioSpec make_mobile_spec() {
  return ScenarioSpec{
      "mobile",
      "snapshot of a mobile swarm: seeded random scatter of l1-ball "
      "sensors over the n x n window",
      {{"n", "12", "window side length"},
       {"radius", "1", "l1 interference radius"},
       {"seed", "1", "scatter seed"},
       {"density", "0.35", "fraction of cells holding a sensor"}},
      [](const ScenarioParams& p, TilingCache*) {
        std::ostringstream label;
        label << "mobile(n=" << p.n << " r=" << p.radius
              << " d=" << fmt_density(p.density) << " seed=" << p.seed
              << ")";
        return ScenarioInstance{
            "mobile", label.str(),
            Deployment::uniform(random_cells(p.n, p.seed, p.density),
                                shapes::l1_ball(2, p.radius)),
            std::nullopt, 1};
      }};
}

ScenarioSpec make_figure5_spec() {
  return ScenarioSpec{
      "figure5",
      "mixed S/Z tetromino tiling (Figure 5 left), deployment rule D1",
      {{"n", "12", "window diameter"}},
      [](const ScenarioParams& p, TilingCache* cache) {
        Tiling tiling = figure5_tiling(cache);
        Deployment d =
            Deployment::from_tiling(tiling, Box::centered(2, p.n / 2));
        std::ostringstream label;
        label << "figure5(n=" << p.n << ")";
        return ScenarioInstance{"figure5", label.str(), std::move(d),
                                std::move(tiling), 1};
      }};
}

ScenarioSpec make_antennas_spec() {
  return ScenarioSpec{
      "antennas",
      "heterogeneous field mixing 3x3 omni balls with 1x3 bars "
      "(Theorem 2, respectable tiling)",
      {{"n", "12", "window diameter"}},
      [](const ScenarioParams& p, TilingCache*) {
        Tiling tiling = antennas_tiling();
        Deployment d =
            Deployment::from_tiling(tiling, Box::centered(2, p.n / 2));
        std::ostringstream label;
        label << "antennas(n=" << p.n << ")";
        return ScenarioInstance{"antennas", label.str(), std::move(d),
                                std::move(tiling), 1};
      }};
}

ScenarioSpec make_multichannel_spec() {
  return ScenarioSpec{
      "multichannel",
      "grid whose radios have c orthogonal channels: every backend's "
      "schedule folds to (slot, channel) pairs",
      {{"n", "12", "grid side length"},
       {"radius", "1", "Chebyshev interference radius"},
       {"channels", "2", "channel count (raised to >= 2)"}},
      [](const ScenarioParams& p, TilingCache*) {
        const std::uint32_t channels = std::max<std::uint32_t>(2, p.channels);
        std::ostringstream label;
        label << "multichannel(n=" << p.n << " r=" << p.radius
              << " c=" << channels << ")";
        return ScenarioInstance{
            "multichannel", label.str(),
            Deployment::grid(Box::cube(2, 0, p.n - 1),
                             shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, channels};
      }};
}

// ---------------------------------------------------------------------------
// Dynamic scenarios: deployment + seeded MutationTrace
// ---------------------------------------------------------------------------

std::size_t effective_steps(const ScenarioParams& p,
                            std::int64_t default_steps) {
  return static_cast<std::size_t>(p.steps > 0 ? p.steps : default_steps);
}

ScenarioSpec make_grid_failures_spec() {
  return ScenarioSpec{
      "grid-failures",
      "dynamic grid: a seeded batch of surviving sensors fails every "
      "step (restricted-strip-covering style node death)",
      {{"n", "12", "grid side length"},
       {"radius", "1", "Chebyshev interference radius"},
       {"seed", "1", "failure-order seed"},
       {"steps", "3", "failure rounds"}},
      [](const ScenarioParams& p, TilingCache*) {
        const std::size_t steps = effective_steps(p, 3);
        PointVec order = Box::cube(2, 0, p.n - 1).points();
        Rng rng(p.seed);
        rng.shuffle(order);
        // ~10% of the original fleet dies per round; the last sensor
        // never dies, so every step still has something to schedule.
        const std::size_t per_step =
            std::max<std::size_t>(1, order.size() / 10);
        MutationTrace trace;
        std::size_t next = 0;
        for (std::size_t s = 1; s <= steps; ++s) {
          MutationStep step;
          step.at = s;
          for (std::size_t k = 0;
               k < per_step && next + 1 < order.size(); ++k) {
            step.delta.remove_sensors.push_back(order[next++]);
          }
          trace.steps.push_back(std::move(step));
        }
        std::ostringstream label;
        label << "grid-failures(n=" << p.n << " r=" << p.radius
              << " seed=" << p.seed << " steps=" << steps << ")";
        return ScenarioInstance{
            "grid-failures", label.str(),
            Deployment::grid(Box::cube(2, 0, p.n - 1),
                             shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, 1, std::nullopt, std::move(trace)};
      }};
}

ScenarioSpec make_mobile_churn_spec() {
  return ScenarioSpec{
      "mobile-churn",
      "dynamic swarm: every step a seeded batch of sensors leaves, "
      "roams to a free cell, or joins late",
      {{"n", "12", "window side length"},
       {"radius", "1", "l1 interference radius"},
       {"seed", "1", "churn seed"},
       {"density", "0.35", "initial occupied-cell fraction"},
       {"steps", "3", "churn rounds"}},
      [](const ScenarioParams& p, TilingCache*) {
        const std::size_t steps = effective_steps(p, 3);
        PointVec occupied = random_cells(p.n, p.seed, p.density);
        Rng rng(p.seed ^ 0x9e3779b97f4a7c15ull);
        PointSet occupancy(occupied.begin(), occupied.end());
        // A uniformly random FREE window cell (deterministic in the
        // seed); gives up after a bounded number of probes so a
        // near-full window degrades to less churn instead of spinning.
        const auto free_cell = [&]() -> std::optional<Point> {
          for (int tries = 0; tries < 256; ++tries) {
            const Point c{static_cast<std::int64_t>(
                              rng.next_below(static_cast<std::uint64_t>(p.n))),
                          static_cast<std::int64_t>(rng.next_below(
                              static_cast<std::uint64_t>(p.n)))};
            if (!occupancy.count(c)) return c;
          }
          return std::nullopt;
        };
        MutationTrace trace;
        for (std::size_t s = 1; s <= steps; ++s) {
          MutationStep step;
          step.at = s;
          // All of one step's remove/move sources must exist PRE-delta
          // (PlanSession resolves every position against the pre-delta
          // deployment), so draw them from a snapshot of the step's
          // starting population — a cell a move just vacated or filled
          // is never a source again within the same step.
          PointVec eligible = occupied;
          const auto take_eligible = [&]() -> Point {
            const std::size_t i = static_cast<std::size_t>(
                rng.next_below(eligible.size()));
            const Point p_out = eligible[i];
            eligible[i] = eligible.back();
            eligible.pop_back();
            return p_out;
          };
          const auto drop_occupied = [&](const Point& p_out) {
            occupancy.erase(p_out);
            for (Point& q : occupied) {
              if (q == p_out) {
                q = occupied.back();
                occupied.pop_back();
                break;
              }
            }
          };
          const std::size_t churn =
              std::max<std::size_t>(1, occupied.size() / 12);
          for (std::size_t k = 0;
               k < churn && occupied.size() > 1 && !eligible.empty(); ++k) {
            const Point victim = take_eligible();
            drop_occupied(victim);
            step.delta.remove_sensors.push_back(victim);
          }
          for (std::size_t k = 0; k < churn && !eligible.empty(); ++k) {
            if (const auto to = free_cell()) {
              const Point from = take_eligible();
              drop_occupied(from);
              step.delta.move_sensors.push_back(
                  DeploymentDelta::SensorMove{from, *to});
              occupied.push_back(*to);
              occupancy.insert(*to);
            }
          }
          for (std::size_t k = 0; k < churn; ++k) {
            if (const auto at = free_cell()) {
              step.delta.add_sensors.push_back(
                  DeploymentDelta::SensorAdd{*at, std::nullopt});
              occupied.push_back(*at);
              occupancy.insert(*at);
            }
          }
          trace.steps.push_back(std::move(step));
        }
        std::ostringstream label;
        label << "mobile-churn(n=" << p.n << " r=" << p.radius
              << " d=" << fmt_density(p.density) << " seed=" << p.seed
              << " steps=" << steps << ")";
        return ScenarioInstance{
            "mobile-churn", label.str(),
            Deployment::uniform(random_cells(p.n, p.seed, p.density),
                                shapes::l1_ball(2, p.radius)),
            std::nullopt, 1, std::nullopt, std::move(trace)};
      }};
}

ScenarioSpec make_radius_degradation_spec() {
  return ScenarioSpec{
      "radius-degradation",
      "dynamic grid whose radio range decays fleet-wide one step at a "
      "time (energy-aware sensor scheduling)",
      {{"n", "12", "grid side length"},
       {"radius", "2", "initial Chebyshev radius (raised to >= 2)"},
       {"steps", "2", "degradation rounds (radius floors at 1)"}},
      [](const ScenarioParams& p, TilingCache*) {
        const std::size_t steps = effective_steps(p, 2);
        const std::int64_t r0 = std::max<std::int64_t>(2, p.radius);
        MutationTrace trace;
        for (std::size_t s = 1; s <= steps; ++s) {
          MutationStep step;
          step.at = s;
          DeploymentDelta::RadiusChange rc;
          rc.radius = std::max<std::int64_t>(
              1, r0 - static_cast<std::int64_t>(s));
          step.delta.set_radius.push_back(std::move(rc));
          trace.steps.push_back(std::move(step));
        }
        std::ostringstream label;
        label << "radius-degradation(n=" << p.n << " r=" << r0
              << " steps=" << steps << ")";
        return ScenarioInstance{
            "radius-degradation", label.str(),
            Deployment::grid(Box::cube(2, 0, p.n - 1),
                             shapes::chebyshev_ball(2, r0)),
            std::nullopt, 1, std::nullopt, std::move(trace)};
      }};
}

ScenarioSpec make_staged_rollout_spec() {
  return ScenarioSpec{
      "staged-rollout",
      "dynamic grid deployed in column bands: each step brings the next "
      "band of sensors online",
      {{"n", "12", "grid side length"},
       {"radius", "1", "Chebyshev interference radius"},
       {"steps", "3", "rollout stages after the initial band"}},
      [](const ScenarioParams& p, TilingCache*) {
        // n columns split into steps+1 near-equal bands (capped so every
        // band holds at least one column).
        const std::size_t steps = std::min<std::size_t>(
            effective_steps(p, 3),
            static_cast<std::size_t>(std::max<std::int64_t>(1, p.n) - 1));
        const std::size_t bands = steps + 1;
        const auto band_end = [&](std::size_t b) {
          return static_cast<std::int64_t>(
              (static_cast<std::size_t>(p.n) * (b + 1)) / bands);
        };
        PointVec initial;
        for (std::int64_t x = 0; x < band_end(0); ++x) {
          for (std::int64_t y = 0; y < p.n; ++y) {
            initial.push_back(Point{x, y});
          }
        }
        MutationTrace trace;
        for (std::size_t s = 1; s <= steps; ++s) {
          MutationStep step;
          step.at = s;
          for (std::int64_t x = band_end(s - 1); x < band_end(s); ++x) {
            for (std::int64_t y = 0; y < p.n; ++y) {
              step.delta.add_sensors.push_back(
                  DeploymentDelta::SensorAdd{Point{x, y}, std::nullopt});
            }
          }
          trace.steps.push_back(std::move(step));
        }
        std::ostringstream label;
        label << "staged-rollout(n=" << p.n << " r=" << p.radius
              << " steps=" << steps << ")";
        return ScenarioInstance{
            "staged-rollout", label.str(),
            Deployment::uniform(std::move(initial),
                                shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, 1, std::nullopt, std::move(trace)};
      }};
}

ScenarioSpec make_random_subset_spec() {
  return ScenarioSpec{
      "random-subset",
      "seeded random sub-deployment of the Chebyshev grid at a given "
      "density (finite-restriction workloads)",
      {{"n", "12", "window side length"},
       {"radius", "1", "Chebyshev interference radius"},
       {"seed", "1", "subset seed"},
       {"density", "0.35", "fraction of grid cells kept"}},
      [](const ScenarioParams& p, TilingCache*) {
        std::ostringstream label;
        label << "random-subset(n=" << p.n << " r=" << p.radius
              << " d=" << fmt_density(p.density) << " seed=" << p.seed
              << ")";
        return ScenarioInstance{
            "random-subset", label.str(),
            Deployment::uniform(random_cells(p.n, p.seed, p.density),
                                shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, 1};
      }};
}

}  // namespace

void ScenarioRegistry::register_scenario(ScenarioSpec spec) {
  if (spec.name.empty() || !spec.build) {
    throw std::invalid_argument(
        "register_scenario: name and build are required");
  }
  for (ScenarioSpec& existing : specs_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const ScenarioSpec& s : specs_) out.push_back(s.name);
  return out;
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const ScenarioSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ScenarioInstance ScenarioRegistry::build(const std::string& name,
                                         const ScenarioParams& params,
                                         TilingCache* cache) const {
  const ScenarioSpec* spec = find(name);
  if (spec == nullptr) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown scenario '" + name + "' (" + known +
                                ")");
  }
  return spec->build(params, cache);
}

std::string ScenarioRegistry::describe() const {
  std::ostringstream os;
  for (const ScenarioSpec& s : specs_) {
    os << s.name << " — " << s.summary << "\n";
    for (const ScenarioParamDoc& p : s.params) {
      os << "    --" << p.name;
      for (std::size_t pad = p.name.size(); pad < 10; ++pad) os << ' ';
      os << "(default " << p.value << ")  " << p.doc << "\n";
    }
  }
  return os.str();
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    r->register_scenario(make_grid_spec());
    r->register_scenario(make_grid_large_spec());
    r->register_scenario(make_hex_spec());
    r->register_scenario(make_cube3d_spec());
    r->register_scenario(make_mobile_spec());
    r->register_scenario(make_figure5_spec());
    r->register_scenario(make_antennas_spec());
    r->register_scenario(make_multichannel_spec());
    r->register_scenario(make_random_subset_spec());
    r->register_scenario(make_grid_failures_spec());
    r->register_scenario(make_mobile_churn_spec());
    r->register_scenario(make_radius_degradation_spec());
    r->register_scenario(make_staged_rollout_spec());
    return r;
  }();
  return *registry;
}

std::vector<ScenarioQuery> radius_sweep(
    const std::string& scenario, const ScenarioParams& base,
    const std::vector<std::int64_t>& radii) {
  std::vector<ScenarioQuery> out;
  out.reserve(radii.size());
  for (std::int64_t r : radii) {
    ScenarioParams p = base;
    p.radius = r;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

std::vector<ScenarioQuery> density_sweep(const std::string& scenario,
                                         const ScenarioParams& base,
                                         const std::vector<double>& densities) {
  std::vector<ScenarioQuery> out;
  out.reserve(densities.size());
  for (double d : densities) {
    ScenarioParams p = base;
    p.density = d;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

std::vector<ScenarioQuery> size_sweep(const std::string& scenario,
                                      const ScenarioParams& base,
                                      const std::vector<std::int64_t>& sizes) {
  std::vector<ScenarioQuery> out;
  out.reserve(sizes.size());
  for (std::int64_t n : sizes) {
    ScenarioParams p = base;
    p.n = n;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

std::vector<ScenarioQuery> seed_sweep(const std::string& scenario,
                                      const ScenarioParams& base,
                                      std::size_t replicas) {
  std::vector<ScenarioQuery> out;
  out.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    ScenarioParams p = base;
    p.seed = base.seed + i;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

}  // namespace latticesched
