#include "core/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/tiling_cache.hpp"
#include "lattice/lattice.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/rng.hpp"

namespace latticesched {

namespace {

std::string fmt_density(double d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", d);
  return buf;
}

/// Runs a torus search through the cache when one is supplied.
std::optional<Tiling> cached_torus_search(
    TilingCache* cache, const std::vector<Prototile>& prototiles,
    const Sublattice& period, const TorusSearchConfig& config) {
  if (cache != nullptr) {
    return cache->find_or_search_on_torus(prototiles, period, config);
  }
  return find_tiling_on_torus(prototiles, period, config);
}

Tiling figure5_tiling(TilingCache* cache) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  auto tiling = cached_torus_search(
      cache, {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), cfg);
  if (!tiling.has_value()) {
    throw std::runtime_error("figure5: no mixed S/Z tiling on 4x4");
  }
  return *std::move(tiling);
}

Tiling antennas_tiling() {
  // Period 3x6: one 3x3 ball block + three 1x3 bars (Theorem 2's
  // respectable mixed tiling, as in examples/directional_antennas).
  return Tiling::periodic(
      {shapes::chebyshev_ball(2, 1), shapes::rectangle(3, 1, 1, 0)},
      Sublattice::diagonal({3, 6}),
      {{Point{1, 1}, 0}, {Point{1, 3}, 1}, {Point{1, 4}, 1},
       {Point{1, 5}, 1}});
}

/// Seeded random subset of the n x n grid cells at the given density
/// (at least one sensor), shared by the mobile and random-subset
/// scenarios.
PointVec random_cells(std::int64_t n, std::uint64_t seed, double density) {
  if (density <= 0.0 || density > 1.0) {
    throw std::invalid_argument("scenario: density must be in (0, 1]");
  }
  PointVec cells = Box::cube(2, 0, n - 1).points();
  Rng rng(seed);
  rng.shuffle(cells);
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(cells.size()) * density);
  cells.resize(std::max<std::size_t>(1, keep));
  return cells;
}

ScenarioSpec make_grid_spec() {
  return ScenarioSpec{
      "grid",
      "n x n field of Chebyshev-ball sensors (the paper's motivating grid)",
      {{"n", "12", "grid side length"},
       {"radius", "1", "Chebyshev interference radius"}},
      [](const ScenarioParams& p, TilingCache*) {
        std::ostringstream label;
        label << "grid(n=" << p.n << " r=" << p.radius << ")";
        return ScenarioInstance{
            "grid", label.str(),
            Deployment::grid(Box::cube(2, 0, p.n - 1),
                             shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, 1};
      }};
}

ScenarioSpec make_hex_spec() {
  return ScenarioSpec{
      "hex",
      "hexagonal-lattice patch with the 7-point Euclidean-ball "
      "neighborhood (Figure 1 right)",
      {{"n", "12", "patch diameter (rhombic window)"}},
      [](const ScenarioParams& p, TilingCache*) {
        Lattice hex = Lattice::hexagonal();
        const Prototile ball = shapes::euclidean_ball(hex, 1.0);
        std::ostringstream label;
        label << "hex(n=" << p.n << ")";
        return ScenarioInstance{
            "hex", label.str(),
            Deployment::grid(Box::centered(2, p.n / 2), ball), std::nullopt,
            1, std::move(hex)};
      }};
}

ScenarioSpec make_cube3d_spec() {
  return ScenarioSpec{
      "cube3d",
      "n^3 sensor cube with a 3-D Chebyshev interference volume "
      "(\"arbitrary dimensions\")",
      {{"n", "12", "cube side length"},
       {"radius", "1", "Chebyshev interference radius"}},
      [](const ScenarioParams& p, TilingCache*) {
        std::ostringstream label;
        label << "cube3d(n=" << p.n << " r=" << p.radius << ")";
        return ScenarioInstance{
            "cube3d", label.str(),
            Deployment::grid(Box::cube(3, 0, p.n - 1),
                             shapes::chebyshev_ball(3, p.radius)),
            std::nullopt, 1};
      }};
}

ScenarioSpec make_mobile_spec() {
  return ScenarioSpec{
      "mobile",
      "snapshot of a mobile swarm: seeded random scatter of l1-ball "
      "sensors over the n x n window",
      {{"n", "12", "window side length"},
       {"radius", "1", "l1 interference radius"},
       {"seed", "1", "scatter seed"},
       {"density", "0.35", "fraction of cells holding a sensor"}},
      [](const ScenarioParams& p, TilingCache*) {
        std::ostringstream label;
        label << "mobile(n=" << p.n << " r=" << p.radius
              << " d=" << fmt_density(p.density) << " seed=" << p.seed
              << ")";
        return ScenarioInstance{
            "mobile", label.str(),
            Deployment::uniform(random_cells(p.n, p.seed, p.density),
                                shapes::l1_ball(2, p.radius)),
            std::nullopt, 1};
      }};
}

ScenarioSpec make_figure5_spec() {
  return ScenarioSpec{
      "figure5",
      "mixed S/Z tetromino tiling (Figure 5 left), deployment rule D1",
      {{"n", "12", "window diameter"}},
      [](const ScenarioParams& p, TilingCache* cache) {
        Tiling tiling = figure5_tiling(cache);
        Deployment d =
            Deployment::from_tiling(tiling, Box::centered(2, p.n / 2));
        std::ostringstream label;
        label << "figure5(n=" << p.n << ")";
        return ScenarioInstance{"figure5", label.str(), std::move(d),
                                std::move(tiling), 1};
      }};
}

ScenarioSpec make_antennas_spec() {
  return ScenarioSpec{
      "antennas",
      "heterogeneous field mixing 3x3 omni balls with 1x3 bars "
      "(Theorem 2, respectable tiling)",
      {{"n", "12", "window diameter"}},
      [](const ScenarioParams& p, TilingCache*) {
        Tiling tiling = antennas_tiling();
        Deployment d =
            Deployment::from_tiling(tiling, Box::centered(2, p.n / 2));
        std::ostringstream label;
        label << "antennas(n=" << p.n << ")";
        return ScenarioInstance{"antennas", label.str(), std::move(d),
                                std::move(tiling), 1};
      }};
}

ScenarioSpec make_multichannel_spec() {
  return ScenarioSpec{
      "multichannel",
      "grid whose radios have c orthogonal channels: every backend's "
      "schedule folds to (slot, channel) pairs",
      {{"n", "12", "grid side length"},
       {"radius", "1", "Chebyshev interference radius"},
       {"channels", "2", "channel count (raised to >= 2)"}},
      [](const ScenarioParams& p, TilingCache*) {
        const std::uint32_t channels = std::max<std::uint32_t>(2, p.channels);
        std::ostringstream label;
        label << "multichannel(n=" << p.n << " r=" << p.radius
              << " c=" << channels << ")";
        return ScenarioInstance{
            "multichannel", label.str(),
            Deployment::grid(Box::cube(2, 0, p.n - 1),
                             shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, channels};
      }};
}

ScenarioSpec make_random_subset_spec() {
  return ScenarioSpec{
      "random-subset",
      "seeded random sub-deployment of the Chebyshev grid at a given "
      "density (finite-restriction workloads)",
      {{"n", "12", "window side length"},
       {"radius", "1", "Chebyshev interference radius"},
       {"seed", "1", "subset seed"},
       {"density", "0.35", "fraction of grid cells kept"}},
      [](const ScenarioParams& p, TilingCache*) {
        std::ostringstream label;
        label << "random-subset(n=" << p.n << " r=" << p.radius
              << " d=" << fmt_density(p.density) << " seed=" << p.seed
              << ")";
        return ScenarioInstance{
            "random-subset", label.str(),
            Deployment::uniform(random_cells(p.n, p.seed, p.density),
                                shapes::chebyshev_ball(2, p.radius)),
            std::nullopt, 1};
      }};
}

}  // namespace

void ScenarioRegistry::register_scenario(ScenarioSpec spec) {
  if (spec.name.empty() || !spec.build) {
    throw std::invalid_argument(
        "register_scenario: name and build are required");
  }
  for (ScenarioSpec& existing : specs_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const ScenarioSpec& s : specs_) out.push_back(s.name);
  return out;
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const ScenarioSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ScenarioInstance ScenarioRegistry::build(const std::string& name,
                                         const ScenarioParams& params,
                                         TilingCache* cache) const {
  const ScenarioSpec* spec = find(name);
  if (spec == nullptr) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown scenario '" + name + "' (" + known +
                                ")");
  }
  return spec->build(params, cache);
}

std::string ScenarioRegistry::describe() const {
  std::ostringstream os;
  for (const ScenarioSpec& s : specs_) {
    os << s.name << " — " << s.summary << "\n";
    for (const ScenarioParamDoc& p : s.params) {
      os << "    --" << p.name;
      for (std::size_t pad = p.name.size(); pad < 10; ++pad) os << ' ';
      os << "(default " << p.value << ")  " << p.doc << "\n";
    }
  }
  return os.str();
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    r->register_scenario(make_grid_spec());
    r->register_scenario(make_hex_spec());
    r->register_scenario(make_cube3d_spec());
    r->register_scenario(make_mobile_spec());
    r->register_scenario(make_figure5_spec());
    r->register_scenario(make_antennas_spec());
    r->register_scenario(make_multichannel_spec());
    r->register_scenario(make_random_subset_spec());
    return r;
  }();
  return *registry;
}

std::vector<ScenarioQuery> radius_sweep(
    const std::string& scenario, const ScenarioParams& base,
    const std::vector<std::int64_t>& radii) {
  std::vector<ScenarioQuery> out;
  out.reserve(radii.size());
  for (std::int64_t r : radii) {
    ScenarioParams p = base;
    p.radius = r;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

std::vector<ScenarioQuery> density_sweep(const std::string& scenario,
                                         const ScenarioParams& base,
                                         const std::vector<double>& densities) {
  std::vector<ScenarioQuery> out;
  out.reserve(densities.size());
  for (double d : densities) {
    ScenarioParams p = base;
    p.density = d;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

std::vector<ScenarioQuery> size_sweep(const std::string& scenario,
                                      const ScenarioParams& base,
                                      const std::vector<std::int64_t>& sizes) {
  std::vector<ScenarioQuery> out;
  out.reserve(sizes.size());
  for (std::int64_t n : sizes) {
    ScenarioParams p = base;
    p.n = n;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

std::vector<ScenarioQuery> seed_sweep(const std::string& scenario,
                                      const ScenarioParams& base,
                                      std::size_t replicas) {
  std::vector<ScenarioQuery> out;
  out.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    ScenarioParams p = base;
    p.seed = base.seed + i;
    out.push_back(ScenarioQuery{scenario, p});
  }
  return out;
}

}  // namespace latticesched
