// The scenario library: named, parameterized deployment generators.
//
// The paper's punchline is that ONE constructive tiling search serves
// many deployment shapes (Theorems 1/2, Figure 5); the scenarios that
// used to live as ad-hoc structs inside the CLI driver are therefore a
// reusable registry: every consumer — driver, examples, benches, the
// batch planning service — asks for "grid with n=16, radius=2" by name
// and gets the same deployment (and, where the scenario is defined by a
// tiling, the same tiling).  Generators that run a torus search accept a
// TilingCache so scenario sweeps pay for each search once.
//
// Built-in scenarios: grid, hex, cube3d, mobile (random scattered
// snapshot), figure5 (mixed S/Z tetrominoes, rule D1), antennas
// (Theorem-2 ball + bar field), multichannel (grid with c >= 2
// channels), random-subset (seeded random sub-deployment of the grid at
// a given density).  Sweep helpers expand one scenario into the
// (scenario, params) lists the batch service consumes — radius sweeps,
// density sweeps, window-size sweeps and seed replicas.
//
// DYNAMIC scenarios additionally carry a MutationTrace — a seeded,
// timestamped DeploymentDelta sequence a PlanSession replays step by
// step: grid-failures (sensors die in rounds), mobile-churn (a swarm
// with per-step leave/move/join churn), radius-degradation (radio
// range decays fleet-wide) and staged-rollout (the grid is deployed in
// column bands).  ScenarioParams::steps bounds the trace length.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/plan_session.hpp"
#include "graph/interference.hpp"
#include "lattice/lattice.hpp"
#include "tiling/tiling.hpp"

namespace latticesched {

class TilingCache;

/// Knobs every generator draws from; each scenario documents (and its
/// label shows) the subset it actually uses.
struct ScenarioParams {
  std::int64_t n = 12;        ///< window side length / diameter
  std::int64_t radius = 1;    ///< interference radius, where applicable
  std::uint64_t seed = 1;     ///< RNG seed of randomized scenarios
  std::uint32_t channels = 1; ///< radio channels (multichannel scenario)
  double density = 0.35;      ///< occupied-cell fraction of random scatters
  /// Mutation steps of dynamic scenarios (0 = the scenario's default);
  /// static scenarios ignore it.
  std::int64_t steps = 0;
};

/// A built scenario: the deployment plus everything the planner needs.
struct ScenarioInstance {
  std::string scenario;          ///< registry name
  std::string label;             ///< e.g. "grid(n=12 r=1)" — report key
  Deployment deployment;
  std::optional<Tiling> tiling;  ///< when the deployment came from one
  std::uint32_t channels = 1;    ///< channels the plan should use
  /// Euclidean geometry of the coordinates when it is not the square
  /// lattice (the hex scenario); feeds PlanRequest::lattice so the
  /// mobile backend's Voronoi cells match the deployment.
  std::optional<Lattice> lattice;
  /// Dynamic scenarios: the timestamped delta sequence a PlanSession
  /// replays on top of `deployment` (empty for static scenarios).
  MutationTrace trace;
};

struct ScenarioParamDoc {
  std::string name;     ///< ScenarioParams field consumed
  std::string value;    ///< default, rendered for --list-scenarios
  std::string doc;
};

struct ScenarioSpec {
  std::string name;
  std::string summary;
  std::vector<ScenarioParamDoc> params;  ///< only the params it reads
  /// Builds the instance; `cache` (may be null) memoizes torus searches.
  std::function<ScenarioInstance(const ScenarioParams&, TilingCache*)> build;
};

class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  /// Registers (or replaces, by name) a scenario.
  void register_scenario(ScenarioSpec spec);

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The spec registered under `name`, or nullptr.
  const ScenarioSpec* find(const std::string& name) const;

  /// Builds the named scenario; throws std::invalid_argument on an
  /// unknown name (listing the known ones).
  ScenarioInstance build(const std::string& name,
                         const ScenarioParams& params = {},
                         TilingCache* cache = nullptr) const;

  /// Human-readable registry listing with per-scenario parameter docs
  /// (the driver's --list-scenarios output).
  std::string describe() const;

  /// Process-wide registry pre-populated with the built-in scenarios.
  static ScenarioRegistry& global();

 private:
  std::vector<ScenarioSpec> specs_;
};

/// A (scenario, params) pair — the unit the batch service plans.
struct ScenarioQuery {
  std::string scenario;
  ScenarioParams params;
};

/// Sweep expanders: one query per swept value, base params otherwise.
std::vector<ScenarioQuery> radius_sweep(const std::string& scenario,
                                        const ScenarioParams& base,
                                        const std::vector<std::int64_t>& radii);
std::vector<ScenarioQuery> density_sweep(const std::string& scenario,
                                         const ScenarioParams& base,
                                         const std::vector<double>& densities);
std::vector<ScenarioQuery> size_sweep(const std::string& scenario,
                                      const ScenarioParams& base,
                                      const std::vector<std::int64_t>& sizes);
/// `replicas` seed values seed, seed+1, ... (random-subset deployments).
std::vector<ScenarioQuery> seed_sweep(const std::string& scenario,
                                      const ScenarioParams& base,
                                      std::size_t replicas);

}  // namespace latticesched
