#include "core/schedule.hpp"

namespace latticesched {

SensorSlots assign_slots(const Schedule& schedule, const Deployment& d) {
  SensorSlots out;
  out.period = schedule.period();
  out.source = schedule.description();
  out.slot.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    out.slot.push_back(schedule.slot_of(d.position(i)));
  }
  return out;
}

}  // namespace latticesched
