// Deterministic periodic schedules.
//
// A schedule assigns every sensor a slot k in [0, m); the sensor may
// broadcast at times t with t ≡ k (mod m).  (The paper writes slots
// 1..m; we use 0-based slots throughout.)  Two representations are used:
//
//  * `Schedule` — a function on lattice *points*, natural for the paper's
//    infinite-lattice schedules (Theorems 1/2) and location-based mobile
//    scheduling;
//  * `SensorSlots` — a per-sensor slot table for a finite deployment,
//    the common currency of the collision checker, the baselines
//    (TDMA, coloring) and the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/interference.hpp"
#include "lattice/point.hpp"

namespace latticesched {

class Schedule {
 public:
  virtual ~Schedule() = default;

  /// Slot period m (number of time slots in one round).
  virtual std::uint32_t period() const = 0;

  /// Slot of the sensor located at p, in [0, period()).
  virtual std::uint32_t slot_of(const Point& p) const = 0;

  /// Human-readable summary for reports.
  virtual std::string description() const = 0;

  /// Whether the sensor at p may broadcast at time t.
  bool may_send(const Point& p, std::uint64_t t) const {
    return t % period() == slot_of(p);
  }
};

/// Slot table for a finite deployment.
struct SensorSlots {
  std::vector<std::uint32_t> slot;  ///< slot[i] for sensor i
  std::uint32_t period = 0;
  std::string source;               ///< which scheduler produced it
};

/// Evaluates a point-schedule on every sensor of a deployment.
SensorSlots assign_slots(const Schedule& schedule, const Deployment& d);

}  // namespace latticesched
