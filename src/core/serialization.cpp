#include "core/serialization.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace latticesched {

void write_schedule_csv(std::ostream& os, const Deployment& d,
                        const SensorSlots& slots,
                        const MultiChannelSlots* channels) {
  if (slots.slot.size() != d.size()) {
    throw std::invalid_argument("write_schedule_csv: size mismatch");
  }
  if (channels != nullptr && channels->assignment.size() != d.size()) {
    throw std::invalid_argument("write_schedule_csv: channel size mismatch");
  }
  const std::size_t dim = d.size() == 0 ? 0 : d.position(0).dim();
  for (std::size_t i = 0; i < dim; ++i) {
    os << "x" << i << ",";
  }
  os << "type,slot,period";
  if (channels != nullptr) os << ",channel,channels";
  os << "\n";
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Point& p = d.position(i);
    for (std::size_t c = 0; c < p.dim(); ++c) os << p[c] << ",";
    if (channels != nullptr) {
      // Ship the deployed folded schedule: (slot, channel) and the
      // folded period, not the pre-fold slot table.
      os << d.type_of(i) << "," << channels->assignment[i].slot << ","
         << channels->period << "," << channels->assignment[i].channel << ","
         << channels->channels << "\n";
    } else {
      os << d.type_of(i) << "," << slots.slot[i] << "," << slots.period
         << "\n";
    }
  }
}

std::string schedule_to_csv(const Deployment& d, const SensorSlots& slots,
                            const MultiChannelSlots* channels) {
  std::ostringstream os;
  write_schedule_csv(os, d, slots, channels);
  return os.str();
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::int64_t to_i64(const std::string& s) {
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(s, &pos);
  if (pos != s.size()) {
    throw std::invalid_argument("parse_schedule_csv: bad number: " + s);
  }
  return v;
}

}  // namespace

ParsedSchedule parse_schedule_csv(std::istream& is) {
  ParsedSchedule out;
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("parse_schedule_csv: empty input");
  }
  const auto header = split_csv_line(line);
  // Two header forms: "...,type,slot,period" and the multichannel
  // "...,type,slot,period,channel,channels".
  const bool multichannel =
      header.size() >= 5 && header[header.size() - 2] == "channel" &&
      header[header.size() - 1] == "channels";
  const std::size_t tail = multichannel ? 5 : 3;
  if (header.size() < tail || header[header.size() - tail] != "type" ||
      header[header.size() - tail + 1] != "slot" ||
      header[header.size() - tail + 2] != "period") {
    throw std::invalid_argument("parse_schedule_csv: bad header");
  }
  const std::size_t dim = header.size() - tail;
  if (multichannel) out.channels.emplace();
  bool period_set = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != header.size()) {
      throw std::invalid_argument("parse_schedule_csv: bad row arity");
    }
    Point p(dim);
    for (std::size_t i = 0; i < dim; ++i) p[i] = to_i64(cells[i]);
    out.positions.push_back(p);
    out.types.push_back(static_cast<std::uint32_t>(to_i64(cells[dim])));
    const auto slot = static_cast<std::uint32_t>(to_i64(cells[dim + 1]));
    out.slots.slot.push_back(slot);
    const auto period = static_cast<std::uint32_t>(to_i64(cells[dim + 2]));
    if (period_set && period != out.slots.period) {
      throw std::invalid_argument("parse_schedule_csv: inconsistent period");
    }
    out.slots.period = period;
    period_set = true;
    if (multichannel) {
      const auto channel =
          static_cast<std::uint32_t>(to_i64(cells[dim + 3]));
      const auto channel_count =
          static_cast<std::uint32_t>(to_i64(cells[dim + 4]));
      if (!out.channels->assignment.empty() &&
          channel_count != out.channels->channels) {
        throw std::invalid_argument(
            "parse_schedule_csv: inconsistent channel count");
      }
      out.channels->assignment.push_back(SlotChannel{slot, channel});
      out.channels->channels = channel_count;
      out.channels->period = period;
    }
  }
  out.slots.source = "csv";
  return out;
}

ParsedSchedule parse_schedule_csv(const std::string& csv) {
  std::istringstream is(csv);
  return parse_schedule_csv(is);
}

}  // namespace latticesched
