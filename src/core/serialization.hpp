// Schedule serialization.
//
// Deploying a schedule means shipping each sensor its slot; this module
// writes/reads the assignment as CSV (one row per sensor: coordinates,
// prototile id, slot, period), so generated schedules can be inspected,
// diffed, and fed to external tools.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/multichannel.hpp"
#include "core/schedule.hpp"
#include "graph/interference.hpp"

namespace latticesched {

/// Writes "x0,...,x{d-1},type,slot,period" rows with a header line.
/// When `channels` is non-null (a multichannel plan), the deployed
/// (slot, channel) assignment is written instead — the slot/period
/// columns carry the folded schedule and two columns
/// "channel,channels" are appended.
void write_schedule_csv(std::ostream& os, const Deployment& d,
                        const SensorSlots& slots,
                        const MultiChannelSlots* channels = nullptr);

std::string schedule_to_csv(const Deployment& d, const SensorSlots& slots,
                            const MultiChannelSlots* channels = nullptr);

struct ParsedSchedule {
  PointVec positions;
  std::vector<std::uint32_t> types;
  SensorSlots slots;
  /// Present when the CSV carried the multichannel columns; the folded
  /// (slot, channel) assignment (slots above holds the folded slots too).
  std::optional<MultiChannelSlots> channels;
};

/// Parses the format written by write_schedule_csv; throws
/// std::invalid_argument on malformed input.
ParsedSchedule parse_schedule_csv(std::istream& is);
ParsedSchedule parse_schedule_csv(const std::string& csv);

}  // namespace latticesched
