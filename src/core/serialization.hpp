// Schedule serialization.
//
// Deploying a schedule means shipping each sensor its slot; this module
// writes/reads the assignment as CSV (one row per sensor: coordinates,
// prototile id, slot, period), so generated schedules can be inspected,
// diffed, and fed to external tools.
#pragma once

#include <iosfwd>
#include <string>

#include "core/schedule.hpp"
#include "graph/interference.hpp"

namespace latticesched {

/// Writes "x0,...,x{d-1},type,slot,period" rows with a header line.
void write_schedule_csv(std::ostream& os, const Deployment& d,
                        const SensorSlots& slots);

std::string schedule_to_csv(const Deployment& d, const SensorSlots& slots);

struct ParsedSchedule {
  PointVec positions;
  std::vector<std::uint32_t> types;
  SensorSlots slots;
};

/// Parses the format written by write_schedule_csv; throws
/// std::invalid_argument on malformed input.
ParsedSchedule parse_schedule_csv(std::istream& is);
ParsedSchedule parse_schedule_csv(const std::string& csv);

}  // namespace latticesched
