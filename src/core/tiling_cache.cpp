#include "core/tiling_cache.hpp"

namespace latticesched {

namespace {

// FNV-1a over a stream of 64-bit words; good enough for a bucket index
// (full keys are compared on lookup, so collisions only cost a compare).
struct Fnv {
  std::uint64_t state = 0xcbf29ce484222325ull;
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      state ^= (v >> (8 * byte)) & 0xff;
      state *= 0x100000001b3ull;
    }
  }
};

}  // namespace

bool TilingCache::Key::operator==(const Key& o) const {
  return max_period_cells == o.max_period_cells &&
         node_limit == o.node_limit &&
         require_all_prototiles == o.require_all_prototiles &&
         period == o.period && prototiles == o.prototiles;
}

std::uint64_t TilingCache::hash_key(const Key& key) {
  Fnv h;
  h.mix(static_cast<std::uint64_t>(key.max_period_cells));
  h.mix(key.node_limit);
  h.mix(key.require_all_prototiles ? 1 : 0);
  if (key.period.has_value()) {
    const IntMatrix& b = key.period->basis();
    h.mix(b.rows());
    for (std::size_t r = 0; r < b.rows(); ++r) {
      for (std::size_t c = 0; c < b.cols(); ++c) {
        h.mix(static_cast<std::uint64_t>(b.at(r, c)));
      }
    }
  } else {
    h.mix(0xfeedfacecafebeefull);  // marker: diagonal period sweep
  }
  h.mix(key.prototiles.size());
  for (const Prototile& tile : key.prototiles) {
    h.mix(tile.size());
    // Elements are stored sorted and deduplicated (the canonical order of
    // the schedules), so equal prototile sets hash equally by design.
    for (const Point& p : tile.points()) {
      for (std::size_t i = 0; i < p.dim(); ++i) {
        h.mix(static_cast<std::uint64_t>(p[i]));
      }
    }
  }
  return h.state;
}

std::optional<Tiling> TilingCache::lookup_or_run(
    const std::vector<Prototile>& prototiles, const Sublattice* period,
    const TorusSearchConfig& config) {
  Key key;
  key.prototiles = prototiles;
  if (period != nullptr) key.period = *period;
  key.max_period_cells = config.max_period_cells;
  key.node_limit = config.node_limit;
  key.require_all_prototiles = config.require_all_prototiles;
  const std::uint64_t hash = hash_key(key);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(hash);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.key == key) {
          ++hits_;
          return entry.tiling;
        }
      }
    }
    ++misses_;
  }

  // Search outside the lock: a cold key may be searched by several racing
  // threads, but the search is deterministic, so every racer computes the
  // same tiling and the duplicate insert below is dropped.
  TorusSearchConfig local = config;
  TorusSearchStats stats;  // the caller's stats pointer must not leak in
  local.stats = &stats;
  std::optional<Tiling> tiling =
      period != nullptr ? find_tiling_on_torus(prototiles, *period, local)
                        : search_periodic_tiling(prototiles, local);

  // A found tiling is always cacheable (any found tiling is a valid
  // answer).  A FAILURE is only cacheable when no searched torus hit the
  // node budget: a truncated failure depends on the engine and the
  // parallel fan-out (the per-subtree budget can explore more than the
  // serial search), so memoizing it could deny a tiling that a later,
  // differently-shaped search would find.
  const bool cacheable = tiling.has_value() || !stats.budget_exhausted;
  if (cacheable) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry>& bucket = entries_[hash];
    bool present = false;
    for (const Entry& entry : bucket) {
      if (entry.key == key) {
        present = true;
        break;
      }
    }
    if (!present) bucket.push_back(Entry{std::move(key), tiling});
  }
  return tiling;
}

std::optional<Tiling> TilingCache::find_or_search(
    const std::vector<Prototile>& prototiles,
    const TorusSearchConfig& config) {
  return lookup_or_run(prototiles, nullptr, config);
}

std::optional<Tiling> TilingCache::find_or_search_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config) {
  return lookup_or_run(prototiles, &period, config);
}

TilingCache::Stats TilingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  for (const auto& [hash, bucket] : entries_) s.entries += bucket.size();
  return s;
}

void TilingCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace latticesched
