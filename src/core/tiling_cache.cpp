#include "core/tiling_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/persist.hpp"

namespace latticesched {

namespace {

// FNV-1a over a stream of 64-bit words; good enough for a bucket index
// (full keys are compared on lookup, so collisions only cost a compare).
struct Fnv {
  std::uint64_t state = 0xcbf29ce484222325ull;
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      state ^= (v >> (8 * byte)) & 0xff;
      state *= 0x100000001b3ull;
    }
  }
};

}  // namespace

bool TilingCache::Key::operator==(const Key& o) const {
  return max_period_cells == o.max_period_cells &&
         node_limit == o.node_limit &&
         require_all_prototiles == o.require_all_prototiles &&
         period == o.period && prototiles == o.prototiles;
}

std::uint64_t TilingCache::hash_key(const Key& key) {
  Fnv h;
  h.mix(static_cast<std::uint64_t>(key.max_period_cells));
  h.mix(key.node_limit);
  h.mix(key.require_all_prototiles ? 1 : 0);
  if (key.period.has_value()) {
    const IntMatrix& b = key.period->basis();
    h.mix(b.rows());
    for (std::size_t r = 0; r < b.rows(); ++r) {
      for (std::size_t c = 0; c < b.cols(); ++c) {
        h.mix(static_cast<std::uint64_t>(b.at(r, c)));
      }
    }
  } else {
    h.mix(0xfeedfacecafebeefull);  // marker: diagonal period sweep
  }
  h.mix(key.prototiles.size());
  for (const Prototile& tile : key.prototiles) {
    h.mix(tile.size());
    // Elements are stored sorted and deduplicated (the canonical order of
    // the schedules), so equal prototile sets hash equally by design.
    for (const Point& p : tile.points()) {
      for (std::size_t i = 0; i < p.dim(); ++i) {
        h.mix(static_cast<std::uint64_t>(p[i]));
      }
    }
  }
  return h.state;
}

std::optional<Tiling> TilingCache::lookup_or_run(
    const std::vector<Prototile>& prototiles, const Sublattice* period,
    const TorusSearchConfig& config) {
  Key key;
  key.prototiles = prototiles;
  if (period != nullptr) key.period = *period;
  key.max_period_cells = config.max_period_cells;
  key.node_limit = config.node_limit;
  key.require_all_prototiles = config.require_all_prototiles;
  const std::uint64_t hash = hash_key(key);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(hash);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.key == key) {
          ++hits_;
          return entry.tiling;
        }
      }
    }
  }

  // Memory miss: consult the persisted entry (outside the lock — file IO
  // must not serialize the whole cache; racing loaders insert the same
  // result and the duplicate is dropped).  A disk load is a HIT — the
  // search it memoized ran in some earlier process.
  if (!persist_dir_.empty()) {
    if (std::optional<std::optional<Tiling>> loaded =
            load_from_disk(key, hash)) {
      std::lock_guard<std::mutex> lock(mu_);
      std::vector<Entry>& bucket = entries_[hash];
      bool present = false;
      for (const Entry& entry : bucket) {
        if (entry.key == key) {
          present = true;
          break;
        }
      }
      if (!present) bucket.push_back(Entry{std::move(key), *loaded});
      ++hits_;
      ++disk_hits_;
      return *loaded;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }

  // Search outside the lock: a cold key may be searched by several racing
  // threads, but the search is deterministic, so every racer computes the
  // same tiling and the duplicate insert below is dropped.
  TorusSearchConfig local = config;
  TorusSearchStats stats;  // the caller's stats pointer must not leak in
  local.stats = &stats;
  std::optional<Tiling> tiling =
      period != nullptr ? find_tiling_on_torus(prototiles, *period, local)
                        : search_periodic_tiling(prototiles, local);

  // A found tiling is always cacheable (any found tiling is a valid
  // answer).  A FAILURE is only cacheable when no searched torus hit the
  // node budget: a truncated failure depends on the engine and the
  // parallel fan-out (the per-subtree budget can explore more than the
  // serial search), so memoizing it could deny a tiling that a later,
  // differently-shaped search would find.
  const bool cacheable = tiling.has_value() || !stats.budget_exhausted;
  {
    // Fold the search's scheduler counters into the cache totals — the
    // cache is where per-batch deltas are read from (PlanService).
    std::lock_guard<std::mutex> lock(mu_);
    search_subtree_tasks_ += stats.subtree_tasks;
    search_steals_ += stats.steals;
    search_kernel_ = stats.kernel;
  }
  if (cacheable) {
    if (!persist_dir_.empty()) store_to_disk(key, hash, tiling);
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry>& bucket = entries_[hash];
    bool present = false;
    for (const Entry& entry : bucket) {
      if (entry.key == key) {
        present = true;
        break;
      }
    }
    if (!present) bucket.push_back(Entry{std::move(key), tiling});
  }
  return tiling;
}

std::optional<Tiling> TilingCache::find_or_search(
    const std::vector<Prototile>& prototiles,
    const TorusSearchConfig& config) {
  return lookup_or_run(prototiles, nullptr, config);
}

std::optional<Tiling> TilingCache::find_or_search_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config) {
  return lookup_or_run(prototiles, &period, config);
}

void TilingCache::set_persist_dir(const std::string& dir) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      throw std::runtime_error("tiling-cache: cannot create persist dir '" +
                               dir + "': " + ec.message());
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  persist_dir_ = dir;
}

std::string TilingCache::entry_path(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "tc_%016llx.entry",
                static_cast<unsigned long long>(hash));
  return persist_dir_ + "/" + name;
}

namespace {

// Envelope framing (magic/version/checksum/atomic publish) is the
// shared persist machinery of util/persist.hpp; only the body format
// below is tiling-cache-specific.
constexpr const char* kDiskMagic = "latticesched-tiling-cache";

void write_matrix(std::ostream& os, const IntMatrix& m) {
  os << m.rows();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) os << ' ' << m.at(r, c);
  }
  os << '\n';
}

IntMatrix read_matrix(std::istream& is) {
  std::size_t dim = 0;
  if (!(is >> dim) || dim == 0 || dim > kMaxDim) {
    throw std::invalid_argument("bad matrix dimension");
  }
  IntMatrix m(dim, dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      if (!(is >> m.at(r, c))) {
        throw std::invalid_argument("truncated matrix");
      }
    }
  }
  return m;
}

Point read_point(std::istream& is, std::size_t dim) {
  std::vector<std::int64_t> coords(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    if (!(is >> coords[i])) throw std::invalid_argument("truncated point");
  }
  return Point(coords);
}

}  // namespace

std::optional<std::optional<Tiling>> TilingCache::load_from_disk(
    const Key& key, std::uint64_t hash) const {
  const std::string path = entry_path(hash);
  std::string content;
  switch (persist::load_entry(path, kDiskMagic, kDiskFormatVersion,
                              &content)) {
    case persist::EntryStatus::kMissing:
      return std::nullopt;  // no entry; not worth a warning
    case persist::EntryStatus::kStaleVersion: {
      std::istringstream header(content);
      std::string magic;
      int version = 0;
      header >> magic >> version;
      std::fprintf(stderr,
                   "tiling-cache: skipping %s (format v%d, expected v%d)\n",
                   path.c_str(), version, kDiskFormatVersion);
      return std::nullopt;
    }
    case persist::EntryStatus::kCorrupt:
      // Garbage, truncation, or a body that does not match its
      // checksum: disk corruption.  Evict the file — leaving it would
      // warn on every load until the key happens to be recomputed.
      std::fprintf(stderr,
                   "tiling-cache: corrupt entry %s; evicting and "
                   "recomputing\n",
                   path.c_str());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++checksum_failures_;
      }
      (void)std::remove(path.c_str());
      return std::nullopt;
    case persist::EntryStatus::kOk:
      break;
  }
  std::istringstream is(content);
  try {
    // Envelope (magic + version + checksum) already validated by
    // load_entry; skip the header tokens and parse the body.
    std::string magic;
    int version = 0;
    is >> magic >> version;

    // Reconstruct the stored key and require it to match the request —
    // a hash collision or a stale file for a re-hashed key is a miss.
    Key stored;
    std::string tag;
    if (!(is >> tag >> stored.max_period_cells >> stored.node_limit >>
          stored.require_all_prototiles) ||
        tag != "budget") {
      throw std::invalid_argument("bad budget line");
    }
    std::string period_kind;
    if (!(is >> tag >> period_kind) || tag != "key-period" ||
        (period_kind != "sweep" && period_kind != "matrix")) {
      throw std::invalid_argument("bad key-period line");
    }
    if (period_kind == "matrix") {
      stored.period = Sublattice(read_matrix(is));
    }
    std::size_t tile_count = 0;
    if (!(is >> tag >> tile_count) || tag != "prototiles" ||
        tile_count == 0 || tile_count > 1024) {
      throw std::invalid_argument("bad prototile count");
    }
    for (std::size_t t = 0; t < tile_count; ++t) {
      std::size_t dim = 0, size = 0;
      if (!(is >> tag >> dim >> size) || tag != "tile" || dim == 0 ||
          dim > kMaxDim || size == 0) {
        throw std::invalid_argument("bad tile header");
      }
      PointVec points;
      points.reserve(size);
      for (std::size_t i = 0; i < size; ++i) {
        points.push_back(read_point(is, dim));
      }
      stored.prototiles.emplace_back(std::move(points));
    }
    if (!(stored == key)) {
      std::fprintf(stderr,
                   "tiling-cache: skipping %s (key mismatch — hash "
                   "collision or stale entry)\n",
                   path.c_str());
      return std::nullopt;
    }

    std::string outcome;
    if (!(is >> tag >> outcome) || tag != "result") {
      throw std::invalid_argument("bad result line");
    }
    if (outcome == "none") {
      if (!(is >> tag) || tag != "end") {
        throw std::invalid_argument("truncated entry");
      }
      // Engaged outer optional holding a cached FAILURE (empty inner).
      return std::optional<std::optional<Tiling>>{std::in_place};
    }
    if (outcome != "found") throw std::invalid_argument("bad outcome");

    if (!(is >> tag) || tag != "period") {
      throw std::invalid_argument("bad period line");
    }
    const Sublattice result_period(read_matrix(is));
    std::size_t placement_count = 0;
    if (!(is >> tag >> placement_count) || tag != "placements" ||
        placement_count == 0 ||
        placement_count >
            static_cast<std::size_t>(result_period.index())) {
      throw std::invalid_argument("bad placement count");
    }
    std::vector<std::pair<Point, std::uint32_t>> placements;
    placements.reserve(placement_count);
    for (std::size_t i = 0; i < placement_count; ++i) {
      std::uint32_t tile_index = 0;
      if (!(is >> tag >> tile_index) || tag != "place" ||
          tile_index >= key.prototiles.size()) {
        throw std::invalid_argument("bad placement");
      }
      placements.emplace_back(read_point(is, result_period.dim()),
                              tile_index);
    }
    if (!(is >> tag) || tag != "end") {
      throw std::invalid_argument("truncated entry");
    }
    // Rebuild through the validating constructor with the CALLER's
    // prototiles (names survive; the stored ones only verified the key).
    // Invalid placements — a corrupt but parseable file — throw here and
    // fall through to the recompute path like any other corruption.
    return std::optional<std::optional<Tiling>>{
        Tiling::periodic(key.prototiles, result_period,
                         std::move(placements))};
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "tiling-cache: skipping corrupt entry %s (%s); "
                 "recomputing\n",
                 path.c_str(), e.what());
    return std::nullopt;
  }
}

void TilingCache::store_to_disk(const Key& key, std::uint64_t hash,
                                const std::optional<Tiling>& tiling) const {
  const std::string path = entry_path(hash);
  std::string content;
  {
    std::ostringstream os;
    os << kDiskMagic << ' ' << kDiskFormatVersion << '\n';
    os << "budget " << key.max_period_cells << ' ' << key.node_limit << ' '
       << (key.require_all_prototiles ? 1 : 0) << '\n';
    if (key.period.has_value()) {
      os << "key-period matrix ";
      write_matrix(os, key.period->basis());
    } else {
      os << "key-period sweep\n";
    }
    os << "prototiles " << key.prototiles.size() << '\n';
    for (const Prototile& tile : key.prototiles) {
      os << "tile " << tile.dim() << ' ' << tile.size();
      for (const Point& p : tile.points()) {
        for (std::size_t i = 0; i < p.dim(); ++i) os << ' ' << p[i];
      }
      os << '\n';
    }
    if (tiling.has_value()) {
      os << "result found\n";
      os << "period ";
      write_matrix(os, tiling->period().basis());
      os << "placements " << tiling->placements().size() << '\n';
      for (const auto& [translate, tile_index] : tiling->placements()) {
        os << "place " << tile_index;
        for (std::size_t i = 0; i < translate.dim(); ++i) {
          os << ' ' << translate[i];
        }
        os << '\n';
      }
    } else {
      os << "result none\n";
    }
    os << "end\n";
    content = os.str();
  }
  content += persist::checksum_line(content);
  // Fault hook AFTER the checksum: an injected corruption models a disk
  // flipping bits on an already-valid entry, which the load-time
  // verification must catch.
  if (write_corruption_hook_) write_corruption_hook_(content);

  (void)persist::write_entry_atomic(path, content, "tiling-cache");
}

namespace {

/// Validity probe for the sweep: magic + version line, plus the v2
/// checksum trailer verified against the body — so bit-flipped entries
/// are evicted by the GC as corrupt, not kept until some load trips
/// over them.
bool entry_looks_valid(const std::string& path) {
  std::string content;
  return persist::load_entry(path, kDiskMagic,
                             TilingCache::kDiskFormatVersion,
                             &content) == persist::EntryStatus::kOk;
}

}  // namespace

TilingCache::SweepStats TilingCache::sweep_persist_dir(
    const std::string& dir, std::uint64_t max_bytes) {
  SweepStats stats;
  if (dir.empty()) return stats;
  struct EntryFile {
    std::string path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
    bool corrupt = false;
  };
  std::vector<EntryFile> entries;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("tc_", 0) != 0 || de.path().extension() != ".entry") {
      continue;
    }
    EntryFile entry;
    entry.path = de.path().string();
    entry.bytes = de.file_size(ec);
    if (ec) continue;  // vanished mid-scan (concurrent sweep)
    entry.mtime = de.last_write_time(ec);
    if (ec) continue;
    entry.corrupt = !entry_looks_valid(entry.path);
    stats.bytes_before += entry.bytes;
    entries.push_back(std::move(entry));
  }
  stats.scanned = entries.size();
  stats.bytes_after = stats.bytes_before;

  // Eviction order: corrupt entries first, then oldest mtime; path
  // breaks ties so concurrent sweepers of one directory agree.
  std::sort(entries.begin(), entries.end(),
            [](const EntryFile& a, const EntryFile& b) {
              if (a.corrupt != b.corrupt) return a.corrupt;
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  for (const EntryFile& entry : entries) {
    if (!entry.corrupt && stats.bytes_after <= max_bytes) break;
    if (std::remove(entry.path.c_str()) != 0) continue;  // already gone
    stats.bytes_after -= entry.bytes;
    ++stats.removed;
    if (entry.corrupt) ++stats.corrupt_removed;
  }
  return stats;
}

TilingCache::SweepStats TilingCache::sweep_persist_dir(
    std::uint64_t max_bytes) const {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir = persist_dir_;
  }
  return sweep_persist_dir(dir, max_bytes);
}

TilingCache::Stats TilingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.disk_hits = disk_hits_;
  s.checksum_failures = checksum_failures_;
  s.search_subtree_tasks = search_subtree_tasks_;
  s.search_steals = search_steals_;
  s.search_kernel = search_kernel_;
  for (const auto& [hash, bucket] : entries_) s.entries += bucket.size();
  return s;
}

void TilingCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  disk_hits_ = 0;
  checksum_failures_ = 0;
  search_subtree_tasks_ = 0;
  search_steals_ = 0;
  search_kernel_ = "";
}

}  // namespace latticesched
