// Memoization of torus-search results (the planner-level cache from the
// ROADMAP): identical (prototile set, search budget) requests used to
// re-run the period sweep on every plan, which dominates the cost of
// scenario sweeps — the same handful of neighborhoods is searched over
// and over while only the deployment window changes.  The cache keys a
// search by a canonical hash of the prototile set (element lists are
// already stored sorted), the optional explicit torus, and the budget
// knobs that can change the answer (max_period_cells, node_limit,
// require_all_prototiles; the engine/parallel toggles are excluded
// because both engines return identical tilings within budget).  Failed
// searches are cached too — so sweeping a non-exact prototile is
// charged once — UNLESS the search hit its node budget: a truncated
// failure is engine- and parallelism-dependent
// (TorusSearchStats::budget_exhausted), so it is re-run each time
// rather than memoized.
//
// Thread safety: lookups and inserts lock a mutex; the search itself
// runs outside the lock, so two threads racing on the same cold key may
// both search (deterministically producing the same tiling — the second
// insert is a no-op).  Hit/miss counters are surfaced in batch reports.
//
// Persistence: set_persist_dir() spills every cacheable entry to a
// directory (one versioned text file per key, named by the canonical
// key hash) and consults it on an in-memory miss before searching — so
// cold driver invocations and freshly spawned distributed workers
// warm-start from a shared cache.  A disk load counts as a HIT (plus
// Stats::disk_hits); only a genuine search counts as a miss.  Disk
// files are written atomically (temp file + fsync + rename) and carry
// a trailing checksum over the body that is verified on load — silent
// bit-level corruption is evicted and recomputed, counted in
// Stats::checksum_failures — so concurrent workers sharing one
// directory never observe torn or flipped entries; a
// truncated, corrupt, stale-versioned or hash-colliding file is
// skipped with a stderr warning and recomputed, never a crash.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lattice/sublattice.hpp"
#include "tiling/prototile.hpp"
#include "tiling/tiling.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {

class TilingCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Subset of `hits` served by loading a persisted entry from disk.
    std::uint64_t disk_hits = 0;
    /// Persisted entries whose checksum line did not match their body —
    /// silent disk corruption caught on load.  Each one is evicted
    /// (unlinked) and recomputed, so a nonzero count never means a
    /// wrong answer.
    std::uint64_t checksum_failures = 0;
    /// Work-stealing search counters, accumulated over every search this
    /// cache actually ran (misses; hits run no search).  See
    /// TorusSearchStats: subtree tasks executed by the parallel dense
    /// engine and how many of them a worker stole from another worker's
    /// deque.  Zero when every search ran serially.
    std::uint64_t search_subtree_tasks = 0;
    std::uint64_t search_steals = 0;
    /// Mask-kernel implementation of the most recent search ("scalar" /
    /// "avx2"; empty until a search ran).  The kernel is a process-wide
    /// dispatch decision, so "most recent" is "all of them" in practice.
    std::string search_kernel;
    std::size_t entries = 0;  ///< in-memory entries only
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  TilingCache() = default;
  TilingCache(const TilingCache&) = delete;
  TilingCache& operator=(const TilingCache&) = delete;

  /// Memoized search_periodic_tiling: sweeps diagonal tori of growing
  /// size on a miss, returns the cached result (possibly a cached
  /// failure) on a hit.
  std::optional<Tiling> find_or_search(
      const std::vector<Prototile>& prototiles,
      const TorusSearchConfig& config = {});

  /// Memoized find_tiling_on_torus for an explicit period sublattice.
  std::optional<Tiling> find_or_search_on_torus(
      const std::vector<Prototile>& prototiles, const Sublattice& period,
      const TorusSearchConfig& config = {});

  Stats stats() const;
  void clear();

  /// Enables disk persistence under `dir` (created if missing; "" turns
  /// persistence off).  Throws std::runtime_error when the directory
  /// cannot be created.  clear() does not touch persisted entries.
  /// Call before the cache is shared across threads (configuration, not
  /// a per-lookup toggle).
  void set_persist_dir(const std::string& dir);
  const std::string& persist_dir() const { return persist_dir_; }

  /// On-disk entry format version; files carrying any other version are
  /// skipped (and rewritten on the next store for that key).
  /// v2: a trailing "checksum <fnv64hex>" line over everything up to
  /// and including the "end" line, verified on load (mismatch = evict +
  /// recompute, counted in Stats::checksum_failures); the tmp file is
  /// fsynced before the atomic rename so a torn write cannot survive a
  /// crash as a valid-looking entry.
  static constexpr int kDiskFormatVersion = 2;

  /// TEST/FAULT-INJECTION HOOK: called with the full serialized entry
  /// (checksum line included) right before each store_to_disk write —
  /// mutating the content simulates disk corruption that load-time
  /// checksum verification must catch.  Empty function = disabled.
  /// Configure before sharing the cache across threads, like
  /// set_persist_dir.
  void set_write_corruption_hook(std::function<void(std::string&)> hook) {
    write_corruption_hook_ = std::move(hook);
  }

  /// Cache-dir eviction (the ROADMAP's size-capped GC): bounds the
  /// total size of the `tc_*.entry` files under `dir` to `max_bytes`.
  /// Corrupt or stale-versioned entries are evicted first (they would
  /// only ever be skipped and recomputed); then least-recently-modified
  /// entries go — an LRU over mtime, because store_to_disk rewrites an
  /// entry whenever its key is recomputed and loads leave mtime alone,
  /// so mtime orders entries by last (re)write.  Files are removed by
  /// atomic unlink; a concurrently reading worker either got the entry
  /// or recomputes — never a torn read.  Returns what the sweep did.
  struct SweepStats {
    std::size_t scanned = 0;        ///< tc_*.entry files examined
    std::size_t removed = 0;        ///< files unlinked
    std::size_t corrupt_removed = 0;///< subset of `removed` evicted as corrupt
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
  };
  static SweepStats sweep_persist_dir(const std::string& dir,
                                      std::uint64_t max_bytes);
  /// Instance form: sweeps this cache's persist dir (no-op stats when
  /// persistence is off).
  SweepStats sweep_persist_dir(std::uint64_t max_bytes) const;

 private:
  struct Key {
    std::vector<Prototile> prototiles;
    std::optional<Sublattice> period;  ///< nullopt: diagonal period sweep
    std::int64_t max_period_cells = 0;
    std::uint64_t node_limit = 0;
    bool require_all_prototiles = false;
    bool operator==(const Key& o) const;
  };

  struct Entry {
    Key key;
    std::optional<Tiling> tiling;
  };

  std::optional<Tiling> lookup_or_run(
      const std::vector<Prototile>& prototiles,
      const Sublattice* period, const TorusSearchConfig& config);

  static std::uint64_t hash_key(const Key& key);

  /// Path of the persisted entry for `hash` (persist_dir_ must be set).
  std::string entry_path(std::uint64_t hash) const;
  /// Loads the persisted entry for (key, hash): outer nullopt = no
  /// usable entry (missing / corrupt / stale version / key mismatch);
  /// inner optional is the cached search result (possibly a failure).
  std::optional<std::optional<Tiling>> load_from_disk(
      const Key& key, std::uint64_t hash) const;
  /// Atomically writes the entry for (key, hash); IO failures warn and
  /// are otherwise ignored (the cache stays correct, just colder).
  void store_to_disk(const Key& key, std::uint64_t hash,
                     const std::optional<Tiling>& tiling) const;

  mutable std::mutex mu_;
  /// Buckets by key hash; each bucket holds full keys to survive hash
  /// collisions.
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t search_subtree_tasks_ = 0;
  std::uint64_t search_steals_ = 0;
  const char* search_kernel_ = "";  ///< static storage (mask_kernels Ops)
  /// Mutable: bumped from the const load path, under mu_.
  mutable std::uint64_t checksum_failures_ = 0;
  std::string persist_dir_;  ///< "" = persistence disabled
  std::function<void(std::string&)> write_corruption_hook_;
};

}  // namespace latticesched
