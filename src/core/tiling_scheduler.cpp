#include "core/tiling_scheduler.hpp"

#include <algorithm>
#include <sstream>

namespace latticesched {

TilingSchedule::TilingSchedule(Tiling tiling) : tiling_(std::move(tiling)) {
  PointVec all;
  for (const Prototile& t : tiling_.prototiles()) {
    for (const Point& p : t.points()) all.push_back(p);
  }
  union_points_ = sorted_unique(std::move(all));
  for (std::uint32_t k = 0; k < union_points_.size(); ++k) {
    slot_by_element_.emplace(union_points_[k], k);
  }
  // Slot table over the period's coset ids: the slot of a point depends
  // only on its coset (the tiling and the schedule are both P-periodic),
  // so one covering() per coset at construction buys an O(1) array load
  // per query forever after.
  coset_index_ = PointIndexer::for_sublattice(tiling_.period());
  slot_table_.resize(coset_index_->size());
  for (std::uint32_t id = 0; id < coset_index_->size(); ++id) {
    slot_table_[id] = slot_of_reference(coset_index_->point_of(id));
  }
  // Division-free coset encoding for diagonal periods: p[i] mod d_i via
  // fastmod magic, strides matching PointIndexer::for_sublattice (axis 0
  // fastest).  Non-diagonal HNFs cascade between axes and keep the
  // general reduce path.
  const IntMatrix& hnf = tiling_.period().basis();
  dim_ = tiling_.dim();
  fast_path_ = true;
  std::uint64_t stride = 1;
  for (std::size_t i = 0; i < dim_ && fast_path_; ++i) {
    for (std::size_t r = 0; r < dim_; ++r) {
      if (r != i && hnf.at(r, i) != 0) fast_path_ = false;
    }
    const std::int64_t d = hnf.at(i, i);
    if (d > kFastRange) fast_path_ = false;
    if (!fast_path_) break;
    AxisCode& ax = axis_[i];
    ax.divisor = static_cast<std::uint64_t>(d);
    ax.magic = ~std::uint64_t{0} / ax.divisor + 1;  // 0 when d == 1
    ax.offset = d * (kFastRange * 2 / d);           // ≡ 0 (mod d), ≥ 2^31 - d
    ax.stride = stride;
    stride *= ax.divisor;
  }
}

std::uint32_t TilingSchedule::slot_of_reference(const Point& p) const {
  const Covering c = tiling_.covering(p);
  const Point& element =
      tiling_.prototile(c.prototile).element(c.element_index);
  return slot_by_element_.at(element);
}

std::string TilingSchedule::description() const {
  std::ostringstream os;
  os << "tiling-schedule(m=" << period() << ", prototiles="
     << tiling_.prototile_count()
     << (tiling_.is_respectable() ? ", respectable" : ", non-respectable")
     << ")";
  return os.str();
}

PointVec TilingSchedule::senders_in_slot(std::uint32_t slot,
                                         const Box& box) const {
  PointVec out;
  box.for_each([&](const Point& p) {
    if (slot_of(p) == slot) out.push_back(p);
  });
  return out;
}

std::uint32_t TilingSchedule::lower_bound_slots() const {
  std::size_t lb = 0;
  for (const Prototile& t : tiling_.prototiles()) {
    lb = std::max(lb, t.size());
  }
  return static_cast<std::uint32_t>(lb);
}

}  // namespace latticesched
