#include "core/tiling_scheduler.hpp"

#include <algorithm>
#include <sstream>

namespace latticesched {

TilingSchedule::TilingSchedule(Tiling tiling) : tiling_(std::move(tiling)) {
  PointVec all;
  for (const Prototile& t : tiling_.prototiles()) {
    for (const Point& p : t.points()) all.push_back(p);
  }
  union_points_ = sorted_unique(std::move(all));
  for (std::uint32_t k = 0; k < union_points_.size(); ++k) {
    slot_by_element_.emplace(union_points_[k], k);
  }
}

std::uint32_t TilingSchedule::slot_of(const Point& p) const {
  const Covering c = tiling_.covering(p);
  const Point& element =
      tiling_.prototile(c.prototile).element(c.element_index);
  return slot_by_element_.at(element);
}

std::string TilingSchedule::description() const {
  std::ostringstream os;
  os << "tiling-schedule(m=" << period() << ", prototiles="
     << tiling_.prototile_count()
     << (tiling_.is_respectable() ? ", respectable" : ", non-respectable")
     << ")";
  return os.str();
}

PointVec TilingSchedule::senders_in_slot(std::uint32_t slot,
                                         const Box& box) const {
  PointVec out;
  box.for_each([&](const Point& p) {
    if (slot_of(p) == slot) out.push_back(p);
  });
  return out;
}

std::uint32_t TilingSchedule::lower_bound_slots() const {
  std::size_t lb = 0;
  for (const Prototile& t : tiling_.prototiles()) {
    lb = std::max(lb, t.size());
  }
  return static_cast<std::uint32_t>(lb);
}

}  // namespace latticesched
