// The paper's schedules: Theorem 1 (single prototile) and Theorem 2
// (several prototiles, respectable tilings).
//
// Construction (proofs of Theorems 1 and 2): enumerate the union
// N = N_1 ∪ … ∪ N_n = {n_1 < n_2 < … < n_m}; the sensor at t_ℓ + n_k
// (t_ℓ a translate of prototile ℓ, n_k ∈ N_ℓ) is scheduled in slot k.
// The covering map of the tiling makes this well-defined for every
// lattice point, and m = |N| slots suffice; for respectable tilings m is
// optimal.
//
// Engine note: slot_of is on the hot path of every verification, bench
// and simulation, so the constructor precomputes the slot of every coset
// of the tiling's period once; a query is then one coset id plus an
// array load (no hashing, no Covering materialization).  For diagonal
// periods the coset id itself is computed division-free via fastmod
// magic multipliers (the HNF reduce costs one int64 division per axis,
// which dominates the lookup otherwise); non-diagonal periods and
// far-away points fall back to the general reduce.  The seed's
// covering()-based evaluation survives as slot_of_reference for
// cross-validation and before/after benchmarks.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/schedule.hpp"
#include "lattice/point_index.hpp"
#include "tiling/tiling.hpp"

namespace latticesched {

class TilingSchedule final : public Schedule {
 public:
  /// Builds the Theorem-1/Theorem-2 schedule for a tiling.
  explicit TilingSchedule(Tiling tiling);

  std::uint32_t period() const override {
    return static_cast<std::uint32_t>(union_points_.size());
  }
  std::uint32_t slot_of(const Point& p) const override {
    // Dimension mismatches must keep throwing (via the general reduce),
    // not read zero-padded coordinates into a plausible-looking slot.
    if (fast_path_ && p.dim() == dim_) {
      std::uint64_t id = 0;
      for (std::size_t i = 0; i < dim_; ++i) {
        const std::int64_t v = p[i];
        if (v < -kFastRange || v > kFastRange) return slot_of_general(p);
        const AxisCode& ax = axis_[i];
        // Lemire fastmod: u ≡ p[i] (mod d) with u unsigned 32-bit.
        const std::uint32_t u = static_cast<std::uint32_t>(v + ax.offset);
        const std::uint64_t lowbits = ax.magic * u;
        const std::uint64_t mod = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(lowbits) * ax.divisor) >> 64);
        id += mod * ax.stride;
      }
      return slot_table_[id];
    }
    return slot_of_general(p);
  }
  std::string description() const override;

  /// Seed implementation (covering() + hash lookups); same answers as
  /// slot_of on every point, kept as the reference for tests and benches.
  std::uint32_t slot_of_reference(const Point& p) const;

  const Tiling& tiling() const { return tiling_; }

  /// The union N = ∪ N_k in canonical order; slot k belongs to element
  /// union_points()[k].
  const PointVec& union_points() const { return union_points_; }

  /// All lattice points scheduled in `slot` within `box` — by the
  /// argument illustrated in Figure 3, for single-prototile tilings the
  /// neighborhoods of these senders again tile the lattice.  Batched:
  /// walks the precomputed coset slot table, never calling covering().
  PointVec senders_in_slot(std::uint32_t slot, const Box& box) const;

  /// Paper's optimality bound: no collision-free periodic schedule for
  /// this deployment uses fewer than max_k |N_k| slots; when the tiling
  /// is respectable this equals period() and the schedule is optimal.
  std::uint32_t lower_bound_slots() const;
  bool optimal() const { return lower_bound_slots() == period(); }

 private:
  /// General path: one HNF reduce + dense coset id + array load.
  std::uint32_t slot_of_general(const Point& p) const {
    return slot_table_[coset_index_->id_of(tiling_.period().reduce(p))];
  }

  /// Coordinate range served by the division-free path; beyond it the
  /// offset trick would overflow the 32-bit fastmod operand.
  static constexpr std::int64_t kFastRange = std::int64_t{1} << 30;

  struct AxisCode {
    std::int64_t offset = 0;   // multiple of divisor making p[i] >= 0
    std::uint64_t magic = 0;   // UINT64_MAX / divisor + 1
    std::uint64_t divisor = 1;
    std::uint64_t stride = 0;  // coset-id stride of this axis
  };

  Tiling tiling_;
  PointVec union_points_;
  PointMap<std::uint32_t> slot_by_element_;
  /// Dense coset id space of the tiling's period sublattice.
  std::optional<PointIndexer> coset_index_;
  /// slot_table_[coset id] = slot of every point in that coset.
  std::vector<std::uint32_t> slot_table_;
  std::array<AxisCode, kMaxDim> axis_{};
  std::size_t dim_ = 0;
  bool fast_path_ = false;
};

}  // namespace latticesched
