// The paper's schedules: Theorem 1 (single prototile) and Theorem 2
// (several prototiles, respectable tilings).
//
// Construction (proofs of Theorems 1 and 2): enumerate the union
// N = N_1 ∪ … ∪ N_n = {n_1 < n_2 < … < n_m}; the sensor at t_ℓ + n_k
// (t_ℓ a translate of prototile ℓ, n_k ∈ N_ℓ) is scheduled in slot k.
// The covering map of the tiling makes this well-defined for every
// lattice point, and m = |N| slots suffice; for respectable tilings m is
// optimal.
#pragma once

#include <cstdint>
#include <optional>

#include "core/schedule.hpp"
#include "tiling/tiling.hpp"

namespace latticesched {

class TilingSchedule final : public Schedule {
 public:
  /// Builds the Theorem-1/Theorem-2 schedule for a tiling.
  explicit TilingSchedule(Tiling tiling);

  std::uint32_t period() const override {
    return static_cast<std::uint32_t>(union_points_.size());
  }
  std::uint32_t slot_of(const Point& p) const override;
  std::string description() const override;

  const Tiling& tiling() const { return tiling_; }

  /// The union N = ∪ N_k in canonical order; slot k belongs to element
  /// union_points()[k].
  const PointVec& union_points() const { return union_points_; }

  /// All lattice points scheduled in `slot` within `box` — by the
  /// argument illustrated in Figure 3, for single-prototile tilings the
  /// neighborhoods of these senders again tile the lattice.
  PointVec senders_in_slot(std::uint32_t slot, const Box& box) const;

  /// Paper's optimality bound: no collision-free periodic schedule for
  /// this deployment uses fewer than max_k |N_k| slots; when the tiling
  /// is respectable this equals period() and the schedule is optimal.
  std::uint32_t lower_bound_slots() const;
  bool optimal() const { return lower_bound_slots() == period(); }

 private:
  Tiling tiling_;
  PointVec union_points_;
  PointMap<std::uint32_t> slot_by_element_;
};

}  // namespace latticesched
