#include "dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdint>
#include <deque>
#include <numeric>
#include <poll.h>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/planner.hpp"
#include "core/report.hpp"
#include "dist/faults.hpp"
#include "dist/process.hpp"
#include "dist/wire.hpp"

namespace latticesched::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// Relative cost estimate of planning one item: window area times
/// neighborhood area, scaled by the step count of a dynamic item (each
/// step replans).  Only the RATIO between items matters (LPT bin
/// packing), so a crude geometric proxy beats no estimate without
/// needing to build the scenario.
/// Saturating multiply: million-sensor items would overflow the naive
/// n²·ball²·steps product and wrap to a TINY weight, inverting the LPT
/// packing exactly on the items that need balancing most.
std::uint64_t mul_sat(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r;
  if (__builtin_mul_overflow(a, b, &r)) return UINT64_MAX;
  return r;
}

std::uint64_t item_weight(const BatchItem& item) {
  const std::uint64_t n =
      static_cast<std::uint64_t>(std::max<std::int64_t>(1, item.query.params.n));
  const std::uint64_t ball = static_cast<std::uint64_t>(
      2 * std::max<std::int64_t>(0, item.query.params.radius) + 1);
  const std::uint64_t steps = static_cast<std::uint64_t>(
      1 + std::max<std::int64_t>(0, item.query.params.steps));
  const std::uint64_t w =
      mul_sat(mul_sat(mul_sat(n, n), mul_sat(ball, ball)), steps);
  return std::max<std::uint64_t>(1, w);
}

/// SplitMix64 — the deterministic jitter source for respawn backoff.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Milliseconds from `now` until `t`, clamped to [0, INT_MAX] for poll.
int ms_until(Clock::time_point now, Clock::time_point t) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(t - now).count();
  if (left <= 0) return 0;
  if (left > INT_MAX) return INT_MAX;
  return static_cast<int>(left);
}

}  // namespace

ShardStrategy parse_shard_strategy(const std::string& name) {
  if (name == "block") return ShardStrategy::kBlock;
  if (name == "weighted") return ShardStrategy::kSizeWeighted;
  throw std::invalid_argument("unknown shard strategy '" + name +
                              "' (block | weighted)");
}

ShardCoordinator::ShardCoordinator(CoordinatorConfig config)
    : config_(std::move(config)) {
  if (config_.workers == 0) {
    throw std::invalid_argument("ShardCoordinator: workers must be >= 1");
  }
  if (config_.worker_exe.empty()) {
    throw std::invalid_argument("ShardCoordinator: worker_exe is required");
  }
  if (config_.quarantine_crashes == 0) {
    throw std::invalid_argument(
        "ShardCoordinator: quarantine_crashes must be >= 1");
  }
}

std::vector<std::vector<std::size_t>> ShardCoordinator::partition(
    const std::vector<BatchItem>& items, std::size_t shard_count,
    ShardStrategy strategy) {
  const std::size_t n = items.size();
  shard_count = std::min(std::max<std::size_t>(1, shard_count), n);
  std::vector<std::vector<std::size_t>> shards;
  if (n == 0) return shards;
  shards.resize(shard_count);

  if (strategy == ShardStrategy::kBlock) {
    // Balanced contiguous blocks: the first n % shard_count shards get
    // one extra item.
    const std::size_t base = n / shard_count;
    const std::size_t extra = n % shard_count;
    std::size_t next = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::size_t take = base + (s < extra ? 1 : 0);
      for (std::size_t k = 0; k < take; ++k) shards[s].push_back(next++);
    }
    return shards;
  }

  // Size-weighted LPT: heaviest item first onto the lightest shard
  // (ties by index / lowest shard id keep the result deterministic).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&items](std::size_t a, std::size_t b) {
                     return item_weight(items[a]) > item_weight(items[b]);
                   });
  std::vector<std::uint64_t> load(shard_count, 0);
  for (std::size_t idx : order) {
    std::size_t target = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[target]) target = s;
    }
    shards[target].push_back(idx);
    load[target] += item_weight(items[idx]);
  }
  // Request order within each shard (stable wire bytes, stable merges).
  for (std::vector<std::size_t>& shard : shards) {
    std::sort(shard.begin(), shard.end());
  }
  return shards;
}

std::vector<std::string> ShardCoordinator::worker_argv(
    std::size_t fleet_size) const {
  std::vector<std::string> argv = {config_.worker_exe, "--worker",
                                   "--worker-fd",
                                   std::to_string(kWorkerChannelFd)};
  if (!config_.cache_dir.empty()) {
    argv.push_back("--cache-dir");
    argv.push_back(config_.cache_dir);
  }
  // Default: split the machine across the fleet ACTUALLY spawned (small
  // batches cap it below config_.workers).  Letting every worker
  // auto-size to hardware_concurrency would oversubscribe the box
  // workers-fold and can make the fleet slower than a serial run.
  std::size_t threads = config_.worker_threads;
  if (threads == 0) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::max<std::size_t>(1, hw / std::max<std::size_t>(
                                             1, fleet_size));
  }
  argv.push_back("--threads");
  argv.push_back(std::to_string(threads));
  return argv;
}

BatchReport ShardCoordinator::run(const std::vector<BatchItem>& items) {
  // Fail fast on unknown backend names — same contract as
  // PlanService::run, checked before a single process is spawned.
  for (const BatchItem& item : items) {
    for (const std::string& name : item.backends) {
      if (PlannerRegistry::global().find(name) == nullptr) {
        throw std::invalid_argument("ShardCoordinator: unknown backend '" +
                                    name + "'");
      }
    }
  }
  // A malformed fault plan is a configuration error, also pre-spawn.
  const FaultPlan fault_plan = config_.fault_plan.empty()
                                   ? FaultPlan{}
                                   : FaultPlan::parse(config_.fault_plan);

  const auto t0 = Clock::now();
  worker_stats_.clear();
  BatchReport merged;
  merged.items.resize(items.size());
  if (items.empty()) {
    merged.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return merged;
  }

  // Mutable: quarantine filters items out of a dead worker's shards.
  std::vector<std::vector<std::size_t>> shards =
      partition(items, config_.workers, config_.strategy);

  const int timeout_ms =
      config_.worker_timeout_ms == 0
          ? -1
          : static_cast<int>(std::min<std::uint64_t>(config_.worker_timeout_ms,
                                                     INT_MAX));

  // The liveness state machine lives here: one Slot per worker seat,
  // surviving respawns (generation bumps, queue and stats accumulate).
  struct Slot {
    WorkerProcess proc;
    std::deque<std::size_t> queue;  ///< shards assigned, oldest first
    WorkerLiveness state = WorkerLiveness::kDead;
    bool has_deadline = false;
    Clock::time_point deadline;
    std::size_t respawns_used = 0;
    std::uint64_t generation = 0;
    bool respawn_pending = false;
    Clock::time_point respawn_at;
    std::size_t silent_pings = 0;  ///< consecutive PONGs since a RESULT
  };
  std::vector<Slot> slots(shards.size());
  worker_stats_.resize(slots.size());

  // Shards waiting for a worker; seeded with every shard, refilled by
  // worker deaths.
  std::deque<std::size_t> pending;
  for (std::size_t s = 0; s < shards.size(); ++s) pending.push_back(s);

  // Worker deaths each item has been implicated in (the quarantine
  // trigger) and items still unresolved.
  std::vector<std::size_t> crash_counts(items.size(), 0);
  std::size_t remaining = items.size();

  const auto cleanup = [&]() {
    for (Slot& s : slots) {
      if (s.proc.pid > 0) kill_worker(s.proc);
      (void)close_and_reap(s.proc);
      s.state = WorkerLiveness::kDead;
    }
  };

  const auto arm_deadline = [&](Slot& s) {
    if (timeout_ms < 0) {
      s.has_deadline = false;
      return;
    }
    s.deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    s.has_deadline = true;
  };

  const auto backoff_delay = [&](std::size_t w, std::size_t attempt) {
    const std::uint64_t base = std::max<std::uint64_t>(1, config_.backoff_base_ms);
    std::uint64_t wait = attempt >= 60 ? config_.backoff_max_ms
                                       : base << attempt;
    wait = std::min(wait, std::max<std::uint64_t>(1, config_.backoff_max_ms));
    const std::uint64_t jitter =
        splitmix64(config_.backoff_seed ^ (0x517cc1b727220a95ull * (w + 1)) ^
                   attempt) %
        base;
    return std::chrono::milliseconds(wait + jitter);
  };

  const auto quarantine_item = [&](std::size_t idx) {
    BatchItemReport report;
    report.scenario = items[idx].query.scenario;
    report.label = items[idx].query.scenario;
    report.built = false;
    report.error = "quarantined: assignment crashed " +
                   std::to_string(crash_counts[idx]) + " worker(s)";
    merged.items[idx] = std::move(report);
    merged.quarantined_items.push_back(idx);
    --remaining;
  };

  // Declared before the lambdas that call it (spawn happens inside the
  // loop too, for respawns).
  const std::vector<std::string> base_argv = worker_argv(slots.size());
  const auto spawn_slot = [&](std::size_t w) {
    Slot& s = slots[w];
    std::vector<std::string> argv = base_argv;
    const FaultPlan sub = fault_plan.for_worker(w, s.generation);
    if (!sub.empty()) {
      argv.push_back("--fault-plan");
      argv.push_back(sub.to_spec());
    }
    s.proc = spawn_worker_process(argv);
    if (!set_nonblocking(s.proc.fd)) {
      throw std::runtime_error(
          "ShardCoordinator: cannot make worker channel nonblocking");
    }
    s.state = WorkerLiveness::kUnknown;
    s.respawn_pending = false;
    s.silent_pings = 0;
    worker_stats_[w].pid = s.proc.pid;
    arm_deadline(s);  // the HELLO handshake deadline
  };

  /// Kills/reaps the slot, counts the death, requeues its shards with
  /// quarantine filtering, and schedules a respawn while the retry
  /// budget lasts.  `timed_out` distinguishes deadline kills from
  /// crashes in the report counters.
  const auto handle_death = [&](std::size_t w, bool timed_out) {
    Slot& s = slots[w];
    if (s.state == WorkerLiveness::kDead) return;  // already handled
    kill_worker(s.proc);  // no-op if already gone
    (void)close_and_reap(s.proc);
    s.state = WorkerLiveness::kDead;
    s.has_deadline = false;
    s.silent_pings = 0;
    worker_stats_[w].failed = worker_stats_[w].failed || !timed_out;
    worker_stats_[w].timed_out = worker_stats_[w].timed_out || timed_out;
    if (timed_out) {
      ++merged.worker_timeouts;
    } else {
      ++merged.worker_failures;
    }
    while (!s.queue.empty()) {
      const std::size_t shard = s.queue.front();
      s.queue.pop_front();
      // Every item in a dying worker's shards is implicated; the ones
      // that have now been implicated too often are quarantined, the
      // rest requeued for reassignment.
      std::vector<std::size_t> keep;
      keep.reserve(shards[shard].size());
      for (std::size_t idx : shards[shard]) {
        if (++crash_counts[idx] >= config_.quarantine_crashes) {
          quarantine_item(idx);
        } else {
          keep.push_back(idx);
        }
      }
      shards[shard] = std::move(keep);
      if (!shards[shard].empty()) pending.push_back(shard);
    }
    if (s.respawns_used < config_.retries) {
      const std::size_t attempt = s.respawns_used++;
      ++s.generation;
      ++worker_stats_[w].respawns;
      s.respawn_pending = true;
      s.respawn_at = Clock::now() + backoff_delay(w, attempt);
    }
  };

  // Assigns pending shards to idle workers (empty queue, not Dead, not
  // Suspect — a probed worker must answer before it gets more work).
  // Unknown is assignable: the ASSIGN sits in the socket buffer until
  // the worker finishes its HELLO, exactly like the pre-hardening
  // coordinator.  Writes are deadline-bounded, so a worker that stopped
  // reading its socket is a death, not a coordinator stall.
  const auto drain_pending = [&]() {
    while (!pending.empty()) {
      std::size_t target = slots.size();
      for (std::size_t w = 0; w < slots.size(); ++w) {
        if ((slots[w].state == WorkerLiveness::kUnknown ||
             slots[w].state == WorkerLiveness::kAlive) &&
            slots[w].queue.empty()) {
          target = w;
          break;
        }
      }
      if (target == slots.size()) return;  // nobody idle right now
      const std::size_t shard = pending.front();
      if (shards[shard].empty()) {  // fully quarantined while waiting
        pending.pop_front();
        continue;
      }
      std::vector<BatchItem> shard_items;
      shard_items.reserve(shards[shard].size());
      for (std::size_t idx : shards[shard]) {
        shard_items.push_back(items[idx]);
      }
      const WireIoStatus st = write_frame_deadline(
          slots[target].proc.fd,
          {"ASSIGN",
           std::to_string(shard) + "\n" + batch_items_to_json(shard_items)},
          timeout_ms);
      if (st == WireIoStatus::kOk) {
        pending.pop_front();
        slots[target].queue.push_back(shard);
        if (!slots[target].has_deadline) arm_deadline(slots[target]);
      } else {
        // EPIPE = crash; a write that cannot even drain into the socket
        // buffer within the deadline = wedged worker.
        handle_death(target, st == WireIoStatus::kTimeout);
      }
    }
  };

  /// True while any seat can still make progress (live, or a respawn is
  /// scheduled).
  const auto fleet_viable = [&]() {
    for (const Slot& s : slots) {
      if (s.state != WorkerLiveness::kDead || s.respawn_pending) return true;
    }
    return false;
  };

  // Every worker seat exhausted with work left: finish the remaining
  // items in-process rather than throwing away everything the fleet
  // already completed.  Quarantined items stay quarantined — an item
  // that crashed two workers would likely take this process down too.
  const auto degrade_to_serial = [&]() {
    merged.degraded = true;
    std::vector<std::size_t> leftover;
    for (const std::size_t shard : pending) {
      leftover.insert(leftover.end(), shards[shard].begin(),
                      shards[shard].end());
    }
    pending.clear();
    std::sort(leftover.begin(), leftover.end());
    std::vector<BatchItem> sub;
    sub.reserve(leftover.size());
    for (const std::size_t idx : leftover) sub.push_back(items[idx]);
    PlanService fallback;
    if (!config_.cache_dir.empty()) {
      fallback.tiling_cache().set_persist_dir(config_.cache_dir);
      fallback.tune_cache().set_persist_dir(config_.cache_dir);
    }
    const BatchReport sub_report = fallback.run(sub);
    merged.cache_hits += sub_report.cache_hits;
    merged.cache_misses += sub_report.cache_misses;
    merged.search_subtree_tasks += sub_report.search_subtree_tasks;
    merged.search_steals += sub_report.search_steals;
    if (!sub_report.search_kernel.empty()) {
      merged.search_kernel = sub_report.search_kernel;
    }
    merged.regions = std::max(merged.regions, sub_report.regions);
    merged.seam_sensors += sub_report.seam_sensors;
    merged.stitch_recolored += sub_report.stitch_recolored;
    merged.tune_hits += sub_report.tune_hits;
    merged.tune_misses += sub_report.tune_misses;
    merged.tune_searches += sub_report.tune_searches;
    merged.tune_trials_run += sub_report.tune_trials_run;
    for (std::size_t k = 0; k < leftover.size(); ++k) {
      merged.items[leftover[k]] = sub_report.items[k];
    }
    remaining -= leftover.size();
  };

  try {
    for (std::size_t w = 0; w < slots.size(); ++w) spawn_slot(w);
    drain_pending();

    while (remaining > 0) {
      // Respawns that have served their backoff.
      const auto now = Clock::now();
      for (std::size_t w = 0; w < slots.size(); ++w) {
        if (slots[w].respawn_pending && now >= slots[w].respawn_at) {
          spawn_slot(w);
        }
      }
      drain_pending();
      if (remaining == 0) break;
      if (!fleet_viable()) {
        degrade_to_serial();
        break;
      }

      // One poll over every live channel, bounded by the nearest worker
      // deadline or scheduled respawn — the infinite poll is gone.
      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_worker;
      int poll_ms = -1;
      const auto consider = [&](Clock::time_point t) {
        const int ms = ms_until(now, t);
        if (poll_ms < 0 || ms < poll_ms) poll_ms = ms;
      };
      for (std::size_t w = 0; w < slots.size(); ++w) {
        const Slot& s = slots[w];
        if (s.respawn_pending) consider(s.respawn_at);
        if (s.state == WorkerLiveness::kDead) continue;
        fds.push_back(pollfd{s.proc.fd, POLLIN, 0});
        fd_worker.push_back(w);
        if (s.has_deadline) consider(s.deadline);
      }
      int rc;
      do {
        rc = ::poll(fds.empty() ? nullptr : fds.data(), fds.size(), poll_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        throw std::runtime_error("ShardCoordinator: poll failed");
      }

      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const std::size_t w = fd_worker[i];
        Slot& s = slots[w];
        // The slot may have died (and even respawned onto a fresh fd)
        // earlier in this sweep.
        if (s.state == WorkerLiveness::kDead || s.proc.fd != fds[i].fd) {
          continue;
        }
        WireMessage message;
        const WireIoStatus st =
            read_frame_deadline(s.proc.fd, &message, timeout_ms);
        if (st != WireIoStatus::kOk) {
          // kTimeout here is a mid-frame stall: the stream has no
          // resync point, so a trickling worker is a dead worker.
          handle_death(w, st == WireIoStatus::kTimeout);
          drain_pending();
          continue;
        }
        if (message.verb == "HELLO") {
          // Exact-body match: a substring test would accept version 10
          // as version 1 — the opposite of a fail-fast handshake.
          if (message.body !=
              "{\"protocol\": " + std::to_string(kProtocolVersion) + "}") {
            throw std::runtime_error(
                "ShardCoordinator: worker protocol mismatch: " +
                message.body);
          }
          if (s.state == WorkerLiveness::kUnknown) {
            s.state = WorkerLiveness::kAlive;
          }
          // The handshake deadline is met; the clock now covers the
          // first assignment, if one is queued.
          if (s.queue.empty()) {
            s.has_deadline = false;
          } else {
            arm_deadline(s);
          }
          continue;
        }
        if (message.verb == "PONG") {
          if (s.state == WorkerLiveness::kSuspect) {
            s.state = WorkerLiveness::kAlive;
          }
          ++s.silent_pings;
          if (s.silent_pings > config_.max_silent_pings) {
            // Answers probes but never delivers: a dropped RESULT frame
            // or an endless plan.  Either way the assignment is stalled.
            handle_death(w, true);
            drain_pending();
          } else {
            arm_deadline(s);
          }
          continue;
        }
        if (message.verb == "ERROR") {
          throw std::runtime_error("ShardCoordinator: worker error: " +
                                   message.body);
        }
        if (message.verb != "RESULT") {
          throw std::runtime_error(
              "ShardCoordinator: unexpected worker frame '" + message.verb +
              "'");
        }
        std::string shard_id, report_json;
        split_body(message.body, &shard_id, &report_json);
        const std::size_t shard = std::stoull(shard_id);
        const auto owned =
            shard < shards.size()
                ? std::find(s.queue.begin(), s.queue.end(), shard)
                : s.queue.end();
        if (owned == s.queue.end()) {
          throw std::runtime_error(
              "ShardCoordinator: worker answered shard " + shard_id +
              " it does not own");
        }
        BatchReport report = parse_batch_report_json(report_json);
        if (report.items.size() != shards[shard].size()) {
          throw std::runtime_error(
              "ShardCoordinator: shard " + shard_id + " returned " +
              std::to_string(report.items.size()) + " items, expected " +
              std::to_string(shards[shard].size()));
        }
        merged.cache_hits += report.cache_hits;
        merged.cache_misses += report.cache_misses;
        merged.search_subtree_tasks += report.search_subtree_tasks;
        merged.search_steals += report.search_steals;
        if (!report.search_kernel.empty()) {
          merged.search_kernel = report.search_kernel;
        }
        merged.regions = std::max(merged.regions, report.regions);
        merged.seam_sensors += report.seam_sensors;
        merged.stitch_recolored += report.stitch_recolored;
        merged.tune_hits += report.tune_hits;
        merged.tune_misses += report.tune_misses;
        merged.tune_searches += report.tune_searches;
        merged.tune_trials_run += report.tune_trials_run;
        worker_stats_[w].cache_hits += report.cache_hits;
        worker_stats_[w].cache_misses += report.cache_misses;
        worker_stats_[w].search_subtree_tasks += report.search_subtree_tasks;
        worker_stats_[w].search_steals += report.search_steals;
        worker_stats_[w].tune_hits += report.tune_hits;
        worker_stats_[w].tune_misses += report.tune_misses;
        worker_stats_[w].tune_searches += report.tune_searches;
        worker_stats_[w].tune_trials += report.tune_trials_run;
        ++worker_stats_[w].shards_completed;
        s.queue.erase(owned);
        for (std::size_t k = 0; k < shards[shard].size(); ++k) {
          merged.items[shards[shard][k]] = std::move(report.items[k]);
        }
        remaining -= shards[shard].size();
        shards[shard].clear();
        s.silent_pings = 0;
        if (s.state == WorkerLiveness::kSuspect) {
          s.state = WorkerLiveness::kAlive;
        }
        if (s.queue.empty()) {
          s.has_deadline = false;
        } else {
          arm_deadline(s);
        }
        drain_pending();  // this worker is idle again; hand it a shard
      }

      // Deadline expiries: the state machine's timed transitions.
      const auto after = Clock::now();
      for (std::size_t w = 0; w < slots.size(); ++w) {
        Slot& s = slots[w];
        if (s.state == WorkerLiveness::kDead || !s.has_deadline ||
            after < s.deadline) {
          continue;
        }
        // A deadline judges SILENCE — but a long blocking read on some
        // other slot may have eaten this worker's budget while its
        // frames sat unread in the socket buffer.  Pending input is
        // progress: let the next sweep read it before judging.
        pollfd probe{s.proc.fd, POLLIN, 0};
        int pr;
        do {
          pr = ::poll(&probe, 1, 0);
        } while (pr < 0 && errno == EINTR);
        if (pr > 0 &&
            (probe.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          continue;
        }
        switch (s.state) {
          case WorkerLiveness::kUnknown:
            // Never even said HELLO in time.
            handle_death(w, true);
            break;
          case WorkerLiveness::kAlive: {
            if (s.queue.empty()) {
              s.has_deadline = false;  // nothing owed; stale deadline
              break;
            }
            // Missed a frame deadline while owing a RESULT: Suspect,
            // probe it.  The reply (or the next silence) decides.
            s.state = WorkerLiveness::kSuspect;
            const WireIoStatus st =
                write_frame_deadline(s.proc.fd, {"PING", ""}, timeout_ms);
            if (st != WireIoStatus::kOk) {
              handle_death(w, st == WireIoStatus::kTimeout);
            } else {
              arm_deadline(s);
            }
            break;
          }
          case WorkerLiveness::kSuspect:
            // Probed and still silent: hung.
            handle_death(w, true);
            break;
          case WorkerLiveness::kDead:
            break;
        }
        drain_pending();
      }
    }

    // Orderly shutdown; a worker that dies with a nonzero status even
    // here is still a failure worth surfacing.
    for (std::size_t w = 0; w < slots.size(); ++w) {
      Slot& s = slots[w];
      if (s.state == WorkerLiveness::kDead) continue;
      if (write_frame_deadline(s.proc.fd, {"SHUTDOWN", ""}, timeout_ms) !=
          WireIoStatus::kOk) {
        kill_worker(s.proc);
      }
      if (close_and_reap(s.proc) != 0) {
        worker_stats_[w].failed = true;
        ++merged.worker_failures;
      }
      s.state = WorkerLiveness::kDead;
    }
  } catch (...) {
    cleanup();
    throw;
  }

  std::sort(merged.quarantined_items.begin(), merged.quarantined_items.end());
  merged.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return merged;
}

}  // namespace latticesched::dist
