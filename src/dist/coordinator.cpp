#include "dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <deque>
#include <numeric>
#include <optional>
#include <poll.h>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/planner.hpp"
#include "core/report.hpp"
#include "dist/process.hpp"
#include "dist/wire.hpp"

namespace latticesched::dist {

namespace {

/// Relative cost estimate of planning one item: window area times
/// neighborhood area, scaled by the step count of a dynamic item (each
/// step replans).  Only the RATIO between items matters (LPT bin
/// packing), so a crude geometric proxy beats no estimate without
/// needing to build the scenario.
std::uint64_t item_weight(const BatchItem& item) {
  const std::uint64_t n =
      static_cast<std::uint64_t>(std::max<std::int64_t>(1, item.query.params.n));
  const std::uint64_t ball = static_cast<std::uint64_t>(
      2 * std::max<std::int64_t>(0, item.query.params.radius) + 1);
  const std::uint64_t steps = static_cast<std::uint64_t>(
      1 + std::max<std::int64_t>(0, item.query.params.steps));
  return std::max<std::uint64_t>(1, n * n * ball * ball * steps);
}

}  // namespace

ShardStrategy parse_shard_strategy(const std::string& name) {
  if (name == "block") return ShardStrategy::kBlock;
  if (name == "weighted") return ShardStrategy::kSizeWeighted;
  throw std::invalid_argument("unknown shard strategy '" + name +
                              "' (block | weighted)");
}

ShardCoordinator::ShardCoordinator(CoordinatorConfig config)
    : config_(std::move(config)) {
  if (config_.workers == 0) {
    throw std::invalid_argument("ShardCoordinator: workers must be >= 1");
  }
  if (config_.worker_exe.empty()) {
    throw std::invalid_argument("ShardCoordinator: worker_exe is required");
  }
}

std::vector<std::vector<std::size_t>> ShardCoordinator::partition(
    const std::vector<BatchItem>& items, std::size_t shard_count,
    ShardStrategy strategy) {
  const std::size_t n = items.size();
  shard_count = std::min(std::max<std::size_t>(1, shard_count), n);
  std::vector<std::vector<std::size_t>> shards;
  if (n == 0) return shards;
  shards.resize(shard_count);

  if (strategy == ShardStrategy::kBlock) {
    // Balanced contiguous blocks: the first n % shard_count shards get
    // one extra item.
    const std::size_t base = n / shard_count;
    const std::size_t extra = n % shard_count;
    std::size_t next = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::size_t take = base + (s < extra ? 1 : 0);
      for (std::size_t k = 0; k < take; ++k) shards[s].push_back(next++);
    }
    return shards;
  }

  // Size-weighted LPT: heaviest item first onto the lightest shard
  // (ties by index / lowest shard id keep the result deterministic).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&items](std::size_t a, std::size_t b) {
                     return item_weight(items[a]) > item_weight(items[b]);
                   });
  std::vector<std::uint64_t> load(shard_count, 0);
  for (std::size_t idx : order) {
    std::size_t target = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[target]) target = s;
    }
    shards[target].push_back(idx);
    load[target] += item_weight(items[idx]);
  }
  // Request order within each shard (stable wire bytes, stable merges).
  for (std::vector<std::size_t>& shard : shards) {
    std::sort(shard.begin(), shard.end());
  }
  return shards;
}

std::vector<std::string> ShardCoordinator::worker_argv(
    std::size_t fleet_size) const {
  std::vector<std::string> argv = {config_.worker_exe, "--worker",
                                   "--worker-fd",
                                   std::to_string(kWorkerChannelFd)};
  if (!config_.cache_dir.empty()) {
    argv.push_back("--cache-dir");
    argv.push_back(config_.cache_dir);
  }
  // Default: split the machine across the fleet ACTUALLY spawned (small
  // batches cap it below config_.workers).  Letting every worker
  // auto-size to hardware_concurrency would oversubscribe the box
  // workers-fold and can make the fleet slower than a serial run.
  std::size_t threads = config_.worker_threads;
  if (threads == 0) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::max<std::size_t>(1, hw / std::max<std::size_t>(
                                             1, fleet_size));
  }
  argv.push_back("--threads");
  argv.push_back(std::to_string(threads));
  return argv;
}

BatchReport ShardCoordinator::run(const std::vector<BatchItem>& items) {
  // Fail fast on unknown backend names — same contract as
  // PlanService::run, checked before a single process is spawned.
  for (const BatchItem& item : items) {
    for (const std::string& name : item.backends) {
      if (PlannerRegistry::global().find(name) == nullptr) {
        throw std::invalid_argument("ShardCoordinator: unknown backend '" +
                                    name + "'");
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  worker_stats_.clear();
  BatchReport merged;
  merged.items.resize(items.size());
  if (items.empty()) {
    merged.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    return merged;
  }

  const std::vector<std::vector<std::size_t>> shards =
      partition(items, config_.workers, config_.strategy);

  struct WorkerState {
    WorkerProcess proc;
    std::deque<std::size_t> queue;  ///< shards assigned, oldest first
    bool alive = false;
  };
  std::vector<WorkerState> workers(shards.size());
  worker_stats_.resize(shards.size());

  std::vector<std::optional<BatchReport>> shard_reports(shards.size());
  std::size_t completed = 0;

  const auto cleanup = [&]() {
    for (WorkerState& w : workers) {
      if (w.proc.pid > 0) kill_worker(w.proc);
      (void)close_and_reap(w.proc);
      w.alive = false;
    }
  };

  try {
    const std::vector<std::string> argv = worker_argv(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w) {
      workers[w].proc = spawn_worker_process(argv);
      workers[w].alive = true;
      worker_stats_[w].pid = workers[w].proc.pid;
    }

    // Shards waiting for a worker; seeded with every shard, refilled by
    // worker deaths.  Assignment picks the live worker with the
    // shortest queue (lowest index on ties), which hands the initial
    // shards out round-robin.
    std::deque<std::size_t> pending;
    for (std::size_t s = 0; s < shards.size(); ++s) pending.push_back(s);

    const auto fail_worker = [&](std::size_t w) {
      WorkerState& state = workers[w];
      state.alive = false;
      kill_worker(state.proc);  // no-op if already dead
      (void)close_and_reap(state.proc);
      worker_stats_[w].failed = true;
      ++merged.worker_failures;
      while (!state.queue.empty()) {
        pending.push_back(state.queue.front());
        state.queue.pop_front();
      }
    };

    // Assigns pending shards to IDLE live workers only (empty queue =
    // parked in read_frame, actively draining its socket, so the
    // blocking write below cannot deadlock against a worker that is
    // itself blocked writing a RESULT we are not reading).  Shards left
    // over wait for the next RESULT to free a worker.
    const auto drain_pending = [&]() {
      while (!pending.empty()) {
        bool any_alive = false;
        std::size_t target = workers.size();
        for (std::size_t w = 0; w < workers.size(); ++w) {
          if (!workers[w].alive) continue;
          any_alive = true;
          if (workers[w].queue.empty()) {
            target = w;
            break;
          }
        }
        if (!any_alive) {
          throw std::runtime_error(
              "ShardCoordinator: every worker process died");
        }
        if (target == workers.size()) return;  // all live workers busy
        const std::size_t shard = pending.front();
        std::vector<BatchItem> shard_items;
        shard_items.reserve(shards[shard].size());
        for (std::size_t idx : shards[shard]) {
          shard_items.push_back(items[idx]);
        }
        if (write_frame(workers[target].proc.fd,
                        {"ASSIGN", std::to_string(shard) + "\n" +
                                       batch_items_to_json(shard_items)})) {
          pending.pop_front();
          workers[target].queue.push_back(shard);
          if (static_cast<int>(target) == config_.kill_worker_after_assign) {
            // TEST HOOK: simulate a mid-sweep crash exactly once.
            config_.kill_worker_after_assign = -1;
            kill_worker(workers[target].proc);
          }
        } else {
          fail_worker(target);  // EPIPE: requeues target's shards too
        }
      }
    };

    drain_pending();

    while (completed < shards.size()) {
      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_worker;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        if (!workers[w].alive) continue;
        fds.push_back(pollfd{workers[w].proc.fd, POLLIN, 0});
        fd_worker.push_back(w);
      }
      if (fds.empty()) {
        throw std::runtime_error(
            "ShardCoordinator: every worker process died");
      }
      int rc;
      do {
        rc = ::poll(fds.data(), fds.size(), -1);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        throw std::runtime_error("ShardCoordinator: poll failed");
      }

      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const std::size_t w = fd_worker[i];
        if (!workers[w].alive) continue;  // failed earlier this sweep
        WireMessage message;
        if (!read_frame(workers[w].proc.fd, &message)) {
          fail_worker(w);
          drain_pending();
          continue;
        }
        if (message.verb == "HELLO") {
          // Exact-body match: a substring test would accept version 10
          // as version 1 — the opposite of a fail-fast handshake.
          if (message.body !=
              "{\"protocol\": " + std::to_string(kProtocolVersion) + "}") {
            throw std::runtime_error(
                "ShardCoordinator: worker protocol mismatch: " +
                message.body);
          }
          continue;
        }
        if (message.verb == "ERROR") {
          throw std::runtime_error("ShardCoordinator: worker error: " +
                                   message.body);
        }
        if (message.verb != "RESULT") {
          throw std::runtime_error(
              "ShardCoordinator: unexpected worker frame '" + message.verb +
              "'");
        }
        std::string shard_id, report_json;
        split_body(message.body, &shard_id, &report_json);
        const std::size_t shard = std::stoull(shard_id);
        if (shard >= shards.size() || shard_reports[shard].has_value()) {
          throw std::runtime_error(
              "ShardCoordinator: worker answered unknown shard " + shard_id);
        }
        BatchReport report = parse_batch_report_json(report_json);
        if (report.items.size() != shards[shard].size()) {
          throw std::runtime_error(
              "ShardCoordinator: shard " + shard_id + " returned " +
              std::to_string(report.items.size()) + " items, expected " +
              std::to_string(shards[shard].size()));
        }
        merged.cache_hits += report.cache_hits;
        merged.cache_misses += report.cache_misses;
        worker_stats_[w].cache_hits += report.cache_hits;
        worker_stats_[w].cache_misses += report.cache_misses;
        ++worker_stats_[w].shards_completed;
        auto& queue = workers[w].queue;
        const auto owned = std::find(queue.begin(), queue.end(), shard);
        if (owned == queue.end()) {
          throw std::runtime_error(
              "ShardCoordinator: worker answered shard " + shard_id +
              " it does not own");
        }
        queue.erase(owned);
        shard_reports[shard] = std::move(report);
        ++completed;
        drain_pending();  // this worker is idle again; hand it a shard
      }
    }

    // Orderly shutdown; a worker that dies with a nonzero status even
    // here is still a failure worth surfacing.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].alive) continue;
      (void)write_frame(workers[w].proc.fd, {"SHUTDOWN", ""});
      if (close_and_reap(workers[w].proc) != 0) {
        worker_stats_[w].failed = true;
        ++merged.worker_failures;
      }
      workers[w].alive = false;
    }
  } catch (...) {
    cleanup();
    throw;
  }

  for (std::size_t s = 0; s < shards.size(); ++s) {
    BatchReport& report = *shard_reports[s];
    for (std::size_t k = 0; k < shards[s].size(); ++k) {
      merged.items[shards[s][k]] = std::move(report.items[k]);
    }
  }
  merged.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  return merged;
}

}  // namespace latticesched::dist
