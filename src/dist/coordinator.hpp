// Multi-process shard coordinator for batch planning sweeps.
//
// The ROADMAP's sharding seam: a `std::vector<BatchItem>` is the unit of
// distribution (each item is an independent (scenario, backend-set)
// plan), so the coordinator partitions the batch into shards, spawns N
// `latticesched --worker` child processes connected by socketpairs,
// streams each worker its shard over the wire protocol (dist/wire.hpp),
// and merges the returned BatchReports — items restored to request
// order, cache counters summed across workers — into one report
// indistinguishable from a single-process PlanService::run (pinned
// byte-for-byte, modulo wall times, by tests/test_dist.cpp).
//
// Fault tolerance: a worker that dies (EOF/EPIPE on its channel) or
// exits nonzero has its unfinished shards reassigned to live workers
// and is counted in BatchReport::worker_failures; the sweep only fails
// when EVERY worker is gone.  With a shared --cache-dir the reassigned
// work re-reads the dead worker's persisted torus searches instead of
// repeating them.
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "core/plan_service.hpp"

namespace latticesched::dist {

enum class ShardStrategy {
  /// Contiguous blocks of near-equal item count (default: preserves
  /// request locality, trivially predictable).
  kBlock,
  /// Longest-processing-time greedy on a per-item cost estimate
  /// (~ window area x neighborhood size), so one huge scenario does not
  /// serialize the sweep behind it.
  kSizeWeighted,
};

/// Parses "block" / "weighted" (the driver's --shard flag); throws
/// std::invalid_argument otherwise.
ShardStrategy parse_shard_strategy(const std::string& name);

struct CoordinatorConfig {
  /// Worker processes to spawn (>= 1; capped at the shard count, so a
  /// two-item batch never pays for eight processes).
  std::size_t workers = 2;
  ShardStrategy strategy = ShardStrategy::kBlock;
  /// Shared persistent TilingCache directory, forwarded to every worker
  /// as --cache-dir ("" = per-worker in-memory caches only).
  std::string cache_dir;
  /// Worker executable (the latticesched CLI); must understand
  /// --worker.  Required — the driver passes self_exe_path().
  std::string worker_exe;
  /// Forwarded to workers as --threads.  0 = divide the machine:
  /// max(1, hardware_concurrency / workers) per worker, so the fleet
  /// never oversubscribes the box.
  std::size_t worker_threads = 0;
  /// TEST HOOK: SIGKILL this worker index right after its first shard
  /// assignment is sent (-1 = never) — the deterministic stand-in for a
  /// mid-sweep crash in the failure-handling regression test.
  int kill_worker_after_assign = -1;
};

/// Per-worker accounting surfaced by the driver's --cache-stats footer.
struct WorkerCacheStats {
  pid_t pid = -1;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t shards_completed = 0;
  bool failed = false;
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(CoordinatorConfig config);

  /// Plans the batch across the worker fleet and returns the merged
  /// report (items in request order).  Unknown backend names throw
  /// std::invalid_argument before any process is spawned, exactly like
  /// PlanService::run; a fleet-wide failure (every worker dead, or a
  /// worker reporting a protocol error) throws std::runtime_error after
  /// reaping all children.  An empty batch returns an empty report
  /// without spawning anything.
  BatchReport run(const std::vector<BatchItem>& items);

  /// Accounting for the run() that most recently finished.
  const std::vector<WorkerCacheStats>& worker_stats() const {
    return worker_stats_;
  }

  /// Shard s -> indices into `items`, every index exactly once.  Shards
  /// are never empty; at most min(shard_count, items.size()) of them.
  /// Deterministic for a given (items, shard_count, strategy).
  static std::vector<std::vector<std::size_t>> partition(
      const std::vector<BatchItem>& items, std::size_t shard_count,
      ShardStrategy strategy);

 private:
  /// argv of one worker child; `fleet_size` (the spawned worker count,
  /// <= config workers) sizes the default per-worker thread split.
  std::vector<std::string> worker_argv(std::size_t fleet_size) const;

  CoordinatorConfig config_;
  std::vector<WorkerCacheStats> worker_stats_;
};

}  // namespace latticesched::dist
