// Multi-process shard coordinator for batch planning sweeps.
//
// The ROADMAP's sharding seam: a `std::vector<BatchItem>` is the unit of
// distribution (each item is an independent (scenario, backend-set)
// plan), so the coordinator partitions the batch into shards, spawns N
// `latticesched --worker` child processes connected by socketpairs,
// streams each worker its shard over the wire protocol (dist/wire.hpp),
// and merges the returned BatchReports — items restored to request
// order, cache counters summed across workers — into one report
// indistinguishable from a single-process PlanService::run (pinned
// byte-for-byte, modulo wall times and failure counters, by
// tests/test_dist.cpp).
//
// Fault tolerance (the chaos-hardening layer): every worker read AND
// write is bounded by `worker_timeout_ms`, and each worker runs the
// ek-kor2-shaped liveness state machine Unknown → Alive → Suspect →
// Dead — a missed deadline moves it to Suspect and sends a PING; a
// healthy-but-busy worker answers PONG from its reader thread, while a
// silent one is SIGKILLed, reaped, counted in
// BatchReport::worker_timeouts, and its shards reassigned (crashes —
// EOF/EPIPE — count in worker_failures instead).  Dead slots are
// respawned up to `retries` times with bounded exponential backoff and
// deterministic jitter; an item whose assignment has crashed
// `quarantine_crashes` workers is quarantined (reported, never
// retried).  When every slot is exhausted the coordinator degrades to
// in-process serial execution of the remaining items
// (BatchReport::degraded) rather than discarding completed work.  All
// of it is reproducibly testable through the seeded FaultPlan spec in
// `fault_plan` (dist/faults.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "core/plan_service.hpp"

namespace latticesched::dist {

enum class ShardStrategy {
  /// Contiguous blocks of near-equal item count (default: preserves
  /// request locality, trivially predictable).
  kBlock,
  /// Longest-processing-time greedy on a per-item cost estimate
  /// (~ window area x neighborhood size), so one huge scenario does not
  /// serialize the sweep behind it.
  kSizeWeighted,
};

/// Parses "block" / "weighted" (the driver's --shard flag); throws
/// std::invalid_argument otherwise.
ShardStrategy parse_shard_strategy(const std::string& name);

/// Per-worker liveness, ek-kor2 heartbeat shape.  Transitions:
/// Unknown -(HELLO)-> Alive; Alive -(missed deadline, PING sent)->
/// Suspect; Suspect -(PONG/RESULT)-> Alive; Suspect -(missed deadline)->
/// Dead; Unknown -(missed handshake deadline)-> Dead; any -(EOF/EPIPE)->
/// Dead.  Dead slots are respawned (back to Unknown) while their retry
/// budget lasts.
enum class WorkerLiveness { kUnknown, kAlive, kSuspect, kDead };

struct CoordinatorConfig {
  /// Worker processes to spawn (>= 1; capped at the shard count, so a
  /// two-item batch never pays for eight processes).
  std::size_t workers = 2;
  ShardStrategy strategy = ShardStrategy::kBlock;
  /// Shared persistent TilingCache directory, forwarded to every worker
  /// as --cache-dir ("" = per-worker in-memory caches only).
  std::string cache_dir;
  /// Worker executable (the latticesched CLI); must understand
  /// --worker.  Required — the driver passes self_exe_path().
  std::string worker_exe;
  /// Forwarded to workers as --threads.  0 = divide the machine:
  /// max(1, hardware_concurrency / workers) per worker, so the fleet
  /// never oversubscribes the box.
  std::size_t worker_threads = 0;
  /// Per-frame deadline (ms) on every worker read and write, including
  /// the HELLO handshake; a worker that misses it is PINGed (Suspect)
  /// and killed if still silent one deadline later.  0 disables
  /// deadlines entirely (the pre-hardening wait-forever behavior).
  std::uint64_t worker_timeout_ms = 30000;
  /// Respawn budget per worker slot: a slot may die 1 + retries times
  /// before it is permanently exhausted.
  std::size_t retries = 2;
  /// Exponential respawn backoff: attempt k (0-based) waits
  /// backoff_base_ms << k plus deterministic jitter in [0, base), capped
  /// at backoff_max_ms.
  std::uint64_t backoff_base_ms = 25;
  std::uint64_t backoff_max_ms = 2000;
  /// Seed of the deterministic backoff jitter (the driver passes
  /// --seed, so a rerun reproduces the exact respawn schedule).
  std::uint64_t backoff_seed = 1;
  /// A worker that answers this many consecutive PING probes without
  /// delivering a RESULT is treated as stalled and killed (a dropped
  /// RESULT frame is indistinguishable from planning forever); the
  /// effective stall budget is worker_timeout_ms * (max_silent_pings+1)
  /// per assignment.
  std::size_t max_silent_pings = 4;
  /// An item implicated in this many worker deaths is quarantined
  /// instead of reassigned again (>= 1; 2 = "twice", the default).
  std::size_t quarantine_crashes = 2;
  /// Deterministic fault-injection spec (dist/faults.hpp grammar),
  /// filtered per (slot, generation) and forwarded to workers as
  /// --fault-plan.  "" = no injected faults.  Internal/testing only.
  std::string fault_plan;
};

/// Per-worker accounting surfaced by the driver's --cache-stats footer.
/// A respawned slot accumulates across its generations; pid is the
/// latest generation's.
struct WorkerCacheStats {
  pid_t pid = -1;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Work-stealing torus-search counters of this worker's searches
  /// (BatchReport::search_subtree_tasks / search_steals, summed over its
  /// shards).
  std::uint64_t search_subtree_tasks = 0;
  std::uint64_t search_steals = 0;
  /// Auto-backend tuning counters of this worker's shards
  /// (BatchReport::{tune_hits, tune_misses, tune_searches,
  /// tune_trials_run}, summed).
  std::uint64_t tune_hits = 0;
  std::uint64_t tune_misses = 0;
  std::uint64_t tune_searches = 0;
  std::uint64_t tune_trials = 0;
  std::size_t shards_completed = 0;
  bool failed = false;     ///< some generation crashed or exited nonzero
  bool timed_out = false;  ///< some generation was killed for a missed deadline
  std::size_t respawns = 0;
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(CoordinatorConfig config);

  /// Plans the batch across the worker fleet and returns the merged
  /// report (items in request order).  Unknown backend names throw
  /// std::invalid_argument before any process is spawned, exactly like
  /// PlanService::run.  Worker crashes and hangs do NOT throw: shards
  /// are reassigned, slots respawned, and if the whole fleet is
  /// exhausted the remaining items complete in-process
  /// (report.degraded).  A protocol violation (worker ERROR frame,
  /// version mismatch, bogus shard id) still throws std::runtime_error
  /// after reaping all children.  An empty batch returns an empty
  /// report without spawning anything.
  BatchReport run(const std::vector<BatchItem>& items);

  /// Accounting for the run() that most recently finished.
  const std::vector<WorkerCacheStats>& worker_stats() const {
    return worker_stats_;
  }

  /// Shard s -> indices into `items`, every index exactly once.  Shards
  /// are never empty; at most min(shard_count, items.size()) of them.
  /// Deterministic for a given (items, shard_count, strategy).
  static std::vector<std::vector<std::size_t>> partition(
      const std::vector<BatchItem>& items, std::size_t shard_count,
      ShardStrategy strategy);

 private:
  /// argv of one worker child; `fleet_size` (the spawned worker count,
  /// <= config workers) sizes the default per-worker thread split.
  std::vector<std::string> worker_argv(std::size_t fleet_size) const;

  CoordinatorConfig config_;
  std::vector<WorkerCacheStats> worker_stats_;
};

}  // namespace latticesched::dist
