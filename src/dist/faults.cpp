#include "dist/faults.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace latticesched::dist {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream is(s);
  while (std::getline(is, token, sep)) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

/// "key=value" -> value, throwing with the full token on mismatch.
std::string value_of(const std::string& token, const std::string& key) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    throw std::invalid_argument("fault-plan: expected '" + key +
                                "=...' in '" + token + "'");
  }
  return token.substr(prefix.size());
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault-plan: bad " + what + " '" + text +
                                "'");
  }
}

int parse_worker_target(const std::string& text) {
  if (text == "*") return -1;
  const std::uint64_t v = parse_u64(text, "worker index");
  if (v > 4096) {
    throw std::invalid_argument("fault-plan: worker index out of range '" +
                                text + "'");
  }
  return static_cast<int>(v);
}

FaultAction parse_action(const std::string& text) {
  const std::vector<std::string> fields = split(text, ':');
  if (fields.size() < 2) {
    throw std::invalid_argument("fault-plan: action '" + text +
                                "' needs target:kind");
  }
  FaultAction action;
  std::size_t next = 1;
  const bool cache_target = fields[0] == "cache";
  if (fields[0] == "serve") {
    const std::string& kind = fields[1];
    if (kind == "drop-connection") {
      action.kind = FaultKind::kDropConnection;
    } else if (kind.rfind("delay-accept-ms=", 0) == 0) {
      action.kind = FaultKind::kDelayAcceptMs;
      action.ms = parse_u64(kind.substr(16), "delay-accept-ms");
    } else {
      throw std::invalid_argument("fault-plan: serve target only supports "
                                  "drop-connection / delay-accept-ms, got '" +
                                  kind + "'");
    }
    for (next = 2; next < fields.size(); ++next) {
      const std::string& param = fields[next];
      if (param.rfind("after-frames=", 0) == 0) {
        action.after_frames = parse_u64(param.substr(13), "after-frames");
      } else if (param.rfind("gens=", 0) == 0) {
        const std::string v = param.substr(5);
        action.gens = v == "all" ? 0 : parse_u64(v, "gens");
      } else {
        throw std::invalid_argument("fault-plan: unknown param '" + param +
                                    "'");
      }
    }
    return action;
  }
  if (cache_target) {
    action.kind = FaultKind::kCorruptCacheWrite;
    if (fields[1] != "corrupt-write") {
      throw std::invalid_argument("fault-plan: cache target only supports "
                                  "corrupt-write, got '" +
                                  fields[1] + "'");
    }
    next = 2;
  } else {
    action.worker = parse_worker_target(value_of(fields[0], "worker"));
    const std::string& kind = fields[1];
    if (kind == "crash") {
      action.kind = FaultKind::kCrash;
    } else if (kind == "drop-frame") {
      action.kind = FaultKind::kDropFrame;
    } else if (kind == "truncate-frame") {
      action.kind = FaultKind::kTruncateFrame;
    } else if (kind.rfind("hang-ms=", 0) == 0) {
      action.kind = FaultKind::kHangMs;
      action.ms = parse_u64(kind.substr(8), "hang-ms");
    } else if (kind.rfind("delay-io-ms=", 0) == 0) {
      action.kind = FaultKind::kDelayIoMs;
      action.ms = parse_u64(kind.substr(12), "delay-io-ms");
    } else {
      throw std::invalid_argument("fault-plan: unknown kind '" + kind +
                                  "'");
    }
    next = 2;
  }
  for (; next < fields.size(); ++next) {
    const std::string& param = fields[next];
    if (param.rfind("after-frames=", 0) == 0) {
      action.after_frames = parse_u64(param.substr(13), "after-frames");
    } else if (param.rfind("gens=", 0) == 0) {
      const std::string v = param.substr(5);
      action.gens = v == "all" ? 0 : parse_u64(v, "gens");
    } else if (param.rfind("nth=", 0) == 0) {
      if (action.kind != FaultKind::kCorruptCacheWrite) {
        throw std::invalid_argument(
            "fault-plan: nth= only applies to corrupt-write");
      }
      action.nth = parse_u64(param.substr(4), "nth");
      if (action.nth == 0) {
        throw std::invalid_argument("fault-plan: nth is 1-based");
      }
    } else if (cache_target && param.rfind("worker=", 0) == 0) {
      action.worker = parse_worker_target(param.substr(7));
    } else {
      throw std::invalid_argument("fault-plan: unknown param '" + param +
                                  "'");
    }
  }
  return action;
}

}  // namespace

namespace {

bool is_serve_kind(FaultKind kind) {
  return kind == FaultKind::kDropConnection ||
         kind == FaultKind::kDelayAcceptMs;
}

}  // namespace

bool FaultPlan::has_cache_faults() const {
  for (const FaultAction& action : actions) {
    if (action.kind == FaultKind::kCorruptCacheWrite) return true;
  }
  return false;
}

bool FaultPlan::has_serve_faults() const {
  for (const FaultAction& action : actions) {
    if (is_serve_kind(action.kind)) return true;
  }
  return false;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& token : split(spec, ';')) {
    if (token.rfind("seed=", 0) == 0) {
      plan.seed = parse_u64(token.substr(5), "seed");
      continue;
    }
    plan.actions.push_back(parse_action(token));
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream os;
  os << "seed=" << seed;
  for (const FaultAction& action : actions) {
    os << ';';
    if (action.kind == FaultKind::kCorruptCacheWrite) {
      os << "cache:corrupt-write:nth=" << action.nth;
      if (action.worker >= 0) os << ":worker=" << action.worker;
    } else if (is_serve_kind(action.kind)) {
      os << "serve:";
      if (action.kind == FaultKind::kDropConnection) {
        os << "drop-connection";
      } else {
        os << "delay-accept-ms=" << action.ms;
      }
      os << ":after-frames=" << action.after_frames;
    } else {
      os << "worker=";
      if (action.worker < 0) {
        os << '*';
      } else {
        os << action.worker;
      }
      switch (action.kind) {
        case FaultKind::kCrash:
          os << ":crash";
          break;
        case FaultKind::kDropFrame:
          os << ":drop-frame";
          break;
        case FaultKind::kTruncateFrame:
          os << ":truncate-frame";
          break;
        case FaultKind::kHangMs:
          os << ":hang-ms=" << action.ms;
          break;
        case FaultKind::kDelayIoMs:
          os << ":delay-io-ms=" << action.ms;
          break;
        case FaultKind::kCorruptCacheWrite:
        case FaultKind::kDropConnection:
        case FaultKind::kDelayAcceptMs:
          break;  // handled above
      }
      os << ":after-frames=" << action.after_frames;
    }
    if (action.gens != 1) {
      os << ":gens=";
      if (action.gens == 0) {
        os << "all";
      } else {
        os << action.gens;
      }
    }
  }
  return os.str();
}

FaultPlan FaultPlan::for_worker(std::size_t slot,
                                std::uint64_t generation) const {
  FaultPlan sub;
  sub.seed = seed;
  for (const FaultAction& action : actions) {
    if (is_serve_kind(action.kind)) continue;  // server-side only
    if (action.worker >= 0 &&
        static_cast<std::size_t>(action.worker) != slot) {
      continue;
    }
    if (action.gens != 0 && generation >= action.gens) continue;
    FaultAction forwarded = action;
    // The worker applies everything it receives; the slot/generation
    // scoping was just resolved, so ship the action unscoped.
    forwarded.worker = -1;
    forwarded.gens = 0;
    sub.actions.push_back(forwarded);
  }
  return sub;
}

FaultPlan FaultPlan::for_connection(std::uint64_t connection) const {
  FaultPlan sub;
  sub.seed = seed;
  for (const FaultAction& action : actions) {
    if (!is_serve_kind(action.kind)) continue;
    if (action.gens != 0 && connection >= action.gens) continue;
    FaultAction forwarded = action;
    forwarded.gens = 0;
    sub.actions.push_back(forwarded);
  }
  return sub;
}

WireFaultInjector::Decision WireFaultInjector::on_frame() {
  const std::uint64_t frame = frames_++;
  Decision decision = Decision::kSend;
  for (const FaultAction& action : plan_.actions) {
    switch (action.kind) {
      case FaultKind::kCrash:
        if (frame == action.after_frames) {
          // Raw exit, no unwinding — a SIGKILLed process is the model.
          std::_Exit(137);
        }
        break;
      case FaultKind::kHangMs:
        if (frame == action.after_frames) {
          std::this_thread::sleep_for(std::chrono::milliseconds(action.ms));
        }
        break;
      case FaultKind::kDelayIoMs:
        if (frame >= action.after_frames) {
          std::this_thread::sleep_for(std::chrono::milliseconds(action.ms));
        }
        break;
      case FaultKind::kDropFrame:
        if (frame == action.after_frames) decision = Decision::kDrop;
        break;
      case FaultKind::kTruncateFrame:
        if (frame == action.after_frames) decision = Decision::kTruncate;
        break;
      case FaultKind::kCorruptCacheWrite:
      case FaultKind::kDropConnection:
      case FaultKind::kDelayAcceptMs:
        break;  // handled by the cache hook / PlanServer, not the wire
    }
  }
  return decision;
}

std::function<void(std::string&)> cache_corruption_hook(
    const FaultPlan& plan) {
  std::vector<FaultAction> targets;
  for (const FaultAction& action : plan.actions) {
    if (action.kind == FaultKind::kCorruptCacheWrite) {
      targets.push_back(action);
    }
  }
  if (targets.empty()) return {};
  // Shared counter: the hook is copied into the cache but must count
  // writes across copies.
  auto writes = std::make_shared<std::uint64_t>(0);
  const std::uint64_t seed = plan.seed;
  return [targets, writes, seed](std::string& content) {
    const std::uint64_t nth = ++*writes;
    for (const FaultAction& action : targets) {
      if (action.nth != nth || content.empty()) continue;
      // Deterministic single-byte flip somewhere in the body: position
      // from the seed, value XORed so the byte always changes.
      const std::uint64_t pos =
          (seed * 0x9e3779b97f4a7c15ull + nth) % content.size();
      content[pos] = static_cast<char>(content[pos] ^ 0x20);
    }
  };
}

}  // namespace latticesched::dist
