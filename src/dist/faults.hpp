// Deterministic fault injection for the distributed runtime.
//
// A FaultPlan is a seeded list of scripted failures — worker crashes,
// hangs, dropped or truncated frames, slow I/O, corrupted cache writes
// — parsed from a compact spec string so one flag (`--fault-plan`,
// internal) can reproduce any chaos scenario bit-for-bit.  The
// coordinator filters the plan per (worker slot, respawn generation)
// and forwards each worker its share on the command line; the worker
// threads a WireFaultInjector through every outbound frame and installs
// a cache-write corruption hook when asked.  Replaces the old ad-hoc
// `kill_worker_after_assign` test hook: every failure path the
// chaos-hardening layer handles is drivable from here, in-process and
// in CI alike.
//
// Spec grammar (semicolon-separated actions, order irrelevant):
//
//   spec    := [ "seed=" N ";" ] action ( ";" action )*
//   action  := target ":" kind ( ":" param )*
//   target  := "worker=" ( INDEX | "*" ) | "cache" | "serve"
//   kind    := "crash" | "hang-ms=" N | "drop-frame" | "truncate-frame"
//            | "delay-io-ms=" N | "corrupt-write"
//            | "drop-connection" | "delay-accept-ms=" N   (serve only)
//   param   := "after-frames=" N | "gens=" ( N | "all" ) | "nth=" N
//            | "worker=" ( INDEX | "*" )          (cache actions only)
//
// `after-frames=N` triggers when the worker is about to send its
// (N+1)-th counted frame — HELLO is frame 0, so `after-frames=1` fires
// on the first RESULT/ERROR.  PONG replies are NOT counted (their
// timing depends on when the coordinator probes, which would make the
// trigger nondeterministic).  `gens=K` applies the action to the first
// K spawn generations of the slot (default 1: the fault happens once
// and the respawned worker is healthy); `gens=all` keeps faulting every
// respawn.  `nth=K` picks which cache-entry write a `corrupt-write`
// flips a byte of (1-based, default 1).
//
// The `serve` target scripts TCP-side failures for the planning server
// (src/serve): `drop-connection` hard-closes a client connection right
// before its (after-frames+1)-th outbound frame — the session itself
// survives server-side and the client reconnects and resumes — and
// `delay-accept-ms=N` sleeps N ms before the server services a freshly
// accepted connection (a slow-accept backlog).  For serve actions,
// `gens=K` scopes the fault to the first K accepted connections
// (`gens=all` keeps faulting every connection); `after-frames` is
// per-connection.  FaultPlan::for_worker never forwards serve actions —
// they are consumed by the PlanServer, not by workers.
//
// Examples:
//   worker=1:crash:after-frames=1        crash before the first RESULT
//   worker=0:hang-ms=60000:after-frames=1  wedge (PONGs blocked too)
//   worker=*:crash:after-frames=0:gens=all  every spawn dies pre-HELLO
//   cache:corrupt-write:nth=1            flip a byte of the 1st entry
//   serve:drop-connection:after-frames=2:gens=3  cut the first 3 conns
//   serve:delay-accept-ms=250:gens=1     stall servicing the 1st accept
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace latticesched::dist {

enum class FaultKind {
  kCrash,          ///< _Exit(137) instead of sending the frame
  kHangMs,         ///< sleep `ms` holding the write lock, then send
  kDropFrame,      ///< pretend the send succeeded, write nothing
  kTruncateFrame,  ///< write a partial frame, then wedge
  kDelayIoMs,      ///< sleep `ms` before this and every later frame
  kCorruptCacheWrite,  ///< flip one byte of the nth persisted entry
  kDropConnection,     ///< serve: hard-close the client connection
  kDelayAcceptMs,      ///< serve: sleep `ms` before servicing an accept
};

struct FaultAction {
  FaultKind kind = FaultKind::kCrash;
  /// Worker slot the action targets; -1 = every slot ("worker=*").
  int worker = -1;
  /// Counted outbound frames before the action fires (see file header).
  std::uint64_t after_frames = 0;
  /// kHangMs / kDelayIoMs duration.
  std::uint64_t ms = 0;
  /// kCorruptCacheWrite: which entry write to corrupt (1-based).
  std::uint64_t nth = 1;
  /// Spawn generations the action covers (0 = all, default 1).
  std::uint64_t gens = 1;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }
  bool has_cache_faults() const;
  /// Any serve-target action (kDropConnection / kDelayAcceptMs)?
  bool has_serve_faults() const;

  /// Parses the spec grammar above; throws std::invalid_argument with
  /// the offending token on malformed input.  "" parses to an empty
  /// plan.
  static FaultPlan parse(const std::string& spec);

  /// Inverse of parse (parse(to_spec()) reproduces the plan) — how the
  /// coordinator ships a filtered plan to a worker's command line.
  std::string to_spec() const;

  /// The sub-plan the coordinator forwards to spawn generation
  /// `generation` of worker slot `slot`: wire actions matching the slot
  /// and generation, plus matching cache actions.  Generation filtering
  /// happens HERE, coordinator-side — the worker applies everything it
  /// is handed.  Serve-target actions are never forwarded (the
  /// PlanServer consumes them; a worker has no connections to drop).
  FaultPlan for_worker(std::size_t slot, std::uint64_t generation) const;

  /// The serve-target sub-plan for accepted connection number
  /// `connection` (0-based accept order): serve actions whose gens
  /// window covers the connection, shipped unscoped (gens=0) like
  /// for_worker does for slots.  Everything else is filtered out.
  FaultPlan for_connection(std::uint64_t connection) const;
};

/// The worker's per-frame fault gate.  Consulted (under the channel's
/// write lock) before every counted outbound frame; may sleep (hang /
/// delay) or terminate the process (crash), and tells the caller what
/// to do with the frame otherwise.
class WireFaultInjector {
 public:
  explicit WireFaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  enum class Decision { kSend, kDrop, kTruncate };

  /// Advances the frame counter and applies any action scheduled for
  /// this frame.  Does not return on kCrash.
  Decision on_frame();

 private:
  FaultPlan plan_;
  std::uint64_t frames_ = 0;
};

/// A TilingCache::set_write_corruption_hook function applying the
/// plan's corrupt-write actions: flips one seed-derived byte of each
/// targeted entry write.  Returns an empty function when the plan has
/// no cache faults.
std::function<void(std::string&)> cache_corruption_hook(
    const FaultPlan& plan);

}  // namespace latticesched::dist
