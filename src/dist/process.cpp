#include "dist/process.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace latticesched::dist {

WorkerProcess spawn_worker_process(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    throw std::runtime_error("spawn_worker_process: empty argv");
  }
  // Both ends close-on-exec: the child's end is re-armed for the exec by
  // the dup2 below (dup2 clears FD_CLOEXEC on the new descriptor), and
  // the parent's end never leaks into any child.
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    throw std::runtime_error(std::string("socketpair: ") +
                             std::strerror(errno));
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error(std::string("fork: ") + std::strerror(err));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.  The
    // parent's end is closed FIRST — it often sits on the very fd
    // number (3) the dup2 below targets.
    if (sv[1] == kWorkerChannelFd) {
      ::close(sv[0]);
      int flags = ::fcntl(sv[1], F_GETFD);
      if (flags >= 0) ::fcntl(sv[1], F_SETFD, flags & ~FD_CLOEXEC);
    } else {
      ::close(sv[0]);
      if (::dup2(sv[1], kWorkerChannelFd) < 0) ::_exit(127);
      ::close(sv[1]);
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  ::close(sv[1]);
  return WorkerProcess{pid, sv[0]};
}

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 != nullptr ? argv0 : "";
}

int close_and_reap(WorkerProcess& worker) {
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid < 0) return -1;
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(worker.pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  worker.pid = -1;
  if (reaped < 0) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

void kill_worker(const WorkerProcess& worker) {
  if (worker.pid > 0) ::kill(worker.pid, SIGKILL);
}

}  // namespace latticesched::dist
