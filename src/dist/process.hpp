// Worker process lifecycle: spawn `latticesched --worker` children
// connected by a socketpair, reap them, kill them.
//
// The coordinator end of every socketpair is close-on-exec, so a worker
// never inherits its siblings' channels — when a worker dies, the
// coordinator's read on THAT fd sees EOF immediately instead of being
// kept alive by a stray duplicate in another child.
#pragma once

#include <string>
#include <sys/types.h>
#include <vector>

namespace latticesched::dist {

/// The fd number the worker child finds its channel on (the driver's
/// --worker-fd default).
inline constexpr int kWorkerChannelFd = 3;

struct WorkerProcess {
  pid_t pid = -1;
  int fd = -1;  ///< coordinator's end of the socketpair; -1 once closed
};

/// Forks and execs `argv` (argv[0] = executable path) with a socketpair:
/// the child's end is dup'd onto kWorkerChannelFd, the parent's end is
/// returned in WorkerProcess::fd.  Throws std::runtime_error when the
/// socketpair or fork fails; an exec failure surfaces as an immediate
/// child exit (code 127), i.e. EOF on the channel.
WorkerProcess spawn_worker_process(const std::vector<std::string>& argv);

/// Absolute path of the running executable (/proc/self/exe), falling
/// back to `argv0` when the proc link is unreadable.
std::string self_exe_path(const char* argv0);

/// Closes the channel (if open), waits for the child, and returns its
/// exit code (or 128+signal for a signalled death; -1 when waitpid
/// itself fails).
int close_and_reap(WorkerProcess& worker);

/// SIGKILLs the child (channel left open for the EOF to propagate).
void kill_worker(const WorkerProcess& worker);

}  // namespace latticesched::dist
