#include "dist/wire.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace latticesched::dist {

namespace {

/// send() with MSG_NOSIGNAL so a dead peer surfaces as EPIPE instead of
/// killing the process; falls back to write() for non-socket fds (the
/// worker end may be a plain pipe in tests).
ssize_t write_some(int fd, const char* data, std::size_t len) {
  ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, len);
  return n;
}

/// Blocks (without deadline) until `fd` is ready for `events`; only
/// reached from the EAGAIN path below, i.e. on O_NONBLOCK fds.
bool wait_ready(int fd, short events) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    return true;
  }
}

bool write_full(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = write_some(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      // O_NONBLOCK socket with a full send buffer (the deadline forms
      // set every serve/dist fd nonblocking, and the blocking forms
      // share those fds): poll until writable, then resume the partial
      // write — bailing here would tear the frame mid-stream.
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          wait_ready(fd, POLLOUT)) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_full(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          wait_ready(fd, POLLIN)) {
        continue;
      }
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame (or before one)
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

using Clock = std::chrono::steady_clock;

/// One shared deadline across every poll/read/write of a frame.
struct Deadline {
  bool infinite;
  Clock::time_point at;
  explicit Deadline(int timeout_ms)
      : infinite(timeout_ms < 0),
        at(Clock::now() + std::chrono::milliseconds(
                              timeout_ms < 0 ? 0 : timeout_ms)) {}
  int remaining_ms() const {
    if (infinite) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at - Clock::now());
    return left.count() < 0 ? 0 : static_cast<int>(left.count());
  }
};

/// Waits for `events` on `fd` until the deadline.  POLLHUP/POLLERR
/// report as kOk so the subsequent read/write surfaces the real errno.
WireIoStatus wait_fd(int fd, short events, const Deadline& deadline) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, deadline.remaining_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      return WireIoStatus::kClosed;
    }
    if (rc == 0) return WireIoStatus::kTimeout;
    return WireIoStatus::kOk;
  }
}

WireIoStatus read_full_deadline(int fd, char* data, std::size_t len,
                                const Deadline& deadline) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n > 0) {
      data += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return WireIoStatus::kClosed;  // EOF mid-frame
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const WireIoStatus st = wait_fd(fd, POLLIN, deadline);
      if (st != WireIoStatus::kOk) return st;
      continue;
    }
    return WireIoStatus::kClosed;
  }
  return WireIoStatus::kOk;
}

WireIoStatus write_full_deadline(int fd, const char* data, std::size_t len,
                                 const Deadline& deadline) {
  while (len > 0) {
    const ssize_t n = write_some(fd, data, len);
    if (n >= 0) {
      data += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const WireIoStatus st = wait_fd(fd, POLLOUT, deadline);
      if (st != WireIoStatus::kOk) return st;
      continue;
    }
    return WireIoStatus::kClosed;
  }
  return WireIoStatus::kOk;
}

std::string frame_payload(const WireMessage& message) {
  std::string payload = message.verb;
  payload += '\n';
  payload += message.body;
  return payload;
}

std::uint32_t decode_prefix(const char prefix[4]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
          << 24);
}

/// Splits a received payload into WireMessage; false on an empty verb.
bool payload_to_message(std::string payload, WireMessage* out) {
  const std::size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    out->verb = std::move(payload);
    out->body.clear();
  } else {
    out->verb = payload.substr(0, newline);
    out->body = payload.substr(newline + 1);
  }
  return !out->verb.empty();
}

}  // namespace

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool write_frame(int fd, const WireMessage& message) {
  const std::string payload = frame_payload(message);
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  return write_full(fd, prefix, sizeof prefix) &&
         write_full(fd, payload.data(), payload.size());
}

bool read_frame(int fd, WireMessage* out) {
  char prefix[4];
  if (!read_full(fd, prefix, sizeof prefix)) return false;
  const std::uint32_t len = decode_prefix(prefix);
  if (len == 0 || len > kMaxFrameBytes) return false;
  std::string payload(len, '\0');
  if (!read_full(fd, payload.data(), payload.size())) return false;
  return payload_to_message(std::move(payload), out);
}

WireIoStatus read_frame_deadline(int fd, WireMessage* out, int timeout_ms) {
  const Deadline deadline(timeout_ms);
  char prefix[4];
  WireIoStatus st = read_full_deadline(fd, prefix, sizeof prefix, deadline);
  if (st != WireIoStatus::kOk) return st;
  const std::uint32_t len = decode_prefix(prefix);
  if (len == 0 || len > kMaxFrameBytes) return WireIoStatus::kClosed;
  std::string payload(len, '\0');
  st = read_full_deadline(fd, payload.data(), payload.size(), deadline);
  if (st != WireIoStatus::kOk) return st;
  return payload_to_message(std::move(payload), out) ? WireIoStatus::kOk
                                                     : WireIoStatus::kClosed;
}

WireIoStatus write_frame_deadline(int fd, const WireMessage& message,
                                  int timeout_ms) {
  const Deadline deadline(timeout_ms);
  const std::string payload = frame_payload(message);
  if (payload.size() > kMaxFrameBytes) return WireIoStatus::kClosed;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  const WireIoStatus st =
      write_full_deadline(fd, prefix, sizeof prefix, deadline);
  if (st != WireIoStatus::kOk) return st;
  return write_full_deadline(fd, payload.data(), payload.size(), deadline);
}

void split_body(const std::string& body, std::string* first_line,
                std::string* rest) {
  const std::size_t newline = body.find('\n');
  if (newline == std::string::npos) {
    *first_line = body;
    rest->clear();
  } else {
    *first_line = body.substr(0, newline);
    *rest = body.substr(newline + 1);
  }
}

}  // namespace latticesched::dist
