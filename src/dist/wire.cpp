#include "dist/wire.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace latticesched::dist {

namespace {

/// send() with MSG_NOSIGNAL so a dead peer surfaces as EPIPE instead of
/// killing the process; falls back to write() for non-socket fds (the
/// worker end may be a plain pipe in tests).
ssize_t write_some(int fd, const char* data, std::size_t len) {
  ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, len);
  return n;
}

bool write_full(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = write_some(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_full(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame (or before one)
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const WireMessage& message) {
  std::string payload = message.verb;
  payload += '\n';
  payload += message.body;
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  return write_full(fd, prefix, sizeof prefix) &&
         write_full(fd, payload.data(), payload.size());
}

bool read_frame(int fd, WireMessage* out) {
  char prefix[4];
  if (!read_full(fd, prefix, sizeof prefix)) return false;
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
       << 24);
  if (len == 0 || len > kMaxFrameBytes) return false;
  std::string payload(len, '\0');
  if (!read_full(fd, payload.data(), payload.size())) return false;
  const std::size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    out->verb = std::move(payload);
    out->body.clear();
  } else {
    out->verb = payload.substr(0, newline);
    out->body = payload.substr(newline + 1);
  }
  return !out->verb.empty();
}

void split_body(const std::string& body, std::string* first_line,
                std::string* rest) {
  const std::size_t newline = body.find('\n');
  if (newline == std::string::npos) {
    *first_line = body;
    rest->clear();
  } else {
    *first_line = body.substr(0, newline);
    *rest = body.substr(newline + 1);
  }
}

}  // namespace latticesched::dist
