// Wire protocol of the distributed planning service.
//
// Coordinator and workers exchange length-prefixed frames over a
// socketpair or TCP connection: a 4-byte little-endian payload length,
// then the payload — a verb line ("HELLO", "ASSIGN", "RESULT", "ERROR",
// "SHUTDOWN", "PING", "PONG", and the v6 session verbs "OPEN", "DELTA",
// "REPLAN", "SUBSCRIBE", "CLOSE", "EVENT", "OK") followed by a body
// whose content is the existing report JSON (core/report.hpp): ASSIGN
// bodies are a shard id line plus batch_items_to_json, RESULT bodies a
// shard id line plus batch_report_to_json.  PING/PONG are empty-bodied
// liveness probes: the coordinator PINGs a worker that missed a frame
// deadline, and a worker that is busy planning but healthy answers PONG
// from its reader thread — only a truly wedged process stays silent.
// The session verbs carry a session-id first line (see
// src/serve/server.hpp for the frame schemas).  Text-over-frames keeps
// the protocol debuggable (dump any frame and read it) while the length
// prefix makes framing unambiguous regardless of payload content.
#pragma once

#include <cstdint>
#include <string>

namespace latticesched::dist {

/// Protocol version carried in the HELLO frame; a coordinator refuses a
/// worker speaking any other version (mixed-build deployments fail fast
/// instead of mis-parsing each other).
/// v2: batch items gained "steps"/"trace_script", report rows a "step"
/// column and item headers a "steps" count (dynamic scenarios) — a v1
/// worker would silently plan dynamic items as static.
/// v3: PING/PONG liveness verbs; batch reports gained the
/// "worker_timeouts"/"degraded"/"quarantined_items" footer fields — a
/// v2 coordinator would reject a v3 worker's RESULT bodies.
/// v4: batch reports gained the "search" footer line (work-stealing
/// subtree_tasks/steals counters and the dispatched mask kernel) — a v3
/// coordinator would drop a v4 worker's search counters silently.
/// v5: batch items gained "regions"/"region_halo" (spatial region
/// sharding knobs) and batch reports the "regions" footer line
/// (partition / seam / stitch counters) — a v4 worker would throw on a
/// v5 ASSIGN body's unknown keys.
/// v6: session verbs (OPEN/DELTA/REPLAN/SUBSCRIBE/CLOSE and the
/// server-pushed EVENT/OK replies) for the TCP planning server
/// (src/serve); the server's HELLO also carries a "role" field.  A v5
/// peer would treat every session verb as an unexpected frame, so both
/// sides refuse a mismatched HELLO up front.
/// v7: batch items gained "tune_trials"/"tune_budget_ms" (auto-backend
/// tuning budgets), report rows "tuned"/"tuned_config" provenance
/// columns and batch reports the "tuning" footer line (tune-cache
/// hit/miss/search/trial counters) — a v6 coordinator would silently
/// drop a v7 worker's tuning counters from the merged report.
inline constexpr int kProtocolVersion = 7;

/// Frames larger than this are a protocol error, not an allocation —
/// guards the reader against garbage length prefixes.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

struct WireMessage {
  /// HELLO | ASSIGN | RESULT | ERROR | SHUTDOWN | PING | PONG, plus the
  /// v6 session verbs OPEN | DELTA | REPLAN | SUBSCRIBE | CLOSE | EVENT
  /// | OK (src/serve).
  std::string verb;
  std::string body;  ///< verb-specific payload (may be empty)
};

/// Writes one frame; returns false on any write error (notably EPIPE
/// from a dead peer — writes never raise SIGPIPE).  Works on blocking
/// AND O_NONBLOCK fds: a nonblocking socket whose buffer fills polls
/// for writability and continues, so a partial send never corrupts the
/// frame stream.
bool write_frame(int fd, const WireMessage& message);

/// Reads one full frame; returns false on EOF, a read error, or a
/// malformed frame.  Restarts interrupted reads and polls through
/// EAGAIN on O_NONBLOCK fds (no deadline — use read_frame_deadline for
/// bounded waits).
bool read_frame(int fd, WireMessage* out);

/// Outcome of the deadline-bounded frame I/O below.  kClosed covers
/// EOF, EPIPE and malformed frames alike — every case where the peer
/// is unusable rather than merely slow.
enum class WireIoStatus { kOk, kTimeout, kClosed };

/// Puts `fd` into O_NONBLOCK (required by the deadline forms below);
/// returns false when fcntl fails.
bool set_nonblocking(int fd);

/// Deadline-bounded frame I/O for the coordinator side; `fd` must be
/// nonblocking.  `timeout_ms` < 0 waits forever (the blocking
/// behavior); the budget covers the WHOLE frame, so a peer trickling
/// bytes cannot stretch one frame past one deadline.  A kTimeout may
/// leave the stream mid-frame — the protocol has no resync point, so
/// the caller must treat the peer as lost, not retry the call.
WireIoStatus read_frame_deadline(int fd, WireMessage* out, int timeout_ms);
WireIoStatus write_frame_deadline(int fd, const WireMessage& message,
                                  int timeout_ms);

/// Splits "<first line>\n<rest>" — the shape of ASSIGN/RESULT bodies.
/// Missing newline leaves `rest` empty.
void split_body(const std::string& body, std::string* first_line,
                std::string* rest);

}  // namespace latticesched::dist
