// Wire protocol of the distributed planning service.
//
// Coordinator and workers exchange length-prefixed frames over a
// socketpair: a 4-byte little-endian payload length, then the payload —
// a verb line ("HELLO", "ASSIGN", "RESULT", "ERROR", "SHUTDOWN")
// followed by a body whose content is the existing report JSON
// (core/report.hpp): ASSIGN bodies are a shard id line plus
// batch_items_to_json, RESULT bodies a shard id line plus
// batch_report_to_json.  Text-over-frames keeps the protocol
// debuggable (dump any frame and read it) while the length prefix
// makes framing unambiguous regardless of payload content.
#pragma once

#include <cstdint>
#include <string>

namespace latticesched::dist {

/// Protocol version carried in the HELLO frame; a coordinator refuses a
/// worker speaking any other version (mixed-build deployments fail fast
/// instead of mis-parsing each other).
/// v2: batch items gained "steps"/"trace_script", report rows a "step"
/// column and item headers a "steps" count (dynamic scenarios) — a v1
/// worker would silently plan dynamic items as static.
inline constexpr int kProtocolVersion = 2;

/// Frames larger than this are a protocol error, not an allocation —
/// guards the reader against garbage length prefixes.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

struct WireMessage {
  std::string verb;  ///< HELLO | ASSIGN | RESULT | ERROR | SHUTDOWN
  std::string body;  ///< verb-specific payload (may be empty)
};

/// Writes one frame; returns false on any write error (notably EPIPE
/// from a dead peer — writes never raise SIGPIPE).
bool write_frame(int fd, const WireMessage& message);

/// Reads one full frame (blocking); returns false on EOF, a read error,
/// or a malformed frame.  Restarts interrupted reads.
bool read_frame(int fd, WireMessage* out);

/// Splits "<first line>\n<rest>" — the shape of ASSIGN/RESULT bodies.
/// Missing newline leaves `rest` empty.
void split_body(const std::string& body, std::string* first_line,
                std::string* rest);

}  // namespace latticesched::dist
