#include "dist/worker.hpp"

#include <exception>
#include <string>

#include "core/plan_service.hpp"
#include "core/report.hpp"
#include "dist/wire.hpp"

namespace latticesched::dist {

int run_worker(int fd, const WorkerOptions& options) {
  PlanService service;
  if (!options.cache_dir.empty()) {
    try {
      service.tiling_cache().set_persist_dir(options.cache_dir);
    } catch (const std::exception& e) {
      (void)write_frame(fd, {"ERROR", e.what()});
      return 1;
    }
  }

  if (!write_frame(
          fd, {"HELLO",
               "{\"protocol\": " + std::to_string(kProtocolVersion) + "}"})) {
    return 1;  // coordinator already gone
  }

  WireMessage message;
  while (read_frame(fd, &message)) {
    if (message.verb == "SHUTDOWN") return 0;
    if (message.verb != "ASSIGN") {
      (void)write_frame(fd,
                        {"ERROR", "unexpected verb '" + message.verb + "'"});
      return 1;
    }
    std::string shard_id, items_json;
    split_body(message.body, &shard_id, &items_json);
    try {
      const std::vector<BatchItem> items = parse_batch_items_json(items_json);
      const BatchReport report = service.run(items);
      if (!write_frame(
              fd, {"RESULT", shard_id + "\n" + batch_report_to_json(report)})) {
        return 1;
      }
    } catch (const std::exception& e) {
      // Unknown backends and malformed assignments are coordinator bugs,
      // not per-item failures (PlanService reports those inside the
      // BatchReport); surface them and stop.
      (void)write_frame(fd, {"ERROR", e.what()});
      return 1;
    }
  }
  // EOF without SHUTDOWN: coordinator died; exiting is the cleanup.
  return 0;
}

}  // namespace latticesched::dist
