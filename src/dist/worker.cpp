#include "dist/worker.hpp"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <fcntl.h>
#include <mutex>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "core/plan_service.hpp"
#include "core/report.hpp"
#include "dist/faults.hpp"
#include "dist/wire.hpp"

namespace latticesched::dist {

namespace {

/// Raw best-effort write used by the truncate fault (the deliberately
/// broken path must not go through write_frame).
void write_raw(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// The worker's outbound channel: every send holds one mutex, so
/// frames from the main thread (RESULT/ERROR) and the reader thread
/// (PONG) never interleave — and a fault-injected hang sleeping under
/// the lock blocks PONGs too, which is exactly what makes a hung
/// worker detectable.
struct WorkerChannel {
  int fd;
  std::mutex write_mu;
  WireFaultInjector faults;

  /// Counted, fault-gated send for protocol frames.
  bool send(const WireMessage& message) {
    std::lock_guard<std::mutex> lock(write_mu);
    switch (faults.on_frame()) {  // may sleep or _Exit under the lock
      case WireFaultInjector::Decision::kDrop:
        return true;  // pretend success; the frame vanishes
      case WireFaultInjector::Decision::kTruncate: {
        // Half a frame with an honest length prefix, then wedge: the
        // coordinator's deadline read stalls mid-frame and kills us.
        std::string payload = message.verb + "\n" + message.body;
        const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
        const char prefix[4] = {static_cast<char>(len & 0xff),
                                static_cast<char>((len >> 8) & 0xff),
                                static_cast<char>((len >> 16) & 0xff),
                                static_cast<char>((len >> 24) & 0xff)};
        write_raw(fd, prefix, sizeof prefix);
        write_raw(fd, payload.data(), payload.size() / 2);
        std::this_thread::sleep_for(std::chrono::hours(1));
        return false;
      }
      case WireFaultInjector::Decision::kSend:
        break;
    }
    return write_frame(fd, message);
  }

  /// Heartbeat reply: NOT counted by the injector (PING arrival timing
  /// is nondeterministic), but still serialized by the write lock.
  bool send_pong() {
    std::lock_guard<std::mutex> lock(write_mu);
    return write_frame(fd, {"PONG", ""});
  }
};

}  // namespace

int run_worker(int fd, const WorkerOptions& options) {
  PlanService service;
  FaultPlan plan;
  if (!options.fault_spec.empty()) {
    try {
      plan = FaultPlan::parse(options.fault_spec);
    } catch (const std::exception& e) {
      (void)write_frame(fd, {"ERROR", e.what()});
      return 1;
    }
  }
  if (!options.cache_dir.empty()) {
    try {
      service.tiling_cache().set_persist_dir(options.cache_dir);
      service.tune_cache().set_persist_dir(options.cache_dir);
    } catch (const std::exception& e) {
      (void)write_frame(fd, {"ERROR", e.what()});
      return 1;
    }
  }
  if (plan.has_cache_faults()) {
    service.tiling_cache().set_write_corruption_hook(
        cache_corruption_hook(plan));
  }

  WorkerChannel channel{fd, {}, WireFaultInjector(plan)};

  if (!channel.send(
          {"HELLO",
           "{\"protocol\": " + std::to_string(kProtocolVersion) + "}"})) {
    // The coordinator is already gone (it shut down or died between our
    // spawn and our handshake).  Same contract as EOF-without-SHUTDOWN
    // below: exiting IS the cleanup, not a failure — a nonzero exit here
    // would count a healthy-but-late respawn as a worker failure.
    return 0;
  }

  // Inbox fed by the reader thread; PINGs are answered there and never
  // reach the main loop.  The self-pipe lets run_worker stop the reader
  // on every exit path (in-process test callers need the thread joined
  // and the fd quiet before this function returns).
  std::mutex inbox_mu;
  std::condition_variable inbox_cv;
  std::deque<WireMessage> inbox;
  bool reader_done = false;
  int stop_pipe[2] = {-1, -1};
  if (::pipe2(stop_pipe, O_CLOEXEC) != 0) {
    (void)channel.send({"ERROR", "worker: cannot create stop pipe"});
    return 1;
  }

  std::thread reader([&] {
    for (;;) {
      pollfd fds[2] = {{fd, POLLIN, 0}, {stop_pipe[0], POLLIN, 0}};
      const int rc = ::poll(fds, 2, -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[1].revents != 0) break;  // run_worker is shutting down
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      WireMessage message;
      if (!read_frame(fd, &message)) break;  // EOF or protocol garbage
      if (message.verb == "PING") {
        (void)channel.send_pong();
        continue;
      }
      const bool is_shutdown = message.verb == "SHUTDOWN";
      {
        std::lock_guard<std::mutex> lock(inbox_mu);
        inbox.push_back(std::move(message));
      }
      inbox_cv.notify_one();
      if (is_shutdown) break;  // nothing follows a SHUTDOWN
    }
    {
      std::lock_guard<std::mutex> lock(inbox_mu);
      reader_done = true;
    }
    inbox_cv.notify_one();
  });

  const auto stop_reader = [&] {
    (void)!::write(stop_pipe[1], "x", 1);
    reader.join();
    ::close(stop_pipe[0]);
    ::close(stop_pipe[1]);
  };

  int exit_code = 0;
  for (;;) {
    WireMessage message;
    {
      std::unique_lock<std::mutex> lock(inbox_mu);
      inbox_cv.wait(lock, [&] { return reader_done || !inbox.empty(); });
      if (inbox.empty()) {
        // EOF without SHUTDOWN: coordinator died; exiting is the cleanup.
        break;
      }
      message = std::move(inbox.front());
      inbox.pop_front();
    }
    if (message.verb == "SHUTDOWN") break;
    if (message.verb != "ASSIGN") {
      (void)channel.send(
          {"ERROR", "unexpected verb '" + message.verb + "'"});
      exit_code = 1;
      break;
    }
    std::string shard_id, items_json;
    split_body(message.body, &shard_id, &items_json);
    try {
      const std::vector<BatchItem> items = parse_batch_items_json(items_json);
      const BatchReport report = service.run(items);
      if (!channel.send({"RESULT",
                         shard_id + "\n" + batch_report_to_json(report)})) {
        exit_code = 1;
        break;
      }
    } catch (const std::exception& e) {
      // Unknown backends and malformed assignments are coordinator bugs,
      // not per-item failures (PlanService reports those inside the
      // BatchReport); surface them and stop.
      (void)channel.send({"ERROR", e.what()});
      exit_code = 1;
      break;
    }
  }
  stop_reader();
  return exit_code;
}

}  // namespace latticesched::dist
