// Worker side of the distributed planning service.
//
// A worker process (`latticesched --worker`) owns one PlanService —
// so its TilingCache stays warm across every shard it is assigned, and
// with a --cache-dir it warm-starts from (and feeds) the persistent
// cache shared by the whole fleet.  The main loop is strictly
// request/response — take a frame, answer it, repeat until SHUTDOWN or
// EOF (a vanished coordinator must not leave orphan workers planning) —
// but frames arrive through a dedicated reader thread that answers the
// coordinator's PING probes with PONG even while the main thread is
// deep in a plan: a busy worker proves it is alive, and only a truly
// wedged one (e.g. a fault-injected hang holding the write lock) goes
// silent and gets killed.
#pragma once

#include <string>

namespace latticesched::dist {

struct WorkerOptions {
  /// Persistent TilingCache directory shared with the coordinator's
  /// fleet ("" = in-memory cache only).
  std::string cache_dir;
  /// Deterministic fault-injection spec (dist/faults.hpp), already
  /// filtered by the coordinator to this worker's slot and spawn
  /// generation.  "" = no faults.
  std::string fault_spec;
};

/// Runs the worker protocol over `fd` until SHUTDOWN/EOF; returns the
/// process exit code (0 = clean shutdown, 1 = protocol or internal
/// error, reported to the coordinator in an ERROR frame first).  Joins
/// its reader thread before returning, so in-process callers (tests)
/// get a fully quiesced fd back.
int run_worker(int fd, const WorkerOptions& options);

}  // namespace latticesched::dist
