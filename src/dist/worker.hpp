// Worker side of the distributed planning service.
//
// A worker process (`latticesched --worker`) owns one PlanService —
// so its TilingCache stays warm across every shard it is assigned, and
// with a --cache-dir it warm-starts from (and feeds) the persistent
// cache shared by the whole fleet.  The loop is strictly
// request/response: read a frame, answer it, repeat until SHUTDOWN or
// EOF (a vanished coordinator must not leave orphan workers planning).
#pragma once

#include <string>

namespace latticesched::dist {

struct WorkerOptions {
  /// Persistent TilingCache directory shared with the coordinator's
  /// fleet ("" = in-memory cache only).
  std::string cache_dir;
};

/// Runs the worker protocol over `fd` until SHUTDOWN/EOF; returns the
/// process exit code (0 = clean shutdown, 1 = protocol or internal
/// error, reported to the coordinator in an ERROR frame first).
int run_worker(int fd, const WorkerOptions& options);

}  // namespace latticesched::dist
