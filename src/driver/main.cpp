// latticesched — the planner-pipeline driver.
//
// Runs a named deployment scenario through the planner registry (every
// backend unless --backends narrows it), prints the head-to-head
// comparison the paper makes (constructive tiling schedule vs.
// coloring/TDMA baselines), and optionally emits the same report as CSV
// or JSON for the experiment scripts.
//
//   $ latticesched --scenario grid --n 16 --radius 1
//   $ latticesched --scenario figure5 --format json --out report.json
//   $ latticesched --scenario cube3d --backends tiling,dsatur,tdma
//
// Scenarios: grid (n x n Chebyshev ball), hex (hexagonal-lattice
// Euclidean ball), cube3d (n^3, 3-D Chebyshev ball), mobile (random
// scattered snapshot, l1 ball), figure5 (mixed S/Z tetromino tiling,
// rule D1), antennas (omni ball + low-power bar, Theorem 2),
// multichannel (grid + c-channel extension of the tiling schedule).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/multichannel.hpp"
#include "core/planner.hpp"
#include "core/tiling_scheduler.hpp"
#include "graph/interference.hpp"
#include "lattice/lattice.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

struct Scenario {
  std::string name;
  Deployment deployment;
  std::optional<Tiling> tiling;  ///< when the deployment came from one
};

Tiling figure5_tiling() {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  auto tiling = find_tiling_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), cfg);
  if (!tiling.has_value()) {
    throw std::runtime_error("figure5: no mixed S/Z tiling on 4x4");
  }
  return *tiling;
}

Tiling antennas_tiling() {
  // Period 3x6: one 3x3 ball block + three 1x3 bars (Theorem 2's
  // respectable mixed tiling, as in examples/directional_antennas).
  return Tiling::periodic(
      {shapes::chebyshev_ball(2, 1), shapes::rectangle(3, 1, 1, 0)},
      Sublattice::diagonal({3, 6}),
      {{Point{1, 1}, 0}, {Point{1, 3}, 1}, {Point{1, 4}, 1},
       {Point{1, 5}, 1}});
}

Scenario make_scenario(const std::string& name, std::int64_t n,
                       std::int64_t radius, std::uint64_t seed) {
  if (name == "grid" || name == "multichannel") {
    return {name,
            Deployment::grid(Box::cube(2, 0, n - 1),
                             shapes::chebyshev_ball(2, radius)),
            std::nullopt};
  }
  if (name == "hex") {
    const Prototile ball = shapes::euclidean_ball(Lattice::hexagonal(), 1.0);
    return {name, Deployment::grid(Box::centered(2, n / 2), ball),
            std::nullopt};
  }
  if (name == "cube3d") {
    return {name,
            Deployment::grid(Box::cube(3, 0, n - 1),
                             shapes::chebyshev_ball(3, radius)),
            std::nullopt};
  }
  if (name == "mobile") {
    // Snapshot of a mobile swarm: ~35% of the n x n cells hold a sensor,
    // positions drawn without replacement from the seeded RNG.
    PointVec cells = Box::cube(2, 0, n - 1).points();
    Rng rng(seed);
    rng.shuffle(cells);
    cells.resize(std::max<std::size_t>(1, cells.size() * 35 / 100));
    return {name,
            Deployment::uniform(std::move(cells), shapes::l1_ball(2, radius)),
            std::nullopt};
  }
  if (name == "figure5") {
    Tiling tiling = figure5_tiling();
    Deployment d = Deployment::from_tiling(tiling, Box::centered(2, n / 2));
    return {name, std::move(d), std::move(tiling)};
  }
  if (name == "antennas") {
    Tiling tiling = antennas_tiling();
    Deployment d = Deployment::from_tiling(tiling, Box::centered(2, n / 2));
    return {name, std::move(d), std::move(tiling)};
  }
  throw std::invalid_argument(
      "unknown scenario '" + name +
      "' (grid, hex, cube3d, mobile, figure5, antennas, multichannel)");
}

void print_table(const Scenario& scenario,
                 const std::vector<PlanResult>& results) {
  std::printf("scenario %s: %zu sensors, %zu prototile(s), lower bound %u "
              "slots\n\n",
              scenario.name.c_str(), scenario.deployment.size(),
              scenario.deployment.prototiles().size(),
              results.empty() ? 0 : results.front().lower_bound);
  Table t({"backend", "period", "gap", "collision-free", "balance",
           "duty cycle", "wall ms", "status"});
  for (const PlanResult& r : results) {
    t.begin_row();
    t.cell(r.backend);
    if (r.ok) {
      t.cell(r.slots.period);
      t.cell(r.optimality_gap, 2);
      t.cell(r.collision_free ? "yes" : "NO");
      t.cell(r.slot_balance, 3);
      t.cell(r.duty_cycle, 4);
      t.cell(r.wall_seconds * 1e3, 2);
      t.cell("ok");
    } else {
      t.cell(static_cast<std::int64_t>(0));
      t.cell(0.0, 2);
      t.cell("-");
      t.cell(0.0, 3);
      t.cell(0.0, 4);
      t.cell(r.wall_seconds * 1e3, 2);
      t.cell("FAILED: " + r.error);
    }
  }
  t.print(std::cout);
}

// Returns the extension's collision verdict (true when skipped).  Writes
// to `sink` — stderr when stdout carries a CSV/JSON report, so the
// supplementary text never corrupts the machine-readable stream.
bool print_multichannel(const Scenario& scenario,
                        const std::vector<PlanResult>& results,
                        std::uint32_t channels, std::FILE* sink) {
  for (const PlanResult& r : results) {
    if (r.backend != "tiling" || !r.ok || !r.tiling.has_value()) continue;
    const MultiChannelSchedule mc(TilingSchedule(*r.tiling), channels);
    const MultiChannelSlots slots =
        assign_multichannel(mc, scenario.deployment);
    const CollisionReport report =
        check_collision_free_multichannel(scenario.deployment, slots);
    std::fprintf(sink, "\nmultichannel extension (%u channels): %s; %s\n",
                 channels, mc.description().c_str(),
                 report.to_string().c_str());
    return report.collision_free;
  }
  std::fprintf(sink, "\nmultichannel extension skipped: no tiling result\n");
  return true;
}

int run(int argc, char** argv) {
  CliParser cli(
      "Run a deployment scenario through every scheduling backend and "
      "report verified, diagnosed plans.");
  cli.add_flag("scenario", "grid",
               "grid | hex | cube3d | mobile | figure5 | antennas | "
               "multichannel");
  cli.add_flag("n", "12", "window size (side length / diameter)");
  cli.add_flag("radius", "1", "interference radius where applicable");
  cli.add_flag("backends", "all",
               "comma-separated backend names, or 'all'");
  cli.add_flag("threads", "0",
               "worker threads for the parallel layer (0 = auto)");
  cli.add_flag("format", "table", "table | csv | json");
  cli.add_flag("out", "", "also write the csv/json report to this file");
  cli.add_flag("seed", "1", "seed for randomized scenarios");
  cli.add_flag("channels", "2", "channels for the multichannel scenario");
  cli.add_flag("sa-iters", "60000", "annealing iteration budget");
  cli.add_flag("no-verify", "false", "skip the collision checker");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help_text().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  const std::int64_t threads = cli.get_int("threads");
  if (threads > 0) {
    set_parallel_threads(static_cast<std::size_t>(threads));
  }

  const Scenario scenario = make_scenario(
      cli.get_string("scenario"), cli.get_int("n"), cli.get_int("radius"),
      static_cast<std::uint64_t>(cli.get_int("seed")));

  PlanRequest request;
  request.deployment = &scenario.deployment;
  if (scenario.tiling.has_value()) request.tiling = &*scenario.tiling;
  request.verify = !cli.get_bool("no-verify");
  request.sa.max_iters =
      static_cast<std::uint64_t>(cli.get_int("sa-iters"));

  const std::vector<PlanResult> results = PlannerRegistry::global().plan_all(
      request, parse_backend_list(cli.get_string("backends")));

  const std::string format = cli.get_string("format");
  std::string report;
  if (format == "csv") {
    report = plan_results_to_csv(results, scenario.name);
  } else if (format == "json") {
    report = plan_results_to_json(results, scenario.name);
  } else if (format != "table") {
    std::fprintf(stderr, "unknown --format %s\n", format.c_str());
    return 2;
  }
  if (format == "table") {
    print_table(scenario, results);
  } else {
    std::printf("%s", report.c_str());
  }
  if (const std::string out = cli.get_string("out"); !out.empty()) {
    const std::string payload =
        !report.empty() ? report : plan_results_to_csv(results, scenario.name);
    std::ofstream os(out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 2;
    }
    os << payload;
    std::fprintf(stderr, "report written to %s\n", out.c_str());
  }
  bool multichannel_free = true;
  if (cli.get_string("scenario") == "multichannel") {
    multichannel_free = print_multichannel(
        scenario, results,
        static_cast<std::uint32_t>(cli.get_int("channels")),
        format == "table" ? stdout : stderr);
  }

  if (!multichannel_free) return 1;
  for (const PlanResult& r : results) {
    if (!r.ok || !r.collision_free) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace latticesched

int main(int argc, char** argv) {
  try {
    return latticesched::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latticesched: %s\n", e.what());
    return 2;
  }
}
