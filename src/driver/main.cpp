// latticesched — the batch planning driver.
//
// Scenarios come from the scenario library (core/scenario.hpp) and run
// through the batch planning service (core/plan_service.hpp): every
// (scenario, backend-set) pair is planned over the shared pool, torus
// searches are memoized in the service's TilingCache, and the report
// surfaces the cache hit/miss counters along with each backend's
// verified plan.
//
//   $ latticesched --list-scenarios
//   $ latticesched --list-backends
//   $ latticesched --scenario grid --n 16 --radius 1
//   $ latticesched --scenario all --format json --out report.json
//   $ latticesched --scenario grid,hex --radius 1,2,3      # sweep batch
//   $ latticesched --scenario multichannel --channels 4
//   $ latticesched --scenario cube3d --backends tiling,dsatur,tdma
//   $ latticesched --scenario all --workers 4 --cache-dir /var/cache/ls
//   $ latticesched --scenario grid-failures --steps 5      # dynamic trace
//   $ latticesched --scenario grid --script churn.txt      # scripted deltas
//
// Dynamic scenarios (grid-failures, mobile-churn, radius-degradation,
// staged-rollout) carry a mutation trace that is replayed through a
// PlanSession: step 0 plans the initial fleet, each further step
// applies the delta and replans incrementally; report rows gain a
// `step` column.  --script drives ANY scenario with a custom delta
// script (parse_mutation_script format); --steps bounds generated
// traces.  --cache-max-mb N prunes --cache-dir to N MiB after the run.
//
// Comma lists in --scenario / --n / --radius / --density expand to the
// cross-product batch, so a whole sweep is one invocation (and, thanks
// to the cache, one torus search per distinct neighborhood).
//
// --workers N (N >= 2) runs the batch through the distributed shard
// coordinator (src/dist): N `latticesched --worker` child processes,
// shards streamed over socketpairs, reports merged back into the same
// BatchReport a serial run produces.  --cache-dir persists the tiling
// cache on disk — shared by all workers and across invocations.
// --worker is the internal worker-process entry point.
//
// --serve runs the TCP planning server (src/serve): long-lived sessions
// over wire-protocol v6, many clients multiplexed over one shared pool
// and TilingCache, stopped gracefully by SIGTERM/SIGINT.  --listen is
// the same listener worn as a remote worker (its ASSIGN verb serves
// coordinator-style batches).  --connect host:port points this driver
// at such a server: every scenario/backend/steps flag works unchanged,
// the batch runs through server sessions, and --cache-stats reports the
// per-session counters the server sent back.
#include <csignal>
#include <cstdio>
#include <cerrno>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/plan_service.hpp"
#include "core/plan_session.hpp"
#include "core/planner.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "dist/coordinator.hpp"
#include "dist/faults.hpp"
#include "dist/process.hpp"
#include "dist/worker.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "tune/knob_space.hpp"
#include "tune/tune_cache.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

std::vector<std::int64_t> int_list(const std::string& csv) {
  std::vector<std::int64_t> out;
  for (const std::string& t : split_csv_list(csv)) out.push_back(std::stoll(t));
  if (out.empty()) {
    throw std::invalid_argument("expected at least one value in '" + csv +
                                "'");
  }
  return out;
}

std::vector<double> double_list(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& t : split_csv_list(csv)) out.push_back(std::stod(t));
  if (out.empty()) {
    throw std::invalid_argument("expected at least one value in '" + csv +
                                "'");
  }
  return out;
}

void result_cells(Table& t, const PlanResult& r) {
  t.cell(r.backend);
  if (r.ok) {
    t.cell(r.effective_period());
    t.cell(r.optimality_gap, 2);
    // "-" = the checker was skipped (--no-verify), not a clean bill.
    t.cell(!r.verified ? "-" : r.collision_free ? "yes" : "NO");
    t.cell(r.slot_balance, 3);
    t.cell(r.duty_cycle, 4);
    t.cell(r.wall_seconds * 1e3, 2);
    t.cell("ok");
  } else {
    t.cell(static_cast<std::int64_t>(0));
    t.cell(0.0, 2);
    t.cell("-");
    t.cell(0.0, 3);
    t.cell(0.0, 4);
    t.cell(r.wall_seconds * 1e3, 2);
    t.cell("FAILED: " + r.error);
  }
}

void print_item_table(const BatchItemReport& item) {
  if (!item.built) {
    std::printf("scenario %s: FAILED to build: %s\n\n",
                item.scenario.c_str(), item.error.c_str());
    return;
  }
  std::printf("scenario %s: %zu sensors", item.label.c_str(), item.sensors);
  if (item.channels > 1) std::printf(", %u channels", item.channels);
  if (!item.steps.empty()) {
    std::printf(", %zu step(s)", item.steps.size());
  }
  if (!item.results.empty()) {
    std::printf(", lower bound %u slots", item.results.front().lower_bound);
  }
  std::printf("\n\n");
  if (!item.steps.empty()) {
    // Dynamic item: one table over all steps, rows tagged by step and
    // the fleet size the step planned.
    Table t({"step", "sensors", "backend", "period", "gap",
             "collision-free", "balance", "duty cycle", "wall ms",
             "status"});
    for (const BatchStepReport& step : item.steps) {
      for (const PlanResult& r : step.results) {
        t.begin_row();
        t.cell(static_cast<std::int64_t>(step.step));
        t.cell(static_cast<std::int64_t>(step.sensors));
        result_cells(t, r);
      }
    }
    t.print(std::cout);
    std::printf("\n");
    return;
  }
  Table t({"backend", "period", "gap", "collision-free", "balance",
           "duty cycle", "wall ms", "status"});
  for (const PlanResult& r : item.results) {
    t.begin_row();
    result_cells(t, r);
  }
  t.print(std::cout);
  std::printf("\n");
}

// Self-pipe for SIGTERM/SIGINT: the handler writes one byte, the serve
// loop blocks on the read end — async-signal-safe graceful shutdown.
int g_stop_pipe[2] = {-1, -1};

void stop_signal_handler(int) {
  const char byte = 'x';
  (void)!::write(g_stop_pipe[1], &byte, 1);
}

/// `latticesched --serve` / `--listen`: run a PlanServer until a stop
/// signal, then shut down gracefully and report what was served.
int run_serve(const CliParser& cli) {
  serve::ServerConfig config;
  config.host = cli.get_string("host");
  config.port = static_cast<std::uint16_t>(cli.get_int("port"));
  config.cache_dir = cli.get_string("cache-dir");
  config.fault_spec = cli.get_string("fault-plan");
  serve::PlanServer server(config);

  if (::pipe(g_stop_pipe) != 0) {
    std::perror("pipe");
    return 2;
  }
  struct sigaction action {};
  action.sa_handler = stop_signal_handler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  server.start();
  std::printf("serve: listening on %s:%u (wire protocol v%d)\n",
              config.host.c_str(), server.port(), dist::kProtocolVersion);
  std::fflush(stdout);

  char byte = 0;
  while (::read(g_stop_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  server.stop();

  const serve::PlanServer::Stats stats = server.stats();
  std::printf(
      "serve: shutdown: %llu connection(s) accepted (%llu dropped by "
      "faults), %llu session(s) opened, %llu closed, %zu still open, "
      "%llu event(s) pushed, %llu assign batch(es)\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.connections_dropped),
      static_cast<unsigned long long>(stats.sessions_opened),
      static_cast<unsigned long long>(stats.sessions_closed),
      stats.open_sessions,
      static_cast<unsigned long long>(stats.events_pushed),
      static_cast<unsigned long long>(stats.assigns_served));
  if (const std::int64_t cap_mb = cli.get_int("cache-max-mb");
      cap_mb > 0 && !config.cache_dir.empty()) {
    const TilingCache::SweepStats swept = TilingCache::sweep_persist_dir(
        config.cache_dir, static_cast<std::uint64_t>(cap_mb) << 20);
    std::printf("serve: cache-gc: %zu file(s) scanned, %zu removed\n",
                swept.scanned, swept.removed);
  }
  std::fflush(stdout);
  return 0;
}

int run(int argc, char** argv) {
  CliParser cli(
      "Run deployment scenarios through the batch planning service and "
      "report verified, diagnosed plans.");
  cli.add_flag("scenario", "grid",
               "scenario name, comma list, or 'all' (see --list-scenarios)");
  cli.add_flag("list-scenarios", "false",
               "print the scenario registry with parameter docs and exit");
  cli.add_flag("n", "12", "window size (side length / diameter); comma "
               "list sweeps");
  cli.add_flag("radius", "1",
               "interference radius where applicable; comma list sweeps");
  cli.add_flag("density", "0.35",
               "occupied-cell fraction of random scatters; comma list "
               "sweeps");
  cli.add_flag("backends", "all",
               "comma-separated backend names, or 'all'");
  cli.add_int_flag("regions", 1, 1,
                   "spatial shard count for the region-greedy backend "
                   "(1 = unsharded)");
  cli.add_int_flag("region-halo", -1, -1,
                   "region halo override in lattice cells (-1 = the "
                   "deployment's interference reach)");
  cli.add_flag("list-backends", "false",
               "print the registered planner backends and exit");
  cli.add_int_flag("steps", 0, 0,
                   "mutation steps of dynamic scenarios (0 = scenario "
                   "default)");
  cli.add_flag("script", "",
               "drive the scenario through a PlanSession with the "
               "mutation script in this file (see docs/API.md)");
  cli.add_flag("threads", "0",
               "worker threads for the parallel layer (0 = auto)");
  cli.add_flag("format", "table", "table | csv | json");
  cli.add_flag("out", "", "also write the csv/json report to this file");
  cli.add_flag("seed", "1", "seed for randomized scenarios");
  cli.add_flag("channels", "2", "channels for the multichannel scenario");
  cli.add_flag("sa-iters", "60000", "annealing iteration budget");
  cli.add_int_flag("tune-trials", 8, 0,
                   "trial budget per tuning search of the 'auto' backend "
                   "(0 = defaults only)");
  cli.add_int_flag("tune-budget-ms", 0, 0,
                   "wall-clock budget per tuning search of the 'auto' "
                   "backend (0 = unbounded; bounded runs are not "
                   "deterministic)");
  cli.add_flag("no-verify", "false", "skip the collision checker");
  cli.add_int_flag("workers", 1, 1,
                   "worker processes for the batch (1 = in-process; >= 2 "
                   "spawns the distributed shard coordinator)");
  cli.add_flag("shard", "block",
               "shard partition strategy for --workers >= 2: block | "
               "weighted");
  cli.add_flag("cache-dir", "",
               "persist the tiling cache in this directory (shared by "
               "workers and across invocations)");
  cli.add_int_flag("cache-max-mb", 0, 0,
                   "size-capped LRU sweep of --cache-dir after the run "
                   "(0 = unbounded)");
  cli.add_flag("cache-stats", "false",
               "print the cache counter footer, per worker when "
               "distributed");
  cli.add_flag("worker", "false",
               "internal: run as a distributed worker process over "
               "--worker-fd");
  cli.add_int_flag("worker-fd", dist::kWorkerChannelFd, 0,
                   "internal: fd of the coordinator channel (--worker)");
  cli.add_int_flag("worker-timeout-ms", 30000, 0,
                   "per-frame deadline on every worker read/write "
                   "(--workers >= 2); a silent worker is probed, then "
                   "killed and its shards reassigned (0 = wait forever)");
  cli.add_int_flag("retries", 2, 0,
                   "respawns per worker slot before it is exhausted; when "
                   "every slot is exhausted the sweep degrades to "
                   "in-process serial execution");
  cli.add_flag("fault-plan", "",
               "internal: deterministic fault-injection spec (see "
               "docs/API.md) forwarded to workers for chaos testing");
  cli.add_flag("serve", "false",
               "run the TCP planning server on --host/--port (session "
               "verbs and worker ASSIGN; SIGTERM/SIGINT stop it "
               "gracefully)");
  cli.add_flag("listen", "false",
               "alias of --serve for remote-worker mode: the same "
               "listener serves ASSIGN batches a coordinator-style "
               "client can drive");
  cli.add_flag("host", "127.0.0.1",
               "bind address for --serve (0.0.0.0 = any interface)");
  cli.add_int_flag("port", 0, 0, 65535,
                   "TCP port for --serve (0 = ephemeral; the bound port "
                   "is printed on startup)");
  cli.add_flag("connect", "",
               "host:port of a running `latticesched --serve`; the "
               "batch runs remotely through server sessions "
               "(incompatible with --workers >= 2)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help_text().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  if (cli.get_bool("list-scenarios")) {
    std::printf("%s", ScenarioRegistry::global().describe().c_str());
    return 0;
  }
  if (cli.get_bool("list-backends")) {
    // One line per backend, then its tunable knobs (the same registry
    // the auto backend searches) with defaults and ranges.
    const auto print_knobs = [](const std::vector<tune::KnobSpec>& knobs) {
      for (const tune::KnobSpec& k : knobs) {
        std::printf("    %-32s default %-12g range [%g, %g]  %s\n",
                    k.name.c_str(), k.def, k.min, k.max, k.doc.c_str());
      }
    };
    for (const std::string& name : PlannerRegistry::global().names()) {
      std::printf("%s\n", name.c_str());
      print_knobs(tune::KnobSpace::global().knobs_for(name));
    }
    const std::vector<tune::KnobSpec> session_knobs =
        tune::KnobSpace::global().knobs_for("");
    if (!session_knobs.empty()) {
      std::printf("(session-level)\n");
      print_knobs(session_knobs);
    }
    return 0;
  }

  const std::int64_t threads = cli.get_int("threads");
  if (threads > 0) {
    set_parallel_threads(static_cast<std::size_t>(threads));
  }

  if (cli.get_bool("worker")) {
    // Distributed worker process: speak the wire protocol over
    // --worker-fd until the coordinator shuts us down.
    dist::WorkerOptions options;
    options.cache_dir = cli.get_string("cache-dir");
    options.fault_spec = cli.get_string("fault-plan");
    return dist::run_worker(static_cast<int>(cli.get_int("worker-fd")),
                            options);
  }

  if (cli.get_bool("serve") || cli.get_bool("listen")) {
    if (!cli.get_string("connect").empty()) {
      std::fprintf(stderr, "--serve and --connect are mutually exclusive\n");
      return 2;
    }
    try {
      return run_serve(cli);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "latticesched: serve: %s\n", e.what());
      return 2;
    }
  }

  // Scenario selection (a name, a comma list, or the whole registry),
  // crossed with the swept numeric flags into one batch.
  std::vector<std::string> scenario_names;
  if (const std::string s = cli.get_string("scenario"); s == "all") {
    scenario_names = ScenarioRegistry::global().names();
  } else {
    scenario_names = split_csv_list(s);
  }
  if (scenario_names.empty()) {
    std::fprintf(stderr,
                 "--scenario names no scenario; --list-scenarios shows "
                 "the registry\n");
    return 2;
  }
  for (const std::string& name : scenario_names) {
    if (ScenarioRegistry::global().find(name) == nullptr) {
      const std::string hint =
          suggest_nearest(name, ScenarioRegistry::global().names());
      std::fprintf(stderr,
                   "unknown scenario '%s'%s%s%s; --list-scenarios shows "
                   "the registry\n",
                   name.c_str(), hint.empty() ? "" : " (did you mean '",
                   hint.c_str(), hint.empty() ? "" : "'?)");
      return 2;
    }
  }

  std::vector<BatchItem> items;
  const std::vector<std::string> backends =
      parse_backend_list(cli.get_string("backends"));
  for (const std::string& name : backends) {
    if (PlannerRegistry::global().find(name) == nullptr) {
      const std::string hint =
          suggest_nearest(name, PlannerRegistry::global().names());
      std::fprintf(stderr,
                   "unknown backend '%s'%s%s%s; --list-backends shows "
                   "the registry\n",
                   name.c_str(), hint.empty() ? "" : " (did you mean '",
                   hint.c_str(), hint.empty() ? "" : "'?)");
      return 2;
    }
  }

  // --script: read and validate the mutation script up front so a typo
  // fails before any planning starts.
  std::string trace_script;
  if (const std::string script = cli.get_string("script");
      !script.empty()) {
    std::ifstream is(script);
    if (!is) {
      std::fprintf(stderr, "cannot read --script %s\n", script.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    trace_script = buffer.str();
    try {
      (void)parse_mutation_script(trace_script);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--script %s: %s\n", script.c_str(), e.what());
      return 2;
    }
  }

  try {
    const std::vector<std::int64_t> all_n = int_list(cli.get_string("n"));
    const std::vector<std::int64_t> all_radii =
        int_list(cli.get_string("radius"));
    const std::vector<double> all_densities =
        double_list(cli.get_string("density"));
    for (const std::string& name : scenario_names) {
      // Sweep only the parameters this scenario declares it reads —
      // sweeping a parameter a generator ignores would plan the
      // identical instance several times over.
      const ScenarioSpec& spec = *ScenarioRegistry::global().find(name);
      const auto uses = [&spec](const char* param) {
        for (const ScenarioParamDoc& doc : spec.params) {
          if (doc.name == param) return true;
        }
        return false;
      };
      const std::vector<std::int64_t> radii =
          uses("radius") ? all_radii
                         : std::vector<std::int64_t>{all_radii.front()};
      const std::vector<double> densities =
          uses("density") ? all_densities
                          : std::vector<double>{all_densities.front()};
      for (std::int64_t n : all_n) {
        for (std::int64_t radius : radii) {
          for (double density : densities) {
            BatchItem item;
            item.query.scenario = name;
            item.query.params.n = n;
            item.query.params.radius = radius;
            item.query.params.density = density;
            item.query.params.seed =
                static_cast<std::uint64_t>(cli.get_int("seed"));
            item.query.params.channels =
                static_cast<std::uint32_t>(cli.get_int("channels"));
            item.query.params.steps = cli.get_int("steps");
            item.trace_script = trace_script;
            item.backends = backends;
            item.regions = static_cast<std::size_t>(cli.get_int("regions"));
            item.region_halo = cli.get_int("region-halo");
            item.sa.max_iters =
                static_cast<std::uint64_t>(cli.get_int("sa-iters"));
            item.tune_trials =
                static_cast<std::size_t>(cli.get_int("tune-trials"));
            item.tune_budget_ms =
                static_cast<std::uint64_t>(cli.get_int("tune-budget-ms"));
            item.verify = !cli.get_bool("no-verify");
            items.push_back(std::move(item));
          }
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::int64_t workers = cli.get_int("workers");
  const std::string cache_dir = cli.get_string("cache-dir");
  const std::string connect_spec = cli.get_string("connect");
  if (!connect_spec.empty() && workers >= 2) {
    std::fprintf(stderr,
                 "--connect and --workers >= 2 are mutually exclusive "
                 "(the server owns its own fan-out)\n");
    return 2;
  }
  PlanService service;
  std::optional<dist::ShardCoordinator> coordinator;
  std::optional<serve::PlanClient> client;
  BatchReport report;
  try {
    if (!connect_spec.empty()) {
      // Remote run: every item becomes a server session; the report
      // comes back with the same structure a local run produces.
      const serve::HostPort endpoint = serve::parse_host_port(connect_spec);
      serve::ClientConfig config;
      config.host = endpoint.host;
      config.port = endpoint.port;
      if (const std::int64_t ms = cli.get_int("worker-timeout-ms"); ms != 0) {
        config.io_timeout_ms = static_cast<int>(ms);
      } else {
        config.io_timeout_ms = -1;  // 0 = wait forever, like the workers
      }
      client.emplace(config);
      report = client->run_items(items);
    } else if (workers >= 2) {
      dist::CoordinatorConfig config;
      config.workers = static_cast<std::size_t>(workers);
      config.strategy = dist::parse_shard_strategy(cli.get_string("shard"));
      config.cache_dir = cache_dir;
      config.worker_exe = dist::self_exe_path(argv[0]);
      if (threads > 0) {
        config.worker_threads = static_cast<std::size_t>(threads);
      }
      config.worker_timeout_ms =
          static_cast<std::uint64_t>(cli.get_int("worker-timeout-ms"));
      config.retries = static_cast<std::size_t>(cli.get_int("retries"));
      config.backoff_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      config.fault_plan = cli.get_string("fault-plan");
      coordinator.emplace(std::move(config));
      report = coordinator->run(items);
    } else {
      if (!cache_dir.empty()) {
        service.tiling_cache().set_persist_dir(cache_dir);
        service.tune_cache().set_persist_dir(cache_dir);
      }
      // Chaos testing of the serial path too: cache faults apply to the
      // in-process cache exactly as they do inside a worker.
      if (const std::string spec = cli.get_string("fault-plan");
          !spec.empty()) {
        const dist::FaultPlan plan = dist::FaultPlan::parse(spec);
        if (plan.has_cache_faults()) {
          service.tiling_cache().set_write_corruption_hook(
              dist::cache_corruption_hook(plan));
        }
      }
      report = service.run(items);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latticesched: %s\n", e.what());
    return 2;
  }

  // --cache-max-mb: bound the persistent cache directory after the run
  // (size-capped LRU over the entry files; corrupt entries go first).
  if (const std::int64_t cap_mb = cli.get_int("cache-max-mb");
      cap_mb > 0 && !cache_dir.empty()) {
    const TilingCache::SweepStats swept = TilingCache::sweep_persist_dir(
        cache_dir, static_cast<std::uint64_t>(cap_mb) << 20);
    std::fprintf(stderr,
                 "cache-gc: %zu file(s) scanned, %zu removed (%zu "
                 "corrupt), %llu -> %llu bytes\n",
                 swept.scanned, swept.removed, swept.corrupt_removed,
                 static_cast<unsigned long long>(swept.bytes_before),
                 static_cast<unsigned long long>(swept.bytes_after));
  }

  const std::string format = cli.get_string("format");
  std::string serialized;
  if (format == "csv") {
    serialized = batch_report_to_csv(report);
  } else if (format == "json") {
    serialized = batch_report_to_json(report);
  } else if (format != "table") {
    std::fprintf(stderr, "unknown --format %s\n", format.c_str());
    return 2;
  }

  // --cache-stats: per-worker counter breakdown when distributed, the
  // service cache (including disk warm-start hits) when in-process.
  const auto print_cache_stats = [&](std::FILE* out) {
    // Tune-cache footer shared by all three modes; silent when the batch
    // never touched the auto backend.
    const auto print_tune_totals = [&](std::FILE* o) {
      if (report.tune_hits + report.tune_misses + report.tune_searches +
              report.tune_trials_run ==
          0) {
        return;
      }
      std::fprintf(o,
                   "tune-stats: %llu hit(s), %llu miss(es), %llu "
                   "search(es), %llu trial(s)\n",
                   static_cast<unsigned long long>(report.tune_hits),
                   static_cast<unsigned long long>(report.tune_misses),
                   static_cast<unsigned long long>(report.tune_searches),
                   static_cast<unsigned long long>(report.tune_trials_run));
    };
    if (client.has_value()) {
      // Remote run: per-session counters the server attributed to each
      // session over v6 frames, then the batch totals.
      for (const auto& [label, s] : client->session_stats()) {
        std::fprintf(
            out,
            "cache-stats: session %s: %llu hit(s), %llu miss(es), %llu "
            "replan(s), %llu delta(s), %llu region(s) replanned\n",
            label.c_str(), static_cast<unsigned long long>(s.cache_hits),
            static_cast<unsigned long long>(s.cache_misses),
            static_cast<unsigned long long>(s.replans),
            static_cast<unsigned long long>(s.deltas),
            static_cast<unsigned long long>(s.regions_replanned));
      }
      std::fprintf(out,
                   "cache-stats: total: %llu hit(s), %llu miss(es) "
                   "(server %s)\n",
                   static_cast<unsigned long long>(report.cache_hits),
                   static_cast<unsigned long long>(report.cache_misses),
                   connect_spec.c_str());
      if (!report.search_kernel.empty()) {
        std::fprintf(
            out,
            "search-stats: %llu subtree task(s), %llu steal(s), "
            "kernel=%s\n",
            static_cast<unsigned long long>(report.search_subtree_tasks),
            static_cast<unsigned long long>(report.search_steals),
            report.search_kernel.c_str());
      }
      print_tune_totals(out);
    } else if (coordinator.has_value()) {
      for (std::size_t w = 0; w < coordinator->worker_stats().size(); ++w) {
        const dist::WorkerCacheStats& s = coordinator->worker_stats()[w];
        std::string notes;
        if (s.tune_hits + s.tune_misses + s.tune_searches + s.tune_trials >
            0) {
          notes += ", " + std::to_string(s.tune_hits) + " tune hit(s), " +
                   std::to_string(s.tune_searches) + " tune search(es)";
        }
        if (s.respawns > 0) {
          notes += ", " + std::to_string(s.respawns) + " respawn(s)";
        }
        if (s.failed) notes += " [FAILED]";
        if (s.timed_out) notes += " [TIMED OUT]";
        std::fprintf(
            out,
            "cache-stats: worker %zu (pid %lld): %llu hit(s), %llu "
            "miss(es), %zu shard(s), %llu subtree task(s), %llu "
            "steal(s)%s\n",
            w, static_cast<long long>(s.pid),
            static_cast<unsigned long long>(s.cache_hits),
            static_cast<unsigned long long>(s.cache_misses),
            s.shards_completed,
            static_cast<unsigned long long>(s.search_subtree_tasks),
            static_cast<unsigned long long>(s.search_steals),
            notes.c_str());
      }
      std::fprintf(out,
                   "cache-stats: total: %llu hit(s), %llu miss(es), %llu "
                   "worker failure(s), %llu timeout(s)%s\n",
                   static_cast<unsigned long long>(report.cache_hits),
                   static_cast<unsigned long long>(report.cache_misses),
                   static_cast<unsigned long long>(report.worker_failures),
                   static_cast<unsigned long long>(report.worker_timeouts),
                   report.degraded ? " [DEGRADED]" : "");
      if (!report.search_kernel.empty()) {
        std::fprintf(
            out,
            "search-stats: %llu subtree task(s), %llu steal(s), "
            "kernel=%s\n",
            static_cast<unsigned long long>(report.search_subtree_tasks),
            static_cast<unsigned long long>(report.search_steals),
            report.search_kernel.c_str());
      }
      print_tune_totals(out);
    } else {
      const TilingCache::Stats s = service.tiling_cache().stats();
      std::fprintf(out,
                   "cache-stats: %llu hit(s) (%llu from disk), %llu "
                   "miss(es), %zu entrie(s)\n",
                   static_cast<unsigned long long>(s.hits),
                   static_cast<unsigned long long>(s.disk_hits),
                   static_cast<unsigned long long>(s.misses), s.entries);
      if (!s.search_kernel.empty()) {
        std::fprintf(
            out,
            "search-stats: %llu subtree task(s), %llu steal(s), "
            "kernel=%s\n",
            static_cast<unsigned long long>(s.search_subtree_tasks),
            static_cast<unsigned long long>(s.search_steals),
            s.search_kernel.c_str());
      }
      const tune::TuneCache::Stats t = service.tune_cache().stats();
      if (t.hits + t.misses + t.searches + t.trials > 0) {
        std::fprintf(out,
                     "tune-stats: %llu hit(s) (%llu from disk), %llu "
                     "miss(es), %llu search(es), %llu trial(s), %zu "
                     "entrie(s)\n",
                     static_cast<unsigned long long>(t.hits),
                     static_cast<unsigned long long>(t.disk_hits),
                     static_cast<unsigned long long>(t.misses),
                     static_cast<unsigned long long>(t.searches),
                     static_cast<unsigned long long>(t.trials), t.entries);
      }
    }
    if (report.regions > 0) {
      std::fprintf(out,
                   "region-stats: %llu region(s), %llu seam sensor(s), "
                   "%llu stitch recolor(s)\n",
                   static_cast<unsigned long long>(report.regions),
                   static_cast<unsigned long long>(report.seam_sensors),
                   static_cast<unsigned long long>(report.stitch_recolored));
    }
    if (const std::uint64_t rss = peak_rss_bytes(); rss > 0) {
      std::fprintf(out, "peak-rss: %.1f MiB\n",
                   static_cast<double>(rss) / (1024.0 * 1024.0));
    }
  };

  if (format == "table") {
    for (const BatchItemReport& item : report.items) print_item_table(item);
    std::printf(
        "batch: %zu scenario(s) in %.1f ms; tiling cache: %llu hit(s), "
        "%llu miss(es)\n",
        report.items.size(), report.wall_seconds * 1e3,
        static_cast<unsigned long long>(report.cache_hits),
        static_cast<unsigned long long>(report.cache_misses));
    if (report.worker_failures > 0) {
      std::printf("WARNING: %llu worker failure(s); shards were "
                  "reassigned\n",
                  static_cast<unsigned long long>(report.worker_failures));
    }
    if (report.worker_timeouts > 0) {
      std::printf("WARNING: %llu worker timeout(s); hung workers were "
                  "killed and their shards reassigned\n",
                  static_cast<unsigned long long>(report.worker_timeouts));
    }
    if (report.degraded) {
      std::printf("WARNING: worker fleet exhausted; remaining items "
                  "completed in-process (degraded)\n");
    }
    if (!report.quarantined_items.empty()) {
      std::printf("WARNING: %zu item(s) quarantined after repeatedly "
                  "crashing workers\n",
                  report.quarantined_items.size());
    }
    if (cli.get_bool("cache-stats")) print_cache_stats(stdout);
  } else {
    std::printf("%s", serialized.c_str());
    // Keep the machine-readable stream clean; counters also live inside
    // the JSON form.
    std::fprintf(stderr, "tiling cache: %llu hit(s), %llu miss(es)\n",
                 static_cast<unsigned long long>(report.cache_hits),
                 static_cast<unsigned long long>(report.cache_misses));
    if (cli.get_bool("cache-stats")) print_cache_stats(stderr);
  }
  if (const std::string out = cli.get_string("out"); !out.empty()) {
    const std::string payload =
        !serialized.empty() ? serialized : batch_report_to_csv(report);
    std::ofstream os(out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 2;
    }
    os << payload;
    std::fprintf(stderr, "report written to %s\n", out.c_str());
  }

  return report.all_ok() ? 0 : 1;
}

}  // namespace
}  // namespace latticesched

int main(int argc, char** argv) {
  try {
    return latticesched::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "latticesched: %s\n", e.what());
    return 2;
  }
}
