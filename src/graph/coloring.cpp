#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>
#include <stdexcept>

namespace latticesched {

std::uint32_t color_count(const Coloring& c) {
  std::uint32_t m = 0;
  for (std::uint32_t v : c) m = std::max(m, v + 1);
  return m;
}

bool is_proper_coloring(const Graph& g, const Coloring& c) {
  if (c.size() != g.size()) return false;
  for (std::uint32_t u = 0; u < g.size(); ++u) {
    for (std::uint32_t v : g.neighbors(u)) {
      if (c[u] == c[v]) return false;
    }
  }
  return true;
}

Coloring greedy_coloring(const Graph& g,
                         const std::vector<std::uint32_t>& order) {
  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  Coloring colors(g.size(), kNone);
  std::vector<bool> used;
  for (std::uint32_t u : order) {
    used.assign(g.size() + 1, false);
    for (std::uint32_t v : g.neighbors(u)) {
      if (colors[v] != kNone) used[colors[v]] = true;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    colors[u] = c;
  }
  return colors;
}

Coloring greedy_coloring(const Graph& g) {
  std::vector<std::uint32_t> order(g.size());
  std::iota(order.begin(), order.end(), 0);
  return greedy_coloring(g, order);
}

Coloring incremental_greedy_coloring(
    const Graph& g, Coloring previous,
    const std::vector<std::uint32_t>& dirty) {
  if (previous.size() != g.size()) {
    throw std::invalid_argument(
        "incremental_greedy_coloring: coloring/graph size mismatch");
  }
  // Min-heap keyed by vertex id: popping ascending guarantees every
  // lower-index neighbor holds its final color when a vertex is
  // re-evaluated (changes only ever push HIGHER ids).
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<std::uint32_t>> queue;
  std::vector<char> queued(g.size(), 0);
  const auto push = [&](std::uint32_t u) {
    if (!queued[u]) {
      queued[u] = 1;
      queue.push(u);
    }
  };
  for (std::uint32_t u : dirty) {
    if (u >= g.size()) {
      throw std::invalid_argument(
          "incremental_greedy_coloring: dirty vertex out of range");
    }
    push(u);
  }
  for (std::uint32_t u = 0; u < g.size(); ++u) {
    if (previous[u] == kUncolored) push(u);
  }

  std::vector<bool> used;
  while (!queue.empty()) {
    const std::uint32_t u = queue.top();
    queue.pop();
    queued[u] = 0;
    used.assign(g.degree(u) + 2, false);
    for (std::uint32_t v : g.neighbors(u)) {
      if (v < u && previous[v] != kUncolored &&
          previous[v] < used.size()) {
        used[previous[v]] = true;
      }
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    if (c != previous[u]) {
      previous[u] = c;
      for (std::uint32_t v : g.neighbors(u)) {
        if (v > u) push(v);
      }
    }
  }
  return previous;
}

Coloring incremental_greedy_coloring(std::size_t n,
                                     const NeighborProvider& neighbors,
                                     Coloring previous,
                                     const std::vector<std::uint32_t>& dirty) {
  if (previous.size() != n) {
    throw std::invalid_argument(
        "incremental_greedy_coloring: coloring/vertex-count mismatch");
  }
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<std::uint32_t>> queue;
  std::vector<char> queued(n, 0);
  const auto push = [&](std::uint32_t u) {
    if (!queued[u]) {
      queued[u] = 1;
      queue.push(u);
    }
  };
  for (std::uint32_t u : dirty) {
    if (u >= n) {
      throw std::invalid_argument(
          "incremental_greedy_coloring: dirty vertex out of range");
    }
    push(u);
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    if (previous[u] == kUncolored) push(u);
  }

  std::vector<bool> used;
  while (!queue.empty()) {
    const std::uint32_t u = queue.top();
    queue.pop();
    queued[u] = 0;
    const std::vector<std::uint32_t>& row = neighbors(u);
    used.assign(row.size() + 2, false);
    for (std::uint32_t v : row) {
      if (v < u && previous[v] != kUncolored &&
          previous[v] < used.size()) {
        used[previous[v]] = true;
      }
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    if (c != previous[u]) {
      previous[u] = c;
      for (std::uint32_t v : row) {
        if (v > u) push(v);
      }
    }
  }
  return previous;
}

Coloring welsh_powell_coloring(const Graph& g) {
  std::vector<std::uint32_t> order(g.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return g.degree(a) > g.degree(b);
                   });
  return greedy_coloring(g, order);
}

Coloring dsatur_coloring(const Graph& g) {
  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  const std::size_t n = g.size();
  Coloring colors(n, kNone);
  std::vector<std::set<std::uint32_t>> sat(n);
  std::vector<bool> done(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    // Vertex with maximal saturation; ties by degree, then index.
    std::uint32_t pick = 0;
    bool found = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (done[v]) continue;
      if (!found || sat[v].size() > sat[pick].size() ||
          (sat[v].size() == sat[pick].size() &&
           g.degree(v) > g.degree(pick))) {
        pick = v;
        found = true;
      }
    }
    std::uint32_t c = 0;
    while (sat[pick].count(c) != 0) ++c;
    colors[pick] = c;
    done[pick] = true;
    for (std::uint32_t w : g.neighbors(pick)) sat[w].insert(c);
  }
  return colors;
}

namespace {

struct BnbState {
  const Graph* g = nullptr;
  Coloring assign;
  std::uint32_t used = 0;
  Coloring best;
  std::uint32_t best_k = 0;
  std::uint32_t lower_bound = 0;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool aborted = false;

  static constexpr std::uint32_t kNone =
      std::numeric_limits<std::uint32_t>::max();

  void run(std::size_t colored) {
    if (aborted || best_k <= lower_bound) return;
    if (used >= best_k) return;  // cannot beat the incumbent on this path
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    const std::size_t n = g->size();
    if (colored == n) {
      best = assign;
      best_k = used;
      return;
    }
    // DSATUR pick: max distinct neighbor colors, ties by degree.
    std::uint32_t pick = 0;
    std::size_t pick_sat = 0;
    bool found = false;
    std::vector<bool> seen;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (assign[v] != kNone) continue;
      seen.assign(used, false);
      std::size_t s = 0;
      for (std::uint32_t w : g->neighbors(v)) {
        const std::uint32_t c = assign[w];
        if (c != kNone && !seen[c]) {
          seen[c] = true;
          ++s;
        }
      }
      if (!found || s > pick_sat ||
          (s == pick_sat && g->degree(v) > g->degree(pick))) {
        pick = v;
        pick_sat = s;
        found = true;
      }
    }
    // Try existing colors plus at most one fresh color, pruned by best_k.
    const std::uint32_t fresh_cap =
        best_k >= 2 ? best_k - 2 : 0;  // fresh color only if used <= best_k-2
    const std::uint32_t c_max = std::min(used, fresh_cap);
    for (std::uint32_t c = 0; c <= c_max && c <= used; ++c) {
      bool feasible = true;
      for (std::uint32_t w : g->neighbors(pick)) {
        if (assign[w] == c) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      const std::uint32_t prev_used = used;
      assign[pick] = c;
      used = std::max(used, c + 1);
      run(colored + 1);
      assign[pick] = kNone;
      used = prev_used;
      if (aborted) return;
    }
  }
};

}  // namespace

ExactColoringResult exact_chromatic(const Graph& g,
                                    const ExactColoringConfig& config) {
  ExactColoringResult out;
  const auto clique = g.greedy_clique();
  out.clique_lower_bound = static_cast<std::uint32_t>(clique.size());
  if (g.size() == 0) {
    out.proven_optimal = true;
    return out;
  }
  Coloring heuristic = dsatur_coloring(g);
  std::uint32_t ub = color_count(heuristic);
  if (config.upper_bound_hint < ub) {
    // A hint only helps pruning; the heuristic coloring remains the
    // incumbent since the hint carries no explicit assignment.
    ub = std::max(config.upper_bound_hint, out.clique_lower_bound);
  }

  BnbState st;
  st.g = &g;
  st.assign.assign(g.size(), BnbState::kNone);
  st.best = heuristic;
  st.best_k = color_count(heuristic);
  st.lower_bound = out.clique_lower_bound;
  st.node_limit = config.node_limit;
  if (st.best_k > st.lower_bound) {
    st.run(0);
  }
  out.coloring = st.best;
  out.colors = st.best_k;
  out.nodes = st.nodes;
  out.proven_optimal = !st.aborted || st.best_k == st.lower_bound;
  return out;
}

}  // namespace latticesched
