// Graph coloring: heuristics and exact branch-and-bound.
//
// Colors play the role of time slots: a proper coloring of the conflict
// graph is a collision-free schedule, and the chromatic number is the
// optimal slot count (the quantity the paper's Theorems 1/2 pin down
// constructively for lattice deployments).  The exact solver is used to
// machine-check optimality claims on finite windows (including the m=6 vs
// m=4 comparison of Figure 5); the heuristics are the literature baselines.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace latticesched {

using Coloring = std::vector<std::uint32_t>;

/// Number of colors used (max + 1; 0 for empty colorings).
std::uint32_t color_count(const Coloring& c);

/// Whether `c` assigns different colors across every edge.
bool is_proper_coloring(const Graph& g, const Coloring& c);

/// First-fit coloring in the given vertex order.
Coloring greedy_coloring(const Graph& g,
                         const std::vector<std::uint32_t>& order);

/// First-fit in natural order 0..n-1.
Coloring greedy_coloring(const Graph& g);

/// "No color" marker in partial colorings handed to
/// incremental_greedy_coloring (new sensors of a patched graph).
inline constexpr std::uint32_t kUncolored =
    std::numeric_limits<std::uint32_t>::max();

/// Incrementally repairs a natural-order greedy coloring after local
/// graph edits.  `previous` is the greedy coloring of an earlier graph
/// carried onto g's vertex ids (kUncolored for vertices without a prior
/// color); `dirty` lists every vertex whose neighbor row changed.
/// Greedy first-fit is the unique fixpoint of c(u) = mex{c(j) : j < u,
/// j ~ u}, so re-evaluating dirty vertices in ascending order and
/// propagating color changes upward reproduces greedy_coloring(g)
/// exactly while only touching the changed region.
Coloring incremental_greedy_coloring(const Graph& g, Coloring previous,
                                     const std::vector<std::uint32_t>& dirty);

/// Callback that yields the sorted neighbor row of a vertex.  The
/// reference must stay valid until the next invocation (callers memoize
/// rows, so repeated requests for the same vertex are cheap).
using NeighborProvider =
    std::function<const std::vector<std::uint32_t>&(std::uint32_t)>;

/// Same fixpoint repair as the Graph overload, but with neighbor rows
/// supplied lazily by `neighbors` instead of a materialized adjacency —
/// the region-sharded planner stitches seam sensors of million-vertex
/// conflict graphs without ever holding the full edge set.  Rows are
/// only requested for dirty vertices and vertices reached by color
/// propagation.
Coloring incremental_greedy_coloring(std::size_t n,
                                     const NeighborProvider& neighbors,
                                     Coloring previous,
                                     const std::vector<std::uint32_t>& dirty);

/// Welsh–Powell: first-fit in order of decreasing degree.
Coloring welsh_powell_coloring(const Graph& g);

/// DSATUR (Brélaz): repeatedly color the vertex with the highest
/// saturation (distinct neighbor colors), breaking ties by degree.
Coloring dsatur_coloring(const Graph& g);

struct ExactColoringConfig {
  /// Branch-and-bound node budget; when exceeded the result is the best
  /// coloring found with `proven_optimal == false`.
  std::uint64_t node_limit = 5'000'000;
  /// Optional known upper bound (e.g. from a constructive schedule).
  std::uint32_t upper_bound_hint =
      std::numeric_limits<std::uint32_t>::max();
};

struct ExactColoringResult {
  Coloring coloring;
  std::uint32_t colors = 0;
  bool proven_optimal = false;
  std::uint64_t nodes = 0;
  std::uint32_t clique_lower_bound = 0;
};

/// Exact chromatic number via DSATUR-ordered branch and bound with a
/// greedy-clique lower bound.  Complete for small graphs; degrades to the
/// best-found coloring under the node budget.
ExactColoringResult exact_chromatic(const Graph& g,
                                    const ExactColoringConfig& config = {});

}  // namespace latticesched
