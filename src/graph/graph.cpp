#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace latticesched {

Graph::Graph(std::size_t n) : adj_(n) {}

Graph Graph::from_sorted_adjacency(
    std::vector<std::vector<std::uint32_t>> adjacency) {
  Graph g(adjacency.size());
  std::size_t directed = 0;
  for (std::uint32_t u = 0; u < adjacency.size(); ++u) {
    const auto& au = adjacency[u];
    for (std::size_t i = 0; i < au.size(); ++i) {
      const std::uint32_t v = au[i];
      if (v >= adjacency.size() || v == u) {
        throw std::invalid_argument(
            "Graph::from_sorted_adjacency: bad neighbor");
      }
      if (i > 0 && au[i - 1] >= v) {
        throw std::invalid_argument(
            "Graph::from_sorted_adjacency: list not sorted/unique");
      }
      if (!std::binary_search(adjacency[v].begin(), adjacency[v].end(), u)) {
        throw std::invalid_argument(
            "Graph::from_sorted_adjacency: asymmetric edge");
      }
    }
    directed += au.size();
  }
  g.adj_ = std::move(adjacency);
  g.edges_ = directed / 2;
  return g;
}

void Graph::add_edge(std::uint32_t u, std::uint32_t v) {
  if (u >= size() || v >= size()) {
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  }
  if (u == v) return;
  auto& au = adj_[u];
  const auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it != au.end() && *it == v) return;  // duplicate
  au.insert(it, v);
  auto& av = adj_[v];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++edges_;
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  if (u >= size() || v >= size()) return false;
  const auto& au = adj_[u];
  return std::binary_search(au.begin(), au.end(), v);
}

const std::vector<std::uint32_t>& Graph::neighbors(std::uint32_t u) const {
  return adj_.at(u);
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& a : adj_) d = std::max(d, a.size());
  return d;
}

std::vector<std::uint32_t> Graph::greedy_clique() const {
  if (size() == 0) return {};
  std::uint32_t seed = 0;
  for (std::uint32_t v = 1; v < size(); ++v) {
    if (degree(v) > degree(seed)) seed = v;
  }
  std::vector<std::uint32_t> clique{seed};
  std::vector<std::uint32_t> candidates = adj_[seed];
  while (!candidates.empty()) {
    // Pick the candidate with the most connections into the candidate set.
    std::uint32_t best = candidates.front();
    std::size_t best_links = 0;
    for (std::uint32_t c : candidates) {
      std::size_t links = 0;
      for (std::uint32_t d : candidates) {
        if (c != d && has_edge(c, d)) ++links;
      }
      if (links > best_links) {
        best_links = links;
        best = c;
      }
    }
    clique.push_back(best);
    std::vector<std::uint32_t> next;
    for (std::uint32_t c : candidates) {
      if (c != best && has_edge(c, best)) next.push_back(c);
    }
    candidates = std::move(next);
  }
  return clique;
}

}  // namespace latticesched
