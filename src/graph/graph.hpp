// Minimal undirected graph used for broadcast-scheduling baselines.
//
// The related work the paper positions itself against (McCormick;
// Lloyd & Ramanathan; Ramanathan & Lloyd; Wang & Ansari; Shi & Wang)
// phrases collision-free scheduling as distance-2 / conflict-graph
// coloring.  This module provides the graph substrate those baselines and
// our optimality verifications run on.
#pragma once

#include <cstdint>
#include <vector>

namespace latticesched {

class Graph {
 public:
  explicit Graph(std::size_t n = 0);

  /// Builds a graph directly from full adjacency lists (each vertex lists
  /// ALL its neighbors, both directions present).  Lists must be sorted,
  /// duplicate-free, self-loop-free and symmetric; throws otherwise.
  /// This is the bulk entry point the parallel conflict-graph builder
  /// uses: per-vertex lists are computed concurrently, then adopted here
  /// in one validation pass instead of n·deg sorted insertions.
  static Graph from_sorted_adjacency(
      std::vector<std::vector<std::uint32_t>> adjacency);

  std::size_t size() const { return adj_.size(); }
  std::size_t edge_count() const { return edges_; }

  /// Adds an undirected edge; self-loops and duplicates are ignored.
  void add_edge(std::uint32_t u, std::uint32_t v);

  bool has_edge(std::uint32_t u, std::uint32_t v) const;

  /// Sorted neighbor list.
  const std::vector<std::uint32_t>& neighbors(std::uint32_t u) const;

  std::size_t degree(std::uint32_t u) const { return adj_[u].size(); }
  std::size_t max_degree() const;

  /// A greedily grown clique (vertex of max degree, extended by common
  /// neighbors); its size lower-bounds the chromatic number.
  std::vector<std::uint32_t> greedy_clique() const;

 private:
  std::vector<std::vector<std::uint32_t>> adj_;  // kept sorted
  std::size_t edges_ = 0;
};

}  // namespace latticesched
