#include "graph/interference.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace latticesched {

Deployment::Deployment(PointVec positions, std::vector<std::uint32_t> types,
                       std::vector<Prototile> prototiles)
    : positions_(std::move(positions)), types_(std::move(types)),
      prototiles_(std::move(prototiles)) {
  if (positions_.size() != types_.size()) {
    throw std::invalid_argument("Deployment: positions/types mismatch");
  }
  if (prototiles_.empty()) {
    throw std::invalid_argument("Deployment: no prototiles");
  }
  for (std::uint32_t t : types_) {
    if (t >= prototiles_.size()) {
      throw std::invalid_argument("Deployment: bad prototile index");
    }
  }
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    if (!index_of_position_.emplace(positions_[i], i).second) {
      throw std::invalid_argument("Deployment: duplicate sensor position");
    }
  }
  if (!positions_.empty()) {
    // Same density demand as coverage_grid: the sentinel id table is
    // O(hull volume), so scattered deployments keep the hash map.
    const std::uint64_t cap = std::min<std::uint64_t>(
        kDenseGridCellCap,
        std::max<std::uint64_t>(std::uint64_t{1} << 16,
                                64 * positions_.size()));
    position_index_ = PointIndexer::try_for_points(positions_, cap);
    if (position_index_.has_value()) {
      // The hash map was only duplicate-detection scratch once the dense
      // index answers sensor_at; release it instead of carrying both.
      index_of_position_ = {};
    }
  }
}

Deployment Deployment::uniform(PointVec positions, Prototile n) {
  std::vector<std::uint32_t> types(positions.size(), 0);
  std::vector<Prototile> protos;
  protos.push_back(std::move(n));
  return Deployment(std::move(positions), std::move(types),
                    std::move(protos));
}

Deployment Deployment::grid(const Box& box, Prototile n) {
  return uniform(box.points(), std::move(n));
}

Deployment Deployment::assemble(PointVec positions,
                                std::vector<std::uint32_t> types,
                                std::vector<Prototile> prototiles) {
  return Deployment(std::move(positions), std::move(types),
                    std::move(prototiles));
}

Deployment Deployment::from_tiling(const Tiling& t, const Box& box) {
  PointVec positions = box.points();
  std::vector<std::uint32_t> types;
  types.reserve(positions.size());
  for (const Point& p : positions) {
    types.push_back(t.covering(p).prototile);
  }
  return Deployment(std::move(positions), std::move(types), t.prototiles());
}

PointVec Deployment::coverage_of(std::size_t i) const {
  return neighborhood_of(i).translated(positions_.at(i));
}

std::optional<std::size_t> Deployment::sensor_at(const Point& p) const {
  if (position_index_.has_value()) {
    const std::uint32_t id = position_index_->id_of(p);
    if (id == PointIndexer::kInvalid) return std::nullopt;
    return static_cast<std::size_t>(id);
  }
  const auto it = index_of_position_.find(p);
  if (it == index_of_position_.end()) return std::nullopt;
  return static_cast<std::size_t>(it->second);
}

std::optional<PointIndexer> Deployment::coverage_grid(
    std::uint64_t max_cells) const {
  if (positions_.empty()) return std::nullopt;
  const std::size_t d = positions_.front().dim();
  // Densifying costs O(hull volume) per consumer, so demand the hull be
  // comparably sized to the actual coverage: sparse-but-wide deployments
  // stay on the hash paths even under the absolute cap.
  std::uint64_t total_coverage = 0;
  for (std::uint32_t t : types_) total_coverage += prototiles_[t].size();
  max_cells = std::min<std::uint64_t>(
      max_cells,
      std::max<std::uint64_t>(std::uint64_t{1} << 16, 32 * total_coverage));
  // Hull of positions, dilated by the hull of every prototile's bounding
  // box: conservative (may include never-covered cells) but exact enough —
  // grid mode answers id_of for every covered point in O(d).
  Point lo = positions_.front(), hi = positions_.front();
  for (const Point& p : positions_) {
    for (std::size_t a = 0; a < d; ++a) {
      lo[a] = std::min(lo[a], p[a]);
      hi[a] = std::max(hi[a], p[a]);
    }
  }
  Point off_lo = Point::zero(d), off_hi = Point::zero(d);
  for (const Prototile& t : prototiles_) {
    const Box bb = t.bounding_box();
    for (std::size_t a = 0; a < d; ++a) {
      off_lo[a] = std::min(off_lo[a], bb.lo()[a]);
      off_hi[a] = std::max(off_hi[a], bb.hi()[a]);
    }
  }
  std::uint64_t volume = 1;
  for (std::size_t a = 0; a < d; ++a) {
    lo[a] += off_lo[a];
    hi[a] += off_hi[a];
    const std::uint64_t extent = static_cast<std::uint64_t>(hi[a] - lo[a] + 1);
    if (extent > max_cells || volume > max_cells / extent) {
      return std::nullopt;
    }
    volume *= extent;
  }
  return PointIndexer::for_box(Box(lo, hi));
}

CsrU32 coverage_ids(const Deployment& d, const PointIndexer& grid) {
  CsrU32 cov;
  cov.begin_counting(d.size());
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    cov.offsets[i + 1] =
        static_cast<std::uint32_t>(d.neighborhood_of(i).size());
  }
  cov.finish_counting();
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    const Point& pos = d.position(i);
    for (const Point& n : d.neighborhood_of(i).points()) {
      const std::uint32_t id = grid.id_of(pos + n);
      if (id == PointIndexer::kInvalid) {
        throw std::invalid_argument(
            "coverage_ids: grid does not cover the deployment");
      }
      cov.push(i, id);
    }
  }
  return cov;
}

CsrU32 build_listeners(const Deployment& d) {
  CsrU32 listeners;
  listeners.begin_counting(d.size());
  for (std::uint32_t u = 0; u < d.size(); ++u) {
    const Point& pos = d.position(u);
    for (const Point& e : d.neighborhood_of(u).points()) {
      const auto r = d.sensor_at(pos + e);
      if (r.has_value() && *r != u) listeners.count(u);
    }
  }
  listeners.finish_counting();
  for (std::uint32_t u = 0; u < d.size(); ++u) {
    const Point& pos = d.position(u);
    for (const Point& e : d.neighborhood_of(u).points()) {
      const auto r = d.sensor_at(pos + e);
      if (r.has_value() && *r != u) {
        listeners.push(u, static_cast<std::uint32_t>(*r));
      }
    }
  }
  return listeners;
}

namespace {

// Seed path, kept for deployments whose coverage hull defeats the grid.
Graph build_conflict_graph_hashed(const Deployment& d) {
  Graph g(d.size());
  PointMap<std::vector<std::uint32_t>> covered_by;
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (const Point& p : d.coverage_of(i)) {
      covered_by[p].push_back(i);
    }
  }
  for (const auto& [p, ids] : covered_by) {
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        g.add_edge(ids[a], ids[b]);
      }
    }
  }
  return g;
}

}  // namespace

Graph build_conflict_graph(const Deployment& d) {
  const auto grid = d.coverage_grid();
  if (!grid.has_value()) return build_conflict_graph_hashed(d);
  // Invert coverage on the dense grid: CSR row per grid cell listing the
  // sensors that cover it; any two of them conflict.
  const CsrU32 cov = coverage_ids(d, *grid);
  CsrU32 covered_by;
  covered_by.begin_counting(grid->size());
  for (std::uint32_t id : cov.values) covered_by.count(id);
  covered_by.finish_counting();
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (std::uint32_t id : cov.row(i)) covered_by.push(id, i);
  }
  // Neighbor enumeration dominates; it parallelizes per sensor because
  // sensor u's conflict partners — every sensor sharing a covered cell —
  // depend only on the (const) CSR tables.  The per-u list is sorted and
  // deduplicated locally, so the resulting adjacency is a pure function
  // of the deployment: byte-identical at any thread count (the
  // determinism test pins threads=1 vs threads=N).
  if (parallel_threads() > 1 && !in_parallel_region() && d.size() >= 256) {
    std::vector<std::vector<std::uint32_t>> adj(d.size());
    parallel_for(
        0, d.size(),
        [&](std::size_t u) {
          auto& out = adj[u];
          for (std::uint32_t id : cov.row(u)) {
            for (std::uint32_t v : covered_by.row(id)) {
              if (v != static_cast<std::uint32_t>(u)) out.push_back(v);
            }
          }
          std::sort(out.begin(), out.end());
          out.erase(std::unique(out.begin(), out.end()), out.end());
        },
        16);
    return Graph::from_sorted_adjacency(std::move(adj));
  }
  Graph g(d.size());
  for (std::size_t cell = 0; cell < covered_by.rows(); ++cell) {
    const auto ids = covered_by.row(cell);
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        g.add_edge(ids[a], ids[b]);
      }
    }
  }
  return g;
}

std::vector<std::vector<std::uint32_t>> build_affects_digraph(
    const Deployment& d) {
  std::vector<std::vector<std::uint32_t>> affects(d.size());
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    const Point& pos = d.position(i);
    for (const Point& n : d.neighborhood_of(i).points()) {
      const auto j = d.sensor_at(pos + n);
      if (j.has_value() && *j != i) {
        affects[i].push_back(static_cast<std::uint32_t>(*j));
      }
    }
    std::sort(affects[i].begin(), affects[i].end());
  }
  return affects;
}

PointVec conflict_candidate_offsets(const Deployment& d,
                                    std::uint32_t type) {
  PointSet seen;
  const Prototile& nu = d.prototiles()[type];
  for (const Prototile& nv : d.prototiles()) {
    for (const Point& a : nu.points()) {
      for (const Point& b : nv.points()) {
        seen.insert(a - b);
      }
    }
  }
  return PointVec(seen.begin(), seen.end());
}

std::int64_t interference_reach(const Deployment& d) {
  std::int64_t reach = 0;
  for (std::uint32_t t = 0; t < d.prototiles().size(); ++t) {
    for (const Point& off : conflict_candidate_offsets(d, t)) {
      reach = std::max(reach, off.norm_inf());
    }
  }
  return reach;
}

CsrU32 build_conflict_block(const Deployment& d,
                            const std::vector<std::uint32_t>& sensors) {
  std::vector<PointVec> offsets_by_type(d.prototiles().size());
  const auto offsets_for = [&](std::uint32_t type) -> const PointVec& {
    PointVec& offsets = offsets_by_type[type];
    if (offsets.empty()) offsets = conflict_candidate_offsets(d, type);
    return offsets;
  };
  // Single-prototile fast path: a candidate offset a - b hitting a
  // sensor v means the cell pos_u + a = pos_v + b is covered by both
  // neighborhoods, so every probe hit IS a conflict — the pairwise
  // confirmation only matters when v's prototile may differ from the
  // one b was drawn from.
  const bool uniform_tiles = d.prototiles().size() == 1;
  CsrU32 block;
  block.offsets.reserve(sensors.size() + 1);
  block.offsets.push_back(0);
  std::vector<std::uint32_t> row;
  for (std::uint32_t u : sensors) {
    if (u >= d.size()) {
      throw std::invalid_argument(
          "build_conflict_block: sensor index out of range");
    }
    row.clear();
    const Point& pos = d.position(u);
    for (const Point& off : offsets_for(d.type_of(u))) {
      const auto v = d.sensor_at(pos + off);
      if (v.has_value() && *v != u &&
          (uniform_tiles || sensors_conflict(d, u, *v))) {
        row.push_back(static_cast<std::uint32_t>(*v));
      }
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    block.values.insert(block.values.end(), row.begin(), row.end());
    if (block.values.size() > 0xFFFFFFFFull) {
      throw std::length_error(
          "build_conflict_block: more than 2^32-1 entries in one block");
    }
    block.offsets.push_back(static_cast<std::uint32_t>(block.values.size()));
  }
  return block;
}

Graph patch_conflict_graph(const Graph& old_graph, const Deployment& new_d,
                           const std::vector<std::uint32_t>& old_to_new,
                           const std::vector<std::uint32_t>& dirty) {
  if (old_to_new.size() != old_graph.size()) {
    throw std::invalid_argument(
        "patch_conflict_graph: old_to_new/old_graph size mismatch");
  }
  const std::size_t n_new = new_d.size();
  std::vector<char> is_dirty(n_new, 0);
  for (std::uint32_t u : dirty) {
    if (u >= n_new) {
      throw std::invalid_argument(
          "patch_conflict_graph: dirty index out of range");
    }
    is_dirty[u] = 1;
  }

  // Clean rows carry over: remap through old_to_new, dropping removed
  // neighbors and dirty neighbors (the dirty rebuild below re-adds any
  // surviving edge to a dirty sensor).  Kept sensors preserve relative
  // order, so remapped rows stay sorted.
  std::vector<std::vector<std::uint32_t>> adj(n_new);
  for (std::uint32_t i = 0; i < old_to_new.size(); ++i) {
    const std::uint32_t j = old_to_new[i];
    if (j == kRemovedSensor) continue;
    if (j >= n_new) {
      throw std::invalid_argument(
          "patch_conflict_graph: old_to_new index out of range");
    }
    if (is_dirty[j]) continue;
    for (std::uint32_t t : old_graph.neighbors(i)) {
      const std::uint32_t nt = old_to_new[t];
      if (nt == kRemovedSensor || is_dirty[nt]) continue;
      adj[j].push_back(nt);
    }
  }

  // Dirty rows rebuild locally.  Dirty-dirty edges are discovered from
  // both endpoints (the predicate is symmetric), so each dirty row is
  // complete on its own; only clean partners need the symmetric insert.
  std::vector<PointVec> offsets_by_type(new_d.prototiles().size());
  for (std::uint32_t u : dirty) {
    const std::uint32_t type = new_d.type_of(u);
    PointVec& offsets = offsets_by_type[type];
    if (offsets.empty()) offsets = conflict_candidate_offsets(new_d, type);
    const Point& pos = new_d.position(u);
    std::vector<std::uint32_t>& row = adj[u];
    for (const Point& off : offsets) {
      const auto v = new_d.sensor_at(pos + off);
      if (v.has_value() && *v != u && sensors_conflict(new_d, u, *v)) {
        row.push_back(static_cast<std::uint32_t>(*v));
      }
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (std::uint32_t v : row) {
      if (is_dirty[v]) continue;
      std::vector<std::uint32_t>& back = adj[v];
      back.insert(std::lower_bound(back.begin(), back.end(), u), u);
    }
  }
  // from_sorted_adjacency re-validates symmetry and ordering, so a patch
  // bug surfaces as an exception instead of a silently wrong schedule.
  return Graph::from_sorted_adjacency(std::move(adj));
}

bool sensors_conflict(const Deployment& d, std::size_t i, std::size_t j) {
  if (i == j) return false;
  // Coverage lists are translates of sorted prototiles, and translation
  // preserves the canonical order, so a two-pointer merge finds any
  // common point without building a set (or allocating at all).
  const PointVec& a = d.neighborhood_of(i).points();
  const PointVec& b = d.neighborhood_of(j).points();
  const Point& pi = d.position(i);
  const Point& pj = d.position(j);
  std::size_t x = 0, y = 0;
  while (x < a.size() && y < b.size()) {
    const Point pa = a[x] + pi;
    const Point pb = b[y] + pj;
    if (pa == pb) return true;
    if (pa < pb) {
      ++x;
    } else {
      ++y;
    }
  }
  return false;
}

}  // namespace latticesched
