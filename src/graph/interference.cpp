#include "graph/interference.hpp"

#include <algorithm>
#include <stdexcept>

namespace latticesched {

Deployment::Deployment(PointVec positions, std::vector<std::uint32_t> types,
                       std::vector<Prototile> prototiles)
    : positions_(std::move(positions)), types_(std::move(types)),
      prototiles_(std::move(prototiles)) {
  if (positions_.size() != types_.size()) {
    throw std::invalid_argument("Deployment: positions/types mismatch");
  }
  if (prototiles_.empty()) {
    throw std::invalid_argument("Deployment: no prototiles");
  }
  for (std::uint32_t t : types_) {
    if (t >= prototiles_.size()) {
      throw std::invalid_argument("Deployment: bad prototile index");
    }
  }
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    if (!index_of_position_.emplace(positions_[i], i).second) {
      throw std::invalid_argument("Deployment: duplicate sensor position");
    }
  }
}

Deployment Deployment::uniform(PointVec positions, Prototile n) {
  std::vector<std::uint32_t> types(positions.size(), 0);
  std::vector<Prototile> protos;
  protos.push_back(std::move(n));
  return Deployment(std::move(positions), std::move(types),
                    std::move(protos));
}

Deployment Deployment::grid(const Box& box, Prototile n) {
  return uniform(box.points(), std::move(n));
}

Deployment Deployment::from_tiling(const Tiling& t, const Box& box) {
  PointVec positions = box.points();
  std::vector<std::uint32_t> types;
  types.reserve(positions.size());
  for (const Point& p : positions) {
    types.push_back(t.covering(p).prototile);
  }
  return Deployment(std::move(positions), std::move(types), t.prototiles());
}

PointVec Deployment::coverage_of(std::size_t i) const {
  return neighborhood_of(i).translated(positions_.at(i));
}

std::optional<std::size_t> Deployment::sensor_at(const Point& p) const {
  const auto it = index_of_position_.find(p);
  if (it == index_of_position_.end()) return std::nullopt;
  return static_cast<std::size_t>(it->second);
}

Graph build_conflict_graph(const Deployment& d) {
  Graph g(d.size());
  // Invert coverage: for every lattice point, the sensors whose broadcast
  // reaches it; any two of them conflict (their coverages share it).
  PointMap<std::vector<std::uint32_t>> covered_by;
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (const Point& p : d.coverage_of(i)) {
      covered_by[p].push_back(i);
    }
  }
  for (const auto& [p, ids] : covered_by) {
    for (std::size_t a = 0; a < ids.size(); ++a) {
      for (std::size_t b = a + 1; b < ids.size(); ++b) {
        g.add_edge(ids[a], ids[b]);
      }
    }
  }
  return g;
}

std::vector<std::vector<std::uint32_t>> build_affects_digraph(
    const Deployment& d) {
  std::vector<std::vector<std::uint32_t>> affects(d.size());
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (const Point& p : d.coverage_of(i)) {
      const auto j = d.sensor_at(p);
      if (j.has_value() && *j != i) {
        affects[i].push_back(static_cast<std::uint32_t>(*j));
      }
    }
    std::sort(affects[i].begin(), affects[i].end());
  }
  return affects;
}

bool sensors_conflict(const Deployment& d, std::size_t i, std::size_t j) {
  if (i == j) return false;
  const PointVec ci = d.coverage_of(i);
  const PointSet si(ci.begin(), ci.end());
  for (const Point& p : d.coverage_of(j)) {
    if (si.count(p) != 0) return true;
  }
  return false;
}

}  // namespace latticesched
