// Deployments and interference graphs.
//
// A deployment places finitely many sensors on lattice points and assigns
// each its interference neighborhood (a prototile).  The paper's collision
// predicate — simultaneous senders s, t collide iff (s+N_s) ∩ (t+N_t) ≠ ∅
// — induces the *conflict graph* whose proper colorings are exactly the
// collision-free slot assignments.  The *affects digraph* (v → u iff u is
// affected by v's radio) is the formulation used in the related work; for
// completeness we provide both and the tests check that conflict equals
// "distance ≤ 2 via a common out-neighbor" in the affects digraph.
//
// Engine note: deployment queries back every verification, graph build
// and simulation step, so positions are indexed by a dense PointIndexer
// grid when the deployment's bounding box permits (always, for the grid
// deployments the experiments use); the seed's hash map remains as the
// fallback for pathologically scattered deployments.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "lattice/point_index.hpp"
#include "lattice/region.hpp"
#include "tiling/prototile.hpp"
#include "tiling/tiling.hpp"
#include "util/csr.hpp"

namespace latticesched {

/// Grid-volume ceiling under which the engine densifies point sets; above
/// it (scattered deployments spanning a huge hull) hash fallbacks engage.
inline constexpr std::uint64_t kDenseGridCellCap = std::uint64_t{1} << 23;

class Deployment {
 public:
  /// Sensors at `positions`, all sharing neighborhood `n`.
  static Deployment uniform(PointVec positions, Prototile n);

  /// Sensors at every point of `box`, all sharing neighborhood `n`.
  static Deployment grid(const Box& box, Prototile n);

  /// Deployment rule D1 of Section 4: sensors at every point of `box`,
  /// each inheriting the prototile of the tile covering it.
  static Deployment from_tiling(const Tiling& t, const Box& box);

  /// General assembly from explicit per-sensor types — the PlanSession's
  /// delta machinery rebuilds deployments through here (a mutated fleet
  /// is neither uniform nor tiling-derived).  Validates exactly like the
  /// other factories: types index `prototiles`, positions are unique.
  static Deployment assemble(PointVec positions,
                             std::vector<std::uint32_t> types,
                             std::vector<Prototile> prototiles);

  std::size_t size() const { return positions_.size(); }
  const PointVec& positions() const { return positions_; }
  const Point& position(std::size_t i) const { return positions_[i]; }
  std::uint32_t type_of(std::size_t i) const { return types_[i]; }
  const std::vector<Prototile>& prototiles() const { return prototiles_; }
  const Prototile& neighborhood_of(std::size_t i) const {
    return prototiles_[types_[i]];
  }

  /// Points affected when sensor i broadcasts (its position + prototile).
  PointVec coverage_of(std::size_t i) const;

  /// Index of the sensor at position p, if any.  O(d) grid arithmetic on
  /// the dense position index; hash lookup only on the fallback path.
  std::optional<std::size_t> sensor_at(const Point& p) const;

  /// Dense grid over the hull of every sensor's coverage, or nullopt when
  /// it would exceed `max_cells`.  The id space shared by the collision
  /// checker and the conflict-graph builder.
  std::optional<PointIndexer> coverage_grid(
      std::uint64_t max_cells = kDenseGridCellCap) const;

 private:
  Deployment(PointVec positions, std::vector<std::uint32_t> types,
             std::vector<Prototile> prototiles);
  PointVec positions_;
  std::vector<std::uint32_t> types_;
  std::vector<Prototile> prototiles_;
  PointMap<std::uint32_t> index_of_position_;
  /// Dense position -> sensor id grid (absent for scattered deployments).
  std::optional<PointIndexer> position_index_;
};

/// Coverage lists of every sensor as grid ids in one CSR buffer: row i
/// holds grid.id_of(p) for p in coverage_of(i), in canonical element
/// order.  `grid` must cover the deployment (see Deployment::coverage_grid).
CsrU32 coverage_ids(const Deployment& d, const PointIndexer& grid);

/// The simulators' listener relation as CSR: row u lists the sensors
/// located inside coverage_of(u), excluding u itself (the radio model's
/// receivers of u's broadcast).  One definition shared by SlotSimulator,
/// convergecast and bootstrap.
CsrU32 build_listeners(const Deployment& d);

/// Undirected conflict graph: edge (i, j) iff coverage_of(i) and
/// coverage_of(j) intersect.  Proper colorings = collision-free schedules.
Graph build_conflict_graph(const Deployment& d);

/// Directed affects relation as adjacency lists: affects[i] lists sensors
/// located inside coverage_of(i) (excluding i itself).
std::vector<std::vector<std::uint32_t>> build_affects_digraph(
    const Deployment& d);

/// Whether sensors i and j conflict per the paper's intersection predicate
/// (allocation-free sorted-order merge; used to cross-check the builders).
bool sensors_conflict(const Deployment& d, std::size_t i, std::size_t j);

/// Candidate neighbor offsets of a sensor of type `type`: every a - b
/// with a in N_type and b in any prototile of the deployment.  A sensor
/// v conflicts u iff pos(v) - pos(u) lies in this set (for v's type), so
/// probing sensor_at over it enumerates every conflict partner of u
/// without touching the rest of the deployment.
PointVec conflict_candidate_offsets(const Deployment& d, std::uint32_t type);

/// Chebyshev interference reach of the deployment: the largest l-inf
/// norm over every type's candidate offsets.  Sensors further apart than
/// this can never conflict — the halo width of the region sharder.
std::int64_t interference_reach(const Deployment& d);

/// Streaming per-region conflict rows: a CSR block with one row per
/// listed sensor (in the given order) holding its full sorted conflict
/// row as GLOBAL sensor ids.  Built by localized sensor_at probes over
/// the candidate-offset sets — cost and memory scale with the block, so
/// million-sensor deployments are planned region by region without ever
/// materializing the all-pairs adjacency of build_conflict_graph.
CsrU32 build_conflict_block(const Deployment& d,
                            const std::vector<std::uint32_t>& sensors);

/// Marks a removed sensor in `old_to_new` index maps.
inline constexpr std::uint32_t kRemovedSensor = 0xffffffffu;

/// Incrementally patches a conflict graph after a deployment delta
/// instead of re-running build_conflict_graph.  `old_graph` is the
/// conflict graph of the previous deployment; `old_to_new[i]` maps old
/// sensor i to its index in `new_d` (kRemovedSensor when it was
/// removed; kept sensors must preserve relative order, added sensors
/// take the trailing indices).  `dirty` lists the NEW indices whose
/// conflict rows cannot be carried over — moved, reshaped and added
/// sensors — sorted ascending.  Clean rows are remapped; dirty rows
/// are rebuilt locally by probing sensor_at over the pairwise
/// difference sets of the prototiles (the localized form of the
/// `affects` relation), so the cost scales with the delta, not the
/// deployment.  The result is exactly build_conflict_graph(new_d).
Graph patch_conflict_graph(const Graph& old_graph, const Deployment& new_d,
                           const std::vector<std::uint32_t>& old_to_new,
                           const std::vector<std::uint32_t>& dirty);

}  // namespace latticesched
