// Deployments and interference graphs.
//
// A deployment places finitely many sensors on lattice points and assigns
// each its interference neighborhood (a prototile).  The paper's collision
// predicate — simultaneous senders s, t collide iff (s+N_s) ∩ (t+N_t) ≠ ∅
// — induces the *conflict graph* whose proper colorings are exactly the
// collision-free slot assignments.  The *affects digraph* (v → u iff u is
// affected by v's radio) is the formulation used in the related work; for
// completeness we provide both and the tests check that conflict equals
// "distance ≤ 2 via a common out-neighbor" in the affects digraph.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "lattice/region.hpp"
#include "tiling/prototile.hpp"
#include "tiling/tiling.hpp"

namespace latticesched {

class Deployment {
 public:
  /// Sensors at `positions`, all sharing neighborhood `n`.
  static Deployment uniform(PointVec positions, Prototile n);

  /// Sensors at every point of `box`, all sharing neighborhood `n`.
  static Deployment grid(const Box& box, Prototile n);

  /// Deployment rule D1 of Section 4: sensors at every point of `box`,
  /// each inheriting the prototile of the tile covering it.
  static Deployment from_tiling(const Tiling& t, const Box& box);

  std::size_t size() const { return positions_.size(); }
  const PointVec& positions() const { return positions_; }
  const Point& position(std::size_t i) const { return positions_[i]; }
  std::uint32_t type_of(std::size_t i) const { return types_[i]; }
  const std::vector<Prototile>& prototiles() const { return prototiles_; }
  const Prototile& neighborhood_of(std::size_t i) const {
    return prototiles_[types_[i]];
  }

  /// Points affected when sensor i broadcasts (its position + prototile).
  PointVec coverage_of(std::size_t i) const;

  /// Index of the sensor at position p, if any.
  std::optional<std::size_t> sensor_at(const Point& p) const;

 private:
  Deployment(PointVec positions, std::vector<std::uint32_t> types,
             std::vector<Prototile> prototiles);
  PointVec positions_;
  std::vector<std::uint32_t> types_;
  std::vector<Prototile> prototiles_;
  PointMap<std::uint32_t> index_of_position_;
};

/// Undirected conflict graph: edge (i, j) iff coverage_of(i) and
/// coverage_of(j) intersect.  Proper colorings = collision-free schedules.
Graph build_conflict_graph(const Deployment& d);

/// Directed affects relation as adjacency lists: affects[i] lists sensors
/// located inside coverage_of(i) (excluding i itself).
std::vector<std::vector<std::uint32_t>> build_affects_digraph(
    const Deployment& d);

/// Whether sensors i and j conflict per the paper's intersection predicate
/// (direct set test; used to cross-check the graph builders).
bool sensors_conflict(const Deployment& d, std::size_t i, std::size_t j);

}  // namespace latticesched
