#include "graph/sa_coloring.hpp"

#include <cmath>

namespace latticesched {

namespace {

// Number of monochromatic edges incident to u under `colors`.
std::size_t vertex_conflicts(const Graph& g, const Coloring& colors,
                             std::uint32_t u) {
  std::size_t c = 0;
  for (std::uint32_t v : g.neighbors(u)) {
    if (colors[v] == colors[u]) ++c;
  }
  return c;
}

std::size_t total_conflicts(const Graph& g, const Coloring& colors) {
  std::size_t c = 0;
  for (std::uint32_t u = 0; u < g.size(); ++u) {
    c += vertex_conflicts(g, colors, u);
  }
  return c / 2;
}

}  // namespace

std::optional<Coloring> sa_find_coloring(const Graph& g, std::uint32_t k,
                                         const SaConfig& config) {
  if (k == 0) {
    if (g.size() == 0) return Coloring{};
    return std::nullopt;
  }
  Rng rng(config.seed ^ (static_cast<std::uint64_t>(k) << 32));
  for (std::uint64_t attempt = 0; attempt < config.restarts; ++attempt) {
    Coloring colors(g.size());
    for (auto& c : colors) {
      c = static_cast<std::uint32_t>(rng.next_below(k));
    }
    std::size_t energy = total_conflicts(g, colors);
    double temperature = config.initial_temperature;
    for (std::uint64_t it = 0; it < config.max_iters && energy > 0; ++it) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(g.size()));
      if (vertex_conflicts(g, colors, u) == 0) continue;
      const auto fresh = static_cast<std::uint32_t>(rng.next_below(k));
      if (fresh == colors[u]) continue;
      const std::size_t before = vertex_conflicts(g, colors, u);
      const std::uint32_t old = colors[u];
      colors[u] = fresh;
      const std::size_t after = vertex_conflicts(g, colors, u);
      const auto delta =
          static_cast<double>(after) - static_cast<double>(before);
      if (delta <= 0 ||
          rng.next_double() < std::exp(-delta / std::max(temperature, 1e-9))) {
        energy = energy + after - before;
      } else {
        colors[u] = old;  // reject
      }
      temperature *= config.cooling;
    }
    if (energy == 0) return colors;
  }
  return std::nullopt;
}

SaScheduleResult sa_min_coloring(const Graph& g, const SaConfig& config) {
  SaScheduleResult out;
  out.coloring = dsatur_coloring(g);
  out.colors = color_count(out.coloring);
  while (out.colors > 1) {
    const std::uint32_t target = out.colors - 1;
    auto attempt = sa_find_coloring(g, target, config);
    out.total_iterations += config.max_iters * config.restarts;
    if (!attempt.has_value()) break;
    out.coloring = std::move(*attempt);
    out.colors = color_count(out.coloring);
  }
  return out;
}

}  // namespace latticesched
