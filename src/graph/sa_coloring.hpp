// Simulated-annealing broadcast scheduling baseline.
//
// The paper's related work cites Wang & Ansari (mean-field annealing) and
// Shi & Wang (neural-network hybrid) as heuristic schedulers for the
// NP-hard broadcast scheduling problem.  This module provides the standard
// simulated-annealing stand-in: fix a slot count k, minimize the number of
// conflicting edges by Metropolis moves, and shrink k while a
// conflict-free assignment keeps being found.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/coloring.hpp"
#include "util/rng.hpp"

namespace latticesched {

struct SaConfig {
  std::uint64_t max_iters = 200'000;   ///< Metropolis steps per k attempt
  double initial_temperature = 2.0;
  double cooling = 0.9999;             ///< geometric cooling per step
  std::uint64_t seed = 42;
  std::uint64_t restarts = 3;          ///< attempts per k before giving up
};

/// Searches for a proper k-coloring by annealing; nullopt when none found
/// within the iteration budget (which does NOT prove non-existence).
std::optional<Coloring> sa_find_coloring(const Graph& g, std::uint32_t k,
                                         const SaConfig& config = {});

struct SaScheduleResult {
  Coloring coloring;
  std::uint32_t colors = 0;
  std::uint64_t total_iterations = 0;
};

/// Starts from the DSATUR solution and repeatedly attempts k-1 colors by
/// annealing until an attempt fails; returns the best proper coloring.
SaScheduleResult sa_min_coloring(const Graph& g, const SaConfig& config = {});

}  // namespace latticesched
