#include "lattice/intmat.hpp"

#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace latticesched {

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::invalid_argument("floor_div: division by zero");
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ext_gcd(std::int64_t a, std::int64_t b, std::int64_t& x,
                     std::int64_t& y) {
  // Iterative extended Euclid keeping Bezout coefficients.
  std::int64_t old_r = a, r = b;
  std::int64_t old_x = 1, xx = 0;
  std::int64_t old_y = 0, yy = 1;
  while (r != 0) {
    const std::int64_t q = old_r / r;
    std::int64_t t = old_r - q * r;
    old_r = r;
    r = t;
    t = old_x - q * xx;
    old_x = xx;
    xx = t;
    t = old_y - q * yy;
    old_y = yy;
    yy = t;
  }
  if (old_r < 0) {
    old_r = -old_r;
    old_x = -old_x;
    old_y = -old_y;
  }
  x = old_x;
  y = old_y;
  return old_r;
}

IntMatrix::IntMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), a_(rows * cols, 0) {}

IntMatrix::IntMatrix(
    std::initializer_list<std::initializer_list<std::int64_t>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  a_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("IntMatrix: ragged initializer");
    }
    for (std::int64_t v : row) a_.push_back(v);
  }
}

IntMatrix IntMatrix::identity(std::size_t n) {
  IntMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntMatrix IntMatrix::diagonal(const std::vector<std::int64_t>& d) {
  IntMatrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m.at(i, i) = d[i];
  return m;
}

IntMatrix IntMatrix::from_columns(const PointVec& cols) {
  if (cols.empty()) throw std::invalid_argument("from_columns: empty");
  const std::size_t dim = cols.front().dim();
  IntMatrix m(dim, cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (cols[j].dim() != dim) {
      throw std::invalid_argument("from_columns: dimension mismatch");
    }
    for (std::size_t i = 0; i < dim; ++i) m.at(i, j) = cols[j][i];
  }
  return m;
}

std::int64_t IntMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("IntMatrix::at");
  return a_[idx(r, c)];
}

std::int64_t& IntMatrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("IntMatrix::at");
  return a_[idx(r, c)];
}

Point IntMatrix::column(std::size_t c) const {
  Point p(rows_);
  for (std::size_t i = 0; i < rows_; ++i) p[i] = at(i, c);
  return p;
}

Point IntMatrix::mul(const Point& p) const {
  if (p.dim() != cols_) throw std::invalid_argument("IntMatrix::mul: dim");
  Point out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::int64_t s = 0;
    for (std::size_t j = 0; j < cols_; ++j) s += at(i, j) * p[j];
    out[i] = s;
  }
  return out;
}

IntMatrix IntMatrix::mul(const IntMatrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("IntMatrix::mul: shape mismatch");
  }
  IntMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::int64_t aik = at(i, k);
      if (aik == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) += aik * other.at(k, j);
      }
    }
  }
  return out;
}

IntMatrix IntMatrix::transpose() const {
  IntMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

bool IntMatrix::operator==(const IntMatrix& o) const {
  return rows_ == o.rows_ && cols_ == o.cols_ && a_ == o.a_;
}

std::int64_t IntMatrix::det() const {
  if (rows_ != cols_) throw std::invalid_argument("det: not square");
  const std::size_t n = rows_;
  if (n == 0) return 1;
  // Bareiss: all intermediate entries are exact minors, kept in 128 bits.
  std::vector<__int128> m(n * n);
  for (std::size_t i = 0; i < n * n; ++i) m[i] = a_[i];
  auto e = [&](std::size_t r, std::size_t c) -> __int128& {
    return m[r * n + c];
  };
  __int128 prev = 1;
  int sign = 1;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (e(k, k) == 0) {
      std::size_t swap_row = k + 1;
      while (swap_row < n && e(swap_row, k) == 0) ++swap_row;
      if (swap_row == n) return 0;
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(e(k, c), e(swap_row, c));
      }
      sign = -sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      for (std::size_t j = k + 1; j < n; ++j) {
        e(i, j) = (e(i, j) * e(k, k) - e(i, k) * e(k, j)) / prev;
      }
      e(i, k) = 0;
    }
    prev = e(k, k);
  }
  const __int128 d = e(n - 1, n - 1) * sign;
  if (d > std::numeric_limits<std::int64_t>::max() ||
      d < std::numeric_limits<std::int64_t>::min()) {
    throw std::overflow_error("det: result exceeds int64");
  }
  return static_cast<std::int64_t>(d);
}

IntMatrix IntMatrix::column_hnf() const {
  if (rows_ != cols_) throw std::invalid_argument("column_hnf: not square");
  const std::size_t n = rows_;
  IntMatrix h = *this;
  // Process rows top-down; column i becomes the pivot column of row i.
  for (std::size_t i = 0; i < n; ++i) {
    // Zero out row i to the right of the pivot with gcd column operations.
    for (std::size_t j = i + 1; j < n; ++j) {
      if (h.at(i, j) == 0) continue;
      std::int64_t x, y;
      const std::int64_t a = h.at(i, i);
      const std::int64_t b = h.at(i, j);
      const std::int64_t g = ext_gcd(a, b, x, y);
      const std::int64_t a_g = a / g;
      const std::int64_t b_g = b / g;
      // Unimodular 2x2 column transform: [col_i col_j] *= [[x, -b/g],
      //                                                    [y,  a/g]]
      for (std::size_t r = 0; r < n; ++r) {
        const std::int64_t ci = h.at(r, i);
        const std::int64_t cj = h.at(r, j);
        h.at(r, i) = ci * x + cj * y;
        h.at(r, j) = -ci * b_g + cj * a_g;
      }
    }
    if (h.at(i, i) == 0) {
      throw std::domain_error("column_hnf: singular matrix");
    }
    if (h.at(i, i) < 0) {
      for (std::size_t r = 0; r < n; ++r) h.at(r, i) = -h.at(r, i);
    }
    // Reduce the entries to the left of the pivot in row i into
    // [0, H[i][i]).  Pivot column i has zeros above row i, so rows < i
    // stay canonical.
    for (std::size_t j = 0; j < i; ++j) {
      const std::int64_t q = floor_div(h.at(i, j), h.at(i, i));
      if (q == 0) continue;
      for (std::size_t r = 0; r < n; ++r) {
        h.at(r, j) -= q * h.at(r, i);
      }
    }
  }
  return h;
}

std::string IntMatrix::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << "[";
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j != 0) os << ", ";
      os << m.at(i, j);
    }
    os << "]";
    if (i + 1 != m.rows()) os << "\n";
  }
  return os;
}

namespace {

// Recursively assigns diagonal entries (divisors of the remaining index),
// then fills the below-diagonal free entries of each row.
void enumerate_rec(std::size_t dim, std::size_t row, std::int64_t remaining,
                   IntMatrix& work, std::vector<IntMatrix>& out) {
  if (row == dim) {
    if (remaining == 1) out.push_back(work);
    return;
  }
  for (std::int64_t d = 1; d <= remaining; ++d) {
    if (remaining % d != 0) continue;
    work.at(row, row) = d;
    // Free entries in row `row`, columns j < row, each in [0, d).
    std::vector<std::int64_t> free(row, 0);
    while (true) {
      for (std::size_t j = 0; j < row; ++j) work.at(row, j) = free[j];
      enumerate_rec(dim, row + 1, remaining / d, work, out);
      // Odometer increment over the mixed-radix vector `free`.
      std::size_t k = 0;
      while (k < row) {
        if (++free[k] < d) break;
        free[k] = 0;
        ++k;
      }
      if (k == row) break;
      if (row == 0) break;  // no free entries: single iteration
    }
    // Reset the row for the next diagonal choice.
    for (std::size_t j = 0; j <= row; ++j) work.at(row, j) = 0;
  }
}

}  // namespace

std::vector<IntMatrix> enumerate_hnf_with_det(std::size_t dim,
                                              std::int64_t index) {
  if (dim == 0 || index <= 0) {
    throw std::invalid_argument("enumerate_hnf_with_det: bad arguments");
  }
  std::vector<IntMatrix> out;
  IntMatrix work(dim, dim);
  enumerate_rec(dim, 0, index, work, out);
  return out;
}

}  // namespace latticesched
