// Exact integer matrix arithmetic.
//
// Tiling search and coset arithmetic need exact linear algebra over Z:
//  * determinants decide the index of a sublattice (Bareiss, fraction-free),
//  * the column-style Hermite Normal Form (HNF) canonicalizes sublattice
//    bases and yields O(d) membership tests and coset reduction,
//  * enumeration of all HNF matrices with a given determinant enumerates
//    all sublattices of Z^d of a given index (used to search for lattice
//    tilings in Section 3 of the paper).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lattice/point.hpp"

namespace latticesched {

/// Floor division (rounds toward -inf); denominator must be nonzero.
std::int64_t floor_div(std::int64_t a, std::int64_t b);

/// Extended gcd: returns g = gcd(a, b) >= 0 and sets x, y with ax + by = g.
std::int64_t ext_gcd(std::int64_t a, std::int64_t b, std::int64_t& x,
                     std::int64_t& y);

/// Dense row-major matrix of int64 with exact arithmetic helpers.
class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(std::size_t rows, std::size_t cols);
  IntMatrix(std::initializer_list<std::initializer_list<std::int64_t>> rows);

  static IntMatrix identity(std::size_t n);
  /// Diagonal matrix from the given entries.
  static IntMatrix diagonal(const std::vector<std::int64_t>& d);
  /// Matrix whose j-th column is cols[j]; all points must share dimension.
  static IntMatrix from_columns(const PointVec& cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::int64_t at(std::size_t r, std::size_t c) const;
  std::int64_t& at(std::size_t r, std::size_t c);

  Point column(std::size_t c) const;
  /// Matrix-vector product A·p (p treated as a column vector).
  Point mul(const Point& p) const;
  IntMatrix mul(const IntMatrix& other) const;
  IntMatrix transpose() const;

  bool operator==(const IntMatrix& o) const;
  bool operator!=(const IntMatrix& o) const { return !(*this == o); }

  /// Exact determinant via Bareiss fraction-free elimination.  Requires a
  /// square matrix; throws std::overflow_error if intermediates exceed
  /// 128-bit capacity (cannot happen for the small matrices used here).
  std::int64_t det() const;

  /// Column-style Hermite Normal Form of a full-rank square matrix:
  /// returns H with H = A·V for some unimodular V, H lower-triangular,
  /// H[i][i] > 0, and 0 <= H[i][j] < H[i][i] for j < i.  The columns of H
  /// generate the same sublattice of Z^d as the columns of A.
  /// Throws std::domain_error when A is singular.
  IntMatrix column_hnf() const;

  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const IntMatrix& m);

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::int64_t> a_;
  std::size_t idx(std::size_t r, std::size_t c) const { return r * cols_ + c; }
};

/// All column-HNF matrices H (lower-triangular canonical form, as produced
/// by IntMatrix::column_hnf) of dimension `dim` with determinant `index`.
/// Each corresponds to exactly one sublattice of Z^dim of that index, so
/// this enumerates sublattices.  Count grows like sigma_{dim-1}(index);
/// intended for small indices (tile sizes).
std::vector<IntMatrix> enumerate_hnf_with_det(std::size_t dim,
                                              std::int64_t index);

}  // namespace latticesched
