#include "lattice/lattice.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace latticesched {

namespace {

// Gauss-Jordan inverse of a small dense matrix; throws on singularity.
std::vector<std::vector<double>> invert(
    const std::vector<std::vector<double>>& m) {
  const std::size_t n = m.size();
  std::vector<std::vector<double>> a = m;
  std::vector<std::vector<double>> inv(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw std::domain_error("Lattice: singular basis matrix");
    }
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    const double p = a[col][col];
    for (std::size_t c = 0; c < n; ++c) {
      a[col][c] /= p;
      inv[col][c] /= p;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a[r][c] -= f * a[col][c];
        inv[r][c] -= f * inv[col][c];
      }
    }
  }
  return inv;
}

}  // namespace

Lattice::Lattice(std::string name,
                 std::vector<std::vector<double>> basis_columns,
                 IntMatrix scaled_gram, std::int64_t gram_scale)
    : name_(std::move(name)), dim_(basis_columns.size()),
      basis_(std::move(basis_columns)), scaled_gram_(std::move(scaled_gram)),
      gram_scale_(gram_scale) {
  if (dim_ == 0 || dim_ > kMaxDim) {
    throw std::invalid_argument("Lattice: bad dimension");
  }
  for (const auto& col : basis_) {
    if (col.size() != dim_) {
      throw std::invalid_argument("Lattice: ragged basis");
    }
  }
  if (scaled_gram_.rows() != dim_ || scaled_gram_.cols() != dim_) {
    throw std::invalid_argument("Lattice: Gram shape mismatch");
  }
  if (gram_scale_ <= 0) {
    throw std::invalid_argument("Lattice: gram_scale must be positive");
  }
  // basis_ stores columns; invert expects rows, so build the row-major
  // matrix B with B[i][j] = basis_[j][i].
  std::vector<std::vector<double>> b(dim_, std::vector<double>(dim_));
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) b[i][j] = basis_[j][i];
  }
  basis_inv_ = invert(b);
}

Lattice Lattice::cubic(std::size_t dim) {
  std::vector<std::vector<double>> cols(dim, std::vector<double>(dim, 0.0));
  for (std::size_t j = 0; j < dim; ++j) cols[j][j] = 1.0;
  return Lattice(dim == 2 ? "square" : "cubic" + std::to_string(dim),
                 std::move(cols), IntMatrix::identity(dim), 1);
}

Lattice Lattice::hexagonal() {
  const double h = std::sqrt(3.0) / 2.0;
  std::vector<std::vector<double>> cols = {{1.0, 0.0}, {0.5, h}};
  // Gram = [[1, 1/2], [1/2, 1]]; scaled by 2: [[2,1],[1,2]].
  return Lattice("hexagonal", std::move(cols), IntMatrix{{2, 1}, {1, 2}}, 2);
}

Lattice Lattice::custom(std::string name,
                        std::vector<std::vector<double>> basis_columns,
                        IntMatrix scaled_gram, std::int64_t gram_scale) {
  return Lattice(std::move(name), std::move(basis_columns),
                 std::move(scaled_gram), gram_scale);
}

RealVec Lattice::embed(const Point& p) const {
  if (p.dim() != dim_) throw std::invalid_argument("embed: dim mismatch");
  RealVec x(dim_, 0.0);
  for (std::size_t j = 0; j < dim_; ++j) {
    const auto pj = static_cast<double>(p[j]);
    if (pj == 0.0) continue;
    for (std::size_t i = 0; i < dim_; ++i) x[i] += pj * basis_[j][i];
  }
  return x;
}

std::int64_t Lattice::norm_sq_scaled(const Point& p) const {
  if (p.dim() != dim_) {
    throw std::invalid_argument("norm_sq_scaled: dim mismatch");
  }
  std::int64_t s = 0;
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      s += p[i] * scaled_gram_.at(i, j) * p[j];
    }
  }
  return s;
}

double Lattice::norm_sq(const Point& p) const {
  return static_cast<double>(norm_sq_scaled(p)) /
         static_cast<double>(gram_scale_);
}

double Lattice::gram_det() const {
  // det(G) = det(s·G) / s^d, computed exactly on the integer form.
  const double scaled = static_cast<double>(scaled_gram_.det());
  return scaled / std::pow(static_cast<double>(gram_scale_),
                           static_cast<double>(dim_));
}

double Lattice::covolume() const { return std::sqrt(gram_det()); }

PointVec Lattice::vectors_within(double radius, std::int64_t box_bound) const {
  if (radius < 0 || box_bound < 0) {
    throw std::invalid_argument("vectors_within: negative bound");
  }
  const double r_sq = radius * radius;
  PointVec out;
  Point p(dim_);
  for (std::size_t i = 0; i < dim_; ++i) p[i] = -box_bound;
  while (true) {
    if (!p.is_zero() && norm_sq(p) <= r_sq + 1e-9) out.push_back(p);
    std::size_t i = 0;
    while (i < dim_) {
      if (++p[i] <= box_bound) break;
      p[i] = -box_bound;
      ++i;
    }
    if (i == dim_) break;
  }
  return sorted_unique(std::move(out));
}

double Lattice::minimum_sq(std::int64_t bound) const {
  double best = std::numeric_limits<double>::infinity();
  Point p(dim_);
  for (std::size_t i = 0; i < dim_; ++i) p[i] = -bound;
  while (true) {
    if (!p.is_zero()) best = std::min(best, norm_sq(p));
    std::size_t i = 0;
    while (i < dim_) {
      if (++p[i] <= bound) break;
      p[i] = -bound;
      ++i;
    }
    if (i == dim_) break;
  }
  return best;
}

Point Lattice::nearest_point(const RealVec& x) const {
  if (x.size() != dim_) {
    throw std::invalid_argument("nearest_point: dim mismatch");
  }
  // Babai rounding: y = round(B⁻¹ x), then refine over {-1,0,1}^d offsets.
  Point base(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) s += basis_inv_[i][j] * x[j];
    base[i] = static_cast<std::int64_t>(std::llround(s));
  }
  auto dist_sq = [&](const Point& p) {
    const RealVec e = embed(p);
    double s = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      const double d = e[i] - x[i];
      s += d * d;
    }
    return s;
  };
  Point best = base;
  double best_d = dist_sq(base);
  Point off(dim_);
  for (std::size_t i = 0; i < dim_; ++i) off[i] = -1;
  while (true) {
    const Point cand = base + off;
    const double d = dist_sq(cand);
    if (d < best_d - 1e-12 ||
        (std::fabs(d - best_d) <= 1e-12 && cand < best)) {
      best_d = d;
      best = cand;
    }
    std::size_t i = 0;
    while (i < dim_) {
      if (++off[i] <= 1) break;
      off[i] = -1;
      ++i;
    }
    if (i == dim_) break;
  }
  return best;
}

std::ostream& operator<<(std::ostream& os, const Lattice& l) {
  os << "Lattice(" << l.name() << ", dim " << l.dim() << ")";
  return os;
}

}  // namespace latticesched
