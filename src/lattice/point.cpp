#include "lattice/point.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace latticesched {

Point::Point(std::size_t dim) : dim_(static_cast<std::uint8_t>(dim)) {
  if (dim > kMaxDim) throw std::invalid_argument("Point: dim > kMaxDim");
}

Point::Point(std::initializer_list<std::int64_t> coords)
    : Point(coords.size()) {
  std::size_t i = 0;
  for (std::int64_t v : coords) c_[i++] = v;
}

Point::Point(const std::vector<std::int64_t>& coords) : Point(coords.size()) {
  for (std::size_t i = 0; i < coords.size(); ++i) c_[i] = coords[i];
}

Point Point::unit(std::size_t dim, std::size_t k) {
  Point p(dim);
  if (k >= dim) throw std::invalid_argument("Point::unit: k >= dim");
  p.c_[k] = 1;
  return p;
}

std::int64_t Point::at(std::size_t i) const {
  if (i >= dim_) throw std::out_of_range("Point::at");
  return c_[i];
}

void Point::check_same_dim(const Point& o) const {
  if (dim_ != o.dim_) {
    throw std::invalid_argument("Point: dimension mismatch");
  }
}

Point& Point::operator+=(const Point& o) {
  check_same_dim(o);
  for (std::size_t i = 0; i < dim_; ++i) c_[i] += o.c_[i];
  return *this;
}

Point& Point::operator-=(const Point& o) {
  check_same_dim(o);
  for (std::size_t i = 0; i < dim_; ++i) c_[i] -= o.c_[i];
  return *this;
}

Point& Point::operator*=(std::int64_t k) {
  for (std::size_t i = 0; i < dim_; ++i) c_[i] *= k;
  return *this;
}

Point Point::operator-() const {
  Point p(dim_);
  for (std::size_t i = 0; i < dim_; ++i) p.c_[i] = -c_[i];
  return p;
}

bool Point::operator==(const Point& o) const {
  if (dim_ != o.dim_) return false;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (c_[i] != o.c_[i]) return false;
  }
  return true;
}

bool Point::operator<(const Point& o) const {
  if (dim_ != o.dim_) return dim_ < o.dim_;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (c_[i] != o.c_[i]) return c_[i] < o.c_[i];
  }
  return false;
}

std::int64_t Point::dot(const Point& o) const {
  check_same_dim(o);
  std::int64_t s = 0;
  for (std::size_t i = 0; i < dim_; ++i) s += c_[i] * o.c_[i];
  return s;
}

std::int64_t Point::norm1() const {
  std::int64_t s = 0;
  for (std::size_t i = 0; i < dim_; ++i) s += std::abs(c_[i]);
  return s;
}

std::int64_t Point::norm_inf() const {
  std::int64_t s = 0;
  for (std::size_t i = 0; i < dim_; ++i) s = std::max(s, std::abs(c_[i]));
  return s;
}

std::int64_t Point::norm2_sq() const {
  std::int64_t s = 0;
  for (std::size_t i = 0; i < dim_; ++i) s += c_[i] * c_[i];
  return s;
}

bool Point::is_zero() const {
  for (std::size_t i = 0; i < dim_; ++i) {
    if (c_[i] != 0) return false;
  }
  return true;
}

std::string Point::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  os << "(";
  for (std::size_t i = 0; i < p.dim(); ++i) {
    if (i != 0) os << ", ";
    os << p[i];
  }
  os << ")";
  return os;
}

std::size_t Point::Hash::operator()(const Point& p) const noexcept {
  // FNV-style mix over coordinates plus the dimension.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ p.dim_;
  for (std::size_t i = 0; i < p.dim_; ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(p.c_[i]);
    v *= 0x9e3779b97f4a7c15ULL;
    v ^= v >> 29;
    h = (h ^ v) * 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h ^ (h >> 32));
}

PointVec sorted_unique(PointVec pts) {
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

}  // namespace latticesched
