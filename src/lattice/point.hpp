// Lattice points.
//
// The paper works with a Euclidean lattice L in R^d; as an abstract group L
// is isomorphic to Z^d, so all combinatorics (prototiles, tilings,
// schedules) are done on integer coordinate vectors.  `Point` is a small
// value type holding up to kMaxDim int64 coordinates inline — no heap
// allocation, cheap to copy and hash, which matters because tiling search
// and the simulator churn through millions of them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace latticesched {

/// Maximum supported lattice dimension.  The paper states its results for
/// arbitrary d; 8 covers every experiment (and E8, should anyone care).
inline constexpr std::size_t kMaxDim = 8;

class Point {
 public:
  /// Zero-dimensional point; mostly useful as a sentinel.
  Point() = default;

  /// Origin of the given dimension.
  explicit Point(std::size_t dim);

  /// From explicit coordinates: Point{1, -2} is (1, -2) in Z^2.
  Point(std::initializer_list<std::int64_t> coords);

  /// From a coordinate vector.
  explicit Point(const std::vector<std::int64_t>& coords);

  static Point zero(std::size_t dim) { return Point(dim); }
  /// k-th standard basis vector e_k of Z^dim.
  static Point unit(std::size_t dim, std::size_t k);

  std::size_t dim() const { return dim_; }

  std::int64_t operator[](std::size_t i) const { return c_[i]; }
  std::int64_t& operator[](std::size_t i) { return c_[i]; }
  std::int64_t at(std::size_t i) const;

  Point& operator+=(const Point& o);
  Point& operator-=(const Point& o);
  Point& operator*=(std::int64_t k);
  friend Point operator+(Point a, const Point& b) { return a += b; }
  friend Point operator-(Point a, const Point& b) { return a -= b; }
  friend Point operator*(Point a, std::int64_t k) { return a *= k; }
  friend Point operator*(std::int64_t k, Point a) { return a *= k; }
  Point operator-() const;

  bool operator==(const Point& o) const;
  bool operator!=(const Point& o) const { return !(*this == o); }
  /// Lexicographic order (dimension first); gives deterministic iteration
  /// when prototile elements must be enumerated in a canonical order.
  bool operator<(const Point& o) const;

  std::int64_t dot(const Point& o) const;
  /// l1 norm Σ|x_i|.
  std::int64_t norm1() const;
  /// l∞ (Chebyshev) norm max|x_i|.
  std::int64_t norm_inf() const;
  /// Squared Euclidean norm Σx_i² (exact, no floating point).
  std::int64_t norm2_sq() const;
  bool is_zero() const;

  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Point& p);

  struct Hash {
    std::size_t operator()(const Point& p) const noexcept;
  };

 private:
  std::array<std::int64_t, kMaxDim> c_{};
  std::uint8_t dim_ = 0;
  void check_same_dim(const Point& o) const;
};

using PointVec = std::vector<Point>;
using PointSet = std::unordered_set<Point, Point::Hash>;
template <typename V>
using PointMap = std::unordered_map<Point, V, Point::Hash>;

/// Sorted, deduplicated copy of `pts` (canonical enumeration order).
PointVec sorted_unique(PointVec pts);

}  // namespace latticesched
