#include "lattice/point_index.hpp"

#include <limits>
#include <stdexcept>

namespace latticesched {

namespace {

Box grid_bounds(const Point& lo,
                const std::array<std::int64_t, kMaxDim>& extent,
                std::size_t dim) {
  Point hi = lo;
  for (std::size_t i = 0; i < dim; ++i) hi[i] += extent[i] - 1;
  return Box(lo, hi);
}

}  // namespace

PointIndexer::PointIndexer(Point lo,
                           std::array<std::int64_t, kMaxDim> extent,
                           bool axis0_fastest)
    : dim_(lo.dim()), lo_(lo), bounds_(grid_bounds(lo, extent, lo.dim())),
      extent_(extent), axis0_fastest_(axis0_fastest) {
  std::uint64_t volume = 1;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (extent_[i] <= 0) {
      throw std::invalid_argument("PointIndexer: empty extent");
    }
    volume *= static_cast<std::uint64_t>(extent_[i]);
  }
  if (volume > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("PointIndexer: grid exceeds uint32 ids");
  }
  std::uint64_t s = 1;
  if (axis0_fastest_) {
    for (std::size_t i = 0; i < dim_; ++i) {
      stride_[i] = s;
      s *= static_cast<std::uint64_t>(extent_[i]);
    }
  } else {
    for (std::size_t i = dim_; i-- > 0;) {
      stride_[i] = s;
      s *= static_cast<std::uint64_t>(extent_[i]);
    }
  }
  size_ = static_cast<std::size_t>(volume);
}

PointIndexer PointIndexer::for_box(const Box& box) {
  std::array<std::int64_t, kMaxDim> extent{};
  for (std::size_t i = 0; i < box.dim(); ++i) extent[i] = box.extent(i);
  return PointIndexer(box.lo(), extent, /*axis0_fastest=*/false);
}

PointIndexer PointIndexer::for_sublattice(const Sublattice& m) {
  // reduce() maps every point to the box [0, H[i][i]) per axis, and every
  // grid point of that box is its own canonical representative, so the
  // coset space is exactly a dense grid.  coset_representatives()
  // increments axis 0 first, hence the axis0-fastest stride order.
  std::array<std::int64_t, kMaxDim> extent{};
  for (std::size_t i = 0; i < m.dim(); ++i) extent[i] = m.basis().at(i, i);
  return PointIndexer(Point::zero(m.dim()), extent, /*axis0_fastest=*/true);
}

PointIndexer PointIndexer::for_points(const PointVec& pts) {
  auto idx = try_for_points(pts, std::numeric_limits<std::uint32_t>::max());
  if (!idx.has_value()) {
    throw std::invalid_argument("PointIndexer: grid exceeds uint32 ids");
  }
  return std::move(*idx);
}

std::optional<PointIndexer> PointIndexer::try_for_points(
    const PointVec& pts, std::uint64_t max_grid_cells) {
  if (pts.empty()) {
    throw std::invalid_argument("PointIndexer: empty point list");
  }
  const std::size_t d = pts.front().dim();
  Point lo = pts.front(), hi = pts.front();
  for (const Point& p : pts) {
    if (p.dim() != d) {
      throw std::invalid_argument("PointIndexer: mixed dimensions");
    }
    for (std::size_t i = 0; i < d; ++i) {
      if (p[i] < lo[i]) lo[i] = p[i];
      if (p[i] > hi[i]) hi[i] = p[i];
    }
  }
  std::array<std::int64_t, kMaxDim> extent{};
  std::uint64_t volume = 1;
  for (std::size_t i = 0; i < d; ++i) {
    extent[i] = hi[i] - lo[i] + 1;
    // Guard overflow before multiplying pathological spreads.
    if (static_cast<std::uint64_t>(extent[i]) > max_grid_cells ||
        volume > max_grid_cells / static_cast<std::uint64_t>(extent[i])) {
      return std::nullopt;
    }
    volume *= static_cast<std::uint64_t>(extent[i]);
  }
  if (volume > max_grid_cells ||
      volume > std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }
  PointIndexer idx(lo, extent, /*axis0_fastest=*/false);
  idx.id_table_.assign(static_cast<std::size_t>(volume), kInvalid);
  idx.points_ = pts;
  idx.size_ = pts.size();
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    std::uint64_t linear = 0;
    for (std::size_t k = 0; k < d; ++k) {
      linear += static_cast<std::uint64_t>(pts[i][k] - lo[k]) *
                idx.stride_[k];
    }
    if (idx.id_table_[linear] != kInvalid) {
      throw std::invalid_argument("PointIndexer: duplicate point");
    }
    idx.id_table_[linear] = i;
  }
  return idx;
}

Point PointIndexer::point_of(std::uint32_t id) const {
  if (id >= size_) {
    throw std::out_of_range("PointIndexer::point_of: bad id");
  }
  if (!points_.empty()) return points_[id];
  Point p = lo_;
  std::uint64_t rest = id;
  if (axis0_fastest_) {
    for (std::size_t i = 0; i < dim_; ++i) {
      p[i] += static_cast<std::int64_t>(
          rest % static_cast<std::uint64_t>(extent_[i]));
      rest /= static_cast<std::uint64_t>(extent_[i]);
    }
  } else {
    for (std::size_t i = dim_; i-- > 0;) {
      p[i] += static_cast<std::int64_t>(
          rest % static_cast<std::uint64_t>(extent_[i]));
      rest /= static_cast<std::uint64_t>(extent_[i]);
    }
  }
  return p;
}

PointVec PointIndexer::points() const {
  if (!points_.empty()) return points_;
  PointVec out;
  out.reserve(size_);
  for (std::uint32_t i = 0; i < size_; ++i) out.push_back(point_of(i));
  return out;
}

}  // namespace latticesched
