// Dense integer indexing of finite point sets — the engine's id space.
//
// Every hot path in the library (torus search, slot lookup, collision
// checking, conflict-graph and simulator construction) ultimately asks the
// same question: "which small integer is this lattice point?"  The seed
// answered it with hash maps (`PointMap`), paying a hash + probe per query
// inside the innermost loops.  `PointIndexer` answers it with arithmetic: a
// point set is embedded in an axis-aligned grid, an id is the mixed-radix
// (strided) linear coordinate, and both directions of the lookup are O(d)
// integer operations with no hashing and no allocation.
//
// Three construction modes cover the library's uses:
//  * for_box:        every point of a Box, ids in Box::points() order
//                    (odometer, last axis fastest);
//  * for_sublattice: the canonical coset representatives of a full-rank
//                    sublattice, ids in coset_representatives() order
//                    (first axis fastest) — the HNF reduce() image is
//                    exactly the box [0, H[0][0]) x ... x [0, H[d-1][d-1]),
//                    so coset ids are a perfect dense code;
//  * for_points:     an arbitrary (duplicate-free) point list, ids in the
//                    given order, backed by a grid-shaped id table over the
//                    bounding box with an invalid-id sentinel.
//
// for_points densifies the bounding box, so callers indexing scattered
// points should bound the admissible grid volume (`try_for_points`) and
// keep a hash-based fallback for pathological spreads.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "lattice/point.hpp"
#include "lattice/region.hpp"
#include "lattice/sublattice.hpp"

namespace latticesched {

class PointIndexer {
 public:
  /// Sentinel returned by id_of for points outside the indexed set.
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  /// Indexes every point of `box`; ids follow Box::points() order.
  static PointIndexer for_box(const Box& box);

  /// Indexes the canonical coset representatives of `m`; ids follow
  /// Sublattice::coset_representatives() order, so
  /// point_of(i) == m.coset_representatives()[i].
  static PointIndexer for_sublattice(const Sublattice& m);

  /// Indexes `pts` (must be duplicate-free); ids follow the given order.
  /// Throws std::invalid_argument on duplicates or an empty list.
  static PointIndexer for_points(const PointVec& pts);

  /// As for_points, but declines (nullopt) when the bounding-box grid
  /// would exceed `max_grid_cells` — callers keep their hash fallback.
  static std::optional<PointIndexer> try_for_points(
      const PointVec& pts, std::uint64_t max_grid_cells);

  std::size_t dim() const { return dim_; }
  /// Number of indexed points; valid ids are [0, size()).
  std::size_t size() const { return size_; }
  /// The grid hull the ids live in.
  const Box& bounds() const { return bounds_; }

  /// Id of p, or kInvalid when p is not an indexed point.  O(d), no
  /// hashing.  (In for_box / for_sublattice mode every grid point is
  /// indexed; in for_points mode the grid table filters non-members.)
  std::uint32_t id_of(const Point& p) const {
    if (p.dim() != dim_) return kInvalid;
    std::uint64_t linear = 0;
    for (std::size_t i = 0; i < dim_; ++i) {
      const std::int64_t c = p[i] - lo_[i];
      if (c < 0 || c >= extent_[i]) return kInvalid;
      linear += static_cast<std::uint64_t>(c) * stride_[i];
    }
    if (id_table_.empty()) return static_cast<std::uint32_t>(linear);
    return id_table_[linear];
  }

  bool contains(const Point& p) const { return id_of(p) != kInvalid; }

  /// Inverse map; id must be < size().  O(d) decode (grid modes) or a
  /// table read (for_points mode).
  Point point_of(std::uint32_t id) const;

  /// Materializes point_of for all ids (in id order).
  PointVec points() const;

 private:
  PointIndexer(Point lo, std::array<std::int64_t, kMaxDim> extent,
               bool axis0_fastest);

  std::size_t dim_ = 0;
  std::size_t size_ = 0;
  Point lo_;
  Box bounds_;
  std::array<std::int64_t, kMaxDim> extent_{};
  std::array<std::uint64_t, kMaxDim> stride_{};
  /// Empty in the dense grid modes; otherwise grid-linear -> id (kInvalid
  /// marks grid cells that are not members of the indexed set).
  std::vector<std::uint32_t> id_table_;
  /// Empty in the dense grid modes; otherwise id -> point storage.
  PointVec points_;
  bool axis0_fastest_ = false;
};

}  // namespace latticesched
