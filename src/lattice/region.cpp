#include "lattice/region.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace latticesched {

Box::Box(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_.dim() != hi_.dim() || lo_.dim() == 0) {
    throw std::invalid_argument("Box: bad corner dimensions");
  }
  for (std::size_t i = 0; i < lo_.dim(); ++i) {
    if (lo_[i] > hi_[i]) {
      throw std::invalid_argument("Box: lo > hi on axis " +
                                  std::to_string(i));
    }
  }
}

Box Box::cube(std::size_t dim, std::int64_t lo, std::int64_t hi) {
  Point l(dim), h(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    l[i] = lo;
    h[i] = hi;
  }
  return Box(l, h);
}

Box Box::centered(std::size_t dim, std::int64_t radius) {
  return cube(dim, -radius, radius);
}

bool Box::contains(const Point& p) const {
  if (p.dim() != dim()) return false;
  for (std::size_t i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

std::uint64_t Box::size() const {
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < dim(); ++i) {
    n *= static_cast<std::uint64_t>(extent(i));
  }
  return n;
}

Box Box::expanded(std::int64_t k) const {
  Point l = lo_, h = hi_;
  for (std::size_t i = 0; i < dim(); ++i) {
    l[i] -= k;
    h[i] += k;
  }
  return Box(l, h);
}

Box Box::translated(const Point& t) const {
  return Box(lo_ + t, hi_ + t);
}

void Box::for_each(const std::function<void(const Point&)>& fn) const {
  Point p = lo_;
  while (true) {
    fn(p);
    // Odometer increment, last axis fastest; stop after wrapping axis 0.
    std::size_t i = dim();
    bool wrapped_all = true;
    while (i-- > 0) {
      if (++p[i] <= hi_[i]) {
        wrapped_all = false;
        break;
      }
      p[i] = lo_[i];
    }
    if (wrapped_all) return;
  }
}

PointVec Box::points() const {
  PointVec out;
  out.reserve(static_cast<std::size_t>(size()));
  for_each([&](const Point& p) { out.push_back(p); });
  return out;
}

std::string Box::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  os << "Box" << b.lo() << ".." << b.hi();
  return os;
}

}  // namespace latticesched
