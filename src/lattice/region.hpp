// Finite windows of the lattice.
//
// Theorems 1 and 2 are stated for the infinite lattice; every concrete
// deployment, verification, and simulation restricts to a finite region.
// `Box` is the axis-aligned window used throughout (the Conclusions section
// analyses when a restriction to a finite D preserves optimality).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "lattice/point.hpp"

namespace latticesched {

/// Axis-aligned box [lo_0, hi_0] x ... x [lo_{d-1}, hi_{d-1}], inclusive.
class Box {
 public:
  Box(Point lo, Point hi);

  /// Cube [lo, hi]^dim.
  static Box cube(std::size_t dim, std::int64_t lo, std::int64_t hi);
  /// Cube [-radius, radius]^dim centered at the origin.
  static Box centered(std::size_t dim, std::int64_t radius);

  std::size_t dim() const { return lo_.dim(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  bool contains(const Point& p) const;

  /// Number of lattice points inside.
  std::uint64_t size() const;

  /// Side length along axis i (number of points).
  std::int64_t extent(std::size_t i) const { return hi_[i] - lo_[i] + 1; }

  /// Box grown by k in every direction (Minkowski sum with [-k, k]^d).
  Box expanded(std::int64_t k) const;

  /// Translated copy.
  Box translated(const Point& t) const;

  /// Visits every point in lexicographic order.
  void for_each(const std::function<void(const Point&)>& fn) const;

  /// Materializes all points (lexicographic order).
  PointVec points() const;

  bool operator==(const Box& o) const { return lo_ == o.lo_ && hi_ == o.hi_; }

  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Box& b);

 private:
  Point lo_, hi_;
};

}  // namespace latticesched
