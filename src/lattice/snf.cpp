#include "lattice/snf.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace latticesched {

namespace {

// Applies S <- S with row op (row_i -= q * row_j), mirrored into U.
void row_op(IntMatrix& s, IntMatrix& u, std::size_t i, std::size_t j,
            std::int64_t q) {
  for (std::size_t c = 0; c < s.cols(); ++c) s.at(i, c) -= q * s.at(j, c);
  for (std::size_t c = 0; c < u.cols(); ++c) u.at(i, c) -= q * u.at(j, c);
}

void col_op(IntMatrix& s, IntMatrix& v, std::size_t i, std::size_t j,
            std::int64_t q) {
  for (std::size_t r = 0; r < s.rows(); ++r) s.at(r, i) -= q * s.at(r, j);
  for (std::size_t r = 0; r < v.rows(); ++r) v.at(r, i) -= q * v.at(r, j);
}

void swap_rows(IntMatrix& s, IntMatrix& u, std::size_t i, std::size_t j) {
  for (std::size_t c = 0; c < s.cols(); ++c) std::swap(s.at(i, c), s.at(j, c));
  for (std::size_t c = 0; c < u.cols(); ++c) std::swap(u.at(i, c), u.at(j, c));
}

void swap_cols(IntMatrix& s, IntMatrix& v, std::size_t i, std::size_t j) {
  for (std::size_t r = 0; r < s.rows(); ++r) std::swap(s.at(r, i), s.at(r, j));
  for (std::size_t r = 0; r < v.rows(); ++r) std::swap(v.at(r, i), v.at(r, j));
}

void negate_row(IntMatrix& s, IntMatrix& u, std::size_t i) {
  for (std::size_t c = 0; c < s.cols(); ++c) s.at(i, c) = -s.at(i, c);
  for (std::size_t c = 0; c < u.cols(); ++c) u.at(i, c) = -u.at(i, c);
}

}  // namespace

SmithDecomposition smith_normal_form(const IntMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("smith_normal_form: square matrices only");
  }
  const std::size_t n = a.rows();
  SmithDecomposition out;
  out.s = a;
  out.u = IntMatrix::identity(n);
  out.v = IntMatrix::identity(n);
  IntMatrix& s = out.s;

  for (std::size_t k = 0; k < n; ++k) {
    // Find a nonzero pivot in the trailing block and move it to (k, k).
    std::size_t pr = n, pc = n;
    for (std::size_t i = k; i < n && pr == n; ++i) {
      for (std::size_t j = k; j < n; ++j) {
        if (s.at(i, j) != 0) {
          pr = i;
          pc = j;
          break;
        }
      }
    }
    if (pr == n) {
      throw std::domain_error("smith_normal_form: singular matrix");
    }
    if (pr != k) swap_rows(s, out.u, pr, k);
    if (pc != k) swap_cols(s, out.v, pc, k);

    // Alternate row/column elimination until row k and column k are
    // clear outside the pivot.
    bool dirty = true;
    while (dirty) {
      dirty = false;
      for (std::size_t i = k + 1; i < n; ++i) {
        while (s.at(i, k) != 0) {
          const std::int64_t q = s.at(i, k) / s.at(k, k);
          row_op(s, out.u, i, k, q);
          if (s.at(i, k) != 0) {
            // Remainder became the smaller value: swap to continue the
            // Euclidean descent.
            swap_rows(s, out.u, i, k);
            dirty = true;
          }
        }
      }
      for (std::size_t j = k + 1; j < n; ++j) {
        while (s.at(k, j) != 0) {
          const std::int64_t q = s.at(k, j) / s.at(k, k);
          col_op(s, out.v, j, k, q);
          if (s.at(k, j) != 0) {
            swap_cols(s, out.v, j, k);
            dirty = true;
          }
        }
      }
    }

    // Divisibility fix-up: the pivot must divide every entry of the
    // trailing block; if some s[i][j] resists, add its row and restart
    // the elimination for this k.
    bool restart = true;
    while (restart) {
      restart = false;
      for (std::size_t i = k + 1; i < n && !restart; ++i) {
        for (std::size_t j = k + 1; j < n && !restart; ++j) {
          if (s.at(i, j) % s.at(k, k) != 0) {
            row_op(s, out.u, k, i, -1);  // row_k += row_i
            restart = true;
          }
        }
      }
      if (restart) {
        // Clear the refreshed row/column again.
        for (std::size_t j = k + 1; j < n; ++j) {
          while (s.at(k, j) != 0) {
            const std::int64_t q = s.at(k, j) / s.at(k, k);
            col_op(s, out.v, j, k, q);
            if (s.at(k, j) != 0) swap_cols(s, out.v, j, k);
          }
        }
        for (std::size_t i = k + 1; i < n; ++i) {
          while (s.at(i, k) != 0) {
            const std::int64_t q = s.at(i, k) / s.at(k, k);
            row_op(s, out.u, i, k, q);
            if (s.at(i, k) != 0) swap_rows(s, out.u, i, k);
          }
        }
      }
    }
    if (s.at(k, k) < 0) negate_row(s, out.u, k);
  }

  out.invariants.reserve(n);
  for (std::size_t k = 0; k < n; ++k) out.invariants.push_back(s.at(k, k));
  return out;
}

std::vector<std::int64_t> quotient_invariants(const Sublattice& m) {
  const SmithDecomposition snf = smith_normal_form(m.basis());
  std::vector<std::int64_t> out;
  for (std::int64_t s : snf.invariants) {
    if (s != 1) out.push_back(s);
  }
  return out;
}

std::string quotient_group_name(const Sublattice& m) {
  const auto inv = quotient_invariants(m);
  if (inv.empty()) return "trivial";
  std::ostringstream os;
  for (std::size_t i = 0; i < inv.size(); ++i) {
    if (i != 0) os << " x ";
    os << "Z/" << inv[i];
  }
  return os.str();
}

}  // namespace latticesched
