// Smith Normal Form and quotient group structure.
//
// For a full-rank sublattice M ⊆ Z^d the quotient Z^d / M is a finite
// abelian group; the Smith Normal Form of a basis matrix of M exposes its
// invariant factors:  Z^d / M ≅ Z/s_1 × Z/s_2 × … × Z/s_d with
// s_1 | s_2 | … | s_d.  The schedules only need coset arithmetic (HNF),
// but the group structure explains tilings: a prototile N tiles with
// translate lattice M exactly when N maps bijectively onto this group,
// i.e. N is a "perfect difference-free system" for the invariant factors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/intmat.hpp"
#include "lattice/sublattice.hpp"

namespace latticesched {

struct SmithDecomposition {
  /// Invariant factors s_1 | s_2 | ... | s_d (all positive).
  std::vector<std::int64_t> invariants;
  /// Unimodular row transform U and column transform V with U·A·V = S.
  IntMatrix u;
  IntMatrix v;
  IntMatrix s;  ///< the diagonal Smith form
};

/// Computes the Smith Normal Form of a square integer matrix via
/// alternating row/column gcd reduction.  Throws std::domain_error for
/// singular input (rank-deficient lattices are out of scope).
SmithDecomposition smith_normal_form(const IntMatrix& a);

/// The invariant factors of Z^d / M, smallest first, with the trivial
/// factors s_i = 1 removed (so the empty vector means M = Z^d).
std::vector<std::int64_t> quotient_invariants(const Sublattice& m);

/// Human-readable quotient description, e.g. "Z/2 x Z/4".
std::string quotient_group_name(const Sublattice& m);

}  // namespace latticesched
