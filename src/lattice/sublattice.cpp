#include "lattice/sublattice.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace latticesched {

Sublattice::Sublattice(const IntMatrix& basis)
    : dim_(basis.rows()), hnf_(basis.column_hnf()), index_(0) {
  if (basis.rows() != basis.cols()) {
    throw std::invalid_argument("Sublattice: basis must be square");
  }
  std::int64_t d = 1;
  for (std::size_t i = 0; i < dim_; ++i) d *= hnf_.at(i, i);
  index_ = d;  // HNF diagonal is positive, so this is |det|
}

Sublattice Sublattice::from_vectors(const PointVec& basis) {
  return Sublattice(IntMatrix::from_columns(basis));
}

Sublattice Sublattice::diagonal(const std::vector<std::int64_t>& diag) {
  for (std::int64_t d : diag) {
    if (d == 0) throw std::invalid_argument("Sublattice::diagonal: zero");
  }
  return Sublattice(IntMatrix::diagonal(diag));
}

Sublattice Sublattice::scaled(std::size_t dim, std::int64_t k) {
  return diagonal(std::vector<std::int64_t>(dim, k));
}

PointVec Sublattice::basis_vectors() const {
  PointVec out;
  out.reserve(dim_);
  for (std::size_t j = 0; j < dim_; ++j) out.push_back(hnf_.column(j));
  return out;
}

Point Sublattice::reduce(const Point& p) const {
  if (p.dim() != dim_) {
    throw std::invalid_argument("Sublattice::reduce: dimension mismatch");
  }
  Point v = p;
  // The HNF basis is lower-triangular with zeros above each pivot, so a
  // top-down sweep leaves earlier coordinates canonical.
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::int64_t d = hnf_.at(i, i);
    const std::int64_t q = floor_div(v[i], d);
    if (q == 0) continue;
    for (std::size_t r = i; r < dim_; ++r) {
      v[r] -= q * hnf_.at(r, i);
    }
  }
  return v;
}

bool Sublattice::contains(const Point& p) const {
  return reduce(p).is_zero();
}

bool Sublattice::congruent(const Point& p, const Point& q) const {
  return reduce(p) == reduce(q);
}

PointVec Sublattice::coset_representatives() const {
  // The canonical representatives are exactly the vectors whose i-th
  // coordinate ranges over [0, H[i][i])... but only for coordinates, not
  // directly: reduce() maps each such candidate to itself (q == 0 in every
  // step), and distinct candidates are incongruent, so the mixed-radix
  // grid below is a complete, duplicate-free list.
  PointVec out;
  out.reserve(static_cast<std::size_t>(index_));
  Point v(dim_);
  while (true) {
    out.push_back(v);
    std::size_t i = 0;
    while (i < dim_) {
      if (++v[i] < hnf_.at(i, i)) break;
      v[i] = 0;
      ++i;
    }
    if (i == dim_) break;
  }
  return out;
}

std::string Sublattice::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Sublattice& m) {
  os << "Sublattice(index " << m.index() << ", basis ";
  for (std::size_t j = 0; j < m.dim(); ++j) {
    if (j != 0) os << " ";
    os << m.basis().column(j);
  }
  os << ")";
  return os;
}

}  // namespace latticesched
