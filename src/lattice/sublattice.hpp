// Full-rank sublattices M of Z^d with canonical (HNF) bases.
//
// A lattice tiling in the sense of the paper often takes the translate set
// T to be a sublattice M: the prototile N tiles Z^d with T = M exactly when
// N is a complete system of coset representatives of Z^d / M (so |N| must
// equal the index [Z^d : M] = |det M|).  This class provides the coset
// arithmetic that makes that check — and the resulting schedules — O(d)
// per point.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lattice/intmat.hpp"
#include "lattice/point.hpp"

namespace latticesched {

class Sublattice {
 public:
  /// From a basis matrix whose columns generate M; must be square and
  /// nonsingular.  The basis is canonicalized to column HNF.
  explicit Sublattice(const IntMatrix& basis);

  /// From basis vectors.
  static Sublattice from_vectors(const PointVec& basis);

  /// Diagonal sublattice d_0 Z x ... x d_{k-1} Z.
  static Sublattice diagonal(const std::vector<std::int64_t>& diag);

  /// Scaled lattice k·Z^dim.
  static Sublattice scaled(std::size_t dim, std::int64_t k);

  std::size_t dim() const { return dim_; }

  /// Index [Z^d : M] = |det(basis)| = number of cosets.
  std::int64_t index() const { return index_; }

  /// Canonical HNF basis (columns generate M).
  const IntMatrix& basis() const { return hnf_; }
  PointVec basis_vectors() const;

  bool contains(const Point& p) const;

  /// Canonical coset representative of p + M: the unique vector congruent
  /// to p with i-th coordinate in [0, H[i][i]).
  Point reduce(const Point& p) const;

  /// Whether p and q lie in the same coset of M.
  bool congruent(const Point& p, const Point& q) const;

  /// All canonical coset representatives, in lexicographic order of the
  /// mixed-radix coordinates; size() == index().
  PointVec coset_representatives() const;

  /// Two sublattices are equal iff their HNF bases coincide.
  bool operator==(const Sublattice& o) const { return hnf_ == o.hnf_; }
  bool operator!=(const Sublattice& o) const { return !(*this == o); }

  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Sublattice& m);

 private:
  std::size_t dim_;
  IntMatrix hnf_;
  std::int64_t index_;
};

}  // namespace latticesched
