#include "lattice/voronoi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace latticesched {

ConvexPolygon::ConvexPolygon(std::vector<Vec2> vertices)
    : vertices_(std::move(vertices)) {}

ConvexPolygon ConvexPolygon::centered_square(double half_width) {
  const double w = half_width;
  return ConvexPolygon({{-w, -w}, {w, -w}, {w, w}, {-w, w}});
}

double ConvexPolygon::area() const {
  if (vertices_.size() < 3) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % vertices_.size()];
    s += a.x * b.y - b.x * a.y;
  }
  return std::fabs(s) / 2.0;
}

ConvexPolygon ConvexPolygon::clip_half_plane(const Vec2& n, double c) const {
  std::vector<Vec2> out;
  const std::size_t k = vertices_.size();
  if (k == 0) return {};
  auto side = [&](const Vec2& p) { return p.x * n.x + p.y * n.y - c; };
  for (std::size_t i = 0; i < k; ++i) {
    const Vec2& cur = vertices_[i];
    const Vec2& nxt = vertices_[(i + 1) % k];
    const double sc = side(cur);
    const double sn = side(nxt);
    if (sc <= 1e-12) out.push_back(cur);
    if ((sc < -1e-12 && sn > 1e-12) || (sc > 1e-12 && sn < -1e-12)) {
      const double t = sc / (sc - sn);
      out.push_back({cur.x + t * (nxt.x - cur.x),
                     cur.y + t * (nxt.y - cur.y)});
    }
  }
  return ConvexPolygon(std::move(out));
}

bool ConvexPolygon::contains(const Vec2& p, double eps) const {
  if (vertices_.size() < 3) return false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % vertices_.size()];
    const double cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if (cross < -eps) return false;  // CCW polygons keep interior left
  }
  return true;
}

double ConvexPolygon::distance_to(const Vec2& p) const {
  if (vertices_.size() < 3) return std::numeric_limits<double>::infinity();
  if (contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % vertices_.size()];
    const double abx = b.x - a.x, aby = b.y - a.y;
    const double apx = p.x - a.x, apy = p.y - a.y;
    const double len_sq = abx * abx + aby * aby;
    double t = len_sq > 0.0 ? (apx * abx + apy * aby) / len_sq : 0.0;
    t = std::max(0.0, std::min(1.0, t));
    const double dx = p.x - (a.x + t * abx);
    const double dy = p.y - (a.y + t * aby);
    best = std::min(best, std::sqrt(dx * dx + dy * dy));
  }
  return best;
}

ConvexPolygon ConvexPolygon::translated(const Vec2& t) const {
  std::vector<Vec2> v = vertices_;
  for (auto& p : v) {
    p.x += t.x;
    p.y += t.y;
  }
  return ConvexPolygon(std::move(v));
}

ConvexPolygon voronoi_cell(const Lattice& lattice) {
  if (lattice.dim() != 2) {
    throw std::invalid_argument("voronoi_cell: 2-D lattices only");
  }
  // Neighbors within twice the covering-radius scale suffice for the
  // well-conditioned bases used here; harvest generously and clip.
  const double reach = 4.0 * std::sqrt(lattice.minimum_sq());
  const PointVec neighbors = lattice.vectors_within(reach, 4);
  ConvexPolygon cell = ConvexPolygon::centered_square(reach);
  for (const Point& v : neighbors) {
    const RealVec e = lattice.embed(v);
    const double len_sq = e[0] * e[0] + e[1] * e[1];
    cell = cell.clip_half_plane({e[0], e[1]}, len_sq / 2.0);
    if (cell.empty()) break;
  }
  // Deduplicate nearly coincident vertices produced by redundant clips.
  const auto& vs = cell.vertices();
  std::vector<Vec2> dedup;
  for (const Vec2& p : vs) {
    if (dedup.empty() ||
        std::fabs(p.x - dedup.back().x) + std::fabs(p.y - dedup.back().y) >
            1e-7) {
      dedup.push_back(p);
    }
  }
  if (dedup.size() > 1) {
    const Vec2& first = dedup.front();
    const Vec2& last = dedup.back();
    if (std::fabs(first.x - last.x) + std::fabs(first.y - last.y) < 1e-7) {
      dedup.pop_back();
    }
  }
  return ConvexPolygon(std::move(dedup));
}

double quasi_polyform_area(const Lattice& lattice, std::size_t tile_size) {
  return static_cast<double>(tile_size) * lattice.covolume();
}

}  // namespace latticesched
