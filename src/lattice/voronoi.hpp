// Voronoi regions of two-dimensional lattices (paper Figure 4).
//
// The Voronoi cell about a lattice point is the set of points of R² at
// least as close to it as to any other lattice point; it is the
// intersection of the half-planes bounded by perpendicular bisectors
// towards the neighboring lattice points.  The union of the cells about
// the points of a prototile N is the quasi-polyform that tiles R² exactly
// when N tiles the lattice (Section 3).
#pragma once

#include <cstddef>
#include <vector>

#include "lattice/lattice.hpp"
#include "lattice/point.hpp"

namespace latticesched {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Convex polygon with counterclockwise vertex order.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;
  explicit ConvexPolygon(std::vector<Vec2> vertices);

  /// Axis-aligned square centered at the origin with the given half-width.
  static ConvexPolygon centered_square(double half_width);

  const std::vector<Vec2>& vertices() const { return vertices_; }
  std::size_t vertex_count() const { return vertices_.size(); }
  bool empty() const { return vertices_.size() < 3; }

  /// Shoelace area (non-negative for CCW order).
  double area() const;

  /// Clips against the half-plane {p : p·n <= c} (Sutherland-Hodgman).
  ConvexPolygon clip_half_plane(const Vec2& n, double c) const;

  /// Point-in-polygon test (boundary counts as inside; eps tolerance).
  bool contains(const Vec2& p, double eps = 1e-9) const;

  /// Euclidean distance from p to the polygon (0 when inside).
  double distance_to(const Vec2& p) const;

  ConvexPolygon translated(const Vec2& t) const;

 private:
  std::vector<Vec2> vertices_;
};

/// The Voronoi cell of the origin of a 2-D lattice.  Deduplicates nearly
/// coincident vertices so the vertex count matches the geometric cell
/// (4 for the square lattice, 6 for the hexagonal lattice).
ConvexPolygon voronoi_cell(const Lattice& lattice);

/// Area of the quasi-polyform built from the Voronoi cells about the
/// points of `tile_points`: |tile| · covolume.  (Cells are disjoint up to
/// boundary, so the union area is the sum.)
double quasi_polyform_area(const Lattice& lattice, std::size_t tile_size);

}  // namespace latticesched
