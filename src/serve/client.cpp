#include "serve/client.hpp"

#include <unistd.h>

#include <chrono>
#include <sstream>
#include <stdexcept>

namespace latticesched::serve {

using dist::WireIoStatus;
using dist::WireMessage;

namespace {

/// Transport loss inside a request attempt; caught by the retry loop,
/// never escapes PlanClient.
struct TransportLost {};

/// Extracts the value after `"key": ` in a one-line JSON object
/// (numbers and escape-free strings — all the serve headers carry).
std::string json_value(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) {
    throw std::invalid_argument("serve client: missing key '" + key +
                                "' in '" + obj + "'");
  }
  std::size_t pos = at + needle.size();
  if (pos < obj.size() && obj[pos] == '"') {
    const std::size_t end = obj.find('"', pos + 1);
    if (end == std::string::npos) {
      throw std::invalid_argument("serve client: unterminated string for '" +
                                  key + "'");
    }
    return obj.substr(pos + 1, end - pos - 1);
  }
  std::size_t end = pos;
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}') ++end;
  return obj.substr(pos, end - pos);
}

std::uint64_t json_u64(const std::string& obj, const std::string& key) {
  return std::stoull(json_value(obj, key));
}

/// Parses a REPLAN RESULT / EVENT body:
/// "<id>\n{header}\n" + plan_results_to_json rows.
ReplanOutcome parse_replan_body(const std::string& body) {
  std::string id_line, rest;
  dist::split_body(body, &id_line, &rest);
  std::string header, rows_json;
  dist::split_body(rest, &header, &rows_json);
  ReplanOutcome out;
  out.session = json_u64(header, "session");
  out.step = json_u64(header, "step");
  out.sensors = static_cast<std::size_t>(json_u64(header, "sensors"));
  out.rows = parse_plan_results_json(rows_json);
  return out;
}

std::vector<PlanResult> rows_to_results(
    const std::vector<PlanResultRow>& rows) {
  std::vector<PlanResult> results;
  results.reserve(rows.size());
  for (const PlanResultRow& row : rows) results.push_back(result_from_row(row));
  return results;
}

}  // namespace

PlanClient::PlanClient(ClientConfig config) : config_(std::move(config)) {
  // OPEN tokens must be unique across every client that ever talks to
  // this server instance; pid + object address + counter is enough
  // without dragging in a clock or RNG.
  std::ostringstream os;
  os << "c" << ::getpid() << "-" << static_cast<const void*>(this) << "-";
  token_prefix_ = os.str();
  connect();
}

PlanClient::~PlanClient() = default;

void PlanClient::connect() {
  const int fd =
      tcp_connect(config_.host, config_.port, config_.connect_timeout_ms);
  channel_ = std::make_unique<TcpChannel>(fd);
  WireMessage hello;
  if (channel_->read(&hello, config_.io_timeout_ms) != WireIoStatus::kOk ||
      hello.verb != "HELLO") {
    channel_.reset();
    throw std::runtime_error("serve client: no HELLO from " + config_.host +
                             ":" + std::to_string(config_.port));
  }
  const std::uint64_t protocol = json_u64(hello.body, "protocol");
  if (protocol != static_cast<std::uint64_t>(dist::kProtocolVersion)) {
    channel_.reset();
    throw std::runtime_error(
        "serve client: protocol mismatch: server speaks v" +
        std::to_string(protocol) + ", this client v" +
        std::to_string(dist::kProtocolVersion));
  }
}

WireMessage PlanClient::request(const WireMessage& message) {
  reconnected_ = false;
  for (int attempt = 0;; ++attempt) {
    try {
      if (channel_ == nullptr) connect();
      if (channel_->write(message, config_.io_timeout_ms) !=
          WireIoStatus::kOk) {
        throw TransportLost{};
      }
      for (;;) {
        WireMessage reply;
        if (channel_->read(&reply, config_.io_timeout_ms) !=
            WireIoStatus::kOk) {
          throw TransportLost{};
        }
        if (reply.verb == "EVENT") {
          // Someone's replan pushed onto a stream we subscribed to —
          // stash it; it is not the response to `message`.
          events_.push_back(parse_replan_body(reply.body));
          continue;
        }
        return reply;
      }
    } catch (const TransportLost&) {
      channel_.reset();
      if (attempt >= config_.max_reconnects) {
        throw std::runtime_error(
            "serve client: connection to " + config_.host + ":" +
            std::to_string(config_.port) + " lost (after " +
            std::to_string(attempt + 1) + " attempts)");
      }
      reconnected_ = true;
    }
  }
}

WireMessage PlanClient::request_checked(const std::string& verb,
                                        const std::string& body) {
  WireMessage reply = request({verb, body});
  if (reply.verb == "ERROR") throw ServerError(reply.body);
  return reply;
}

OpenInfo PlanClient::open(const BatchItem& item) {
  const std::string token = token_prefix_ + std::to_string(next_open_token_++);
  const WireMessage reply = request_checked(
      "OPEN", token + "\n" + batch_items_to_json({item}));
  std::string id_line, header;
  dist::split_body(reply.body, &id_line, &header);
  OpenInfo info;
  info.session = json_u64(header, "session");
  info.scenario = json_value(header, "scenario");
  info.label = json_value(header, "label");
  info.sensors = static_cast<std::size_t>(json_u64(header, "sensors"));
  info.channels = static_cast<std::uint32_t>(json_u64(header, "channels"));
  info.pending = static_cast<std::size_t>(json_u64(header, "pending"));
  next_seq_[info.session] = 0;
  return info;
}

DeltaInfo PlanClient::delta_next(std::uint64_t session) {
  return delta_script(session, "next");
}

DeltaInfo PlanClient::delta_script(std::uint64_t session,
                                   const std::string& script) {
  const std::uint64_t seq = next_seq_[session];
  const WireMessage reply = request_checked(
      "DELTA", std::to_string(session) + " " + std::to_string(seq) + "\n" +
                   script);
  std::string id_line, header;
  dist::split_body(reply.body, &id_line, &header);
  DeltaInfo info;
  info.session = json_u64(header, "session");
  info.seq = json_u64(header, "seq");
  info.step = json_u64(header, "step");
  info.sensors = static_cast<std::size_t>(json_u64(header, "sensors"));
  info.pending = static_cast<std::size_t>(json_u64(header, "pending"));
  next_seq_[session] = seq + 1;
  return info;
}

ReplanOutcome PlanClient::replan(std::uint64_t session) {
  const WireMessage reply =
      request_checked("REPLAN", std::to_string(session));
  return parse_replan_body(reply.body);
}

void PlanClient::subscribe(std::uint64_t session) {
  (void)request_checked("SUBSCRIBE", std::to_string(session));
}

SessionWireStats PlanClient::close_session(std::uint64_t session) {
  WireMessage reply = request({"CLOSE", std::to_string(session)});
  next_seq_.erase(session);
  if (reply.verb == "ERROR") {
    if (reconnected_ &&
        reply.body.rfind("unknown session", 0) == 0) {
      // The first CLOSE landed but its OK died with the connection; the
      // retry found the session gone.  Closed is closed — only the
      // stats are lost.
      return SessionWireStats{};
    }
    throw ServerError(reply.body);
  }
  std::string id_line, stats_json;
  dist::split_body(reply.body, &id_line, &stats_json);
  return session_stats_from_json(stats_json);
}

bool PlanClient::next_event(ReplanOutcome* out, int timeout_ms) {
  if (!events_.empty()) {
    *out = std::move(events_.front());
    events_.pop_front();
    return true;
  }
  if (channel_ == nullptr) return false;
  WireMessage message;
  if (channel_->read(&message, timeout_ms) != WireIoStatus::kOk) {
    return false;
  }
  if (message.verb != "EVENT") return false;  // stray frame; drop
  *out = parse_replan_body(message.body);
  return true;
}

BatchReport PlanClient::run_items(const std::vector<BatchItem>& items) {
  const auto t0 = std::chrono::steady_clock::now();
  BatchReport report;
  report.items.resize(items.size());
  session_stats_.clear();
  std::uint64_t regions_max = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    BatchItemReport& out = report.items[i];
    out.scenario = item.query.scenario;
    std::uint64_t session = 0;
    bool opened = false;
    try {
      const OpenInfo info = open(item);
      session = info.session;
      opened = true;
      out.label = info.label;
      out.sensors = info.sensors;
      out.channels = info.channels;
      out.built = true;

      // Mirror of the PlanService item loop: step 0 replans the initial
      // deployment, then each pending trace step is applied (server
      // side, via DELTA "next") and replanned.
      const ReplanOutcome first = replan(session);
      if (info.pending == 0) {
        out.results = rows_to_results(first.rows);
      } else {
        out.steps.push_back(
            BatchStepReport{0, first.sensors, rows_to_results(first.rows)});
        for (std::size_t k = 0; k < info.pending; ++k) {
          const DeltaInfo delta = delta_next(session);
          const ReplanOutcome stepped = replan(session);
          out.steps.push_back(BatchStepReport{
              delta.step, delta.sensors, rows_to_results(stepped.rows)});
        }
        out.results = out.steps.back().results;
      }

      const SessionWireStats stats = close_session(session);
      session_stats_.emplace_back(out.label, stats);
      report.cache_hits += stats.cache_hits;
      report.cache_misses += stats.cache_misses;
      report.search_subtree_tasks += stats.search_subtree_tasks;
      report.search_steals += stats.search_steals;
      if (!stats.search_kernel.empty()) {
        report.search_kernel = stats.search_kernel;
      }
      if (stats.regions > regions_max) regions_max = stats.regions;
      report.seam_sensors += stats.seam_sensors;
      report.stitch_recolored += stats.stitch_recolored;
    } catch (const ServerError& e) {
      // Same surface as the local run's per-item catch: the item
      // reports its failure, the batch carries on.
      out.built = false;
      out.error = e.what();
      out.results.clear();
      out.steps.clear();
      if (opened) {
        try {
          (void)close_session(session);
        } catch (const std::exception&) {
          // Best-effort; the session will be swept with the server.
        }
      }
    }
  }
  report.regions = regions_max;
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  return report;
}

}  // namespace latticesched::serve
