// Client side of the TCP planning server (see src/serve/server.hpp for
// the frame schemas).
//
// PlanClient wraps one connection with request/response plumbing that
// makes the session verbs safe to RETRY: any transport loss
// (drop-connection fault, server restart of the accept loop, torn
// write) reconnects and resends the same request, and the protocol's
// idempotency hooks — the OPEN token, the DELTA seq — guarantee the
// retry cannot double-open or double-apply.  EVENT frames may arrive
// interleaved with a response (another client replanned a session this
// one subscribed to); they are queued for next_event() rather than
// confused with the reply.
//
// run_items() is the remote twin of PlanService::run: it drives every
// item through a server session (OPEN, DELTA "next" per pending trace
// step, REPLAN per step, CLOSE) and reassembles a BatchReport with the
// same structure, labels, steps, and result rows a local run produces —
// byte-identical through batch_report_to_json modulo wall-clock fields.
// The driver's --connect path runs every existing scenario/backend/
// steps flag through it unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/plan_service.hpp"
#include "core/report.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"

namespace latticesched::serve {

/// A server-reported request failure (the ERROR verb): the request
/// reached the server and was refused — unlike transport errors
/// (std::runtime_error), retrying it is pointless.
struct ServerError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int io_timeout_ms = 30000;    ///< per-frame send/receive deadline
  int connect_timeout_ms = 5000;
  /// Reconnect-and-resend attempts per request before giving up.
  int max_reconnects = 3;
};

/// Parsed OPEN reply.
struct OpenInfo {
  std::uint64_t session = 0;
  std::string scenario;
  std::string label;
  std::size_t sensors = 0;
  std::uint32_t channels = 1;
  std::size_t pending = 0;  ///< queued trace steps awaiting DELTA "next"
};

/// Parsed DELTA reply.
struct DeltaInfo {
  std::uint64_t session = 0;
  std::uint64_t seq = 0;
  std::uint64_t step = 0;
  std::size_t sensors = 0;
  std::size_t pending = 0;
};

/// Parsed REPLAN result (and EVENT payload — same schema).
struct ReplanOutcome {
  std::uint64_t session = 0;
  std::uint64_t step = 0;
  std::size_t sensors = 0;
  std::vector<PlanResultRow> rows;
};

class PlanClient {
 public:
  /// Connects and verifies the server HELLO (protocol version match).
  /// Throws std::runtime_error on connect/timeout/version failures.
  explicit PlanClient(ClientConfig config);
  ~PlanClient();

  PlanClient(const PlanClient&) = delete;
  PlanClient& operator=(const PlanClient&) = delete;

  /// Session verbs.  Each throws ServerError when the server answers
  /// ERROR, and std::runtime_error when the transport is lost beyond
  /// max_reconnects.
  OpenInfo open(const BatchItem& item);
  DeltaInfo delta_next(std::uint64_t session);
  DeltaInfo delta_script(std::uint64_t session, const std::string& script);
  ReplanOutcome replan(std::uint64_t session);
  void subscribe(std::uint64_t session);
  /// Closes the session and returns its server-side stats.  When the
  /// response was lost to a reconnect and the retry finds the session
  /// already gone, the close still counts as done and the stats come
  /// back zeroed (the one retry case the wire cannot make exact).
  SessionWireStats close_session(std::uint64_t session);

  /// Next queued EVENT, or waits up to `timeout_ms` for one to arrive.
  /// Returns false on timeout.  NOTE: subscriptions are per-connection;
  /// a reconnect drops them (re-subscribe after any request that
  /// reconnected — see reconnected_during_last_request()).
  bool next_event(ReplanOutcome* out, int timeout_ms);

  /// The remote PlanService::run (see file comment).  Item build
  /// failures come back as built=false reports, like the local path.
  BatchReport run_items(const std::vector<BatchItem>& items);

  /// Per-session (label, stats) pairs of the most recent run_items call,
  /// in item order — the driver's --cache-stats footer rows.
  const std::vector<std::pair<std::string, SessionWireStats>>&
  session_stats() const {
    return session_stats_;
  }

  /// Raw request/response for protocol tests: sends `message`, queues
  /// interleaved EVENTs, returns the reply (ERROR replies are returned,
  /// not thrown).  Reconnects and resends on transport loss.
  dist::WireMessage request(const dist::WireMessage& message);

  /// True when the most recent request had to reconnect (its response
  /// may have been served by an idempotent replay; subscriptions died).
  bool reconnected_during_last_request() const { return reconnected_; }

 private:
  void connect();
  dist::WireMessage request_checked(const std::string& verb,
                                    const std::string& body);

  ClientConfig config_;
  std::unique_ptr<TcpChannel> channel_;
  std::vector<std::pair<std::string, SessionWireStats>> session_stats_;
  std::deque<ReplanOutcome> events_;
  /// Next DELTA seq per session id (the idempotency counter).
  std::map<std::uint64_t, std::uint64_t> next_seq_;
  std::uint64_t next_open_token_ = 0;
  std::string token_prefix_;  ///< unique-ish per client instance
  bool reconnected_ = false;
};

}  // namespace latticesched::serve
