#include "serve/server.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/plan_session.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "dist/wire.hpp"

namespace latticesched::serve {

using dist::FaultAction;
using dist::FaultKind;
using dist::WireIoStatus;
using dist::WireMessage;

namespace {

/// Read slice for connection loops: short enough that stop() is
/// noticed promptly, long enough to stay off the scheduler's back.
constexpr int kReadSliceMs = 200;

std::uint64_t parse_u64_text(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("serve: bad ") + what + " '" +
                                text + "'");
  }
}

/// Extracts the value after `"key": ` in a one-line JSON object
/// (numbers and quoted strings without escapes — the stats/header
/// schemas emitted below never need more).
std::string json_value(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) {
    throw std::invalid_argument("serve: missing key '" + key + "' in '" +
                                obj + "'");
  }
  std::size_t pos = at + needle.size();
  if (pos < obj.size() && obj[pos] == '"') {
    const std::size_t end = obj.find('"', pos + 1);
    if (end == std::string::npos) {
      throw std::invalid_argument("serve: unterminated string for '" + key +
                                  "'");
    }
    return obj.substr(pos + 1, end - pos - 1);
  }
  std::size_t end = pos;
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}') ++end;
  return obj.substr(pos, end - pos);
}

}  // namespace

std::string session_stats_to_json(const SessionWireStats& stats) {
  std::ostringstream os;
  os << "{\"replans\": " << stats.replans
     << ", \"deltas\": " << stats.deltas
     << ", \"graph_builds\": " << stats.graph_builds
     << ", \"graph_patches\": " << stats.graph_patches
     << ", \"warm_greedy\": " << stats.warm_greedy
     << ", \"regions\": " << stats.regions
     << ", \"regions_replanned\": " << stats.regions_replanned
     << ", \"seam_sensors\": " << stats.seam_sensors
     << ", \"stitch_recolored\": " << stats.stitch_recolored
     << ", \"cache_hits\": " << stats.cache_hits
     << ", \"cache_misses\": " << stats.cache_misses
     << ", \"search_subtree_tasks\": " << stats.search_subtree_tasks
     << ", \"search_steals\": " << stats.search_steals
     << ", \"search_kernel\": \"" << stats.search_kernel << "\"}";
  return os.str();
}

SessionWireStats session_stats_from_json(const std::string& json) {
  SessionWireStats stats;
  stats.replans = parse_u64_text(json_value(json, "replans"), "replans");
  stats.deltas = parse_u64_text(json_value(json, "deltas"), "deltas");
  stats.graph_builds =
      parse_u64_text(json_value(json, "graph_builds"), "graph_builds");
  stats.graph_patches =
      parse_u64_text(json_value(json, "graph_patches"), "graph_patches");
  stats.warm_greedy =
      parse_u64_text(json_value(json, "warm_greedy"), "warm_greedy");
  stats.regions = parse_u64_text(json_value(json, "regions"), "regions");
  stats.regions_replanned = parse_u64_text(
      json_value(json, "regions_replanned"), "regions_replanned");
  stats.seam_sensors =
      parse_u64_text(json_value(json, "seam_sensors"), "seam_sensors");
  stats.stitch_recolored = parse_u64_text(
      json_value(json, "stitch_recolored"), "stitch_recolored");
  stats.cache_hits =
      parse_u64_text(json_value(json, "cache_hits"), "cache_hits");
  stats.cache_misses =
      parse_u64_text(json_value(json, "cache_misses"), "cache_misses");
  stats.search_subtree_tasks = parse_u64_text(
      json_value(json, "search_subtree_tasks"), "search_subtree_tasks");
  stats.search_steals =
      parse_u64_text(json_value(json, "search_steals"), "search_steals");
  stats.search_kernel = json_value(json, "search_kernel");
  return stats;
}

/// One accepted connection: the channel, its slice of the serve fault
/// plan, and the outbound frame counter the drop-connection trigger
/// counts (PONGs excluded, like the worker's injector).
struct PlanServer::Connection {
  Connection(int fd, std::uint64_t id, dist::FaultPlan faults)
      : channel(fd), id(id), faults(std::move(faults)) {}

  TcpChannel channel;
  std::uint64_t id;
  dist::FaultPlan faults;
  std::mutex send_mu;
  std::uint64_t frames_out = 0;  ///< counted sends; under send_mu
  bool dropped = false;          ///< drop-connection fired; under send_mu
};

/// Server-side session state.  Lives in the session map, NOT in any
/// connection: connections come and go (including by scripted
/// drop-connection faults), the session persists until CLOSE.
struct PlanServer::WireSession {
  std::mutex mu;

  std::string scenario;
  std::string label;
  std::size_t initial_sensors = 0;
  std::uint32_t channels = 1;

  /// Scenario geometry the PlanSession borrows pointers into; must
  /// live exactly as long as the session.
  std::optional<Lattice> lattice;
  std::optional<Tiling> tiling;

  std::unique_ptr<PlanSession> session;

  /// The item's mutation trace, applied one step per DELTA "next".
  std::vector<MutationStep> pending;
  std::size_t next_pending = 0;
  std::uint64_t last_step = 0;  ///< step tag of the latest applied delta

  /// DELTA idempotency: seq of the next fresh DELTA, plus the stored
  /// OK of the previous one (replayed when a reconnecting client
  /// retries a request whose response a dropped connection ate).
  std::uint64_t next_delta_seq = 0;
  WireMessage last_delta_ok;
  WireMessage open_ok;  ///< replayed on an idempotent re-OPEN

  /// This session's share of the shared cache traffic (before/after
  /// snapshots around its replans; approximate under concurrency).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t search_subtree_tasks = 0;
  std::uint64_t search_steals = 0;
  std::string search_kernel;

  /// EVENT-stream subscribers (pruned lazily as connections die).
  std::vector<std::weak_ptr<Connection>> subscribers;
};

PlanServer::PlanServer(ServerConfig config) : config_(std::move(config)) {
  if (!config_.fault_spec.empty()) {
    fault_plan_ = dist::FaultPlan::parse(config_.fault_spec);
  }
  if (!config_.cache_dir.empty()) {
    service_.tiling_cache().set_persist_dir(config_.cache_dir);
    service_.tune_cache().set_persist_dir(config_.cache_dir);
  }
  if (fault_plan_.has_cache_faults()) {
    service_.tiling_cache().set_write_corruption_hook(
        dist::cache_corruption_hook(fault_plan_));
  }
}

PlanServer::~PlanServer() { stop(); }

void PlanServer::start() {
  listener_ = std::make_unique<TcpListener>(config_.host, config_.port);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint16_t PlanServer::port() const {
  return listener_ != nullptr ? listener_->port() : config_.port;
}

void PlanServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (!started_) return;
  listener_->shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
    threads.swap(threads_);
  }
  for (const auto& conn : conns) conn->channel.shutdown();
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

PlanServer::Stats PlanServer::stats() const {
  Stats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_dropped =
      connections_dropped_.load(std::memory_order_relaxed);
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  stats.events_pushed = events_pushed_.load(std::memory_order_relaxed);
  stats.assigns_served = assigns_served_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    stats.open_sessions = sessions_.size();
  }
  return stats;
}

void PlanServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = listener_->accept_connection(kReadSliceMs);
    if (fd < 0) continue;  // timeout or shutdown; the loop rechecks stop_
    const std::uint64_t cid =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(
        fd, cid, fault_plan_.for_connection(cid));
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    threads_.emplace_back([this, conn] { handle_connection(conn); });
  }
}

bool PlanServer::send(Connection& conn, const WireMessage& message) {
  std::lock_guard<std::mutex> lock(conn.send_mu);
  if (conn.dropped) return false;
  const std::uint64_t frame = conn.frames_out++;
  for (const FaultAction& action : conn.faults.actions) {
    if (action.kind == FaultKind::kDropConnection &&
        frame == action.after_frames) {
      // Hard-close right before this frame goes out: the client sees a
      // torn connection, the session map does not.
      conn.dropped = true;
      conn.channel.shutdown();
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return conn.channel.write(message, config_.io_timeout_ms) ==
         WireIoStatus::kOk;
}

void PlanServer::handle_connection(std::shared_ptr<Connection> conn) {
  // delay-accept faults stall servicing of this connection (the TCP
  // accept already happened; the client waits on the HELLO).
  for (const FaultAction& action : conn->faults.actions) {
    if (action.kind == FaultKind::kDelayAcceptMs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(action.ms));
    }
  }
  if (send(*conn,
           {"HELLO",
            "{\"protocol\": " + std::to_string(dist::kProtocolVersion) +
                ", \"role\": \"server\"}"})) {
    for (;;) {
      WireMessage message;
      const WireIoStatus st = conn->channel.read(&message, kReadSliceMs);
      if (st == WireIoStatus::kTimeout) {
        if (stop_.load(std::memory_order_acquire)) break;
        continue;
      }
      if (st == WireIoStatus::kClosed) break;  // EOF or lost framing
      if (!handle_message(*conn, message)) break;
    }
  }
  // Half-close so the peer sees EOF immediately; the fd itself lives
  // until the Connection is destroyed (concurrent EVENT pushers may
  // still hold the pointer — their sends fail cleanly).
  conn->channel.shutdown();
}

bool PlanServer::handle_message(Connection& conn,
                                const WireMessage& message) {
  if (message.verb == "PING") {
    // Uncounted (like the worker's PONG): probe timing must not shift
    // the deterministic drop-connection triggers.
    std::lock_guard<std::mutex> lock(conn.send_mu);
    if (conn.dropped) return false;
    return conn.channel.write({"PONG", ""}, config_.io_timeout_ms) ==
           WireIoStatus::kOk;
  }
  if (message.verb == "SHUTDOWN") return false;  // sessions survive
  try {
    if (message.verb == "OPEN") {
      handle_open(conn, message.body);
    } else if (message.verb == "DELTA") {
      handle_delta(conn, message.body);
    } else if (message.verb == "REPLAN") {
      handle_replan(conn, message.body);
    } else if (message.verb == "SUBSCRIBE") {
      handle_subscribe(conn, message.body);
    } else if (message.verb == "CLOSE") {
      handle_close(conn, message.body);
    } else if (message.verb == "ASSIGN") {
      handle_assign(conn, message.body);
    } else {
      // Unknown verbs answer ERROR and leave the connection (and its
      // sessions) alone — a typo'd client verb is not a protocol loss.
      return send(conn,
                  {"ERROR", "unknown verb '" + message.verb + "'"});
    }
  } catch (const std::exception& e) {
    return send(conn, {"ERROR", e.what()});
  }
  return true;
}

std::shared_ptr<PlanServer::WireSession> PlanServer::find_session(
    const std::string& id_text, std::uint64_t* id) {
  *id = parse_u64_text(id_text, "session id");
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto it = sessions_.find(*id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("unknown session " + id_text);
  }
  return it->second;
}

void PlanServer::handle_open(Connection& conn, const std::string& body) {
  std::string token, items_json;
  dist::split_body(body, &token, &items_json);
  if (!token.empty()) {
    // Idempotent re-OPEN: a reconnecting client retrying an OPEN whose
    // OK a dropped connection ate must not leak a second session.
    std::shared_ptr<WireSession> existing;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      const auto it = open_tokens_.find(token);
      if (it != open_tokens_.end()) existing = sessions_.at(it->second);
    }
    if (existing != nullptr) {
      std::lock_guard<std::mutex> lock(existing->mu);
      (void)send(conn, existing->open_ok);
      return;
    }
  }

  const std::vector<BatchItem> items = parse_batch_items_json(items_json);
  if (items.size() != 1) {
    throw std::invalid_argument("OPEN expects exactly one batch item, got " +
                                std::to_string(items.size()));
  }
  const BatchItem& item = items.front();
  for (const std::string& name : item.backends) {
    if (PlannerRegistry::global().find(name) == nullptr) {
      throw std::invalid_argument("unknown backend '" + name + "'");
    }
  }

  // Mirror of the PlanService item path (core/plan_service.cpp), with
  // the trace queued instead of replayed — the client drives each step
  // through DELTA, which is what keeps remote and local runs
  // result-identical step for step.
  ScenarioInstance instance = ScenarioRegistry::global().build(
      item.query.scenario, item.query.params, &service_.tiling_cache());
  auto ws = std::make_shared<WireSession>();
  ws->scenario = item.query.scenario;
  ws->label = instance.label;
  ws->initial_sensors = instance.deployment.size();
  ws->channels = instance.channels;
  ws->lattice = std::move(instance.lattice);
  ws->tiling = std::move(instance.tiling);
  MutationTrace trace = std::move(instance.trace);
  if (!item.trace_script.empty()) {
    trace = parse_mutation_script(item.trace_script);
  }
  ws->pending = std::move(trace.steps);

  SessionConfig config;
  config.backends = item.backends;
  config.search = item.search;
  config.sa = item.sa;
  config.verify = item.verify;
  config.regions = item.regions;
  config.region_halo = item.region_halo;
  config.channels = ws->channels;
  if (ws->lattice.has_value()) config.lattice = &*ws->lattice;
  if (ws->tiling.has_value()) config.tiling = &*ws->tiling;
  config.tiling_cache = &service_.tiling_cache();
  config.planners = &PlannerRegistry::global();
  config.tune_cache = &service_.tune_cache();
  config.tune_trials = item.tune_trials;
  config.tune_budget_ms = item.tune_budget_ms;
  config.tune_family = item.query.scenario;
  ws->session =
      std::make_unique<PlanSession>(std::move(instance.deployment), config);

  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    id = next_session_id_++;
    sessions_[id] = ws;
    if (!token.empty()) open_tokens_[token] = id;
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);

  std::ostringstream os;
  os << id << "\n{\"session\": " << id << ", \"scenario\": \""
     << ws->scenario << "\", \"label\": \"" << ws->label
     << "\", \"sensors\": " << ws->initial_sensors
     << ", \"channels\": " << ws->channels
     << ", \"pending\": " << ws->pending.size() << "}";
  ws->open_ok = {"OK", os.str()};
  std::lock_guard<std::mutex> lock(ws->mu);
  (void)send(conn, ws->open_ok);
}

void PlanServer::handle_delta(Connection& conn, const std::string& body) {
  std::string first, payload;
  dist::split_body(body, &first, &payload);
  const std::size_t space = first.find(' ');
  if (space == std::string::npos) {
    throw std::invalid_argument("DELTA expects '<session> <seq>'");
  }
  std::uint64_t id = 0;
  const std::shared_ptr<WireSession> ws =
      find_session(first.substr(0, space), &id);
  const std::uint64_t seq =
      parse_u64_text(first.substr(space + 1), "delta seq");

  std::lock_guard<std::mutex> lock(ws->mu);
  if (seq + 1 == ws->next_delta_seq) {
    // The previous DELTA, retried: its response was lost with a dropped
    // connection.  Replay the stored OK instead of double-applying.
    (void)send(conn, ws->last_delta_ok);
    return;
  }
  if (seq != ws->next_delta_seq) {
    throw std::invalid_argument(
        "delta seq out of order: expected " +
        std::to_string(ws->next_delta_seq) + ", got " + std::to_string(seq));
  }
  if (payload == "next") {
    if (ws->next_pending >= ws->pending.size()) {
      throw std::invalid_argument("no pending trace steps");
    }
    const MutationStep& step = ws->pending[ws->next_pending];
    ws->session->apply(step.delta);
    ws->last_step = step.at;
    ++ws->next_pending;
  } else {
    // Inline script: timestamps are relative to the session's current
    // step, so scripts compose with a partially replayed trace.
    const MutationTrace trace = parse_mutation_script(payload);
    const std::uint64_t base = ws->last_step;
    for (const MutationStep& step : trace.steps) {
      ws->session->apply(step.delta);
      ws->last_step = base + step.at;
    }
  }
  std::ostringstream os;
  os << id << "\n{\"session\": " << id << ", \"seq\": " << seq
     << ", \"step\": " << ws->last_step
     << ", \"sensors\": " << ws->session->deployment().size()
     << ", \"pending\": " << (ws->pending.size() - ws->next_pending) << "}";
  ws->last_delta_ok = {"OK", os.str()};
  ++ws->next_delta_seq;
  (void)send(conn, ws->last_delta_ok);
}

void PlanServer::handle_replan(Connection& conn, const std::string& body) {
  std::string first, rest;
  dist::split_body(body, &first, &rest);
  std::uint64_t id = 0;
  const std::shared_ptr<WireSession> ws = find_session(first, &id);

  std::lock_guard<std::mutex> lock(ws->mu);
  const TilingCache::Stats before = service_.tiling_cache().stats();
  const std::vector<PlanResult> results = ws->session->replan();
  const TilingCache::Stats after = service_.tiling_cache().stats();
  ws->cache_hits += after.hits - before.hits;
  ws->cache_misses += after.misses - before.misses;
  ws->search_subtree_tasks +=
      after.search_subtree_tasks - before.search_subtree_tasks;
  ws->search_steals += after.search_steals - before.search_steals;
  if (!after.search_kernel.empty()) ws->search_kernel = after.search_kernel;

  std::ostringstream os;
  os << id << "\n{\"session\": " << id << ", \"step\": " << ws->last_step
     << ", \"sensors\": " << ws->session->deployment().size() << "}\n"
     << plan_results_to_json(results, ws->label, ws->last_step);
  const WireMessage result{"RESULT", os.str()};
  (void)send(conn, result);

  // The session-event stream: the same body, pushed to every live
  // subscriber.  Sent under ws->mu so two replans of one session can
  // never interleave their events out of order.
  const WireMessage event{"EVENT", result.body};
  std::size_t kept = 0;
  for (std::weak_ptr<Connection>& weak : ws->subscribers) {
    const std::shared_ptr<Connection> sub = weak.lock();
    if (sub == nullptr) continue;  // connection gone; prune
    if (send(*sub, event)) {
      events_pushed_.fetch_add(1, std::memory_order_relaxed);
    }
    ws->subscribers[kept++] = weak;
  }
  ws->subscribers.resize(kept);
}

void PlanServer::handle_subscribe(Connection& conn,
                                  const std::string& body) {
  std::string first, rest;
  dist::split_body(body, &first, &rest);
  std::uint64_t id = 0;
  const std::shared_ptr<WireSession> ws = find_session(first, &id);
  std::shared_ptr<Connection> self;
  {
    // The subscriber list holds weak refs to connections; find our own
    // shared_ptr in the registry.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& candidate : conns_) {
      if (candidate.get() == &conn) {
        self = candidate;
        break;
      }
    }
  }
  if (self == nullptr) {
    throw std::runtime_error("subscribe: connection not registered");
  }
  std::lock_guard<std::mutex> lock(ws->mu);
  ws->subscribers.push_back(self);
  std::ostringstream os;
  os << id << "\n{\"session\": " << id << ", \"subscribed\": true}";
  (void)send(conn, {"OK", os.str()});
}

void PlanServer::handle_close(Connection& conn, const std::string& body) {
  std::string first, rest;
  dist::split_body(body, &first, &rest);
  const std::uint64_t id = parse_u64_text(first, "session id");
  std::shared_ptr<WireSession> ws;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      throw std::invalid_argument("unknown session " + first);
    }
    ws = it->second;
    sessions_.erase(it);
    for (auto token_it = open_tokens_.begin();
         token_it != open_tokens_.end();) {
      token_it = token_it->second == id ? open_tokens_.erase(token_it)
                                        : std::next(token_it);
    }
  }
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(ws->mu);
  const PlanSession::Stats& st = ws->session->stats();
  SessionWireStats stats;
  stats.replans = st.replans;
  stats.deltas = st.deltas;
  stats.graph_builds = st.graph_builds;
  stats.graph_patches = st.graph_patches;
  stats.warm_greedy = st.warm_greedy;
  stats.regions = st.regions;
  stats.regions_replanned = st.regions_replanned;
  stats.seam_sensors = st.seam_sensors;
  stats.stitch_recolored = st.stitch_recolored;
  stats.cache_hits = ws->cache_hits;
  stats.cache_misses = ws->cache_misses;
  stats.search_subtree_tasks = ws->search_subtree_tasks;
  stats.search_steals = ws->search_steals;
  stats.search_kernel = ws->search_kernel;
  (void)send(conn,
             {"OK", first + "\n" + session_stats_to_json(stats)});
}

void PlanServer::handle_assign(Connection& conn, const std::string& body) {
  std::string shard_id, items_json;
  dist::split_body(body, &shard_id, &items_json);
  const std::vector<BatchItem> items = parse_batch_items_json(items_json);
  const BatchReport report = service_.run(items);
  assigns_served_.fetch_add(1, std::memory_order_relaxed);
  (void)send(conn,
             {"RESULT", shard_id + "\n" + batch_report_to_json(report)});
}

}  // namespace latticesched::serve
