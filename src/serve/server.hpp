// The TCP planning server: long-lived PlanSessions as the wire currency.
//
// `latticesched --serve` runs a PlanServer — many concurrent client
// connections multiplexed over the shared fork-join pool and ONE
// persistent TilingCache, so every tenant's torus searches warm every
// other tenant's.  Sessions are server-side state DECOUPLED from
// connections: a dropped connection (network fault, client crash,
// scripted serve:drop-connection) loses nothing — the client
// reconnects and keeps driving the same session id.  Replans are
// result-identical to a local PlanSession over the same deltas (the
// session IS a PlanSession; pinned by tests/test_serve.cpp).
//
// Frame schemas (wire protocol v6; every body is text, frames are the
// length-prefixed format of src/dist/wire.hpp).  On accept the server
// sends HELLO `{"protocol": 6, "role": "server"}`; a client verifies
// the version before its first request.  Client -> server verbs:
//
//   OPEN       "<token>\n" + batch_items_to_json (exactly one item).
//              Builds the scenario, opens a PlanSession on it, queues
//              the item's mutation trace (scenario-generated or
//              trace_script override) as pending steps.  A non-empty
//              token makes the OPEN idempotent: re-OPENing a token the
//              server has seen replays the original OK (a client
//              retrying after a dropped connection does not leak a
//              second session).
//              -> OK "<id>\n{"session": id, "scenario": s, "label": l,
//                 "sensors": n, "channels": c, "pending": k}"
//   DELTA      "<id> <seq>\n" + ("next" | mutation script text).
//              "next" applies the next pending trace step; a script
//              body (parse_mutation_script) applies its steps to the
//              session, timestamps shifted past the session's current
//              step.  `seq` starts at 0 per session and increments per
//              applied DELTA; repeating the PREVIOUS seq replays the
//              stored OK instead of double-applying (reconnect retry).
//              -> OK "<id>\n{"session": id, "seq": q, "step": t,
//                 "sensors": n, "pending": k}"
//   REPLAN     "<id>".  Replans the session's current deployment.
//              -> RESULT "<id>\n{"session": id, "step": t, "sensors":
//                 n}\n" + plan_results_to_json(results, label, t) —
//                 the same rows a local run serializes, and the same
//                 body is pushed as an EVENT frame to every subscriber
//                 of the session (the session-event stream).
//   SUBSCRIBE  "<id>".  Registers this connection for the session's
//              EVENT stream.  -> OK "<id>\n{"session": id,
//              "subscribed": true}"
//   CLOSE      "<id>".  Ends the session and returns its stats.
//              -> OK "<id>\n" + session_stats_to_json
//   ASSIGN     "<shard>\n" + batch_items_to_json (any item count) —
//              the distributed worker verb, served through the same
//              listener so `--listen` makes this process a remote
//              worker a ShardCoordinator can drive over TCP.
//              -> RESULT "<shard>\n" + batch_report_to_json
//   PING       -> PONG (liveness; not counted by the fault injector)
//   SHUTDOWN   closes this connection (sessions survive)
//
// Any other verb answers ERROR "<message>" and LEAVES THE CONNECTION
// OPEN (a fat-fingered verb should not kill a session stream); a
// malformed frame (bad length prefix, empty verb) closes the
// connection, because a byte stream that lost framing has no resync
// point.  Per-request failures (unknown scenario, bad delta, unknown
// session id) answer ERROR with the exception text.
//
// Faults: the PR-6 fault plan grammar gains a `serve` target
// (dist/faults.hpp) — `drop-connection` hard-closes a connection right
// before a chosen outbound frame and `delay-accept-ms` stalls
// servicing of fresh accepts; both are consumed here, scoped per
// accepted connection, and never forwarded to workers.  Dropped
// connections keep their sessions: zero sessions are lost server-side
// (the acceptance bar of this subsystem).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_service.hpp"
#include "dist/faults.hpp"
#include "serve/tcp.hpp"

namespace latticesched::serve {

/// Per-session accounting returned by CLOSE: the PlanSession's
/// incremental-reuse counters plus this session's share of the shared
/// TilingCache traffic.  Cache attribution is a before/after snapshot
/// around each of the session's operations — exact for a lone client,
/// approximate (attribution may smear between sessions, totals stay
/// exact) when sessions plan concurrently.
struct SessionWireStats {
  std::uint64_t replans = 0;
  std::uint64_t deltas = 0;
  std::uint64_t graph_builds = 0;
  std::uint64_t graph_patches = 0;
  std::uint64_t warm_greedy = 0;
  std::uint64_t regions = 0;
  std::uint64_t regions_replanned = 0;
  std::uint64_t seam_sensors = 0;
  std::uint64_t stitch_recolored = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t search_subtree_tasks = 0;
  std::uint64_t search_steals = 0;
  std::string search_kernel;
};

/// One-line JSON form of the CLOSE body (and its parser; round-trip
/// exact — the client feeds the parse into the --cache-stats footer).
std::string session_stats_to_json(const SessionWireStats& stats);
SessionWireStats session_stats_from_json(const std::string& json);

struct ServerConfig {
  std::string host = "127.0.0.1";  ///< bind address ("0.0.0.0" = any)
  std::uint16_t port = 0;          ///< 0 = ephemeral; see PlanServer::port
  std::string cache_dir;           ///< persistent TilingCache directory
  std::string fault_spec;          ///< dist::FaultPlan grammar (serve kinds)
  /// Per-frame deadline on connection writes; reads poll in short
  /// slices so stop() interrupts promptly.
  int io_timeout_ms = 30000;
};

class PlanServer {
 public:
  /// Validates the fault spec and cache dir eagerly (throws
  /// std::invalid_argument / std::runtime_error); the socket is not
  /// bound until start().
  explicit PlanServer(ServerConfig config);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Binds the listener and launches the accept loop.  Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  /// The bound port (valid after start(); the ephemeral pick when
  /// ServerConfig::port was 0).
  std::uint16_t port() const;

  /// Graceful shutdown: stops accepting, half-closes every live
  /// connection, joins every handler thread.  Open sessions are
  /// preserved until destruction and reported via stats() — a clean
  /// client fleet closes its sessions first, so open_sessions == 0 at
  /// a clean SIGTERM.  Idempotent.
  void stop();

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_dropped = 0;  ///< by drop-connection faults
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t events_pushed = 0;   ///< EVENT frames sent to subscribers
    std::uint64_t assigns_served = 0;  ///< worker-verb batches run
    std::size_t open_sessions = 0;
  };
  Stats stats() const;

  /// The shared batch service (one TilingCache for every session and
  /// ASSIGN batch).
  PlanService& service() { return service_; }

 private:
  struct Connection;
  struct WireSession;

  void accept_loop();
  void handle_connection(std::shared_ptr<Connection> conn);
  bool handle_message(Connection& conn, const dist::WireMessage& message);

  void handle_open(Connection& conn, const std::string& body);
  void handle_delta(Connection& conn, const std::string& body);
  void handle_replan(Connection& conn, const std::string& body);
  void handle_subscribe(Connection& conn, const std::string& body);
  void handle_close(Connection& conn, const std::string& body);
  void handle_assign(Connection& conn, const std::string& body);

  std::shared_ptr<WireSession> find_session(const std::string& id_text,
                                            std::uint64_t* id);
  bool send(Connection& conn, const dist::WireMessage& message);

  ServerConfig config_;
  dist::FaultPlan fault_plan_;
  PlanService service_;

  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> threads_;

  mutable std::mutex sessions_mu_;
  std::map<std::uint64_t, std::shared_ptr<WireSession>> sessions_;
  std::map<std::string, std::uint64_t> open_tokens_;
  std::uint64_t next_session_id_ = 1;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_dropped_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> events_pushed_{0};
  std::atomic<std::uint64_t> assigns_served_{0};
};

}  // namespace latticesched::serve
