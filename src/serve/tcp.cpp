#include "serve/tcp.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

namespace latticesched::serve {

namespace {

/// Resolves `host` into an IPv4 address (numeric fast path, then
/// getaddrinfo).  Throws std::runtime_error on failure.
in_addr resolve_ipv4(const std::string& host) {
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &results);
  if (rc != 0 || results == nullptr) {
    throw std::runtime_error("cannot resolve host '" + host +
                             "': " + ::gai_strerror(rc));
  }
  addr = reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
  ::freeaddrinfo(results);
  return addr;
}

void configure_stream_fd(int fd) {
  (void)dist::set_nonblocking(fd);
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

HostPort parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("expected host:port, got '" + spec + "'");
  }
  HostPort out;
  out.host = spec.substr(0, colon);
  if (out.host.empty()) out.host = "127.0.0.1";
  const std::string port_text = spec.substr(colon + 1);
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(port_text, &used);
    if (used != port_text.size()) throw std::invalid_argument(port_text);
  } catch (const std::exception&) {
    throw std::invalid_argument("port is not a number: '" + port_text +
                                "'");
  }
  if (port < 1 || port > 65535) {
    throw std::invalid_argument("port must be in [1, 65535], got " +
                                port_text);
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

int tcp_connect(const std::string& host, std::uint16_t port,
                int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolve_ipv4(host);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  configure_stream_fd(fd);
  const std::string endpoint = host + ":" + std::to_string(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("connect " + endpoint + ": " +
                             std::strerror(err));
  }
  // Nonblocking connect: wait for writability, then read the final
  // verdict out of SO_ERROR (a refused connection reports here, not
  // from connect()).
  pollfd p{fd, POLLOUT, 0};
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) {
    ::close(fd);
    throw std::runtime_error("connect " + endpoint + ": " +
                             (rc == 0 ? "timed out" : std::strerror(errno)));
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    ::close(fd);
    throw std::runtime_error("connect " + endpoint + ": " +
                             std::strerror(err != 0 ? err : errno));
  }
  return fd;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolve_ipv4(host);

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const std::string endpoint = host + ":" + std::to_string(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bind " + endpoint + ": " +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("pipe2: " + std::string(std::strerror(errno)));
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

int TcpListener::accept_connection(int timeout_ms) {
  for (;;) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return -1;  // timeout
    if (fds[1].revents != 0) return -1;  // shutdown()
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      return -1;
    }
    configure_stream_fd(client);
    return client;
  }
}

void TcpListener::shutdown() {
  (void)!::write(stop_pipe_[1], "x", 1);
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpChannel::shutdown() {
  (void)::shutdown(fd_, SHUT_RDWR);
}

}  // namespace latticesched::serve
