// TCP transport of the planning server (src/serve).
//
// The wire layer (src/dist/wire.hpp) is transport-agnostic
// length-prefixed frames; this file provides the AF_INET endpoints that
// carry them across hosts: a listening socket that hands out connected
// fds, a deadline-bounded frame channel over one such fd, and a
// connector with a connect timeout.  Every fd produced here is
// O_NONBLOCK (required by the deadline frame I/O) with TCP_NODELAY set
// (session verbs are small request/response frames; Nagle would add a
// full RTT of latency to each).
#pragma once

#include <cstdint>
#include <string>

#include "dist/wire.hpp"

namespace latticesched::serve {

/// A parsed "--connect host:port" endpoint.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port" (an empty host means 127.0.0.1, so ":9000"
/// works).  Throws std::invalid_argument on a missing colon, a
/// non-numeric port, or a port outside [1, 65535] — worded to slot into
/// the driver's joined flag-error message.
HostPort parse_host_port(const std::string& spec);

/// Connects to host:port within `timeout_ms` (< 0 = no limit) and
/// returns a nonblocking TCP_NODELAY fd.  Resolves numeric addresses
/// and names (AF_INET only).  Throws std::runtime_error on resolution,
/// connect, or timeout failures.
int tcp_connect(const std::string& host, std::uint16_t port,
                int timeout_ms);

/// RAII AF_INET listening socket.  accept_connection is interruptible:
/// shutdown() (from any thread) wakes a blocked accept so the server's
/// accept loop can stop without a timeout race.
class TcpListener {
 public:
  /// Binds host:port and listens (port 0 picks an ephemeral port —
  /// read it back via port()).  Throws std::runtime_error when the
  /// socket cannot be bound.
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (the ephemeral pick when constructed with 0).
  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` (< 0 = forever) for a connection and
  /// returns its fd (nonblocking, TCP_NODELAY), or -1 on timeout,
  /// accept error, or shutdown().
  int accept_connection(int timeout_ms);

  /// Wakes any blocked accept_connection; further calls return -1.
  void shutdown();

 private:
  int fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
};

/// Frame channel over one connected fd (owned: the destructor closes
/// it).  Thin deadline-bounded wrapper — callers that interleave writes
/// from several threads serialize them themselves (the PlanServer's
/// per-connection send lock).
class TcpChannel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}
  ~TcpChannel();

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  int fd() const { return fd_; }

  dist::WireIoStatus read(dist::WireMessage* out, int timeout_ms) {
    return dist::read_frame_deadline(fd_, out, timeout_ms);
  }
  dist::WireIoStatus write(const dist::WireMessage& message,
                           int timeout_ms) {
    return dist::write_frame_deadline(fd_, message, timeout_ms);
  }

  /// Half-closes both directions: the peer (and any thread blocked in
  /// read()) sees EOF immediately.  The fd stays open until
  /// destruction, so concurrent readers never touch a recycled fd.
  void shutdown();

 private:
  int fd_;
};

}  // namespace latticesched::serve
