#include "sim/bootstrap.hpp"

#include <stdexcept>

namespace latticesched {

BootstrapResult run_bootstrap(const Deployment& d, const Point& root,
                              const SensorSlots& slots,
                              const BootstrapConfig& config) {
  const auto root_id = d.sensor_at(root);
  if (!root_id.has_value()) {
    throw std::invalid_argument("run_bootstrap: root is not a sensor");
  }
  if (slots.slot.size() != d.size() || slots.period == 0) {
    throw std::invalid_argument("run_bootstrap: bad slot table");
  }
  const std::size_t n = d.size();

  // Interference structure (same model as SlotSimulator).
  const CsrU32 listeners = build_listeners(d);

  BootstrapResult res;
  res.sync_time.assign(n, 0);
  Rng rng(config.seed);

  // Initial clock offsets; synchronized nodes have offset 0 (they adopt
  // the root's clock exactly — propagation is instantaneous in slots).
  std::vector<bool> synced(n, false);
  synced[*root_id] = true;
  std::size_t synced_count = 1;

  std::vector<std::uint32_t> tx;
  std::vector<std::uint32_t> cover(n, 0);
  std::vector<std::uint8_t> transmitting(n, 0);

  // ---- Phase 1: beacon flood until everyone is synced. ----
  std::uint64_t slot = 0;
  for (; slot < config.max_slots && synced_count < n; ++slot) {
    tx.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      if (synced[u] && rng.next_bool(config.beacon_probability)) {
        tx.push_back(u);
      }
    }
    for (std::uint32_t u : tx) {
      transmitting[u] = 1;
      for (std::uint32_t r : listeners.row(u)) ++cover[r];
    }
    for (std::uint32_t u : tx) {
      ++res.beacon_tx;
      bool reached_someone_new = false;
      bool collided_somewhere = false;
      for (std::uint32_t r : listeners.row(u)) {
        if (transmitting[r] != 0 || cover[r] != 1) {
          collided_somewhere = true;
          continue;
        }
        if (!synced[r]) {
          synced[r] = true;
          ++synced_count;
          res.sync_time[r] = slot + 1;
          reached_someone_new = true;
        }
      }
      if (collided_somewhere && !reached_someone_new) {
        ++res.beacon_collisions;
      }
    }
    for (std::uint32_t u : tx) {
      transmitting[u] = 0;
      for (std::uint32_t r : listeners.row(u)) cover[r] = 0;
    }
  }
  res.converged = synced_count == n;
  res.sync_slots = slot;
  if (!res.converged) return res;

  // ---- Phase 2: everyone runs the tiling schedule, saturated. ----
  for (std::uint64_t t = 0; t < config.verify_slots; ++t) {
    tx.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      if (t % slots.period == slots.slot[u]) tx.push_back(u);
    }
    for (std::uint32_t u : tx) {
      transmitting[u] = 1;
      for (std::uint32_t r : listeners.row(u)) ++cover[r];
    }
    for (std::uint32_t u : tx) {
      for (std::uint32_t r : listeners.row(u)) {
        if (transmitting[r] != 0 || cover[r] != 1) {
          ++res.post_sync_collisions;
          break;
        }
      }
    }
    for (std::uint32_t u : tx) {
      transmitting[u] = 0;
      for (std::uint32_t r : listeners.row(u)) cover[r] = 0;
    }
  }
  return res;
}

}  // namespace latticesched
