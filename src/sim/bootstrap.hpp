// Network bootstrap: how sensors acquire the synchronized time the
// schedules assume.
//
// The paper assumes "the sensors have access to the current time".  This
// simulator models the missing systems layer: nodes boot with arbitrary
// clock offsets and learn the reference time by flooding sync beacons
// from a root over the collision-prone channel (beacons are sent with
// ALOHA persistence, since no schedule can be used before time is
// agreed).  A node that decodes a beacon adopts the sender's clock and
// starts beaconing in turn.  Once every node is synchronized the network
// switches to the tiling schedule, which is collision-free from then on.
//
// Measured: slots until full synchronization (by network size and beacon
// persistence), and a post-switch verification window.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "graph/interference.hpp"
#include "util/rng.hpp"

namespace latticesched {

struct BootstrapConfig {
  /// Beacon transmit probability per backlogged (synced) node per slot.
  double beacon_probability = 0.2;
  /// Maximum slots to attempt synchronization.
  std::uint64_t max_slots = 100'000;
  /// Slots to run under the tiling schedule after convergence, checking
  /// for collisions (all nodes saturated).
  std::uint64_t verify_slots = 500;
  std::uint64_t seed = 1;
  /// Magnitude bound for the random initial clock offsets.
  std::int64_t max_initial_offset = 1'000;
};

struct BootstrapResult {
  bool converged = false;
  std::uint64_t sync_slots = 0;       ///< slots until every node synced
  std::uint64_t beacon_tx = 0;        ///< beacons transmitted during sync
  std::uint64_t beacon_collisions = 0;
  /// Collisions observed AFTER switching to the schedule (must be 0).
  std::uint64_t post_sync_collisions = 0;
  /// Per-node slot at which it synchronized.
  std::vector<std::uint64_t> sync_time;
};

/// Runs the flood-sync bootstrap on a deployment.  `root` must be a
/// deployed sensor; `slots` is the tiling slot table the network switches
/// to after convergence.
BootstrapResult run_bootstrap(const Deployment& d, const Point& root,
                              const SensorSlots& slots,
                              const BootstrapConfig& config = {});

}  // namespace latticesched
