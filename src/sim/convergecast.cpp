#include "sim/convergecast.hpp"

#include <deque>
#include <stdexcept>

namespace latticesched {

namespace {

std::int64_t dist_sq_to(const Point& a, const Point& b) {
  return (a - b).norm2_sq();
}

}  // namespace

ConvergecastSimulator::ConvergecastSimulator(const Deployment& deployment,
                                             const Point& sink)
    : deployment_(deployment) {
  const auto sink_id = deployment_.sensor_at(sink);
  if (!sink_id.has_value()) {
    throw std::invalid_argument("convergecast: sink is not a sensor");
  }
  sink_ = static_cast<std::uint32_t>(*sink_id);

  const std::size_t n = deployment_.size();
  listeners_ = build_listeners(deployment_);

  // Greedy geographic routing: forward to the in-range neighbor strictly
  // closest to the sink.
  next_hop_.assign(n, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    if (u == sink_) {
      next_hop_[u] = u;
      continue;
    }
    const std::int64_t own = dist_sq_to(deployment_.position(u), sink);
    std::optional<std::uint32_t> best;
    std::int64_t best_d = own;
    for (std::uint32_t r : listeners_.row(u)) {
      const std::int64_t d = dist_sq_to(deployment_.position(r), sink);
      if (d < best_d) {
        best_d = d;
        best = r;
      }
    }
    if (!best.has_value()) {
      throw std::invalid_argument(
          "convergecast: sensor " + deployment_.position(u).to_string() +
          " has no neighbor closer to the sink (field disconnected)");
    }
    next_hop_[u] = *best;
  }
  // Greedy progress is strictly decreasing, so routes are loop-free and
  // route_length is well defined.
}

std::uint32_t ConvergecastSimulator::route_length(std::uint32_t i) const {
  std::uint32_t hops = 0;
  std::uint32_t cur = i;
  while (cur != sink_) {
    cur = next_hop_[cur];
    ++hops;
  }
  return hops;
}

ConvergecastResult ConvergecastSimulator::run(
    MacProtocol& mac, const ConvergecastConfig& config) {
  const std::size_t n = deployment_.size();
  ConvergecastResult res;
  res.slots = config.slots;

  struct Frame {
    std::uint64_t created = 0;
    std::uint32_t hops = 0;
  };
  std::vector<std::deque<Frame>> queue(n);
  Rng rng(config.seed);
  mac.reset(n, config.seed ^ 0xc0117ec7ULL);

  std::vector<std::uint32_t> cover_count(n, 0);
  std::vector<std::uint8_t> transmitting(n, 0);
  std::vector<std::uint8_t> busy_last(n, 0);
  std::vector<std::uint32_t> tx_list;

  for (std::uint64_t slot = 0; slot < config.slots; ++slot) {
    // Measurement arrivals at every non-sink sensor.
    for (std::uint32_t u = 0; u < n; ++u) {
      if (u == sink_) continue;
      if (rng.next_bool(config.arrival_rate)) {
        ++res.arrivals;
        if (queue[u].size() >= config.queue_capacity) {
          ++res.source_drops;
        } else {
          queue[u].push_back(Frame{slot, 0});
        }
      }
    }

    // MAC decisions; the sink never transmits.
    tx_list.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      if (u == sink_ || queue[u].empty()) continue;
      if (mac.wants_transmit(u, slot, busy_last[u] != 0)) {
        tx_list.push_back(u);
      }
    }

    for (std::uint32_t u : tx_list) {
      transmitting[u] = 1;
      for (std::uint32_t r : listeners_.row(u)) ++cover_count[r];
    }

    for (std::uint32_t u : tx_list) {
      ++res.attempted_tx;
      res.energy += config.tx_cost;
      const std::uint32_t hop = next_hop_[u];
      const bool received =
          transmitting[hop] == 0 && cover_count[hop] == 1;
      if (received) {
        ++res.successful_tx;
        res.energy += config.rx_cost;
        Frame frame = queue[u].front();
        queue[u].pop_front();
        ++frame.hops;
        if (hop == sink_) {
          ++res.delivered;
          res.end_to_end_latency.add(
              static_cast<double>(slot - frame.created));
          res.hops.add(static_cast<double>(frame.hops));
        } else if (queue[hop].size() >= config.queue_capacity) {
          ++res.relay_drops;
        } else {
          queue[hop].push_back(frame);
        }
      } else {
        ++res.failed_tx;
      }
      mac.notify_result(u, received);
    }

    for (std::uint32_t r = 0; r < n; ++r) {
      busy_last[r] = static_cast<std::uint8_t>(cover_count[r] > 0 ? 1 : 0);
    }
    for (std::uint32_t u : tx_list) {
      transmitting[u] = 0;
      for (std::uint32_t r : listeners_.row(u)) cover_count[r] = 0;
    }
    res.energy += config.idle_cost * static_cast<double>(n);
  }
  return res;
}

}  // namespace latticesched
