// Convergecast: multi-hop data collection to a sink.
//
// The paper motivates the schedule with sensors that "monitor an area";
// in practice monitored data flows hop-by-hop to a sink.  This simulator
// layers greedy geographic forwarding on top of the same slot-synchronous
// radio model as SlotSimulator: a relay transmission succeeds when the
// chosen NEXT HOP decodes it (is not itself transmitting and is covered
// by exactly one transmitter).  End-to-end delivery and latency then
// measure what the collision-free schedule buys a real workload.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/interference.hpp"
#include "sim/metrics.hpp"
#include "sim/protocols.hpp"
#include "util/csr.hpp"
#include "util/rng.hpp"

namespace latticesched {

struct ConvergecastConfig {
  std::uint64_t slots = 20'000;
  /// Bernoulli measurement arrivals per non-sink sensor per slot.
  double arrival_rate = 0.002;
  std::uint64_t seed = 1;
  std::size_t queue_capacity = 64;
  double tx_cost = 1.0;
  double rx_cost = 0.5;
  double idle_cost = 0.01;
};

struct ConvergecastResult {
  std::uint64_t slots = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t source_drops = 0;   ///< lost at the origin (full queue)
  std::uint64_t relay_drops = 0;    ///< lost at a relay (full queue)
  std::uint64_t attempted_tx = 0;
  std::uint64_t successful_tx = 0;  ///< next hop decoded the frame
  std::uint64_t failed_tx = 0;      ///< collided; frame stays queued
  std::uint64_t delivered = 0;      ///< frames that reached the sink
  SampleSet end_to_end_latency;     ///< arrival -> sink, in slots
  SampleSet hops;                   ///< per delivered frame
  double energy = 0.0;

  double delivery_ratio() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(arrivals);
  }
  double collision_rate() const {
    return attempted_tx == 0 ? 0.0
                             : static_cast<double>(failed_tx) /
                                   static_cast<double>(attempted_tx);
  }
  double energy_per_delivery() const {
    return delivered == 0 ? 0.0 : energy / static_cast<double>(delivered);
  }
};

class ConvergecastSimulator {
 public:
  /// `sink` must be a deployed sensor position.  Routes are greedy
  /// geographic: each node forwards to the in-range sensor strictly
  /// closer (squared Euclidean) to the sink; throws std::invalid_argument
  /// if some sensor has no route (disconnected field).
  ConvergecastSimulator(const Deployment& deployment, const Point& sink);

  ConvergecastResult run(MacProtocol& mac, const ConvergecastConfig& config);

  /// The computed next hop of each sensor (sink's is itself).
  const std::vector<std::uint32_t>& next_hop() const { return next_hop_; }
  std::uint32_t sink_id() const { return sink_; }

  /// Route length (hops to the sink) of sensor i.
  std::uint32_t route_length(std::uint32_t i) const;

 private:
  const Deployment& deployment_;
  std::uint32_t sink_ = 0;
  CsrU32 listeners_;
  std::vector<std::uint32_t> next_hop_;
};

}  // namespace latticesched
