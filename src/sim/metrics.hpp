// Simulation metrics.
//
// The introduction motivates the scheme with two costs of collisions:
// senders "need to resend their messages, which is evidently a waste of
// energy".  The metrics below quantify exactly that — delivery throughput,
// collision rate, retransmission energy, and queueing latency — so the
// deterministic schedule can be compared against probabilistic MACs.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace latticesched {

struct SimResult {
  std::uint64_t slots = 0;            ///< simulated slots
  std::size_t sensors = 0;
  std::uint64_t arrivals = 0;         ///< messages generated
  std::uint64_t drops = 0;            ///< arrivals lost to full queues
  std::uint64_t attempted_tx = 0;     ///< transmissions started
  std::uint64_t successful_tx = 0;    ///< broadcasts received by ALL neighbors
  std::uint64_t failed_tx = 0;        ///< failed (collision or loss); retried
  std::uint64_t collision_failures = 0;  ///< failures involving interference
  std::uint64_t loss_failures = 0;    ///< failures from channel noise alone
  double energy = 0.0;                ///< total energy spent (model units)
  SampleSet latency;                  ///< arrival -> successful broadcast, in slots
  std::vector<double> per_sensor_success;  ///< successful broadcasts per sensor

  double collision_rate() const {
    return attempted_tx == 0
               ? 0.0
               : static_cast<double>(failed_tx) /
                     static_cast<double>(attempted_tx);
  }
  /// Successful broadcasts per slot across the network.
  double throughput() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(successful_tx) /
                            static_cast<double>(slots);
  }
  /// Successful broadcasts per slot per sensor.
  double per_sensor_throughput() const {
    return sensors == 0 ? 0.0
                        : throughput() / static_cast<double>(sensors);
  }
  double energy_per_delivery() const {
    return successful_tx == 0
               ? 0.0
               : energy / static_cast<double>(successful_tx);
  }
  double fairness() const { return jain_fairness(per_sensor_success); }
};

}  // namespace latticesched
