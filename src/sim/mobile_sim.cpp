#include "sim/mobile_sim.hpp"

#include <cmath>

namespace latticesched {

MobileSimulator::MobileSimulator(MobileScheduler scheduler,
                                 MobileConfig config)
    : scheduler_(std::move(scheduler)), config_(config) {}

void MobileSimulator::init_bodies(std::vector<Body>& bodies,
                                  Rng& rng) const {
  bodies.resize(config_.sensors);
  for (Body& b : bodies) {
    b.x = rng.next_double() * config_.arena;
    b.y = rng.next_double() * config_.arena;
    b.tx = rng.next_double() * config_.arena;
    b.ty = rng.next_double() * config_.arena;
  }
}

void MobileSimulator::move_bodies(std::vector<Body>& bodies,
                                  Rng& rng) const {
  for (Body& b : bodies) {
    const double dx = b.tx - b.x;
    const double dy = b.ty - b.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist < config_.speed) {
      b.x = b.tx;
      b.y = b.ty;
      b.tx = rng.next_double() * config_.arena;
      b.ty = rng.next_double() * config_.arena;
    } else {
      b.x += config_.speed * dx / dist;
      b.y += config_.speed * dy / dist;
    }
  }
}

void MobileSimulator::score_slot(const std::vector<Body>& bodies,
                                 const std::vector<std::size_t>& tx,
                                 MobileResult& res) const {
  res.attempts += tx.size();
  // Pairwise disc-overlap test: both parties of an overlap collide
  // (the continuous analogue of intersecting interference ranges).
  std::vector<bool> collided(tx.size(), false);
  const double reach = 2.0 * config_.range;
  for (std::size_t a = 0; a < tx.size(); ++a) {
    for (std::size_t b = a + 1; b < tx.size(); ++b) {
      const double dx = bodies[tx[a]].x - bodies[tx[b]].x;
      const double dy = bodies[tx[a]].y - bodies[tx[b]].y;
      if (dx * dx + dy * dy < reach * reach) {
        collided[a] = collided[b] = true;
      }
    }
  }
  for (bool c : collided) {
    if (c) {
      ++res.collisions;
    } else {
      ++res.successes;
    }
  }
}

MobileResult MobileSimulator::run_location_schedule() {
  MobileResult res;
  res.slots = config_.slots;
  Rng rng(config_.seed);
  std::vector<Body> bodies;
  init_bodies(bodies, rng);
  std::vector<Point> homes(config_.sensors, Point(2));
  std::vector<std::size_t> tx;
  for (std::uint64_t slot = 0; slot < config_.slots; ++slot) {
    move_bodies(bodies, rng);
    // The paper assumes the lattice is "spaced fine enough to ensure that
    // only one sensor is within a Voronoi region"; the simulator enforces
    // that assumption operationally: sensors sharing a cell defer.
    PointMap<std::uint32_t> occupancy;
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      homes[i] = scheduler_.home_point({bodies[i].x, bodies[i].y});
      ++occupancy[homes[i]];
    }
    tx.clear();
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      const bool unique_occupant = occupancy[homes[i]] == 1;
      if (unique_occupant &&
          scheduler_.may_send({bodies[i].x, bodies[i].y}, config_.range,
                              slot)) {
        tx.push_back(i);
      } else {
        ++res.gate_blocked;
      }
    }
    score_slot(bodies, tx, res);
  }
  return res;
}

MobileResult MobileSimulator::run_aloha() {
  MobileResult res;
  res.slots = config_.slots;
  Rng rng(config_.seed);
  std::vector<Body> bodies;
  init_bodies(bodies, rng);
  std::vector<std::size_t> tx;
  for (std::uint64_t slot = 0; slot < config_.slots; ++slot) {
    move_bodies(bodies, rng);
    tx.clear();
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      if (rng.next_bool(config_.aloha_p)) {
        tx.push_back(i);
      } else {
        ++res.gate_blocked;
      }
    }
    score_slot(bodies, tx, res);
  }
  return res;
}

}  // namespace latticesched
