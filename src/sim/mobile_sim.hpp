// Continuous-plane simulator for mobile sensors (Conclusions section).
//
// Sensors move by random waypoint inside a square arena.  Two MAC rules
// are compared:
//   * the paper's location-based rule (MobileScheduler): send only when
//     the current time matches the slot of the Voronoi cell you occupy
//     AND your interference disc fits inside that cell's tile region;
//   * mobile slotted ALOHA: send with probability p whenever ready.
// Interference is geometric: two simultaneous transmitters collide when
// their interference discs overlap — the continuous analogue of
// (s+N) ∩ (t+N) ≠ ∅.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mobile.hpp"
#include "util/rng.hpp"

namespace latticesched {

struct MobileConfig {
  std::size_t sensors = 32;
  double arena = 16.0;        ///< arena is [0, arena]²
  double speed = 0.05;        ///< distance per slot
  double range = 0.3;         ///< interference disc radius rho
  std::uint64_t slots = 5'000;
  std::uint64_t seed = 7;
  double aloha_p = 0.1;       ///< send probability of the ALOHA baseline
};

struct MobileResult {
  std::uint64_t slots = 0;
  std::uint64_t attempts = 0;       ///< transmissions started
  std::uint64_t successes = 0;      ///< collision-free transmissions
  std::uint64_t collisions = 0;     ///< transmissions whose disc overlapped
  std::uint64_t gate_blocked = 0;   ///< sends forgone by the fit/slot gate
  double collision_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(collisions) /
                               static_cast<double>(attempts);
  }
  double utilization() const {
    return slots == 0 ? 0.0
                      : static_cast<double>(successes) /
                            static_cast<double>(slots);
  }
};

class MobileSimulator {
 public:
  MobileSimulator(MobileScheduler scheduler, MobileConfig config);

  /// The paper's location-based rule.
  MobileResult run_location_schedule();

  /// Mobile slotted-ALOHA baseline (ignores the schedule entirely).
  MobileResult run_aloha();

 private:
  MobileScheduler scheduler_;
  MobileConfig config_;

  struct Body {
    double x = 0.0, y = 0.0;
    double tx = 0.0, ty = 0.0;  // waypoint target
  };
  void init_bodies(std::vector<Body>& bodies, Rng& rng) const;
  void move_bodies(std::vector<Body>& bodies, Rng& rng) const;
  /// Evaluates one slot's transmissions for collisions and updates `res`.
  void score_slot(const std::vector<Body>& bodies,
                  const std::vector<std::size_t>& tx,
                  MobileResult& res) const;
};

}  // namespace latticesched
