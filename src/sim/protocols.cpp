#include "sim/protocols.hpp"

#include <sstream>
#include <stdexcept>

namespace latticesched {

SlotScheduleMac::SlotScheduleMac(SensorSlots slots)
    : SlotScheduleMac(std::move(slots), {}) {}

SlotScheduleMac::SlotScheduleMac(SensorSlots slots,
                                 std::vector<std::int64_t> offsets)
    : slots_(std::move(slots)), offsets_(std::move(offsets)) {
  if (slots_.period == 0) {
    throw std::invalid_argument("SlotScheduleMac: zero period");
  }
  if (!offsets_.empty() && offsets_.size() != slots_.slot.size()) {
    throw std::invalid_argument("SlotScheduleMac: offsets size mismatch");
  }
}

std::string SlotScheduleMac::name() const {
  std::ostringstream os;
  os << slots_.source << "(m=" << slots_.period << ")";
  if (!offsets_.empty()) os << "+drift";
  return os.str();
}

void SlotScheduleMac::reset(std::size_t sensors, std::uint64_t seed) {
  (void)seed;
  if (sensors != slots_.slot.size()) {
    throw std::invalid_argument("SlotScheduleMac: deployment size mismatch");
  }
}

bool SlotScheduleMac::wants_transmit(std::uint32_t node, std::uint64_t slot,
                                     bool channel_busy_last_slot) {
  (void)channel_busy_last_slot;
  const auto period = static_cast<std::int64_t>(slots_.period);
  std::int64_t local = static_cast<std::int64_t>(slot % slots_.period);
  if (!offsets_.empty()) {
    local = (local + offsets_[node]) % period;
    if (local < 0) local += period;
  }
  return static_cast<std::uint32_t>(local) == slots_.slot[node];
}

AlohaMac::AlohaMac(double p) : p_(p), rng_(0) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("AlohaMac: p must be in (0, 1]");
  }
}

std::string AlohaMac::name() const {
  std::ostringstream os;
  os << "aloha(p=" << p_ << ")";
  return os.str();
}

void AlohaMac::reset(std::size_t sensors, std::uint64_t seed) {
  (void)sensors;
  rng_ = Rng(seed ^ 0xa10aa10aULL);
}

bool AlohaMac::wants_transmit(std::uint32_t node, std::uint64_t slot,
                              bool channel_busy_last_slot) {
  (void)node;
  (void)slot;
  (void)channel_busy_last_slot;
  return rng_.next_bool(p_);
}

CsmaMac::CsmaMac(std::uint32_t min_window, std::uint32_t max_window)
    : min_window_(min_window), max_window_(max_window), rng_(0) {
  if (min_window == 0 || max_window < min_window) {
    throw std::invalid_argument("CsmaMac: bad contention windows");
  }
}

std::string CsmaMac::name() const {
  std::ostringstream os;
  os << "csma(cw=" << min_window_ << ".." << max_window_ << ")";
  return os.str();
}

void CsmaMac::reset(std::size_t sensors, std::uint64_t seed) {
  backoff_.assign(sensors, 0);
  window_.assign(sensors, min_window_);
  rng_ = Rng(seed ^ 0xc53ac53aULL);
}

bool CsmaMac::wants_transmit(std::uint32_t node, std::uint64_t slot,
                             bool channel_busy_last_slot) {
  (void)slot;
  if (backoff_[node] > 0) {
    --backoff_[node];
    return false;
  }
  if (channel_busy_last_slot) {
    backoff_[node] =
        static_cast<std::uint32_t>(rng_.next_below(window_[node])) + 1;
    return false;
  }
  return true;
}

void CsmaMac::notify_result(std::uint32_t node, bool success) {
  if (success) {
    window_[node] = min_window_;
  } else {
    window_[node] = std::min(window_[node] * 2, max_window_);
    backoff_[node] =
        static_cast<std::uint32_t>(rng_.next_below(window_[node])) + 1;
  }
}

}  // namespace latticesched
