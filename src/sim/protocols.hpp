// Medium-access protocols for the slot simulator.
//
// The paper contrasts its deterministic schedule with the probabilistic
// protocols "most communication protocols for wireless sensor networks"
// use.  The simulator runs any of:
//   * SlotScheduleMac — a deterministic slot table (tiling schedule, TDMA,
//     coloring baselines), optionally with per-node clock drift injected;
//   * AlohaMac       — slotted ALOHA, transmit with probability p;
//   * CsmaMac        — carrier sensing with binary-exponential backoff
//     (sensing sees the PREVIOUS slot: same-slot decisions are
//     simultaneous in a slotted system).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace latticesched {

class MacProtocol {
 public:
  virtual ~MacProtocol() = default;
  virtual std::string name() const = 0;

  /// Called once before a run.
  virtual void reset(std::size_t sensors, std::uint64_t seed) = 0;

  /// Whether sensor `node`, whose queue is nonempty, transmits in `slot`.
  /// `channel_busy_last_slot` reports carrier sensing from the node's
  /// perspective for the previous slot.
  virtual bool wants_transmit(std::uint32_t node, std::uint64_t slot,
                              bool channel_busy_last_slot) = 0;

  /// Outcome feedback for a transmission this node made.
  virtual void notify_result(std::uint32_t node, bool success) = 0;
};

/// Deterministic slot table, with optional per-node clock offsets (slot
/// drift fault injection: offset[i] slots are added to node i's clock).
class SlotScheduleMac final : public MacProtocol {
 public:
  explicit SlotScheduleMac(SensorSlots slots);
  SlotScheduleMac(SensorSlots slots, std::vector<std::int64_t> offsets);

  std::string name() const override;
  void reset(std::size_t sensors, std::uint64_t seed) override;
  bool wants_transmit(std::uint32_t node, std::uint64_t slot,
                      bool channel_busy_last_slot) override;
  void notify_result(std::uint32_t node, bool success) override {
    (void)node;
    (void)success;
  }

 private:
  SensorSlots slots_;
  std::vector<std::int64_t> offsets_;
};

/// Slotted ALOHA: transmit with probability p whenever backlogged.
class AlohaMac final : public MacProtocol {
 public:
  explicit AlohaMac(double p);

  std::string name() const override;
  void reset(std::size_t sensors, std::uint64_t seed) override;
  bool wants_transmit(std::uint32_t node, std::uint64_t slot,
                      bool channel_busy_last_slot) override;
  void notify_result(std::uint32_t node, bool success) override {
    (void)node;
    (void)success;
  }

 private:
  double p_;
  Rng rng_;
};

/// Non-persistent CSMA with binary exponential backoff.  A backlogged
/// node defers while its backoff counter runs; when ready it senses the
/// channel (previous slot) and transmits only if idle, otherwise it draws
/// a fresh backoff.  Collisions double the contention window.
class CsmaMac final : public MacProtocol {
 public:
  CsmaMac(std::uint32_t min_window = 2, std::uint32_t max_window = 64);

  std::string name() const override;
  void reset(std::size_t sensors, std::uint64_t seed) override;
  bool wants_transmit(std::uint32_t node, std::uint64_t slot,
                      bool channel_busy_last_slot) override;
  void notify_result(std::uint32_t node, bool success) override;

 private:
  std::uint32_t min_window_, max_window_;
  std::vector<std::uint32_t> backoff_;
  std::vector<std::uint32_t> window_;
  Rng rng_;
};

}  // namespace latticesched
