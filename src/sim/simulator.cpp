#include "sim/simulator.hpp"

#include <deque>

namespace latticesched {

SlotSimulator::SlotSimulator(const Deployment& deployment, SimConfig config)
    : deployment_(deployment), config_(config),
      listeners_(build_listeners(deployment)) {}

SimResult SlotSimulator::run(MacProtocol& mac) {
  const std::size_t n = deployment_.size();
  SimResult res;
  res.slots = config_.slots;
  res.sensors = n;
  res.per_sensor_success.assign(n, 0.0);

  Rng rng(config_.seed);
  mac.reset(n, config_.seed ^ 0x5157e11aULL);

  // Per-sensor FIFO of arrival timestamps.
  std::vector<std::deque<std::uint64_t>> queue(n);
  // Coverage counters, reused across slots.
  std::vector<std::uint32_t> cover_count(n, 0);
  std::vector<std::uint8_t> transmitting(n, 0);
  std::vector<std::uint8_t> busy_last(n, 0);
  std::vector<std::uint32_t> tx_list;
  tx_list.reserve(n);

  for (std::uint64_t slot = 0; slot < config_.slots; ++slot) {
    // Arrivals.
    if (!config_.saturated) {
      for (std::size_t u = 0; u < n; ++u) {
        if (rng.next_bool(config_.arrival_rate)) {
          ++res.arrivals;
          if (queue[u].size() >= config_.queue_capacity) {
            ++res.drops;
          } else {
            queue[u].push_back(slot);
          }
        }
      }
    }

    // MAC decisions (simultaneous; sensing sees the previous slot).
    tx_list.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      const bool backlogged = config_.saturated || !queue[u].empty();
      if (!backlogged) continue;
      if (mac.wants_transmit(u, slot, busy_last[u] != 0)) {
        tx_list.push_back(u);
      }
    }

    // Radio propagation: count transmitter coverage per sensor position.
    for (std::uint32_t u : tx_list) {
      transmitting[u] = 1;
      for (std::uint32_t r : listeners_.row(u)) ++cover_count[r];
    }

    // Outcomes.
    for (std::uint32_t u : tx_list) {
      ++res.attempted_tx;
      res.energy += config_.tx_cost;
      bool success = true;
      bool interfered = false;
      for (std::uint32_t r : listeners_.row(u)) {
        if (transmitting[r] != 0 || cover_count[r] != 1) {
          success = false;
          interfered = true;
          break;
        }
        if (config_.loss_rate > 0.0 && rng.next_bool(config_.loss_rate)) {
          success = false;  // channel noise ate this reception
        }
      }
      // An isolated sensor (no listeners) trivially succeeds.
      if (success) {
        ++res.successful_tx;
        res.per_sensor_success[u] += 1.0;
        res.energy +=
            config_.rx_cost * static_cast<double>(listeners_.row_size(u));
        if (!config_.saturated) {
          res.latency.add(static_cast<double>(slot - queue[u].front()));
          queue[u].pop_front();
        }
      } else {
        ++res.failed_tx;
        if (interfered) {
          ++res.collision_failures;
        } else {
          ++res.loss_failures;
        }
      }
      mac.notify_result(u, success);
    }

    // Carrier state for next slot's sensing, then cleanup.
    for (std::uint32_t r = 0; r < n; ++r) {
      busy_last[r] =
          static_cast<std::uint8_t>(cover_count[r] > 0 ? 1 : 0);
    }
    for (std::uint32_t u : tx_list) {
      transmitting[u] = 0;
      for (std::uint32_t r : listeners_.row(u)) cover_count[r] = 0;
    }
    res.energy += config_.idle_cost * static_cast<double>(n);
  }
  return res;
}

}  // namespace latticesched
