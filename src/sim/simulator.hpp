// Slot-synchronous wireless sensor network simulator.
//
// The radio model is the paper's, implemented verbatim on lattice points:
// a broadcast by sensor u occupies exactly coverage(u) = pos_u + N_u; a
// listener r ∈ coverage(u) decodes u's message iff r is not itself
// transmitting (half duplex) and no other simultaneous transmitter covers
// r.  A broadcast "succeeds" when ALL listeners decode it — the paper's
// collision events ("B within interference range of A", "C within range
// of both A and B") are exactly the failure cases, and failed broadcasts
// are retransmitted, spending energy.
//
// Engine note: the listener relation is built through the deployment's
// dense position index and stored as a CSR buffer (one flat allocation)
// — the per-slot propagation loops walk contiguous memory instead of a
// vector-of-vectors.  (The seed also carried the inverse "hears"
// relation; nothing ever read it, so it is gone.)
#pragma once

#include <cstdint>
#include <span>

#include "graph/interference.hpp"
#include "sim/metrics.hpp"
#include "sim/protocols.hpp"
#include "util/csr.hpp"
#include "util/rng.hpp"

namespace latticesched {

struct SimConfig {
  std::uint64_t slots = 10'000;
  /// Bernoulli arrival probability per sensor per slot.
  double arrival_rate = 0.05;
  std::uint64_t seed = 1;
  std::size_t queue_capacity = 64;
  /// Energy model (arbitrary units): cost of one transmission, one
  /// successful reception, and one idle slot per sensor.
  double tx_cost = 1.0;
  double rx_cost = 0.5;
  double idle_cost = 0.01;
  /// Saturated mode: queues never empty (arrival process ignored);
  /// used for pure capacity/collision measurements.
  bool saturated = false;
  /// Channel-noise fault injection: each individual reception is lost
  /// with this probability even without interference.  A lost reception
  /// fails the whole broadcast (the paper's all-neighbors semantics), so
  /// even collision-free schedules retransmit under loss.
  double loss_rate = 0.0;
};

class SlotSimulator {
 public:
  SlotSimulator(const Deployment& deployment, SimConfig config);

  /// Runs the protocol for config.slots slots and returns the metrics.
  SimResult run(MacProtocol& mac);

  /// Listeners of sensor u (sensor ids inside its coverage, excluding u).
  std::span<const std::uint32_t> listeners_of(std::uint32_t u) const {
    return listeners_.row(u);
  }

  /// The full listener relation as CSR (row u = listeners_of(u)).
  const CsrU32& listeners() const { return listeners_; }

 private:
  const Deployment& deployment_;
  SimConfig config_;
  /// Row u: sensors covered by u's broadcast (excluding u).
  CsrU32 listeners_;
};

}  // namespace latticesched
