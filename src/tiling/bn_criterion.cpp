#include "tiling/bn_criterion.hpp"

#include <vector>

namespace latticesched {

namespace {

// runs[c][i] = the number of consecutive index pairs
//   (i, c-i), (i+1, c-i-1), (i+2, c-i-2), ...   (indices mod n)
// that satisfy W[p] == complement(W[q]), capped at n.  A factor U of
// length L starting at i matches the hat of the factor half a turn away
// exactly when all its pairs lie on one such anti-diagonal chain, so the
// check reduces to runs[c][i] >= L.
std::vector<std::vector<std::int32_t>> build_run_table(const std::string& w) {
  const std::size_t n = w.size();
  auto comp = [](char ch) {
    switch (ch) {
      case 'r': return 'l';
      case 'l': return 'r';
      case 'u': return 'd';
      default: return 'u';  // 'd'
    }
  };
  std::vector<std::vector<std::int32_t>> runs(
      n, std::vector<std::int32_t>(n, 0));
  for (std::size_t c = 0; c < n; ++c) {
    auto match = [&](std::size_t i) {
      const std::size_t j = (c + n - i % n) % n;
      return w[i % n] == comp(w[j]);
    };
    auto& row = runs[c];
    // Find any mismatch to anchor the cyclic suffix-run computation.
    std::size_t anchor = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!match(i)) {
        anchor = i;
        break;
      }
    }
    if (anchor == n) {
      // The whole chain matches; every run is maximal.
      for (std::size_t i = 0; i < n; ++i) row[i] = static_cast<int>(n);
      continue;
    }
    // Walk backwards from the anchor so each run extends its successor.
    row[anchor] = 0;
    for (std::size_t k = 1; k < n; ++k) {
      const std::size_t i = (anchor + n - k) % n;
      row[i] = match(i) ? row[(i + 1) % n] + 1 : 0;
    }
  }
  return runs;
}

}  // namespace

std::optional<BnFactorization> find_bn_factorization(const BoundaryWord& w) {
  const std::string& s = w.str();
  const std::size_t n = s.size();
  if (n == 0 || n % 2 != 0) return std::nullopt;
  const std::size_t half = n / 2;
  const auto runs = build_run_table(s);

  // Factor starting at alpha with length len matches the hat of the factor
  // at alpha + half iff runs[(2*alpha + half + len - 1) % n][alpha] >= len.
  auto factor_ok = [&](std::size_t alpha, std::size_t len) {
    if (len == 0) return true;
    const std::size_t c = (2 * alpha + half + len - 1) % n;
    return runs[c][alpha % n] >= static_cast<std::int32_t>(len);
  };

  for (std::size_t p0 = 0; p0 < n; ++p0) {
    for (std::size_t a = 0; a <= half; ++a) {
      if (!factor_ok(p0, a)) continue;
      for (std::size_t b = 0; a + b <= half; ++b) {
        if (!factor_ok(p0 + a, b)) continue;
        const std::size_t c_len = half - a - b;
        if (!factor_ok(p0 + a + b, c_len)) continue;
        // Reject factorizations with two or more empty pieces: those would
        // describe a degenerate X·X̂ boundary, which no simple closed
        // curve has; requiring it keeps the reported factorization
        // geometrically meaningful.
        const int empties = (a == 0) + (b == 0) + (c_len == 0);
        if (empties >= 2) continue;
        return BnFactorization{p0, a, b, c_len};
      }
    }
  }
  return std::nullopt;
}

BnResult bn_exactness(const Prototile& tile) {
  BnResult out;
  const BoundaryAnalysis ba = trace_boundary(tile);
  out.applicable = ba.is_polyomino;
  if (!out.applicable) return out;
  out.boundary = ba.word;
  out.factorization = find_bn_factorization(ba.word);
  out.exact = out.factorization.has_value();
  return out;
}

}  // namespace latticesched
