// Beauquier–Nivat exactness criterion for polyominoes.
//
// A polyomino tiles the plane by translations (equivalently: its cell set
// is an exact prototile of Z², Section 3 of the paper) if and only if its
// boundary word W admits a cyclic factorization
//
//     W  =  X · Y · Z · X̂ · Ŷ · Ẑ
//
// where  · ̂  reverses a word and complements each step, and at most one of
// X, Y, Z may be empty (the "pseudo-square" case).  The paper cites the
// O(n²) algorithm of Gambini & Vuillon; we implement the criterion with a
// precomputed anti-diagonal match-run table which makes each candidate
// factor check O(1), for an overall O(n·(n/2)²) search — polynomial and
// effectively instant for all realistic neighborhoods.
#pragma once

#include <cstdint>
#include <optional>

#include "tiling/boundary.hpp"
#include "tiling/prototile.hpp"

namespace latticesched {

/// A successful BN factorization: the boundary word rotated to start at
/// `start` factors as X (length `len_x`), Y (length `len_y`),
/// Z (length n/2 - len_x - len_y), followed by their hats.
struct BnFactorization {
  std::size_t start = 0;
  std::size_t len_x = 0;
  std::size_t len_y = 0;
  std::size_t len_z = 0;
};

/// Searches for a BN factorization of a (closed) boundary word.
/// Returns the first factorization found, or nullopt when none exists.
std::optional<BnFactorization> find_bn_factorization(const BoundaryWord& w);

/// Outcome of the polyomino exactness test.
struct BnResult {
  /// Whether the tile is a polyomino at all (connected, simply connected);
  /// the BN criterion is only applicable when true.
  bool applicable = false;
  /// Whether the polyomino is exact (tiles the plane by translations).
  bool exact = false;
  BoundaryWord boundary;
  std::optional<BnFactorization> factorization;
};

/// Applies the BN criterion to a 2-D prototile.
BnResult bn_exactness(const Prototile& tile);

}  // namespace latticesched
