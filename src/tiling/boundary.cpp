#include "tiling/boundary.hpp"

#include <deque>
#include <stdexcept>

namespace latticesched {

char step_to_char(Step s) {
  switch (s) {
    case Step::kRight: return 'r';
    case Step::kUp: return 'u';
    case Step::kLeft: return 'l';
    case Step::kDown: return 'd';
  }
  throw std::logic_error("step_to_char: bad step");
}

Step char_to_step(char c) {
  switch (c) {
    case 'r': return Step::kRight;
    case 'u': return Step::kUp;
    case 'l': return Step::kLeft;
    case 'd': return Step::kDown;
    default: throw std::invalid_argument("char_to_step: bad char");
  }
}

Step complement(Step s) {
  switch (s) {
    case Step::kRight: return Step::kLeft;
    case Step::kLeft: return Step::kRight;
    case Step::kUp: return Step::kDown;
    case Step::kDown: return Step::kUp;
  }
  throw std::logic_error("complement: bad step");
}

namespace {
Point step_vec(Step s) {
  switch (s) {
    case Step::kRight: return Point{1, 0};
    case Step::kUp: return Point{0, 1};
    case Step::kLeft: return Point{-1, 0};
    case Step::kDown: return Point{0, -1};
  }
  throw std::logic_error("step_vec: bad step");
}
}  // namespace

BoundaryWord::BoundaryWord(std::string word) : w_(std::move(word)) {
  for (char c : w_) char_to_step(c);  // validates
}

BoundaryWord BoundaryWord::hat() const {
  std::string out(w_.rbegin(), w_.rend());
  for (char& c : out) c = step_to_char(complement(char_to_step(c)));
  return BoundaryWord(std::move(out));
}

Point BoundaryWord::displacement() const {
  Point d{0, 0};
  for (char c : w_) d += step_vec(char_to_step(c));
  return d;
}

namespace {

// Left/front quadrant cells around corner v for each incoming direction;
// cells are unit squares [i,i+1]x[j,j+1] addressed by their low corner.
Point front_left_cell(const Point& v, Step d) {
  switch (d) {
    case Step::kRight: return Point{v[0], v[1]};          // NE
    case Step::kUp: return Point{v[0] - 1, v[1]};         // NW
    case Step::kLeft: return Point{v[0] - 1, v[1] - 1};   // SW
    case Step::kDown: return Point{v[0], v[1] - 1};       // SE
  }
  throw std::logic_error("front_left_cell");
}

Point front_right_cell(const Point& v, Step d) {
  switch (d) {
    case Step::kRight: return Point{v[0], v[1] - 1};      // SE
    case Step::kUp: return Point{v[0], v[1]};             // NE
    case Step::kLeft: return Point{v[0] - 1, v[1]};       // NW
    case Step::kDown: return Point{v[0] - 1, v[1] - 1};   // SW
  }
  throw std::logic_error("front_right_cell");
}

Step turn_left(Step d) {
  return static_cast<Step>((static_cast<int>(d) + 1) % 4);
}
Step turn_right(Step d) {
  return static_cast<Step>((static_cast<int>(d) + 3) % 4);
}

// Flood fill over the complement of the tile within an expanded bounding
// box; returns true when every empty cell inside the box is reachable from
// the box border (i.e. the tile has no holes).
bool complement_connected(const Prototile& tile) {
  const Box bb = tile.bounding_box().expanded(1);
  PointSet seen;
  std::deque<Point> queue;
  const Point start = bb.lo();  // expanded corner is never a tile cell
  queue.push_back(start);
  seen.insert(start);
  const Point dirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  while (!queue.empty()) {
    const Point p = queue.front();
    queue.pop_front();
    for (const Point& d : dirs) {
      const Point q = p + d;
      if (!bb.contains(q) || tile.contains(q)) continue;
      if (seen.insert(q).second) queue.push_back(q);
    }
  }
  std::uint64_t empty_cells = 0;
  bool all_reached = true;
  bb.for_each([&](const Point& p) {
    if (tile.contains(p)) return;
    ++empty_cells;
    if (seen.count(p) == 0) all_reached = false;
  });
  (void)empty_cells;
  return all_reached;
}

}  // namespace

BoundaryAnalysis trace_boundary(const Prototile& tile) {
  if (tile.dim() != 2) {
    throw std::invalid_argument("trace_boundary: 2-D prototiles only");
  }
  BoundaryAnalysis out;
  out.connected = tile.is_connected();
  out.simply_connected = out.connected && complement_connected(tile);
  out.is_polyomino = out.connected && out.simply_connected;
  if (!out.is_polyomino) return out;

  // Start at the bottom-left corner of the lowest-then-leftmost cell and
  // walk CCW (interior on the left), beginning along the bottom edge.
  Point start_cell = tile.points().front();
  for (const Point& p : tile.points()) {
    if (p[1] < start_cell[1] ||
        (p[1] == start_cell[1] && p[0] < start_cell[0])) {
      start_cell = p;
    }
  }
  const Point start_corner{start_cell[0], start_cell[1]};
  Point corner = start_corner;
  Step dir = Step::kRight;
  std::string word;
  do {
    corner += step_vec(dir);
    word.push_back(step_to_char(dir));
    if (tile.contains(front_right_cell(corner, dir))) {
      dir = turn_right(dir);
    } else if (tile.contains(front_left_cell(corner, dir))) {
      // keep going straight
    } else {
      dir = turn_left(dir);
    }
    if (word.size() > 8 * tile.size() + 8) {
      throw std::logic_error("trace_boundary: runaway trace");
    }
  } while (!(corner == start_corner && dir == Step::kRight));
  out.word = BoundaryWord(std::move(word));
  return out;
}

}  // namespace latticesched
