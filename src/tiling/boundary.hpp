// Boundary words of polyominoes.
//
// Section 3 of the paper reduces exactness of a polyomino to a property of
// the word over {u, d, l, r} describing its boundary (Wijshoff & van
// Leeuwen; Beauquier & Nivat; Gambini & Vuillon).  This module extracts
// that word: the counterclockwise outline of the union of unit squares
// centered on the tile cells, with the interior kept on the left.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tiling/prototile.hpp"

namespace latticesched {

/// One step of a boundary word.
enum class Step : std::uint8_t { kRight = 0, kUp = 1, kLeft = 2, kDown = 3 };

char step_to_char(Step s);
Step char_to_step(char c);
/// The opposite direction (r<->l, u<->d); the "bar" of the BN calculus.
Step complement(Step s);

/// A boundary word; thin wrapper over a string of 'r','u','l','d'.
class BoundaryWord {
 public:
  BoundaryWord() = default;
  explicit BoundaryWord(std::string word);

  const std::string& str() const { return w_; }
  std::size_t length() const { return w_.size(); }

  /// Reverse the word and complement each letter: the path traversed
  /// backwards.  BN factorizations pair each factor with its hat.
  BoundaryWord hat() const;

  /// Net displacement of the path.
  Point displacement() const;

  /// Whether the path returns to its start (required of boundaries).
  bool is_closed() const { return displacement().is_zero(); }

  bool operator==(const BoundaryWord& o) const { return w_ == o.w_; }

 private:
  std::string w_;
};

/// Result of tracing a prototile's outline.
struct BoundaryAnalysis {
  bool is_polyomino = false;     ///< connected with simply-connected interior
  bool connected = false;
  bool simply_connected = false;
  BoundaryWord word;             ///< valid iff is_polyomino
};

/// Traces the boundary of a 2-D prototile.  The word is produced CCW
/// starting from the bottom-left corner of the lowest-then-leftmost cell.
/// For disconnected or holey tiles only the flags are meaningful.
BoundaryAnalysis trace_boundary(const Prototile& tile);

}  // namespace latticesched
