#include "tiling/enumerate.hpp"

#include <algorithm>
#include <set>

#include "tiling/bn_criterion.hpp"

namespace latticesched {

namespace {

// Canonical form: translate so the lexicographically smallest cell is 0.
PointVec canonicalize(PointVec cells) {
  cells = sorted_unique(std::move(cells));
  const Point origin = cells.front();
  for (Point& p : cells) p -= origin;
  return cells;
}

}  // namespace

std::vector<Prototile> enumerate_fixed_polyominoes(std::size_t cells) {
  if (cells == 0) return {};
  // BFS over canonical cell sets: grow every polyomino of size k by every
  // adjacent empty cell, canonicalize, deduplicate.
  std::set<PointVec> current;
  current.insert(PointVec{Point{0, 0}});
  const Point dirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  for (std::size_t size = 1; size < cells; ++size) {
    std::set<PointVec> next;
    for (const PointVec& poly : current) {
      const PointSet occupied(poly.begin(), poly.end());
      for (const Point& cell : poly) {
        for (const Point& d : dirs) {
          const Point cand = cell + d;
          if (occupied.count(cand) != 0) continue;
          PointVec grown = poly;
          grown.push_back(cand);
          next.insert(canonicalize(std::move(grown)));
        }
      }
    }
    current = std::move(next);
  }
  std::vector<Prototile> out;
  out.reserve(current.size());
  for (const PointVec& poly : current) {
    out.emplace_back(poly);
  }
  return out;
}

ExactnessCensus exactness_census(std::size_t cells) {
  ExactnessCensus census;
  census.cells = cells;
  for (const Prototile& tile : enumerate_fixed_polyominoes(cells)) {
    ++census.polyominoes;
    const BnResult bn = bn_exactness(tile);
    // Every enumerated tile is connected; simply-connectedness can fail
    // from size 7 on (first holes), and holey tiles are never exact.
    if (bn.applicable && bn.exact) ++census.exact;
  }
  return census;
}

}  // namespace latticesched
