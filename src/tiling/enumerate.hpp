// Exhaustive enumeration of small prototiles.
//
// Section 3 asks WHICH prototiles are exact.  For polyominoes the library
// can answer exhaustively at small sizes: enumerate every fixed polyomino
// (translations quotiented out, rotations/reflections kept distinct — the
// right notion here, since an interference neighborhood has a fixed
// orientation) and run the exactness deciders on each.  Known counts of
// fixed polyominoes: 1, 2, 6, 19, 63, 216, 760 for n = 1..7 — the tests
// pin the enumerator against them.
#pragma once

#include <cstddef>
#include <vector>

#include "tiling/prototile.hpp"

namespace latticesched {

/// All fixed polyominoes with `cells` cells, each in canonical position
/// (translated so its lexicographically smallest cell is the origin),
/// enumerated deterministically (sorted by their point sets).
/// Growth is exponential; intended for cells <= 8.
std::vector<Prototile> enumerate_fixed_polyominoes(std::size_t cells);

/// Census of the enumeration: how many tiles of each size are exact.
struct ExactnessCensus {
  std::size_t cells = 0;
  std::size_t polyominoes = 0;  ///< fixed polyominoes of this size
  std::size_t exact = 0;        ///< of which exact (tile the plane)
};

/// Runs the (complete) BN decider over every fixed polyomino of the size.
ExactnessCensus exactness_census(std::size_t cells);

}  // namespace latticesched
