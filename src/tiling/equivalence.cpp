#include "tiling/equivalence.hpp"

#include <algorithm>
#include <set>

namespace latticesched {

namespace {

using Placements = std::vector<std::pair<Point, std::uint32_t>>;

Placements shifted_placements(const Tiling& t, const Point& shift) {
  Placements out;
  out.reserve(t.placements().size());
  for (const auto& [translate, proto] : t.placements()) {
    out.emplace_back(t.period().reduce(translate + shift), proto);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool same_prototiles(const Tiling& a, const Tiling& b) {
  if (a.prototile_count() != b.prototile_count()) return false;
  for (std::size_t k = 0; k < a.prototile_count(); ++k) {
    if (a.prototile(k) != b.prototile(k)) return false;
  }
  return true;
}

}  // namespace

bool tilings_equal_up_to_translation(const Tiling& a, const Tiling& b) {
  if (a.period() != b.period() || !same_prototiles(a, b)) return false;
  if (a.placements().size() != b.placements().size()) return false;
  const Placements target = shifted_placements(b, Point::zero(b.dim()));
  for (const Point& shift : a.period().coset_representatives()) {
    if (shifted_placements(a, shift) == target) return true;
  }
  return false;
}

Placements translation_canonical_placements(const Tiling& t) {
  Placements best;
  bool first = true;
  for (const Point& shift : t.period().coset_representatives()) {
    Placements cand = shifted_placements(t, shift);
    if (first || cand < best) {
      best = std::move(cand);
      first = false;
    }
  }
  return best;
}

std::vector<Tiling> dedup_tilings_up_to_translation(std::vector<Tiling> ts) {
  std::vector<Tiling> out;
  std::set<Placements> seen;
  for (Tiling& t : ts) {
    if (seen.insert(translation_canonical_placements(t)).second) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

}  // namespace latticesched
