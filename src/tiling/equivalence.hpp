// Tiling equivalence up to lattice translation.
//
// The torus search enumerates tilings as placement sets; many of them are
// translates of one another and describe the same infinite tiling seen
// from a shifted origin.  Quotienting by translation gives the honest
// count of genuinely different tilings (used by the Figure-5 census) and
// a canonical representative per class.
#pragma once

#include <vector>

#include "tiling/tiling.hpp"

namespace latticesched {

/// Whether b equals a translated by some lattice vector.  Requires both
/// tilings to share the period sublattice and the prototile list
/// (returns false otherwise).
bool tilings_equal_up_to_translation(const Tiling& a, const Tiling& b);

/// Canonical placement fingerprint of the translation class of `t`:
/// the lexicographically smallest placement set over all translates.
std::vector<std::pair<Point, std::uint32_t>> translation_canonical_placements(
    const Tiling& t);

/// Keeps one representative per translation class, preserving input
/// order of first appearance.
std::vector<Tiling> dedup_tilings_up_to_translation(std::vector<Tiling> ts);

}  // namespace latticesched
