#include "tiling/exactness.hpp"

#include "tiling/lattice_tiling_search.hpp"

namespace latticesched {

const char* to_string(ExactnessMethod m) {
  switch (m) {
    case ExactnessMethod::kBeauquierNivat: return "beauquier-nivat";
    case ExactnessMethod::kLatticeTiling: return "lattice-tiling";
    case ExactnessMethod::kTorusSearch: return "torus-search";
    case ExactnessMethod::kUndecided: return "undecided";
  }
  return "?";
}

ExactnessResult decide_exactness(const Prototile& tile,
                                 const TorusSearchConfig& config) {
  ExactnessResult out;

  // Engine 1: BN criterion for polyominoes — a complete decider.
  if (tile.dim() == 2) {
    BnResult bn = bn_exactness(tile);
    if (bn.applicable) {
      out.bn = bn;
      out.decided = true;
      out.exact = bn.exact;
      out.method = ExactnessMethod::kBeauquierNivat;
      if (out.exact) {
        // Exact polyominoes admit lattice tilings; construct one.
        out.tiling = make_lattice_tiling(tile);
        if (!out.tiling.has_value()) {
          // Should be unreachable; fall back to the torus search so the
          // caller still receives a certificate.
          out.tiling = search_periodic_tiling({tile}, config);
        }
      }
      return out;
    }
  }

  // Engine 2: lattice tilings for arbitrary tiles.
  if (auto t = make_lattice_tiling(tile); t.has_value()) {
    out.decided = true;
    out.exact = true;
    out.method = ExactnessMethod::kLatticeTiling;
    out.tiling = std::move(t);
    return out;
  }

  // Engine 3: budgeted torus search for non-lattice periodic tilings.
  if (auto t = search_periodic_tiling({tile}, config); t.has_value()) {
    out.decided = true;
    out.exact = true;
    out.method = ExactnessMethod::kTorusSearch;
    out.tiling = std::move(t);
    return out;
  }

  out.decided = false;
  out.exact = false;
  out.method = ExactnessMethod::kUndecided;
  return out;
}

}  // namespace latticesched
