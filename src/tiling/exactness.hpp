// Unified exactness decision pipeline (Section 3, question Q1).
//
// "When is a given prototile N exact, i.e. when does a translate set T
// with T1 and T2 exist?"  Three engines cooperate:
//
//  1. For polyominoes (connected, simply connected 2-D tiles) the
//     Beauquier–Nivat boundary-word criterion decides exactness outright.
//  2. Enumerating index-|N| sublattices finds every *lattice* tiling; for
//     exact polyominoes one always exists, so engines 1 and 2 must agree
//     (a property the test suite checks extensively).
//  3. The torus exact-cover search finds non-lattice periodic tilings and
//     serves as a semi-decider for arbitrary (e.g. disconnected) tiles —
//     the general problem is undecidable-flavored (Szegedy's algorithms
//     cover only prime sizes and size 4), so a budgeted search is the
//     honest tool.
#pragma once

#include <optional>
#include <string>

#include "tiling/bn_criterion.hpp"
#include "tiling/prototile.hpp"
#include "tiling/tiling.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {

enum class ExactnessMethod {
  kBeauquierNivat,   ///< decided by the boundary-word criterion
  kLatticeTiling,    ///< a sublattice tiling was found
  kTorusSearch,      ///< a periodic (possibly non-lattice) tiling was found
  kUndecided,        ///< no tiling found within budget; exactness open
};

const char* to_string(ExactnessMethod m);

struct ExactnessResult {
  /// True when `exact` is a definitive answer (not a budget timeout).
  bool decided = false;
  bool exact = false;
  ExactnessMethod method = ExactnessMethod::kUndecided;
  /// A concrete tiling, whenever one was constructed.
  std::optional<Tiling> tiling;
  /// Boundary-word details when the BN criterion was applicable.
  std::optional<BnResult> bn;
};

/// Runs the pipeline above.
ExactnessResult decide_exactness(const Prototile& tile,
                                 const TorusSearchConfig& config = {});

}  // namespace latticesched
