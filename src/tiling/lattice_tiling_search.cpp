#include "tiling/lattice_tiling_search.hpp"

namespace latticesched {

bool tiles_by_sublattice(const Prototile& tile, const Sublattice& m) {
  if (tile.dim() != m.dim()) return false;
  if (static_cast<std::int64_t>(tile.size()) != m.index()) return false;
  PointSet residues;
  residues.reserve(tile.size() * 2);
  for (const Point& p : tile.points()) {
    if (!residues.insert(m.reduce(p)).second) return false;
  }
  return true;  // |N| distinct residues out of index-many == complete system
}

std::optional<Sublattice> find_lattice_tiling(const Prototile& tile) {
  const auto hnfs = enumerate_hnf_with_det(
      tile.dim(), static_cast<std::int64_t>(tile.size()));
  for (const IntMatrix& h : hnfs) {
    Sublattice m(h);
    if (tiles_by_sublattice(tile, m)) return m;
  }
  return std::nullopt;
}

std::vector<Sublattice> all_lattice_tilings(const Prototile& tile,
                                            std::size_t limit) {
  std::vector<Sublattice> out;
  const auto hnfs = enumerate_hnf_with_det(
      tile.dim(), static_cast<std::int64_t>(tile.size()));
  for (const IntMatrix& h : hnfs) {
    if (out.size() >= limit) break;
    Sublattice m(h);
    if (tiles_by_sublattice(tile, m)) out.push_back(std::move(m));
  }
  return out;
}

std::optional<Tiling> make_lattice_tiling(const Prototile& tile) {
  const auto m = find_lattice_tiling(tile);
  if (!m.has_value()) return std::nullopt;
  return Tiling::lattice_tiling(tile, *m);
}

}  // namespace latticesched
