// Search for lattice tilings: translate sets T that are sublattices.
//
// A prototile N tiles Z^d with a sublattice T = M exactly when |N| equals
// the index of M and the elements of N are pairwise incongruent modulo M
// (then they form a complete residue system, so T1 and T2 both hold).
// Enumerating the Hermite-normal-form bases of all sublattices of index
// |N| therefore yields every lattice tiling of N.  For polyominoes this is
// even a complete exactness decider, since exact polyominoes always admit
// a lattice (regular) tiling (Beauquier–Nivat / Wijshoff–van Leeuwen).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "lattice/sublattice.hpp"
#include "tiling/prototile.hpp"
#include "tiling/tiling.hpp"

namespace latticesched {

/// Whether N tiles Z^d with translate set M (checks the complete-residue
/// condition; also requires |N| == index).
bool tiles_by_sublattice(const Prototile& tile, const Sublattice& m);

/// First sublattice (in HNF enumeration order) tiling with `tile`.
std::optional<Sublattice> find_lattice_tiling(const Prototile& tile);

/// All sublattices of index |tile| that tile with `tile`, up to `limit`.
std::vector<Sublattice> all_lattice_tilings(
    const Prototile& tile, std::size_t limit = static_cast<std::size_t>(-1));

/// Convenience: builds the Tiling object for the first lattice tiling.
std::optional<Tiling> make_lattice_tiling(const Prototile& tile);

}  // namespace latticesched
