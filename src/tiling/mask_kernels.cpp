#include "tiling/mask_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace latticesched {
namespace mask_kernels {

const Ops& scalar_ops() {
  static const Ops ops{"scalar", &any_overlap_scalar, &toggle_scalar,
                       &first_uncovered_scalar};
  return ops;
}

#if defined(LATTICESCHED_HAVE_AVX2)
namespace detail {
// Defined in mask_kernels_avx2.cpp (compiled with -mavx2); only called
// after the runtime CPUID check below.
const Ops& avx2_ops_table();
}  // namespace detail
#endif

const Ops* avx2_ops() {
#if defined(LATTICESCHED_HAVE_AVX2)
  static const bool supported = __builtin_cpu_supports("avx2");
  if (supported) return &detail::avx2_ops_table();
#endif
  return nullptr;
}

namespace {

std::atomic<Kernel> g_kernel{Kernel::kAuto};

const Ops& auto_ops() {
  // Environment override is read once: LATTICESCHED_SIMD=scalar pins the
  // portable path (e.g. for A/B benchmarking), =avx2 requests the wide
  // path (silently scalar when the host cannot run it).
  static const Ops* choice = [] {
    if (const char* env = std::getenv("LATTICESCHED_SIMD")) {
      if (std::strcmp(env, "scalar") == 0) return &scalar_ops();
    }
    const Ops* wide = avx2_ops();
    return wide != nullptr ? wide : &scalar_ops();
  }();
  return *choice;
}

}  // namespace

bool set_kernel(Kernel k) {
  if (k == Kernel::kAvx2 && avx2_ops() == nullptr) return false;
  g_kernel.store(k, std::memory_order_relaxed);
  return true;
}

Kernel kernel_setting() { return g_kernel.load(std::memory_order_relaxed); }

const Ops& active_ops() {
  switch (g_kernel.load(std::memory_order_relaxed)) {
    case Kernel::kScalar:
      return scalar_ops();
    case Kernel::kAvx2: {
      const Ops* wide = avx2_ops();
      return wide != nullptr ? *wide : scalar_ops();
    }
    case Kernel::kAuto:
    default:
      return auto_ops();
  }
}

}  // namespace mask_kernels
}  // namespace latticesched
