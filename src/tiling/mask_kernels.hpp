// Vectorizable footprint-mask kernels of the dense torus search.
//
// The dense engine's per-node work is three loops over `words`-length
// 64-bit coverage masks: the placement feasibility test (any overlapping
// bit between the coverage bitset and the footprint mask), the
// apply/undo toggle (word-wise XOR), and the first-uncovered-cell scan
// (first zero bit at or after a cursor).  This header factors them into
// a dispatch table with a portable scalar implementation and — when the
// build enables LATTICESCHED_SIMD and the host CPU supports it — an
// AVX2 implementation working in 256-bit (4-word) lanes:
// `_mm256_testz_si256` for the overlap test, lane-wise XOR for the
// toggle, and an all-ones lane compare + movemask + ctz for the scan.
//
// Selection is a RUNTIME decision (CPUID via __builtin_cpu_supports), so
// one binary serves any x86-64 host: the AVX2 code lives in its own
// translation unit compiled with -mavx2 (see mask_kernels_avx2.cpp and
// the LATTICESCHED_SIMD option in CMakeLists.txt) and is only ever
// called through the dispatch table after the CPUID check.  Both
// implementations are bit-identical by construction; the cross-check
// tests in tests/test_mask_kernels.cpp pin it on randomized masks,
// including tail words at cells % 64 != 0.
#pragma once

#include <cstdint>

namespace latticesched {
namespace mask_kernels {

/// One kernel implementation.  All three functions operate on
/// `words`-length arrays of 64-bit mask words.
struct Ops {
  /// Display name ("scalar", "avx2"); surfaced as
  /// TorusSearchStats::kernel.
  const char* name;
  /// True when (cover[i] & mask[i]) != 0 for any i < words.
  bool (*any_overlap)(const std::uint64_t* cover, const std::uint64_t* mask,
                      std::uint32_t words);
  /// cover[i] ^= mask[i] for every i < words (applies or undoes a
  /// disjoint placement footprint).
  void (*toggle)(std::uint64_t* cover, const std::uint64_t* mask,
                 std::uint32_t words);
  /// Index of the first ZERO bit at or after `cursor` (cursor <
  /// words * 64), or words * 64 when every bit from cursor on is set.
  std::uint32_t (*first_uncovered)(const std::uint64_t* cover,
                                   std::uint32_t words, std::uint32_t cursor);
};

// ---------------------------------------------------------------------------
// Portable scalar reference (also inlined by non-dispatch call sites)
// ---------------------------------------------------------------------------

inline bool any_overlap_scalar(const std::uint64_t* cover,
                               const std::uint64_t* mask,
                               std::uint32_t words) {
  for (std::uint32_t i = 0; i < words; ++i) {
    if ((cover[i] & mask[i]) != 0) return true;
  }
  return false;
}

inline void toggle_scalar(std::uint64_t* cover, const std::uint64_t* mask,
                          std::uint32_t words) {
  for (std::uint32_t i = 0; i < words; ++i) cover[i] ^= mask[i];
}

inline std::uint32_t first_uncovered_scalar(const std::uint64_t* cover,
                                            std::uint32_t words,
                                            std::uint32_t cursor) {
  std::uint32_t w = cursor / 64;
  std::uint64_t inv = ~cover[w] & (~std::uint64_t{0} << (cursor % 64));
  while (inv == 0) {
    if (++w >= words) return words * 64;
    inv = ~cover[w];
  }
  return w * 64 + static_cast<std::uint32_t>(__builtin_ctzll(inv));
}

/// The scalar dispatch table (always available).
const Ops& scalar_ops();

/// The AVX2 dispatch table, or nullptr when the build did not enable
/// LATTICESCHED_SIMD or the host CPU lacks AVX2.  Never dereference the
/// function pointers on a non-AVX2 host.
const Ops* avx2_ops();

/// Kernel selection policy.  kAuto picks the widest available
/// implementation, overridable by the LATTICESCHED_SIMD environment
/// variable ("scalar" forces the portable path, "avx2" requests AVX2).
enum class Kernel { kAuto, kScalar, kAvx2 };

/// Process-wide override (tests and benches compare kernels with it).
/// Returns false — leaving the previous setting in place — when kAvx2 is
/// requested but unavailable.
bool set_kernel(Kernel k);
Kernel kernel_setting();

/// The table the dense engine uses, honoring set_kernel() and the
/// LATTICESCHED_SIMD environment variable, falling back to scalar when
/// AVX2 is unavailable.
const Ops& active_ops();

}  // namespace mask_kernels
}  // namespace latticesched
