// AVX2 implementations of the footprint-mask kernels.  This translation
// unit is compiled with -mavx2 (per-file arch flags set by the
// LATTICESCHED_SIMD option in CMakeLists.txt) and MUST only be entered
// through mask_kernels::avx2_ops(), which gates it behind a runtime
// __builtin_cpu_supports("avx2") check — nothing here may be called on a
// host without AVX2, and no code outside this file is compiled with the
// wider ISA, so one binary serves any x86-64 host.
#include "tiling/mask_kernels.hpp"

#if defined(LATTICESCHED_HAVE_AVX2)

#include <immintrin.h>

namespace latticesched {
namespace mask_kernels {
namespace {

/// 4 words (256 bits) per iteration; `_mm256_testz_si256` computes
/// (a & b) == 0 across the whole lane in one instruction.
bool any_overlap_avx2(const std::uint64_t* cover, const std::uint64_t* mask,
                      std::uint32_t words) {
  std::uint32_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cover + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    if (_mm256_testz_si256(a, b) == 0) return true;
  }
  for (; i < words; ++i) {
    if ((cover[i] & mask[i]) != 0) return true;
  }
  return false;
}

void toggle_avx2(std::uint64_t* cover, const std::uint64_t* mask,
                 std::uint32_t words) {
  std::uint32_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cover + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cover + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < words; ++i) cover[i] ^= mask[i];
}

/// The cursor word is masked and scanned scalar (it rarely pays to
/// vectorize a single word); then 4-word lanes are compared against
/// all-ones — a lane whose compare movemask is not 0xF holds a zero bit,
/// located by ctz over the inverted movemask and the word itself.
std::uint32_t first_uncovered_avx2(const std::uint64_t* cover,
                                   std::uint32_t words,
                                   std::uint32_t cursor) {
  std::uint32_t w = cursor / 64;
  std::uint64_t inv = ~cover[w] & (~std::uint64_t{0} << (cursor % 64));
  if (inv != 0) {
    return w * 64 + static_cast<std::uint32_t>(__builtin_ctzll(inv));
  }
  ++w;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; w + 4 <= words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cover + w));
    const int full =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, ones)));
    if (full != 0xF) {
      const std::uint32_t lane =
          static_cast<std::uint32_t>(__builtin_ctz(~full & 0xF));
      return (w + lane) * 64 +
             static_cast<std::uint32_t>(__builtin_ctzll(~cover[w + lane]));
    }
  }
  for (; w < words; ++w) {
    if (cover[w] != ~std::uint64_t{0}) {
      return w * 64 + static_cast<std::uint32_t>(__builtin_ctzll(~cover[w]));
    }
  }
  return words * 64;
}

}  // namespace

namespace detail {

const Ops& avx2_ops_table() {
  static const Ops ops{"avx2", &any_overlap_avx2, &toggle_avx2,
                       &first_uncovered_avx2};
  return ops;
}

}  // namespace detail

}  // namespace mask_kernels
}  // namespace latticesched

#endif  // LATTICESCHED_HAVE_AVX2
