#include "tiling/prototile.hpp"

#include <algorithm>
#include <deque>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace latticesched {

Prototile::Prototile(PointVec points, std::string name)
    : points_(sorted_unique(std::move(points))), name_(std::move(name)) {
  if (points_.empty()) {
    throw std::invalid_argument("Prototile: empty point set");
  }
  const std::size_t d = points_.front().dim();
  for (const Point& p : points_) {
    if (p.dim() != d) {
      throw std::invalid_argument("Prototile: mixed dimensions");
    }
  }
  point_set_ = PointSet(points_.begin(), points_.end());
  if (point_set_.count(Point::zero(d)) == 0) {
    throw std::invalid_argument(
        "Prototile: must contain the origin (it is a neighborhood of 0)");
  }
}

Prototile Prototile::from_ascii(const std::vector<std::string>& rows,
                                std::string name) {
  PointVec pts;
  std::optional<Point> anchor;
  const auto height = static_cast<std::int64_t>(rows.size());
  for (std::int64_t r = 0; r < height; ++r) {
    const std::string& row = rows[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(row.size()); ++c) {
      const char ch = row[static_cast<std::size_t>(c)];
      if (ch == '#' || ch == 'X' || ch == 'O') {
        // ASCII row 0 is the top; flip so +y points up.
        const Point p{c, height - 1 - r};
        pts.push_back(p);
        if (ch == 'O') {
          if (anchor.has_value()) {
            throw std::invalid_argument("from_ascii: multiple 'O' anchors");
          }
          anchor = p;
        }
      } else if (ch != '.' && ch != ' ') {
        throw std::invalid_argument(std::string("from_ascii: bad char '") +
                                    ch + "'");
      }
    }
  }
  if (pts.empty()) throw std::invalid_argument("from_ascii: no cells");
  const Point origin = anchor.value_or(sorted_unique(pts).front());
  for (Point& p : pts) p -= origin;
  return Prototile(std::move(pts), std::move(name));
}

bool Prototile::contains(const Point& p) const {
  return point_set_.count(p) != 0;
}

std::optional<std::size_t> Prototile::index_of(const Point& p) const {
  const auto it = std::lower_bound(points_.begin(), points_.end(), p);
  if (it != points_.end() && *it == p) {
    return static_cast<std::size_t>(it - points_.begin());
  }
  return std::nullopt;
}

PointVec Prototile::translated(const Point& t) const {
  PointVec out;
  out.reserve(points_.size());
  for (const Point& p : points_) out.push_back(p + t);
  return out;
}

Prototile Prototile::normalized_at(const Point& new_origin) const {
  if (!contains(new_origin)) {
    throw std::invalid_argument("normalized_at: not an element");
  }
  PointVec pts;
  pts.reserve(points_.size());
  for (const Point& p : points_) pts.push_back(p - new_origin);
  return Prototile(std::move(pts), name_);
}

bool Prototile::contains_tile(const Prototile& other) const {
  for (const Point& p : other.points()) {
    if (!contains(p)) return false;
  }
  return true;
}

PointVec Prototile::minkowski_sum(const Prototile& other) const {
  PointVec out;
  out.reserve(points_.size() * other.points_.size());
  for (const Point& a : points_) {
    for (const Point& b : other.points_) out.push_back(a + b);
  }
  return sorted_unique(std::move(out));
}

PointVec Prototile::difference_set() const {
  PointVec out;
  out.reserve(points_.size() * points_.size());
  for (const Point& a : points_) {
    for (const Point& b : points_) out.push_back(a - b);
  }
  return sorted_unique(std::move(out));
}

Box Prototile::bounding_box() const {
  Point lo = points_.front(), hi = points_.front();
  for (const Point& p : points_) {
    for (std::size_t i = 0; i < p.dim(); ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  return Box(lo, hi);
}

void Prototile::require_2d(const char* what) const {
  if (dim() != 2) {
    throw std::logic_error(std::string(what) + ": 2-D prototiles only");
  }
}

Prototile Prototile::rotated90() const {
  require_2d("rotated90");
  PointVec pts;
  pts.reserve(points_.size());
  for (const Point& p : points_) pts.push_back(Point{-p[1], p[0]});
  return Prototile(std::move(pts), name_.empty() ? "" : name_ + "+r90");
}

Prototile Prototile::reflected_x() const {
  require_2d("reflected_x");
  PointVec pts;
  pts.reserve(points_.size());
  for (const Point& p : points_) pts.push_back(Point{-p[0], p[1]});
  return Prototile(std::move(pts), name_.empty() ? "" : name_ + "+mx");
}

std::vector<Prototile> Prototile::rotations() const {
  require_2d("rotations");
  std::vector<Prototile> out;
  Prototile cur = *this;
  for (int i = 0; i < 4; ++i) {
    if (std::none_of(out.begin(), out.end(),
                     [&](const Prototile& t) { return t == cur; })) {
      out.push_back(cur);
    }
    cur = cur.rotated90();
  }
  return out;
}

bool Prototile::is_connected() const {
  require_2d("is_connected");
  PointSet seen;
  std::deque<Point> queue;
  queue.push_back(points_.front());
  seen.insert(points_.front());
  const Point dirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  while (!queue.empty()) {
    const Point p = queue.front();
    queue.pop_front();
    for (const Point& d : dirs) {
      const Point q = p + d;
      if (contains(q) && seen.insert(q).second) queue.push_back(q);
    }
  }
  return seen.size() == points_.size();
}

std::string Prototile::to_ascii() const {
  require_2d("to_ascii");
  const Box bb = bounding_box();
  std::ostringstream os;
  for (std::int64_t y = bb.hi()[1]; y >= bb.lo()[1]; --y) {
    for (std::int64_t x = bb.lo()[0]; x <= bb.hi()[0]; ++x) {
      const Point p{x, y};
      if (p.is_zero() && contains(p)) {
        os << 'O';
      } else {
        os << (contains(p) ? '#' : '.');
      }
    }
    os << "\n";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Prototile& t) {
  os << "Prototile(" << (t.name().empty() ? "unnamed" : t.name()) << ", "
     << t.size() << " cells)";
  return os;
}

}  // namespace latticesched
