// Prototiles (interference neighborhoods).
//
// Following Section 2 of the paper, a prototile N is a finite subset of the
// lattice containing 0.  N doubles as the interference neighborhood: a
// sensor at t affects exactly t + N.  The same object is the combinatorial
// tile whose translates may tile the lattice (conditions T1/T2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "lattice/point.hpp"
#include "lattice/region.hpp"

namespace latticesched {

class Prototile {
 public:
  /// From points; must be nonempty, all of one dimension, and contain 0
  /// (the paper's definition of a neighborhood of the point 0).
  /// Points are deduplicated and stored sorted, which fixes the canonical
  /// element order n_1 < n_2 < ... < n_m used by the schedules.
  explicit Prototile(PointVec points, std::string name = "");

  /// Parses 2-D ASCII art, rows listed top-to-bottom.  '#' or 'X' mark
  /// cells, 'O' marks the cell that becomes the origin (optional; default
  /// anchor is the lexicographically smallest cell), '.' and ' ' are empty.
  static Prototile from_ascii(const std::vector<std::string>& rows,
                              std::string name = "");

  const std::string& name() const { return name_; }
  std::size_t dim() const { return points_.front().dim(); }
  std::size_t size() const { return points_.size(); }

  /// Elements in canonical (sorted) order; contains Point::zero(dim()).
  const PointVec& points() const { return points_; }
  const Point& element(std::size_t i) const { return points_.at(i); }

  bool contains(const Point& p) const;
  /// Index of p in the canonical order, if present.
  std::optional<std::size_t> index_of(const Point& p) const;

  /// The translate t + N as a point list.
  PointVec translated(const Point& t) const;

  /// Re-anchors so that `new_origin` (must be an element) maps to 0.
  Prototile normalized_at(const Point& new_origin) const;

  /// Whether this prototile contains every point of `other`
  /// (the respectability relation N ⊇ N_k of Section 4).
  bool contains_tile(const Prototile& other) const;

  /// Minkowski sum N + M (used for the finite-restriction condition
  /// "D contains a translate of N1 + N1" from the Conclusions).
  PointVec minkowski_sum(const Prototile& other) const;

  /// Difference set N - N; s and t interfere iff s - t ∈ (N - N).
  PointVec difference_set() const;

  /// Smallest box containing all elements.
  Box bounding_box() const;

  /// 90° counterclockwise rotation about the origin (2-D only); the
  /// result is re-anchored to contain 0 if rotation moved 0 away (it
  /// cannot: rotation fixes 0).
  Prototile rotated90() const;
  /// Mirror image across the y-axis (2-D only).
  Prototile reflected_x() const;
  /// All distinct images under the 4 rotations (2-D only).
  std::vector<Prototile> rotations() const;

  /// 4-neighbour connectivity in Z² (polyomino test prerequisite).
  bool is_connected() const;

  /// ASCII rendering (2-D only), rows top-to-bottom; origin drawn as 'O'.
  std::string to_ascii() const;

  bool operator==(const Prototile& o) const { return points_ == o.points_; }
  bool operator!=(const Prototile& o) const { return !(*this == o); }

  friend std::ostream& operator<<(std::ostream& os, const Prototile& t);

 private:
  PointVec points_;
  PointSet point_set_;
  std::string name_;
  void require_2d(const char* what) const;
};

}  // namespace latticesched
