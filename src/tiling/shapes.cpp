#include "tiling/shapes.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace latticesched {
namespace shapes {

namespace {

// Enumerates the coordinate box [-b, b]^dim and keeps points passing
// `keep`; shared skeleton of the ball factories.
template <typename Pred>
PointVec filter_box(std::size_t dim, std::int64_t b, Pred keep) {
  PointVec out;
  Point p(dim);
  for (std::size_t i = 0; i < dim; ++i) p[i] = -b;
  while (true) {
    if (keep(p)) out.push_back(p);
    std::size_t i = 0;
    while (i < dim) {
      if (++p[i] <= b) break;
      p[i] = -b;
      ++i;
    }
    if (i == dim) break;
  }
  return out;
}

}  // namespace

Prototile chebyshev_ball(std::size_t dim, std::int64_t r) {
  if (r < 0) throw std::invalid_argument("chebyshev_ball: negative radius");
  return Prototile(
      filter_box(dim, r, [&](const Point& p) { return p.norm_inf() <= r; }),
      "linf-ball-r" + std::to_string(r));
}

Prototile l1_ball(std::size_t dim, std::int64_t r) {
  if (r < 0) throw std::invalid_argument("l1_ball: negative radius");
  return Prototile(
      filter_box(dim, r, [&](const Point& p) { return p.norm1() <= r; }),
      "l1-ball-r" + std::to_string(r));
}

Prototile euclidean_ball(const Lattice& lattice, double r) {
  if (r < 0) throw std::invalid_argument("euclidean_ball: negative radius");
  // Conservative coordinate bound: |B·p| >= |p|_inf * min basis reach;
  // simply use r / shortest-vector length, rounded up, plus slack.
  const double min_len = std::sqrt(lattice.minimum_sq());
  const auto bound =
      static_cast<std::int64_t>(std::ceil(r / std::max(min_len, 1e-9))) + 1;
  const double r_sq = r * r + 1e-9;
  PointVec pts = filter_box(lattice.dim(), bound, [&](const Point& p) {
    return lattice.norm_sq(p) <= r_sq;
  });
  char radius_str[32];
  std::snprintf(radius_str, sizeof radius_str, "%g", r);
  return Prototile(std::move(pts),
                   lattice.name() + "-l2-ball-r" + radius_str);
}

Prototile rectangle(std::int64_t w, std::int64_t h, std::int64_t origin_x,
                    std::int64_t origin_y) {
  if (w <= 0 || h <= 0) throw std::invalid_argument("rectangle: empty");
  if (origin_x < 0 || origin_x >= w || origin_y < 0 || origin_y >= h) {
    throw std::invalid_argument("rectangle: origin outside rectangle");
  }
  PointVec pts;
  for (std::int64_t x = 0; x < w; ++x) {
    for (std::int64_t y = 0; y < h; ++y) {
      pts.push_back(Point{x - origin_x, y - origin_y});
    }
  }
  return Prototile(std::move(pts), "rect" + std::to_string(w) + "x" +
                                       std::to_string(h));
}

Prototile directional_antenna() {
  // 2 wide, 4 tall, origin at the top-left cell: the antenna radiates
  // into the two columns below/right of the sensor.
  return rectangle(2, 4, /*origin_x=*/0, /*origin_y=*/3);
}

Prototile s_tetromino() {
  return Prototile::from_ascii({".XX",
                                "OX."},
                               "S-tetromino");
}

Prototile z_tetromino() {
  return Prototile::from_ascii({"XX.",
                                ".OX"},
                               "Z-tetromino");
}

Prototile l_tromino() {
  return Prototile::from_ascii({"X.",
                                "OX"},
                               "L-tromino");
}

Prototile straight_polyomino(std::int64_t k) {
  if (k <= 0) throw std::invalid_argument("straight_polyomino: k <= 0");
  PointVec pts;
  for (std::int64_t x = 0; x < k; ++x) pts.push_back(Point{x, 0});
  return Prototile(std::move(pts), "I" + std::to_string(k));
}

Prototile quadrant_sector(std::int64_t r) {
  if (r < 0) throw std::invalid_argument("quadrant_sector: negative radius");
  PointVec pts;
  for (std::int64_t x = 0; x <= r; ++x) {
    for (std::int64_t y = 0; y <= r; ++y) pts.push_back(Point{x, y});
  }
  return Prototile(std::move(pts), "quadrant-r" + std::to_string(r));
}

}  // namespace shapes
}  // namespace latticesched
