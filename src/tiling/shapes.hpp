// Factory functions for the neighborhood shapes discussed in the paper.
//
// Figure 2 shows three examples: a Chebyshev (l∞) ball, a Euclidean (l2)
// ball, and a directional-antenna neighborhood.  Figure 5 uses S- and
// Z-tetrominoes.  These factories produce them (and relatives) for any
// radius/size, so the experiments can sweep neighborhood sizes.
#pragma once

#include <cstdint>

#include "lattice/lattice.hpp"
#include "tiling/prototile.hpp"

namespace latticesched {
namespace shapes {

/// Ball of radius r in the Chebyshev (l∞) metric: (2r+1)^d points
/// (Figure 2 left for d=2, r=1: 9 points).
Prototile chebyshev_ball(std::size_t dim, std::int64_t r);

/// Ball of radius r in the l1 metric (diamond / cross for r=1).
Prototile l1_ball(std::size_t dim, std::int64_t r);

/// Ball of (Euclidean) radius r in the metric of the given lattice
/// (Figure 2 middle: square lattice, r=1 gives the 5-point plus shape).
/// Membership is decided exactly via the lattice's scaled Gram form when
/// r is rational-friendly; a small epsilon guards double rounding.
Prototile euclidean_ball(const Lattice& lattice, double r);

/// Axis-aligned w x h rectangle of cells with the origin at the given
/// offset inside it (defaults to the top-left cell, matching the 2x4
/// directional-antenna neighborhood of Figures 2/3 when w=2, h=4: the
/// sensor radiates "south" of itself).
Prototile rectangle(std::int64_t w, std::int64_t h,
                    std::int64_t origin_x = 0, std::int64_t origin_y = 0);

/// The paper's Figure 2 (right) / Figure 3 directional-antenna
/// neighborhood: a 2-wide, 4-tall block with the origin in the top-left.
Prototile directional_antenna();

/// S-tetromino ("XX.." over ".XX" reading top-down):
///   .XX
///   XX.
Prototile s_tetromino();

/// Z-tetromino, the mirror image:
///   XX.
///   .XX
Prototile z_tetromino();

/// L-tromino (three cells).
Prototile l_tromino();

/// Straight k-omino along the x-axis (1 x k).
Prototile straight_polyomino(std::int64_t k);

/// A 90° quadrant sector of a Chebyshev ball: models a sensor whose
/// antenna radiates into the first quadrant with range r.
Prototile quadrant_sector(std::int64_t r);

}  // namespace shapes
}  // namespace latticesched
