#include "tiling/tiling.hpp"

#include <sstream>
#include <stdexcept>

namespace latticesched {

Tiling::Tiling(std::vector<Prototile> prototiles, Sublattice period)
    : prototiles_(std::move(prototiles)), period_(std::move(period)) {}

Tiling Tiling::lattice_tiling(Prototile tile, const Sublattice& translates) {
  if (static_cast<std::int64_t>(tile.size()) != translates.index()) {
    throw std::invalid_argument(
        "lattice_tiling: |tile| != index of translate sublattice");
  }
  std::vector<Prototile> protos;
  protos.push_back(std::move(tile));
  return periodic(std::move(protos), translates,
                  {{Point::zero(translates.dim()), 0}});
}

Tiling Tiling::periodic(
    std::vector<Prototile> prototiles, const Sublattice& period,
    std::vector<std::pair<Point, std::uint32_t>> placements) {
  if (prototiles.empty()) {
    throw std::invalid_argument("Tiling::periodic: no prototiles");
  }
  const std::size_t d = period.dim();
  for (const Prototile& t : prototiles) {
    if (t.dim() != d) {
      throw std::invalid_argument("Tiling::periodic: dimension mismatch");
    }
  }
  Tiling out(std::move(prototiles), period);
  for (const auto& [translate, k] : placements) {
    if (k >= out.prototiles_.size()) {
      throw std::invalid_argument("Tiling::periodic: bad prototile index");
    }
    const Point rep = period.reduce(translate);
    if (!out.placement_by_residue_.emplace(rep, k).second) {
      throw std::invalid_argument(
          "Tiling::periodic: duplicate placement translate class");
    }
    out.placements_.emplace_back(rep, k);
    const Prototile& tile = out.prototiles_[k];
    for (std::size_t i = 0; i < tile.size(); ++i) {
      const Point cell = period.reduce(rep + tile.element(i));
      Cell info;
      info.prototile = k;
      info.element_index = static_cast<std::uint32_t>(i);
      info.translate_class = rep;
      if (!out.cell_by_residue_.emplace(cell, info).second) {
        std::ostringstream os;
        os << "Tiling::periodic: overlap at coset " << cell
           << " (violates T2/GT2)";
        throw std::invalid_argument(os.str());
      }
    }
  }
  if (out.cell_by_residue_.size() !=
      static_cast<std::size_t>(period.index())) {
    std::ostringstream os;
    os << "Tiling::periodic: cover incomplete (violates T1/GT1): "
       << out.cell_by_residue_.size() << " of " << period.index()
       << " cosets covered";
    throw std::invalid_argument(os.str());
  }
  return out;
}

Covering Tiling::covering(const Point& p) const {
  const Point rep = period_.reduce(p);
  const auto it = cell_by_residue_.find(rep);
  if (it == cell_by_residue_.end()) {
    throw std::logic_error("Tiling::covering: residue missing (corrupt)");
  }
  const Cell& cell = it->second;
  Covering c;
  c.prototile = cell.prototile;
  c.element_index = cell.element_index;
  c.translate =
      p - prototiles_[cell.prototile].element(cell.element_index);
  return c;
}

std::vector<std::pair<Point, std::uint32_t>> Tiling::placements_in(
    const Box& box) const {
  std::vector<std::pair<Point, std::uint32_t>> out;
  box.for_each([&](const Point& t) {
    const auto it = placement_by_residue_.find(period_.reduce(t));
    if (it != placement_by_residue_.end()) {
      out.emplace_back(t, it->second);
    }
  });
  return out;
}

std::optional<std::uint32_t> Tiling::respectable_prototile() const {
  for (std::uint32_t k = 0; k < prototiles_.size(); ++k) {
    bool contains_all = true;
    for (std::size_t j = 0; j < prototiles_.size(); ++j) {
      if (!prototiles_[k].contains_tile(prototiles_[j])) {
        contains_all = false;
        break;
      }
    }
    if (contains_all) return k;
  }
  return std::nullopt;
}

bool Tiling::verify_window(const Box& box, std::string* error) const {
  // Any tile whose translate is within reach of the box can contribute;
  // expand by the largest bounding-box extent among prototiles.
  std::int64_t reach = 0;
  for (const Prototile& t : prototiles_) {
    const Box bb = t.bounding_box();
    for (std::size_t i = 0; i < t.dim(); ++i) {
      reach = std::max(reach,
                       static_cast<std::int64_t>(std::llabs(bb.lo()[i])));
      reach = std::max(reach,
                       static_cast<std::int64_t>(std::llabs(bb.hi()[i])));
    }
  }
  PointMap<int> coverage;
  for (const auto& [t, k] : placements_in(box.expanded(reach))) {
    for (const Point& p : prototiles_[k].translated(t)) {
      if (box.contains(p)) ++coverage[p];
    }
  }
  bool ok = true;
  std::ostringstream os;
  box.for_each([&](const Point& p) {
    const auto it = coverage.find(p);
    const int c = it == coverage.end() ? 0 : it->second;
    if (c != 1 && ok) {
      ok = false;
      os << "point " << p << " covered " << c << " times";
    }
  });
  if (!ok && error != nullptr) *error = os.str();
  return ok;
}

}  // namespace latticesched
