#include "tiling/tiling.hpp"

#include <sstream>
#include <stdexcept>

namespace latticesched {

Tiling::Tiling(std::vector<Prototile> prototiles, Sublattice period)
    : prototiles_(std::move(prototiles)), period_(std::move(period)) {}

Tiling Tiling::lattice_tiling(Prototile tile, const Sublattice& translates) {
  if (static_cast<std::int64_t>(tile.size()) != translates.index()) {
    throw std::invalid_argument(
        "lattice_tiling: |tile| != index of translate sublattice");
  }
  std::vector<Prototile> protos;
  protos.push_back(std::move(tile));
  return periodic(std::move(protos), translates,
                  {{Point::zero(translates.dim()), 0}});
}

Tiling Tiling::periodic(
    std::vector<Prototile> prototiles, const Sublattice& period,
    std::vector<std::pair<Point, std::uint32_t>> placements) {
  if (prototiles.empty()) {
    throw std::invalid_argument("Tiling::periodic: no prototiles");
  }
  const std::size_t d = period.dim();
  for (const Prototile& t : prototiles) {
    if (t.dim() != d) {
      throw std::invalid_argument("Tiling::periodic: dimension mismatch");
    }
  }
  Tiling out(std::move(prototiles), period);
  // Dense quotient tables: every coset of P gets exactly one Cell; the
  // exact-cover validation (GT1 + GT2) is a fill count on flat arrays.
  out.coset_index_ = PointIndexer::for_sublattice(period);
  const std::size_t cosets = out.coset_index_->size();
  out.cell_by_id_.assign(cosets, Cell{});
  out.placement_by_id_.assign(cosets, kNoPlacement);
  std::vector<std::uint8_t> cell_used(cosets, 0);
  std::size_t cells_covered = 0;
  for (const auto& [translate, k] : placements) {
    if (k >= out.prototiles_.size()) {
      throw std::invalid_argument("Tiling::periodic: bad prototile index");
    }
    const Point rep = period.reduce(translate);
    const std::uint32_t rep_id = out.coset_index_->id_of(rep);
    if (out.placement_by_id_[rep_id] != kNoPlacement) {
      throw std::invalid_argument(
          "Tiling::periodic: duplicate placement translate class");
    }
    out.placement_by_id_[rep_id] =
        static_cast<std::uint32_t>(out.placements_.size());
    out.placements_.emplace_back(rep, k);
    const Prototile& tile = out.prototiles_[k];
    for (std::size_t i = 0; i < tile.size(); ++i) {
      const std::uint32_t cell_id =
          out.coset_index_->id_of(period.reduce(rep + tile.element(i)));
      if (cell_used[cell_id] != 0) {
        std::ostringstream os;
        os << "Tiling::periodic: overlap at coset "
           << out.coset_index_->point_of(cell_id) << " (violates T2/GT2)";
        throw std::invalid_argument(os.str());
      }
      cell_used[cell_id] = 1;
      ++cells_covered;
      Cell& info = out.cell_by_id_[cell_id];
      info.prototile = k;
      info.element_index = static_cast<std::uint32_t>(i);
      info.translate_class = rep;
    }
  }
  if (cells_covered != cosets) {
    std::ostringstream os;
    os << "Tiling::periodic: cover incomplete (violates T1/GT1): "
       << cells_covered << " of " << period.index() << " cosets covered";
    throw std::invalid_argument(os.str());
  }
  return out;
}

Covering Tiling::covering(const Point& p) const {
  const Cell& cell =
      cell_by_id_[coset_index_->id_of(period_.reduce(p))];
  Covering c;
  c.prototile = cell.prototile;
  c.element_index = cell.element_index;
  c.translate =
      p - prototiles_[cell.prototile].element(cell.element_index);
  return c;
}

std::vector<std::pair<Point, std::uint32_t>> Tiling::placements_in(
    const Box& box) const {
  std::vector<std::pair<Point, std::uint32_t>> out;
  box.for_each([&](const Point& t) {
    const std::uint32_t pl =
        placement_by_id_[coset_index_->id_of(period_.reduce(t))];
    if (pl != kNoPlacement) {
      out.emplace_back(t, placements_[pl].second);
    }
  });
  return out;
}

std::optional<std::uint32_t> Tiling::respectable_prototile() const {
  for (std::uint32_t k = 0; k < prototiles_.size(); ++k) {
    bool contains_all = true;
    for (std::size_t j = 0; j < prototiles_.size(); ++j) {
      if (!prototiles_[k].contains_tile(prototiles_[j])) {
        contains_all = false;
        break;
      }
    }
    if (contains_all) return k;
  }
  return std::nullopt;
}

bool Tiling::verify_window(const Box& box, std::string* error) const {
  // Any tile whose translate is within reach of the box can contribute;
  // expand by the largest bounding-box extent among prototiles.
  std::int64_t reach = 0;
  for (const Prototile& t : prototiles_) {
    const Box bb = t.bounding_box();
    for (std::size_t i = 0; i < t.dim(); ++i) {
      reach = std::max(reach,
                       static_cast<std::int64_t>(std::llabs(bb.lo()[i])));
      reach = std::max(reach,
                       static_cast<std::int64_t>(std::llabs(bb.hi()[i])));
    }
  }
  PointMap<int> coverage;
  for (const auto& [t, k] : placements_in(box.expanded(reach))) {
    for (const Point& p : prototiles_[k].translated(t)) {
      if (box.contains(p)) ++coverage[p];
    }
  }
  bool ok = true;
  std::ostringstream os;
  box.for_each([&](const Point& p) {
    const auto it = coverage.find(p);
    const int c = it == coverage.end() ? 0 : it->second;
    if (c != 1 && ok) {
      ok = false;
      os << "point " << p << " covered " << c << " times";
    }
  });
  if (!ok && error != nullptr) *error = os.str();
  return ok;
}

}  // namespace latticesched
