// Tilings of Z^d by translates of prototiles (Sections 2 and 4).
//
// A tiling is a translate set T (single prototile, conditions T1/T2) or a
// family T_1 … T_n (several prototiles, conditions GT1/GT2).  Every tiling
// this library constructs is *periodic*: invariant under a finite-index
// period sublattice P.  A periodic tiling is stored as its quotient data —
// for every coset of P, which (translate class, prototile, element) covers
// it — which makes `covering(p)` an O(d) lookup and lets a finite check on
// the quotient certify the infinite conditions T1/T2 (coverage counts are
// P-periodic, so "each coset covered exactly once" lifts to "each lattice
// point covered exactly once").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lattice/point_index.hpp"
#include "lattice/region.hpp"
#include "lattice/sublattice.hpp"
#include "tiling/prototile.hpp"

namespace latticesched {

/// Which tile covers a given lattice point: the point equals
/// `translate + prototile.element(element_index)`.
struct Covering {
  Point translate;
  std::uint32_t prototile = 0;
  std::uint32_t element_index = 0;
};

class Tiling {
 public:
  /// Lattice tiling (T = sublattice): requires |tile| == translates.index()
  /// and that the tile's elements form a complete residue system modulo
  /// the translate sublattice; throws otherwise.
  static Tiling lattice_tiling(Prototile tile, const Sublattice& translates);

  /// General periodic tiling from explicit placements: each placement is a
  /// (translate, prototile-index) pair, interpreted modulo `period`.
  /// Validates the exact-cover property (GT1 + GT2 on the quotient) and
  /// throws std::invalid_argument when violated.
  static Tiling periodic(std::vector<Prototile> prototiles,
                         const Sublattice& period,
                         std::vector<std::pair<Point, std::uint32_t>> placements);

  std::size_t dim() const { return period_.dim(); }
  const Sublattice& period() const { return period_; }
  const std::vector<Prototile>& prototiles() const { return prototiles_; }
  const Prototile& prototile(std::size_t k) const {
    return prototiles_.at(k);
  }
  std::size_t prototile_count() const { return prototiles_.size(); }

  /// Canonical placements (translate classes reduced modulo the period).
  const std::vector<std::pair<Point, std::uint32_t>>& placements() const {
    return placements_;
  }

  /// The unique tile covering p (always defined: condition T1/GT1).
  Covering covering(const Point& p) const;

  /// All placements whose translate lies in `box` (translates enumerated
  /// in the infinite tiling, not just canonical ones).
  std::vector<std::pair<Point, std::uint32_t>> placements_in(const Box& box)
      const;

  /// Index of a prototile containing all others (the paper's respectable
  /// prototile N_1), if one exists.  Single-prototile tilings are always
  /// respectable.
  std::optional<std::uint32_t> respectable_prototile() const;
  bool is_respectable() const { return respectable_prototile().has_value(); }

  /// Independent brute-force re-verification of the covering conditions on
  /// a window: every point of `box` must be covered exactly once by the
  /// placements found near the box.  Returns false and fills `error`
  /// (when non-null) on violation.  Used by tests as a second opinion on
  /// the quotient-based constructor validation.
  bool verify_window(const Box& box, std::string* error = nullptr) const;

 private:
  Tiling(std::vector<Prototile> prototiles, Sublattice period);

  std::vector<Prototile> prototiles_;
  Sublattice period_;
  std::vector<std::pair<Point, std::uint32_t>> placements_;

  struct Cell {
    std::uint32_t prototile = 0;
    std::uint32_t element_index = 0;
    Point translate_class;  // canonical representative of the translate
  };
  /// Dense coset-id tables over the period (engine id space): the
  /// quotient data is total on Z^d / P, so a flat array per coset beats
  /// the seed's hash maps in both construction and covering() queries.
  std::optional<PointIndexer> coset_index_;
  std::vector<Cell> cell_by_id_;
  /// Placement index per coset id, or kNoPlacement.
  std::vector<std::uint32_t> placement_by_id_;
  static constexpr std::uint32_t kNoPlacement = 0xFFFFFFFFu;
};

}  // namespace latticesched
