#include "tiling/torus_search.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <stdexcept>

#include "lattice/point_index.hpp"
#include "util/parallel.hpp"

namespace latticesched {

namespace {

// ---------------------------------------------------------------------------
// Legacy engine (seed implementation): per-node reduce() + hash lookups +
// a heap-allocated id scratch per placement.  Kept verbatim as the
// reference the dense engine is benchmarked and cross-validated against.
// ---------------------------------------------------------------------------

struct LegacyState {
  const std::vector<Prototile>* prototiles = nullptr;
  const Sublattice* period = nullptr;
  // Torus cells in a fixed order with an index lookup.
  PointVec cells;
  PointMap<std::uint32_t> cell_index;
  std::vector<bool> covered;
  std::size_t covered_count = 0;
  std::vector<std::pair<Point, std::uint32_t>> placements;
  std::vector<std::size_t> uses;  // placements per prototile
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool require_all = false;
  std::size_t result_limit = 1;
  std::vector<Tiling>* results = nullptr;
};

// Records the current placement list as a Tiling (validation re-runs in
// Tiling::periodic, which acts as an internal consistency check).
void emit_legacy(LegacyState& st) {
  st.results->push_back(
      Tiling::periodic(*st.prototiles, *st.period, st.placements));
}

bool search_legacy(LegacyState& st) {
  if (st.covered_count == st.cells.size()) {
    if (st.require_all) {
      for (std::size_t k = 0; k < st.uses.size(); ++k) {
        if (st.uses[k] == 0) return false;
      }
    }
    emit_legacy(st);
    return st.results->size() >= st.result_limit;
  }
  // First uncovered cell; every placement covering it is tried once.
  std::size_t first = 0;
  while (st.covered[first]) ++first;
  const Point& target = st.cells[first];

  for (std::uint32_t k = 0; k < st.prototiles->size(); ++k) {
    const Prototile& tile = (*st.prototiles)[k];
    for (std::size_t e = 0; e < tile.size(); ++e) {
      if (++st.nodes > st.node_limit) return true;  // budget exhausted
      const Point translate = target - tile.element(e);
      // Collect the covered cell indices; reject overlaps and self-wraps.
      bool feasible = true;
      std::vector<std::uint32_t> ids;
      ids.reserve(tile.size());
      for (const Point& n : tile.points()) {
        const Point cell = st.period->reduce(translate + n);
        const std::uint32_t id = st.cell_index.at(cell);
        if (st.covered[id] ||
            std::find(ids.begin(), ids.end(), id) != ids.end()) {
          feasible = false;
          break;
        }
        ids.push_back(id);
      }
      if (!feasible) continue;
      for (std::uint32_t id : ids) st.covered[id] = true;
      st.covered_count += ids.size();
      st.placements.emplace_back(translate, k);
      ++st.uses[k];
      const bool done = search_legacy(st);
      --st.uses[k];
      st.placements.pop_back();
      st.covered_count -= ids.size();
      for (std::uint32_t id : ids) st.covered[id] = false;
      if (done) return true;
    }
  }
  return false;
}

std::vector<Tiling> run_search_legacy(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config, std::size_t limit) {
  std::vector<Tiling> results;
  LegacyState st;
  st.prototiles = &prototiles;
  st.period = &period;
  st.cells = period.coset_representatives();
  for (std::uint32_t i = 0; i < st.cells.size(); ++i) {
    st.cell_index.emplace(st.cells[i], i);
  }
  st.covered.assign(st.cells.size(), false);
  st.uses.assign(prototiles.size(), 0);
  st.node_limit = config.node_limit;
  st.require_all = config.require_all_prototiles;
  st.result_limit = limit;
  st.results = &results;
  search_legacy(st);
  // node_limit is a per-torus budget: one serial search may overshoot by
  // at most the final (budget-exhausting) increment.
  assert(st.nodes <= config.node_limit + 1);
  if (config.stats != nullptr) {
    config.stats->nodes = st.nodes;
    config.stats->budget_exhausted = st.nodes > config.node_limit;
  }
  return results;
}

// ---------------------------------------------------------------------------
// Dense engine.  All per-node work runs on precomputed integer tables:
//
//  * cells are coset ids (PointIndexer::for_sublattice order, identical to
//    the legacy cell order);
//  * for every (prototile k, translate class t) the placement footprint
//    {id(t + n) : n in N_k} is precomputed once as a sorted 64-bit word
//    mask plus a flat id list, with a self-overlap flag for tiles that
//    wrap onto themselves on a small torus;
//  * every cell c owns a fixed candidate list — one entry per (k, element)
//    in the legacy enumeration order — pointing at the footprint of the
//    placement that covers c with that element;
//  * the search keeps coverage as a bitset, tests feasibility with W word
//    ANDs, applies/undoes placements with W word XORs, and finds the next
//    uncovered cell with a ctz scan starting from the parent's cursor.
//
// No reduce(), hashing, or allocation happens inside the recursion.
// ---------------------------------------------------------------------------

struct Footprint {
  std::uint32_t mask_begin = 0;  // offset into DenseTables::mask_words
  std::uint32_t id_begin = 0;    // offset into DenseTables::footprint_ids
  std::uint16_t size = 0;
  bool self_ok = false;  // false: placement overlaps itself (always reject)
};

struct Candidate {
  std::uint32_t footprint = 0;      // index into DenseTables::footprints
  std::uint32_t translate_class = 0;  // canonical translate cell id
  std::uint32_t prototile = 0;
};

struct DenseTables {
  std::uint32_t cells = 0;
  std::uint32_t words = 0;  // 64-bit words per coverage mask
  std::vector<Footprint> footprints;      // [k * cells + translate_class]
  std::vector<std::uint64_t> mask_words;  // footprint masks, flat
  std::vector<std::uint32_t> footprint_ids;  // footprint cell ids, flat
  std::vector<Candidate> candidates;  // [cell * cand_stride + slot]
  std::uint32_t cand_stride = 0;      // sum of prototile sizes
  PointVec cell_points;               // id -> canonical representative
};

DenseTables build_tables(const std::vector<Prototile>& prototiles,
                         const Sublattice& period) {
  DenseTables t;
  const PointIndexer index = PointIndexer::for_sublattice(period);
  t.cells = static_cast<std::uint32_t>(index.size());
  t.words = (t.cells + 63) / 64;
  t.cell_points = index.points();

  std::size_t total_elems = 0;
  for (const Prototile& tile : prototiles) total_elems += tile.size();
  t.cand_stride = static_cast<std::uint32_t>(total_elems);

  // Footprints: one per (prototile, translate class).
  t.footprints.resize(prototiles.size() * t.cells);
  t.mask_words.assign(t.footprints.size() * t.words, 0);
  t.footprint_ids.reserve(total_elems * t.cells);
  for (std::uint32_t k = 0; k < prototiles.size(); ++k) {
    const Prototile& tile = prototiles[k];
    for (std::uint32_t c = 0; c < t.cells; ++c) {
      Footprint& fp = t.footprints[k * t.cells + c];
      fp.id_begin = static_cast<std::uint32_t>(t.footprint_ids.size());
      fp.mask_begin = static_cast<std::uint32_t>((k * t.cells + c) * t.words);
      fp.size = static_cast<std::uint16_t>(tile.size());
      fp.self_ok = true;
      const Point& translate = t.cell_points[c];
      for (const Point& n : tile.points()) {
        const std::uint32_t id = index.id_of(period.reduce(translate + n));
        std::uint64_t& word = t.mask_words[fp.mask_begin + id / 64];
        const std::uint64_t bit = std::uint64_t{1} << (id % 64);
        if ((word & bit) != 0) fp.self_ok = false;  // wraps onto itself
        word |= bit;
        t.footprint_ids.push_back(id);
      }
    }
  }

  // Candidates: for cell c, the legacy loop order is (prototile k, element
  // e); the placement translate is the class of c - element(e).
  t.candidates.resize(static_cast<std::size_t>(t.cells) * t.cand_stride);
  for (std::uint32_t c = 0; c < t.cells; ++c) {
    std::size_t slot = static_cast<std::size_t>(c) * t.cand_stride;
    for (std::uint32_t k = 0; k < prototiles.size(); ++k) {
      const Prototile& tile = prototiles[k];
      for (std::size_t e = 0; e < tile.size(); ++e, ++slot) {
        const std::uint32_t tc = index.id_of(
            period.reduce(t.cell_points[c] - tile.element(e)));
        t.candidates[slot] = Candidate{k * t.cells + tc, tc, k};
      }
    }
  }
  return t;
}

struct DenseState {
  const std::vector<Prototile>* prototiles = nullptr;
  const Sublattice* period = nullptr;
  const DenseTables* tables = nullptr;
  std::vector<std::uint64_t> covered;  // bitset over cell ids
  std::uint32_t covered_count = 0;
  std::vector<std::pair<Point, std::uint32_t>> placements;
  std::vector<std::size_t> uses;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool require_all = false;
  std::size_t result_limit = 1;
  std::vector<Tiling>* results = nullptr;
  // Parallel root fan-out only: subtree `subtree_index` may abandon its
  // search once an earlier subtree alone satisfied the result limit (the
  // abandoned results are provably beyond the limit cut, so the final
  // output is unchanged — see run_search_dense_parallel).
  const std::atomic<std::uint32_t>* satisfied = nullptr;
  std::uint32_t subtree_index = 0;
};

void emit_dense(DenseState& st) {
  st.results->push_back(
      Tiling::periodic(*st.prototiles, *st.period, st.placements));
}

// `cursor` is a lower bound on the first uncovered cell id: every cell
// below it was covered when the parent recursed, and placements only add
// coverage, so the scan never revisits the prefix.
bool search_dense(DenseState& st, std::uint32_t cursor) {
  const DenseTables& t = *st.tables;
  if (st.satisfied != nullptr &&
      st.subtree_index > st.satisfied->load(std::memory_order_relaxed)) {
    return true;  // an earlier subtree already produced every needed result
  }
  if (st.covered_count == t.cells) {
    if (st.require_all) {
      for (std::size_t k = 0; k < st.uses.size(); ++k) {
        if (st.uses[k] == 0) return false;
      }
    }
    emit_dense(st);
    return st.results->size() >= st.result_limit;
  }
  // First uncovered cell: ctz scan from the cursor's word.  The tail bits
  // of the last word are never set, and covered_count < cells guarantees a
  // zero bit exists at or after `cursor`.
  std::uint32_t w = cursor / 64;
  std::uint64_t inv = ~st.covered[w] &
                      (~std::uint64_t{0} << (cursor % 64));
  while (inv == 0) inv = ~st.covered[++w];
  std::uint32_t first = w * 64 +
      static_cast<std::uint32_t>(__builtin_ctzll(inv));
  if (first >= t.cells) {
    // Only reachable via the masked tail of the final word; rescan without
    // the cursor mask would be wrong — coverage below cursor is total, so
    // this cannot happen.  Guard anyway for cheap safety in release builds.
    return false;
  }

  const Candidate* cand =
      &t.candidates[static_cast<std::size_t>(first) * t.cand_stride];
  for (std::uint32_t s = 0; s < t.cand_stride; ++s) {
    if (++st.nodes > st.node_limit) return true;  // budget exhausted
    const Candidate& c = cand[s];
    const Footprint& fp = t.footprints[c.footprint];
    if (!fp.self_ok) continue;
    const std::uint64_t* mask = &t.mask_words[fp.mask_begin];
    bool feasible = true;
    for (std::uint32_t i = 0; i < t.words; ++i) {
      if ((st.covered[i] & mask[i]) != 0) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    for (std::uint32_t i = 0; i < t.words; ++i) st.covered[i] ^= mask[i];
    st.covered_count += fp.size;
    st.placements.emplace_back(t.cell_points[c.translate_class],
                               c.prototile);
    ++st.uses[c.prototile];
    const bool done = search_dense(st, first + 1);
    --st.uses[c.prototile];
    st.placements.pop_back();
    st.covered_count -= fp.size;
    for (std::uint32_t i = 0; i < t.words; ++i) st.covered[i] ^= mask[i];
    if (done) return true;
  }
  return false;
}

std::vector<Tiling> run_search_dense(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config, std::size_t limit) {
  std::vector<Tiling> results;
  const DenseTables tables = build_tables(prototiles, period);
  DenseState st;
  st.prototiles = &prototiles;
  st.period = &period;
  st.tables = &tables;
  st.covered.assign(tables.words, 0);
  st.uses.assign(prototiles.size(), 0);
  st.placements.reserve(tables.cells);
  st.node_limit = config.node_limit;
  st.require_all = config.require_all_prototiles;
  st.result_limit = limit;
  st.results = &results;
  search_dense(st, 0);
  assert(st.nodes <= config.node_limit + 1);
  if (config.stats != nullptr) {
    config.stats->nodes = st.nodes;
    config.stats->budget_exhausted = st.nodes > config.node_limit;
  }
  return results;
}

// Parallel variant of run_search_dense: the serial DFS tries every root
// candidate (placement covering cell 0) in order and explores each
// subtree to completion before the next, so the subtrees are independent
// and their result streams concatenate in root-candidate order to the
// exact serial output.  Each subtree runs with its own node budget (the
// one serial/parallel divergence, see TorusSearchConfig::use_parallel)
// and its own result vector; cancellation only prunes subtrees whose
// results provably fall beyond the `limit` cut.
std::vector<Tiling> run_search_dense_parallel(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config, std::size_t limit) {
  const DenseTables tables = build_tables(prototiles, period);
  if (tables.cells == 0 || tables.cand_stride == 0) return {};

  // min index of a subtree that alone reached `limit` results.
  std::atomic<std::uint32_t> satisfied{~std::uint32_t{0}};
  std::vector<std::vector<Tiling>> results(tables.cand_stride);
  std::vector<std::uint64_t> nodes(tables.cand_stride, 0);
  std::vector<char> exhausted(tables.cand_stride, 0);

  parallel_for(0, tables.cand_stride, [&](std::size_t s) {
    nodes[s] = 1;  // the root trial itself, as the serial loop counts it
    const Candidate& c =
        tables.candidates[s];  // root = first uncovered cell = cell 0
    const Footprint& fp = tables.footprints[c.footprint];
    if (!fp.self_ok) return;
    if (static_cast<std::uint32_t>(s) >
        satisfied.load(std::memory_order_relaxed)) {
      return;
    }
    DenseState st;
    st.prototiles = &prototiles;
    st.period = &period;
    st.tables = &tables;
    st.covered.assign(tables.words, 0);
    const std::uint64_t* mask = &tables.mask_words[fp.mask_begin];
    for (std::uint32_t i = 0; i < tables.words; ++i) st.covered[i] = mask[i];
    st.covered_count = fp.size;
    st.placements.reserve(tables.cells);
    st.placements.emplace_back(tables.cell_points[c.translate_class],
                               c.prototile);
    st.uses.assign(prototiles.size(), 0);
    ++st.uses[c.prototile];
    st.node_limit = config.node_limit;
    st.require_all = config.require_all_prototiles;
    st.result_limit = limit;
    st.results = &results[s];
    st.satisfied = &satisfied;
    st.subtree_index = static_cast<std::uint32_t>(s);
    search_dense(st, 1);
    // The documented semantics of TorusSearchConfig::node_limit: under
    // the root fan-out the budget applies to EACH subtree, so a
    // truncated parallel search can explore more nodes in total than a
    // truncated serial one (never fewer).
    assert(st.nodes <= config.node_limit + 1);
    nodes[s] += st.nodes;
    exhausted[s] = st.nodes > config.node_limit ? 1 : 0;
    if (results[s].size() >= limit) {
      std::uint32_t cur = satisfied.load(std::memory_order_relaxed);
      const std::uint32_t mine = static_cast<std::uint32_t>(s);
      while (mine < cur &&
             !satisfied.compare_exchange_weak(cur, mine,
                                              std::memory_order_relaxed)) {
      }
    }
  });

  std::vector<Tiling> out;
  std::uint64_t total_nodes = 0;
  bool any_exhausted = false;
  for (std::uint32_t s = 0; s < tables.cand_stride; ++s) {
    total_nodes += nodes[s];
    any_exhausted = any_exhausted || exhausted[s] != 0;
    for (Tiling& t : results[s]) {
      if (out.size() >= limit) break;
      out.push_back(std::move(t));
    }
    if (out.size() >= limit) break;
  }
  if (config.stats != nullptr) {
    config.stats->nodes = total_nodes;
    config.stats->budget_exhausted = any_exhausted;
  }
  return out;
}

std::vector<Tiling> run_search(const std::vector<Prototile>& prototiles,
                               const Sublattice& period,
                               const TorusSearchConfig& config,
                               std::size_t limit) {
  config.validate();
  if (prototiles.empty()) {
    throw std::invalid_argument("torus search: no prototiles");
  }
  for (const Prototile& t : prototiles) {
    if (t.dim() != period.dim()) {
      throw std::invalid_argument("torus search: dimension mismatch");
    }
  }
  // The dense tables are O(prototiles x cells^2 / 64) words of footprint
  // masks; past ~64MB the precompute dominates any search, so huge tori
  // (far beyond the default sweep sizes) drop back to the seed engine.
  const std::uint64_t cells = static_cast<std::uint64_t>(period.index());
  const std::uint64_t mask_bytes =
      prototiles.size() * cells * ((cells + 63) / 64) * 8;
  if (config.use_dense_engine && mask_bytes <= (std::uint64_t{64} << 20)) {
    if (config.use_parallel && parallel_threads() > 1 &&
        !in_parallel_region() && cells >= 16) {
      return run_search_dense_parallel(prototiles, period, config, limit);
    }
    return run_search_dense(prototiles, period, config, limit);
  }
  return run_search_legacy(prototiles, period, config, limit);
}

}  // namespace

void TorusSearchConfig::validate() const {
  if (node_limit == 0) {
    throw std::invalid_argument(
        "TorusSearchConfig: node_limit must be >= 1 (the budget applies "
        "per torus/subtree, never globally)");
  }
  if (max_period_cells <= 0) {
    throw std::invalid_argument(
        "TorusSearchConfig: max_period_cells must be positive");
  }
}

std::optional<Tiling> find_tiling_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config) {
  auto results = run_search(prototiles, period, config, 1);
  if (results.empty()) return std::nullopt;
  return std::move(results.front());
}

std::vector<Tiling> all_tilings_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    std::size_t limit, const TorusSearchConfig& config) {
  return run_search(prototiles, period, config, limit);
}

std::optional<Tiling> search_periodic_tiling(
    const std::vector<Prototile>& prototiles,
    const TorusSearchConfig& config) {
  config.validate();
  if (prototiles.empty()) {
    throw std::invalid_argument("search_periodic_tiling: no prototiles");
  }
  const std::size_t d = prototiles.front().dim();
  // Candidate diagonal periods ordered by cell count, then by shape.
  std::vector<std::vector<std::int64_t>> shapes;
  if (d == 2) {
    for (std::int64_t a = 1; a * a <= config.max_period_cells * 4; ++a) {
      for (std::int64_t b = a; a * b <= config.max_period_cells; ++b) {
        shapes.push_back({a, b});
        if (a != b) shapes.push_back({b, a});
      }
    }
  } else {
    for (std::int64_t a = 1;; ++a) {
      std::int64_t cells = 1;
      for (std::size_t i = 0; i < d; ++i) cells *= a;
      if (cells > config.max_period_cells) break;
      shapes.push_back(std::vector<std::int64_t>(d, a));
    }
  }
  std::sort(shapes.begin(), shapes.end(),
            [](const auto& x, const auto& y) {
              std::int64_t px = 1, py = 1;
              for (auto v : x) px *= v;
              for (auto v : y) py *= v;
              if (px != py) return px < py;
              return x < y;
            });
  // Minimum cells: the smallest prototile must fit at least once, and for
  // single-prototile tilings the size must divide the cell count.
  std::size_t min_tile = prototiles.front().size();
  for (const auto& t : prototiles) min_tile = std::min(min_tile, t.size());
  std::vector<Sublattice> tori;
  for (const auto& shape : shapes) {
    std::int64_t cells = 1;
    for (auto v : shape) cells *= v;
    if (cells < static_cast<std::int64_t>(min_tile)) continue;
    if (prototiles.size() == 1 &&
        cells % static_cast<std::int64_t>(min_tile) != 0) {
      continue;
    }
    tori.push_back(Sublattice::diagonal(shape));
  }
  if (tori.empty()) return std::nullopt;
  // One admissible torus: nothing to speculate across — let the dense
  // engine's root-subtree fan-out (if enabled) parallelize that single
  // search instead.
  if (tori.size() == 1) {
    return find_tiling_on_torus(prototiles, tori.front(), config);
  }

  // Speculative sweep: workers claim torus indices in sweep order from an
  // atomic cursor and search each torus serially; the smallest index that
  // admits a tiling wins.  Because indices are claimed in increasing
  // order, every index below a reported hit is already claimed and will
  // finish, so the CAS-min over hit indices converges to exactly the
  // serial sweep's answer (the per-torus search is itself deterministic).
  // With one thread the same loop degenerates to the serial sweep,
  // including its early exit after the first hit.
  const std::size_t threads =
      (config.use_parallel && !in_parallel_region())
          ? std::min(parallel_threads(), tori.size())
          : 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> best{tori.size()};
  std::vector<std::optional<Tiling>> found(tori.size());
  std::vector<TorusSearchStats> stats(tori.size());
  const auto sweep_worker = [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tori.size() || i >= best.load(std::memory_order_acquire)) {
        return;
      }
      TorusSearchConfig local = config;
      local.stats = &stats[i];
      local.use_parallel = false;  // one torus per worker; don't nest
      auto tiling = find_tiling_on_torus(prototiles, tori[i], local);
      if (tiling.has_value()) {
        found[i] = std::move(tiling);
        std::size_t cur = best.load(std::memory_order_relaxed);
        while (i < cur && !best.compare_exchange_weak(
                              cur, i, std::memory_order_release)) {
        }
      }
    }
  };
  if (threads <= 1) {
    sweep_worker(0);
  } else {
    ThreadPool::global().run(threads, sweep_worker);
  }
  const std::size_t winner = best.load(std::memory_order_relaxed);
  if (winner < tori.size()) {
    if (config.stats != nullptr) {
      *config.stats = stats[winner];
      // Every torus below the winner was searched and failed; if any of
      // them hit the budget, the choice of winner itself is
      // budget-dependent.
      for (std::size_t i = 0; i < winner; ++i) {
        config.stats->budget_exhausted =
            config.stats->budget_exhausted || stats[i].budget_exhausted;
      }
    }
    return std::move(found[winner]);
  }
  // No torus admits a tiling; report the last searched torus's counters,
  // matching the serial sweep's overwrite-per-torus behavior (the
  // exhaustion flag ORs over the whole sweep — a failure is only
  // budget-independent if no torus truncated).
  if (config.stats != nullptr) {
    *config.stats = stats[tori.size() - 1];
    for (const TorusSearchStats& s : stats) {
      config.stats->budget_exhausted =
          config.stats->budget_exhausted || s.budget_exhausted;
    }
  }
  return std::nullopt;
}

}  // namespace latticesched
