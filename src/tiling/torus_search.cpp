#include "tiling/torus_search.hpp"

#include <algorithm>
#include <stdexcept>

namespace latticesched {

namespace {

struct SearchState {
  const std::vector<Prototile>* prototiles = nullptr;
  const Sublattice* period = nullptr;
  // Torus cells in a fixed order with an index lookup.
  PointVec cells;
  PointMap<std::uint32_t> cell_index;
  std::vector<bool> covered;
  std::size_t covered_count = 0;
  std::vector<std::pair<Point, std::uint32_t>> placements;
  std::vector<std::size_t> uses;  // placements per prototile
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool require_all = false;
  std::size_t result_limit = 1;
  std::vector<Tiling>* results = nullptr;

  // Precomputed: for prototile k and element e, the list of cell-index
  // deltas is not constant on a general torus, so placements are computed
  // on demand via reduce(); the reduce cost dominates but stays tiny for
  // the torus sizes used here.
};

// Records the current placement list as a Tiling (validation re-runs in
// Tiling::periodic, which acts as an internal consistency check).
void emit(SearchState& st) {
  st.results->push_back(
      Tiling::periodic(*st.prototiles, *st.period, st.placements));
}

bool search(SearchState& st) {
  if (st.covered_count == st.cells.size()) {
    if (st.require_all) {
      for (std::size_t k = 0; k < st.uses.size(); ++k) {
        if (st.uses[k] == 0) return false;
      }
    }
    emit(st);
    return st.results->size() >= st.result_limit;
  }
  // First uncovered cell; every placement covering it is tried once.
  std::size_t first = 0;
  while (st.covered[first]) ++first;
  const Point& target = st.cells[first];

  for (std::uint32_t k = 0; k < st.prototiles->size(); ++k) {
    const Prototile& tile = (*st.prototiles)[k];
    for (std::size_t e = 0; e < tile.size(); ++e) {
      if (++st.nodes > st.node_limit) return true;  // budget exhausted
      const Point translate = target - tile.element(e);
      // Collect the covered cell indices; reject overlaps and self-wraps.
      bool feasible = true;
      std::vector<std::uint32_t> ids;
      ids.reserve(tile.size());
      for (const Point& n : tile.points()) {
        const Point cell = st.period->reduce(translate + n);
        const std::uint32_t id = st.cell_index.at(cell);
        if (st.covered[id] ||
            std::find(ids.begin(), ids.end(), id) != ids.end()) {
          feasible = false;
          break;
        }
        ids.push_back(id);
      }
      if (!feasible) continue;
      for (std::uint32_t id : ids) st.covered[id] = true;
      st.covered_count += ids.size();
      st.placements.emplace_back(translate, k);
      ++st.uses[k];
      const bool done = search(st);
      --st.uses[k];
      st.placements.pop_back();
      st.covered_count -= ids.size();
      for (std::uint32_t id : ids) st.covered[id] = false;
      if (done) return true;
    }
  }
  return false;
}

std::vector<Tiling> run_search(const std::vector<Prototile>& prototiles,
                               const Sublattice& period,
                               const TorusSearchConfig& config,
                               std::size_t limit) {
  if (prototiles.empty()) {
    throw std::invalid_argument("torus search: no prototiles");
  }
  for (const Prototile& t : prototiles) {
    if (t.dim() != period.dim()) {
      throw std::invalid_argument("torus search: dimension mismatch");
    }
  }
  std::vector<Tiling> results;
  SearchState st;
  st.prototiles = &prototiles;
  st.period = &period;
  st.cells = period.coset_representatives();
  for (std::uint32_t i = 0; i < st.cells.size(); ++i) {
    st.cell_index.emplace(st.cells[i], i);
  }
  st.covered.assign(st.cells.size(), false);
  st.uses.assign(prototiles.size(), 0);
  st.node_limit = config.node_limit;
  st.require_all = config.require_all_prototiles;
  st.result_limit = limit;
  st.results = &results;
  search(st);
  return results;
}

}  // namespace

std::optional<Tiling> find_tiling_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config) {
  auto results = run_search(prototiles, period, config, 1);
  if (results.empty()) return std::nullopt;
  return std::move(results.front());
}

std::vector<Tiling> all_tilings_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    std::size_t limit, const TorusSearchConfig& config) {
  return run_search(prototiles, period, config, limit);
}

std::optional<Tiling> search_periodic_tiling(
    const std::vector<Prototile>& prototiles,
    const TorusSearchConfig& config) {
  if (prototiles.empty()) {
    throw std::invalid_argument("search_periodic_tiling: no prototiles");
  }
  const std::size_t d = prototiles.front().dim();
  // Candidate diagonal periods ordered by cell count, then by shape.
  std::vector<std::vector<std::int64_t>> shapes;
  if (d == 2) {
    for (std::int64_t a = 1; a * a <= config.max_period_cells * 4; ++a) {
      for (std::int64_t b = a; a * b <= config.max_period_cells; ++b) {
        shapes.push_back({a, b});
        if (a != b) shapes.push_back({b, a});
      }
    }
  } else {
    for (std::int64_t a = 1;; ++a) {
      std::int64_t cells = 1;
      for (std::size_t i = 0; i < d; ++i) cells *= a;
      if (cells > config.max_period_cells) break;
      shapes.push_back(std::vector<std::int64_t>(d, a));
    }
  }
  std::sort(shapes.begin(), shapes.end(),
            [](const auto& x, const auto& y) {
              std::int64_t px = 1, py = 1;
              for (auto v : x) px *= v;
              for (auto v : y) py *= v;
              if (px != py) return px < py;
              return x < y;
            });
  // Minimum cells: the smallest prototile must fit at least once, and for
  // single-prototile tilings the size must divide the cell count.
  std::size_t min_tile = prototiles.front().size();
  for (const auto& t : prototiles) min_tile = std::min(min_tile, t.size());
  for (const auto& shape : shapes) {
    std::int64_t cells = 1;
    for (auto v : shape) cells *= v;
    if (cells < static_cast<std::int64_t>(min_tile)) continue;
    if (prototiles.size() == 1 &&
        cells % static_cast<std::int64_t>(min_tile) != 0) {
      continue;
    }
    auto tiling = find_tiling_on_torus(prototiles,
                                       Sublattice::diagonal(shape), config);
    if (tiling.has_value()) return tiling;
  }
  return std::nullopt;
}

}  // namespace latticesched
