#include "tiling/torus_search.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "lattice/point_index.hpp"
#include "tiling/mask_kernels.hpp"
#include "util/parallel.hpp"

namespace latticesched {

namespace {

// ---------------------------------------------------------------------------
// Legacy engine (seed implementation): per-node reduce() + hash lookups +
// a heap-allocated id scratch per placement.  Kept verbatim as the
// reference the dense engine is benchmarked and cross-validated against.
// ---------------------------------------------------------------------------

struct LegacyState {
  const std::vector<Prototile>* prototiles = nullptr;
  const Sublattice* period = nullptr;
  // Torus cells in a fixed order with an index lookup.
  PointVec cells;
  PointMap<std::uint32_t> cell_index;
  std::vector<bool> covered;
  std::size_t covered_count = 0;
  std::vector<std::pair<Point, std::uint32_t>> placements;
  std::vector<std::size_t> uses;  // placements per prototile
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool require_all = false;
  std::size_t result_limit = 1;
  std::vector<Tiling>* results = nullptr;
};

// Records the current placement list as a Tiling (validation re-runs in
// Tiling::periodic, which acts as an internal consistency check).
void emit_legacy(LegacyState& st) {
  st.results->push_back(
      Tiling::periodic(*st.prototiles, *st.period, st.placements));
}

bool search_legacy(LegacyState& st) {
  if (st.covered_count == st.cells.size()) {
    if (st.require_all) {
      for (std::size_t k = 0; k < st.uses.size(); ++k) {
        if (st.uses[k] == 0) return false;
      }
    }
    emit_legacy(st);
    return st.results->size() >= st.result_limit;
  }
  // First uncovered cell; every placement covering it is tried once.
  std::size_t first = 0;
  while (st.covered[first]) ++first;
  const Point& target = st.cells[first];

  for (std::uint32_t k = 0; k < st.prototiles->size(); ++k) {
    const Prototile& tile = (*st.prototiles)[k];
    for (std::size_t e = 0; e < tile.size(); ++e) {
      if (++st.nodes > st.node_limit) return true;  // budget exhausted
      const Point translate = target - tile.element(e);
      // Collect the covered cell indices; reject overlaps and self-wraps.
      bool feasible = true;
      std::vector<std::uint32_t> ids;
      ids.reserve(tile.size());
      for (const Point& n : tile.points()) {
        const Point cell = st.period->reduce(translate + n);
        const std::uint32_t id = st.cell_index.at(cell);
        if (st.covered[id] ||
            std::find(ids.begin(), ids.end(), id) != ids.end()) {
          feasible = false;
          break;
        }
        ids.push_back(id);
      }
      if (!feasible) continue;
      for (std::uint32_t id : ids) st.covered[id] = true;
      st.covered_count += ids.size();
      st.placements.emplace_back(translate, k);
      ++st.uses[k];
      const bool done = search_legacy(st);
      --st.uses[k];
      st.placements.pop_back();
      st.covered_count -= ids.size();
      for (std::uint32_t id : ids) st.covered[id] = false;
      if (done) return true;
    }
  }
  return false;
}

std::vector<Tiling> run_search_legacy(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config, std::size_t limit) {
  std::vector<Tiling> results;
  LegacyState st;
  st.prototiles = &prototiles;
  st.period = &period;
  st.cells = period.coset_representatives();
  for (std::uint32_t i = 0; i < st.cells.size(); ++i) {
    st.cell_index.emplace(st.cells[i], i);
  }
  st.covered.assign(st.cells.size(), false);
  st.uses.assign(prototiles.size(), 0);
  st.node_limit = config.node_limit;
  st.require_all = config.require_all_prototiles;
  st.result_limit = limit;
  st.results = &results;
  search_legacy(st);
  // node_limit is a per-torus budget: one serial search may overshoot by
  // at most the final (budget-exhausting) increment.
  assert(st.nodes <= config.node_limit + 1);
  if (config.stats != nullptr) {
    *config.stats = TorusSearchStats{};
    config.stats->nodes = st.nodes;
    config.stats->budget_exhausted = st.nodes > config.node_limit;
  }
  return results;
}

// ---------------------------------------------------------------------------
// Dense engine.  All per-node work runs on precomputed integer tables:
//
//  * cells are coset ids (PointIndexer::for_sublattice order, identical to
//    the legacy cell order);
//  * for every (prototile k, translate class t) the placement footprint
//    {id(t + n) : n in N_k} is precomputed once as a sorted 64-bit word
//    mask plus a flat id list, with a self-overlap flag for tiles that
//    wrap onto themselves on a small torus;
//  * every cell c owns a fixed candidate list — one entry per (k, element)
//    in the legacy enumeration order — pointing at the footprint of the
//    placement that covers c with that element;
//  * the search keeps coverage as a bitset, tests feasibility with W word
//    ANDs, applies/undoes placements with W word XORs, and finds the next
//    uncovered cell with a ctz scan starting from the parent's cursor.
//
// No reduce(), hashing, or allocation happens inside the recursion.
// ---------------------------------------------------------------------------

struct Footprint {
  std::uint32_t mask_begin = 0;  // offset into DenseTables::mask_words
  std::uint32_t id_begin = 0;    // offset into DenseTables::footprint_ids
  std::uint16_t size = 0;
  bool self_ok = false;  // false: placement overlaps itself (always reject)
};

struct Candidate {
  std::uint32_t footprint = 0;      // index into DenseTables::footprints
  std::uint32_t translate_class = 0;  // canonical translate cell id
  std::uint32_t prototile = 0;
};

struct DenseTables {
  std::uint32_t cells = 0;
  std::uint32_t words = 0;  // 64-bit words per coverage mask
  std::vector<Footprint> footprints;      // [k * cells + translate_class]
  std::vector<std::uint64_t> mask_words;  // footprint masks, flat
  std::vector<std::uint32_t> footprint_ids;  // footprint cell ids, flat
  std::vector<Candidate> candidates;  // [cell * cand_stride + slot]
  std::uint32_t cand_stride = 0;      // sum of prototile sizes
  PointVec cell_points;               // id -> canonical representative
};

DenseTables build_tables(const std::vector<Prototile>& prototiles,
                         const Sublattice& period) {
  DenseTables t;
  const PointIndexer index = PointIndexer::for_sublattice(period);
  t.cells = static_cast<std::uint32_t>(index.size());
  t.words = (t.cells + 63) / 64;
  t.cell_points = index.points();

  std::size_t total_elems = 0;
  for (const Prototile& tile : prototiles) total_elems += tile.size();
  t.cand_stride = static_cast<std::uint32_t>(total_elems);

  // Footprints: one per (prototile, translate class).
  t.footprints.resize(prototiles.size() * t.cells);
  t.mask_words.assign(t.footprints.size() * t.words, 0);
  t.footprint_ids.reserve(total_elems * t.cells);
  for (std::uint32_t k = 0; k < prototiles.size(); ++k) {
    const Prototile& tile = prototiles[k];
    for (std::uint32_t c = 0; c < t.cells; ++c) {
      Footprint& fp = t.footprints[k * t.cells + c];
      fp.id_begin = static_cast<std::uint32_t>(t.footprint_ids.size());
      fp.mask_begin = static_cast<std::uint32_t>((k * t.cells + c) * t.words);
      fp.size = static_cast<std::uint16_t>(tile.size());
      fp.self_ok = true;
      const Point& translate = t.cell_points[c];
      for (const Point& n : tile.points()) {
        const std::uint32_t id = index.id_of(period.reduce(translate + n));
        std::uint64_t& word = t.mask_words[fp.mask_begin + id / 64];
        const std::uint64_t bit = std::uint64_t{1} << (id % 64);
        if ((word & bit) != 0) fp.self_ok = false;  // wraps onto itself
        word |= bit;
        t.footprint_ids.push_back(id);
      }
    }
  }

  // Candidates: for cell c, the legacy loop order is (prototile k, element
  // e); the placement translate is the class of c - element(e).
  t.candidates.resize(static_cast<std::size_t>(t.cells) * t.cand_stride);
  for (std::uint32_t c = 0; c < t.cells; ++c) {
    std::size_t slot = static_cast<std::size_t>(c) * t.cand_stride;
    for (std::uint32_t k = 0; k < prototiles.size(); ++k) {
      const Prototile& tile = prototiles[k];
      for (std::size_t e = 0; e < tile.size(); ++e, ++slot) {
        const std::uint32_t tc = index.id_of(
            period.reduce(t.cell_points[c] - tile.element(e)));
        t.candidates[slot] = Candidate{k * t.cells + tc, tc, k};
      }
    }
  }
  return t;
}

struct DenseState {
  const std::vector<Prototile>* prototiles = nullptr;
  const Sublattice* period = nullptr;
  const DenseTables* tables = nullptr;
  const mask_kernels::Ops* ops = nullptr;  // dispatched mask kernels
  std::vector<std::uint64_t> covered;  // bitset over cell ids
  std::uint32_t covered_count = 0;
  std::vector<std::pair<Point, std::uint32_t>> placements;
  std::vector<std::size_t> uses;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool require_all = false;
  std::size_t result_limit = 1;
  std::vector<Tiling>* results = nullptr;
  // Parallel subtree fan-out only: the subtree with sweep rank
  // `subtree_rank` may abandon its search once an earlier-ranked subtree
  // alone satisfied the result limit (the abandoned results are provably
  // beyond the limit cut, so the final output is unchanged — see
  // run_search_dense_tasks).
  const std::atomic<std::uint64_t>* satisfied = nullptr;
  std::uint64_t subtree_rank = 0;
  // Parallel subtree fan-out only: node-count checkpoint per emitted
  // result (see emit_dense).
  std::vector<std::uint64_t>* result_nodes = nullptr;
};

void emit_dense(DenseState& st) {
  st.results->push_back(
      Tiling::periodic(*st.prototiles, *st.period, st.placements));
  // Parallel subtree fan-out only: checkpoint the node count at each
  // emission so the rank-ordered accumulation can charge a subtree that
  // straddles the result-limit cut exactly the nodes the serial DFS
  // would have spent before stopping there.
  if (st.result_nodes != nullptr) st.result_nodes->push_back(st.nodes);
}

// `cursor` is a lower bound on the first uncovered cell id: every cell
// below it was covered when the parent recursed, and placements only add
// coverage, so the scan never revisits the prefix.
bool search_dense(DenseState& st, std::uint32_t cursor) {
  const DenseTables& t = *st.tables;
  const mask_kernels::Ops& ops = *st.ops;
  if (st.satisfied != nullptr &&
      st.subtree_rank > st.satisfied->load(std::memory_order_relaxed)) {
    return true;  // an earlier subtree already produced every needed result
  }
  if (st.covered_count == t.cells) {
    if (st.require_all) {
      for (std::size_t k = 0; k < st.uses.size(); ++k) {
        if (st.uses[k] == 0) return false;
      }
    }
    emit_dense(st);
    return st.results->size() >= st.result_limit;
  }
  // First uncovered cell at or after the cursor.  The tail bits of the
  // last word are never set, and covered_count < cells guarantees a zero
  // bit exists at or after `cursor`; the >= cells guard below is cheap
  // release-build safety only.
  const std::uint32_t first =
      ops.first_uncovered(st.covered.data(), t.words, cursor);
  if (first >= t.cells) return false;

  const Candidate* cand =
      &t.candidates[static_cast<std::size_t>(first) * t.cand_stride];
  for (std::uint32_t s = 0; s < t.cand_stride; ++s) {
    if (++st.nodes > st.node_limit) return true;  // budget exhausted
    const Candidate& c = cand[s];
    const Footprint& fp = t.footprints[c.footprint];
    if (!fp.self_ok) continue;
    const std::uint64_t* mask = &t.mask_words[fp.mask_begin];
    if (ops.any_overlap(st.covered.data(), mask, t.words)) continue;
    ops.toggle(st.covered.data(), mask, t.words);
    st.covered_count += fp.size;
    st.placements.emplace_back(t.cell_points[c.translate_class],
                               c.prototile);
    ++st.uses[c.prototile];
    const bool done = search_dense(st, first + 1);
    --st.uses[c.prototile];
    st.placements.pop_back();
    st.covered_count -= fp.size;
    ops.toggle(st.covered.data(), mask, t.words);
    if (done) return true;
  }
  return false;
}

std::vector<Tiling> run_search_dense(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config, std::size_t limit) {
  std::vector<Tiling> results;
  const DenseTables tables = build_tables(prototiles, period);
  const mask_kernels::Ops& ops = mask_kernels::active_ops();
  DenseState st;
  st.prototiles = &prototiles;
  st.period = &period;
  st.tables = &tables;
  st.ops = &ops;
  st.covered.assign(tables.words, 0);
  st.uses.assign(prototiles.size(), 0);
  st.placements.reserve(tables.cells);
  st.node_limit = config.node_limit;
  st.require_all = config.require_all_prototiles;
  st.result_limit = limit;
  st.results = &results;
  search_dense(st, 0);
  assert(st.nodes <= config.node_limit + 1);
  if (config.stats != nullptr) {
    *config.stats = TorusSearchStats{};
    config.stats->nodes = st.nodes;
    config.stats->budget_exhausted = st.nodes > config.node_limit;
    config.stats->kernel = ops.name;
  }
  return results;
}

// ---------------------------------------------------------------------------
// Parallel dense engine on the work-stealing task scheduler.
//
// The serial DFS explores the candidate subtrees of the first uncovered
// cell strictly in slot order; the subtrees are independent, so their
// result streams concatenate (in that order) to the exact serial output.
// The parallel engine turns every search node shallower than a spawn
// frontier `spawn_depth` into an *expansion task* that spawns one child
// task per feasible candidate slot; at the frontier a *leaf task* runs
// the ordinary serial recursion over its whole subtree.  Root-only
// fan-out (the old engine, spawn_depth = 1) quantizes badly when the
// root has few or skewed subtrees — one giant subtree pins one worker
// while the rest idle; deeper frontiers split the big subtree into many
// stealable tasks.
//
// Determinism does not come from the scheduler (stealing is racy by
// design) but from SWEEP RANKS: every task carries the rank of its
// subtree in serial DFS preorder, encoded as a fixed-width base-(K+1)
// number (K = cand_stride) with one digit per frontier level — digit of
// level d is the candidate slot + 1, 0 for levels below the task.  A
// task's rank is smaller than every rank in its subtree, which in turn
// is smaller than the next sibling's rank, so sorting the finished
// tasks by rank and concatenating their results reproduces the serial
// stream bit for bit, no matter which worker ran what when.
//
// Node accounting mirrors the serial engine exactly: every candidate
// trial is charged to the subtree it opens (expansion trials become the
// child's `arrival` node — infeasible slots get a 1-node tombstone
// record), each leaf task counts its own recursion, and the final
// rank-ordered accumulation stops at the result-limit cut just as the
// serial DFS stops.  With an ample node budget the total equals the
// serial node count for ANY thread count and ANY spawn depth (pinned by
// tests/test_stealing_determinism.cpp); under a truncating budget each
// subtree task owns a full node_limit, so a truncated parallel search
// explores more nodes than a truncated serial one, never fewer
// (tests/test_node_budget.cpp).
//
// Cancellation is the old rule generalized to ranks: `satisfied` is an
// atomic min over ranks of tasks that ALONE produced `limit` results;
// any task ranked past it may abandon, because everything it could emit
// provably falls beyond the limit cut.
// ---------------------------------------------------------------------------

struct TaskFrame {
  std::vector<std::uint64_t> covered;
  std::vector<std::pair<Point, std::uint32_t>> placements;
  std::vector<std::size_t> uses;
  std::uint32_t covered_count = 0;
  std::uint32_t cursor = 0;  // all cells below it are covered
  std::uint32_t depth = 0;   // frontier levels above this task
  std::uint64_t rank = 0;    // serial DFS preorder key
  std::uint64_t arrival = 0;  // trials charged by the parent (the spawn
                              // trial; 0 for the root)
};

struct SubtreeRecord {
  std::uint64_t rank = 0;
  std::uint64_t nodes = 0;
  bool exhausted = false;
  std::vector<Tiling> results;
  // results[i] was emitted after result_nodes[i] of this record's nodes
  // (arrival included).  When the record straddles the result-limit cut
  // the accumulation charges result_nodes[k-1] for its first k results
  // instead of `nodes` — exactly where the serial DFS would have stopped.
  std::vector<std::uint64_t> result_nodes;
};

struct TaskShared {
  const std::vector<Prototile>* prototiles = nullptr;
  const Sublattice* period = nullptr;
  const DenseTables* tables = nullptr;
  const mask_kernels::Ops* ops = nullptr;
  std::uint64_t node_limit = 0;
  bool require_all = false;
  std::size_t limit = 1;
  std::uint32_t spawn_depth = 1;
  // stride[d] = (cand_stride + 1)^(spawn_depth - 1 - d): the rank weight
  // of a candidate slot chosen at frontier level d.
  std::vector<std::uint64_t> stride;
  std::atomic<std::uint64_t> satisfied{~std::uint64_t{0}};
  std::mutex mu;  // guards records (one push per finished task)
  std::vector<SubtreeRecord> records;
};

void note_satisfied(TaskShared& sh, std::uint64_t rank) {
  std::uint64_t cur = sh.satisfied.load(std::memory_order_relaxed);
  while (rank < cur && !sh.satisfied.compare_exchange_weak(
                           cur, rank, std::memory_order_relaxed)) {
  }
}

void push_record(TaskShared& sh, SubtreeRecord rec) {
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.records.push_back(std::move(rec));
}

void run_subtree_task(TaskShared& sh, TaskContext& ctx, TaskFrame frame) {
  const DenseTables& t = *sh.tables;
  SubtreeRecord rec;
  rec.rank = frame.rank;
  rec.nodes = frame.arrival;
  if (frame.rank > sh.satisfied.load(std::memory_order_relaxed)) {
    // Abandoned: an earlier-ranked subtree alone reached the result
    // limit.  The spawn trial still happened and still counts.
    push_record(sh, std::move(rec));
    return;
  }
  if (frame.depth >= sh.spawn_depth) {
    // Leaf task: ordinary serial recursion over the whole subtree, with
    // its own node budget (the documented per-subtree budget scope).
    DenseState st;
    st.prototiles = sh.prototiles;
    st.period = sh.period;
    st.tables = &t;
    st.ops = sh.ops;
    st.covered = std::move(frame.covered);
    st.covered_count = frame.covered_count;
    st.placements = std::move(frame.placements);
    st.uses = std::move(frame.uses);
    st.node_limit = sh.node_limit;
    st.require_all = sh.require_all;
    st.result_limit = sh.limit;
    st.results = &rec.results;
    st.satisfied = &sh.satisfied;
    st.subtree_rank = frame.rank;
    st.result_nodes = &rec.result_nodes;
    search_dense(st, frame.cursor);
    assert(st.nodes <= sh.node_limit + 1);
    for (std::uint64_t& checkpoint : rec.result_nodes) {
      checkpoint += frame.arrival;
    }
    rec.nodes += st.nodes;
    rec.exhausted = st.nodes > sh.node_limit;
    if (rec.results.size() >= sh.limit) note_satisfied(sh, frame.rank);
    push_record(sh, std::move(rec));
    return;
  }
  // Expansion task: the serial engine's per-node body, except feasible
  // candidates spawn child tasks instead of recursing.
  if (frame.covered_count == t.cells) {
    bool ok = true;
    if (sh.require_all) {
      for (std::size_t k = 0; k < frame.uses.size(); ++k) {
        if (frame.uses[k] == 0) ok = false;
      }
    }
    if (ok) {
      rec.results.push_back(
          Tiling::periodic(*sh.prototiles, *sh.period, frame.placements));
      rec.result_nodes.push_back(rec.nodes);
      if (rec.results.size() >= sh.limit) note_satisfied(sh, frame.rank);
    }
    push_record(sh, std::move(rec));
    return;
  }
  const std::uint32_t first =
      sh.ops->first_uncovered(frame.covered.data(), t.words, frame.cursor);
  if (first >= t.cells) {  // unreachable; mirrors search_dense's guard
    push_record(sh, std::move(rec));
    return;
  }
  const Candidate* cand =
      &t.candidates[static_cast<std::size_t>(first) * t.cand_stride];
  const std::uint64_t stride = sh.stride[frame.depth];
  // Reverse slot order: the owner's LIFO pop then continues with slot 0
  // — the subtree the serial DFS would explore next — while thieves
  // take the later slots from the top of the deque.
  for (std::uint32_t s = t.cand_stride; s-- > 0;) {
    const std::uint64_t child_rank =
        frame.rank + (std::uint64_t{s} + 1) * stride;
    const Candidate& c = cand[s];
    const Footprint& fp = t.footprints[c.footprint];
    const std::uint64_t* mask = &t.mask_words[fp.mask_begin];
    if (!fp.self_ok ||
        sh.ops->any_overlap(frame.covered.data(), mask, t.words)) {
      // Infeasible trial: a 1-node tombstone keeps the rank-ordered node
      // accumulation identical to the serial trial sequence.
      SubtreeRecord dead;
      dead.rank = child_rank;
      dead.nodes = 1;
      push_record(sh, std::move(dead));
      continue;
    }
    TaskFrame child;
    child.covered = frame.covered;
    sh.ops->toggle(child.covered.data(), mask, t.words);
    child.covered_count = frame.covered_count + fp.size;
    child.placements = frame.placements;
    child.placements.emplace_back(t.cell_points[c.translate_class],
                                  c.prototile);
    child.uses = frame.uses;
    ++child.uses[c.prototile];
    child.cursor = first + 1;
    child.depth = frame.depth + 1;
    child.rank = child_rank;
    child.arrival = 1;
    ctx.spawn([&sh, child = std::move(child)](TaskContext& sub) mutable {
      run_subtree_task(sh, sub, std::move(child));
    });
  }
  push_record(sh, std::move(rec));
}

// Frontier depth: deep enough that the task count (~cand_stride^depth)
// comfortably exceeds the worker count (so stealing can balance skewed
// subtrees), shallow enough that task bookkeeping stays negligible.
// Tiny tori stay at the root-only fan-out — their whole search is
// shorter than the balancing would pay for.
std::uint32_t pick_spawn_depth(const DenseTables& t, std::size_t threads,
                               const TorusSearchConfig& config) {
  std::uint32_t depth;
  if (config.max_spawn_depth > 0) {
    depth = std::min<std::uint32_t>(config.max_spawn_depth, 4);
  } else if (t.cells < 32) {
    depth = 1;
  } else {
    depth = 1;
    std::uint64_t width = t.cand_stride;
    const std::uint64_t target = static_cast<std::uint64_t>(threads) * 16;
    while (depth < 4 && width < target) {
      width *= t.cand_stride;
      ++depth;
    }
  }
  // Rank digits must fit in 64 bits: (cand_stride + 1)^depth < 2^62.
  const std::uint64_t base = std::uint64_t{t.cand_stride} + 1;
  for (;;) {
    std::uint64_t max_rank = 1;
    bool fits = true;
    for (std::uint32_t d = 0; d < depth && fits; ++d) {
      if (max_rank > (std::uint64_t{1} << 62) / base) {
        fits = false;
      } else {
        max_rank *= base;
      }
    }
    if (fits || depth <= 1) return depth;
    --depth;
  }
}

std::vector<Tiling> run_search_dense_tasks(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config, std::size_t limit) {
  const DenseTables tables = build_tables(prototiles, period);
  if (tables.cells == 0 || tables.cand_stride == 0) return {};
  const std::size_t threads = parallel_threads();

  TaskShared sh;
  sh.prototiles = &prototiles;
  sh.period = &period;
  sh.tables = &tables;
  sh.ops = &mask_kernels::active_ops();
  sh.node_limit = config.node_limit;
  sh.require_all = config.require_all_prototiles;
  sh.limit = limit;
  sh.spawn_depth = pick_spawn_depth(tables, threads, config);
  sh.stride.assign(sh.spawn_depth, 1);
  for (std::uint32_t d = sh.spawn_depth; d-- > 1;) {
    sh.stride[d - 1] =
        sh.stride[d] * (std::uint64_t{tables.cand_stride} + 1);
  }

  TaskFrame root;
  root.covered.assign(tables.words, 0);
  root.uses.assign(prototiles.size(), 0);
  root.placements.reserve(tables.cells);

  const TaskTreeStats tstats =
      run_task_tree(threads, [&sh, &root](TaskContext& ctx) {
        run_subtree_task(sh, ctx, std::move(root));
      });

  std::sort(sh.records.begin(), sh.records.end(),
            [](const SubtreeRecord& a, const SubtreeRecord& b) {
              return a.rank < b.rank;
            });
  std::vector<Tiling> out;
  std::uint64_t total_nodes = 0;
  bool any_exhausted = false;
  for (SubtreeRecord& rec : sh.records) {
    const std::size_t needed = limit - out.size();
    if (rec.results.size() >= needed) {
      // This subtree straddles the result-limit cut: the serial DFS
      // stops at the needed-th emission, so only the nodes up to that
      // checkpoint are charged (and the budget was clearly not hit by
      // then — emissions stop once the budget trips).
      total_nodes += rec.result_nodes[needed - 1];
      for (std::size_t i = 0; i < needed; ++i) {
        out.push_back(std::move(rec.results[i]));
      }
      break;
    }
    total_nodes += rec.nodes;
    any_exhausted = any_exhausted || rec.exhausted;
    for (Tiling& tl : rec.results) out.push_back(std::move(tl));
  }
  if (config.stats != nullptr) {
    *config.stats = TorusSearchStats{};
    config.stats->nodes = total_nodes;
    config.stats->budget_exhausted = any_exhausted;
    config.stats->subtree_tasks = tstats.tasks;
    config.stats->steals = tstats.steals;
    config.stats->kernel = sh.ops->name;
  }
  return out;
}

std::vector<Tiling> run_search(const std::vector<Prototile>& prototiles,
                               const Sublattice& period,
                               const TorusSearchConfig& config,
                               std::size_t limit) {
  config.validate();
  if (prototiles.empty()) {
    throw std::invalid_argument("torus search: no prototiles");
  }
  for (const Prototile& t : prototiles) {
    if (t.dim() != period.dim()) {
      throw std::invalid_argument("torus search: dimension mismatch");
    }
  }
  // The dense tables are O(prototiles x cells^2 / 64) words of footprint
  // masks; past ~64MB the precompute dominates any search, so huge tori
  // (far beyond the default sweep sizes) drop back to the seed engine.
  const std::uint64_t cells = static_cast<std::uint64_t>(period.index());
  const std::uint64_t mask_bytes =
      prototiles.size() * cells * ((cells + 63) / 64) * 8;
  if (config.use_dense_engine && mask_bytes <= (std::uint64_t{64} << 20)) {
    if (config.use_parallel && parallel_threads() > 1 &&
        !in_parallel_region() && cells >= 16) {
      return run_search_dense_tasks(prototiles, period, config, limit);
    }
    return run_search_dense(prototiles, period, config, limit);
  }
  return run_search_legacy(prototiles, period, config, limit);
}

}  // namespace

void TorusSearchConfig::validate() const {
  if (node_limit == 0) {
    throw std::invalid_argument(
        "TorusSearchConfig: node_limit must be >= 1 (the budget applies "
        "per torus/subtree, never globally)");
  }
  if (max_period_cells <= 0) {
    throw std::invalid_argument(
        "TorusSearchConfig: max_period_cells must be positive");
  }
}

std::optional<Tiling> find_tiling_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config) {
  auto results = run_search(prototiles, period, config, 1);
  if (results.empty()) return std::nullopt;
  return std::move(results.front());
}

std::vector<Tiling> all_tilings_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    std::size_t limit, const TorusSearchConfig& config) {
  return run_search(prototiles, period, config, limit);
}

std::optional<Tiling> search_periodic_tiling(
    const std::vector<Prototile>& prototiles,
    const TorusSearchConfig& config) {
  config.validate();
  if (prototiles.empty()) {
    throw std::invalid_argument("search_periodic_tiling: no prototiles");
  }
  const std::size_t d = prototiles.front().dim();
  // Candidate diagonal periods ordered by cell count, then by shape.
  std::vector<std::vector<std::int64_t>> shapes;
  if (d == 2) {
    for (std::int64_t a = 1; a * a <= config.max_period_cells * 4; ++a) {
      for (std::int64_t b = a; a * b <= config.max_period_cells; ++b) {
        shapes.push_back({a, b});
        if (a != b) shapes.push_back({b, a});
      }
    }
  } else {
    for (std::int64_t a = 1;; ++a) {
      std::int64_t cells = 1;
      for (std::size_t i = 0; i < d; ++i) cells *= a;
      if (cells > config.max_period_cells) break;
      shapes.push_back(std::vector<std::int64_t>(d, a));
    }
  }
  std::sort(shapes.begin(), shapes.end(),
            [](const auto& x, const auto& y) {
              std::int64_t px = 1, py = 1;
              for (auto v : x) px *= v;
              for (auto v : y) py *= v;
              if (px != py) return px < py;
              return x < y;
            });
  // Minimum cells: the smallest prototile must fit at least once, and for
  // single-prototile tilings the size must divide the cell count.
  std::size_t min_tile = prototiles.front().size();
  for (const auto& t : prototiles) min_tile = std::min(min_tile, t.size());
  std::vector<Sublattice> tori;
  for (const auto& shape : shapes) {
    std::int64_t cells = 1;
    for (auto v : shape) cells *= v;
    if (cells < static_cast<std::int64_t>(min_tile)) continue;
    if (prototiles.size() == 1 &&
        cells % static_cast<std::int64_t>(min_tile) != 0) {
      continue;
    }
    tori.push_back(Sublattice::diagonal(shape));
  }
  if (tori.empty()) return std::nullopt;
  // One admissible torus: nothing to speculate across — let the dense
  // engine's root-subtree fan-out (if enabled) parallelize that single
  // search instead.
  if (tori.size() == 1) {
    return find_tiling_on_torus(prototiles, tori.front(), config);
  }

  // Speculative sweep: workers claim torus indices in sweep order from an
  // atomic cursor and search each torus serially; the smallest index that
  // admits a tiling wins.  Because indices are claimed in increasing
  // order, every index below a reported hit is already claimed and will
  // finish, so the CAS-min over hit indices converges to exactly the
  // serial sweep's answer (the per-torus search is itself deterministic).
  // With one thread the same loop degenerates to the serial sweep,
  // including its early exit after the first hit.
  const std::size_t threads =
      (config.use_parallel && !in_parallel_region())
          ? std::min(parallel_threads(), tori.size())
          : 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> best{tori.size()};
  std::vector<std::optional<Tiling>> found(tori.size());
  std::vector<TorusSearchStats> stats(tori.size());
  const auto sweep_worker = [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tori.size() || i >= best.load(std::memory_order_acquire)) {
        return;
      }
      TorusSearchConfig local = config;
      local.stats = &stats[i];
      local.use_parallel = false;  // one torus per worker; don't nest
      auto tiling = find_tiling_on_torus(prototiles, tori[i], local);
      if (tiling.has_value()) {
        found[i] = std::move(tiling);
        std::size_t cur = best.load(std::memory_order_relaxed);
        while (i < cur && !best.compare_exchange_weak(
                              cur, i, std::memory_order_release)) {
        }
      }
    }
  };
  if (threads <= 1) {
    sweep_worker(0);
  } else {
    ThreadPool::global().run(threads, sweep_worker);
  }
  const std::size_t winner = best.load(std::memory_order_relaxed);
  if (winner < tori.size()) {
    if (config.stats != nullptr) {
      *config.stats = stats[winner];
      // Every torus below the winner was searched and failed; if any of
      // them hit the budget, the choice of winner itself is
      // budget-dependent.
      for (std::size_t i = 0; i < winner; ++i) {
        config.stats->budget_exhausted =
            config.stats->budget_exhausted || stats[i].budget_exhausted;
      }
    }
    return std::move(found[winner]);
  }
  // No torus admits a tiling; report the last searched torus's counters,
  // matching the serial sweep's overwrite-per-torus behavior (the
  // exhaustion flag ORs over the whole sweep — a failure is only
  // budget-independent if no torus truncated).
  if (config.stats != nullptr) {
    *config.stats = stats[tori.size() - 1];
    for (const TorusSearchStats& s : stats) {
      config.stats->budget_exhausted =
          config.stats->budget_exhausted || s.budget_exhausted;
    }
  }
  return std::nullopt;
}

}  // namespace latticesched
