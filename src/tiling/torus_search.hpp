// Periodic tiling search by exact cover on a quotient torus.
//
// Fix a finite-index period sublattice P.  Tiles placed on the quotient
// Z^d / P (with all arithmetic modulo P) that cover every coset exactly
// once lift to a P-periodic tiling of Z^d — this is how non-lattice
// translate sets (such as the mixed S/Z tetromino tiling of the paper's
// Figure 5) are found.  The search is a classic first-empty-cell
// backtracking over placements, complete for the given torus.
//
// Completeness note: any tiling that is periodic with some index-q period
// is also periodic with the diagonal period q·Z^d (the quotient group has
// exponent dividing q), so sweeping diagonal tori of growing size
// eventually finds every periodic tiling.  The sweep is still a
// semi-decision procedure: tiles admitting only aperiodic tilings (none
// are known for single polyominoes) or only large periods fall outside a
// finite budget.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lattice/sublattice.hpp"
#include "tiling/prototile.hpp"
#include "tiling/tiling.hpp"

namespace latticesched {

/// Optional instrumentation filled by the search (see
/// TorusSearchConfig::stats); both engines count identically, so
/// nodes / wall-time is directly comparable across them.
struct TorusSearchStats {
  /// Placements tried (the budget unit of node_limit).
  std::uint64_t nodes = 0;
  /// Whether any searched torus/subtree hit the node budget.  A search
  /// that exhausted its budget is engine- and parallelism-dependent
  /// (see TorusSearchConfig::node_limit), so e.g. the TilingCache
  /// refuses to memoize a budget-truncated failure.  For a sweep this
  /// ORs over every torus whose outcome influenced the result.
  bool budget_exhausted = false;
  /// Subtree tasks executed by the work-stealing engine (0 for a serial
  /// search).  A healthy parallel search runs many more tasks than
  /// workers, so idle workers always find something to steal.
  std::uint64_t subtree_tasks = 0;
  /// Tasks a worker took from another worker's deque (load imbalance
  /// that root fan-out would have serialized; 0 for a serial search).
  std::uint64_t steals = 0;
  /// Mask-kernel implementation the dense engine dispatched to
  /// ("scalar" or "avx2"; see tiling/mask_kernels.hpp).  Static storage
  /// — never freed, safe to keep.
  const char* kernel = "scalar";
};

struct TorusSearchConfig {
  /// Upper bound on period cells for the period sweep.
  std::int64_t max_period_cells = 256;
  /// Backtracking node budget (placements tried).  The budget's scope is
  /// per torus AND, under the parallel root fan-out, per root subtree —
  /// never global across a sweep: the serial sweep resets the counter
  /// for every torus it tries, and the parallel engine gives each root
  /// subtree its own budget (asserted in the engine; pinned by
  /// tests/test_node_budget.cpp).  Consequently a budget-truncated
  /// parallel search may explore MORE nodes than a serial one — with an
  /// ample budget both explore exactly the same nodes.
  std::uint64_t node_limit = 20'000'000;
  /// Require every prototile to appear at least once (used to force
  /// genuinely mixed tilings like Figure 5 left).
  bool require_all_prototiles = false;
  /// Run the dense bitset engine (precomputed footprint masks over coset
  /// ids, zero hashing/allocation per node).  The legacy hash-map path is
  /// kept for comparison benchmarks and cross-validation tests; both
  /// explore placements in the same order and return identical tilings.
  bool use_dense_engine = true;
  /// Allow the shared thread pool (util/parallel.hpp) to speculate: the
  /// period sweep searches several tori concurrently (the first torus in
  /// sweep order that admits a tiling wins, exactly as in the serial
  /// sweep) and all_tilings_on_torus fans the root subtrees out (results
  /// concatenated in root-candidate order, i.e. the serial DFS order).
  /// Both are deterministic: any thread count returns the identical
  /// tilings, PROVIDED node_limit is not hit — under parallel execution
  /// the budget applies per torus/subtree rather than globally, so a
  /// budget-truncated parallel search may explore more than a serial one.
  /// Serial whenever this is false or the pool has one thread.
  bool use_parallel = true;
  /// Depth of the subtree-task spawn frontier of the parallel dense
  /// engine: search nodes shallower than this depth become work-stealing
  /// tasks (one per candidate slot), everything deeper runs inline.
  /// 1 reproduces the old root-only fan-out (at most cand_stride tasks —
  /// the baseline the benches compare stealing against); 0 picks a depth
  /// automatically so the task count comfortably exceeds the worker
  /// count.  Values are clamped to 4: past that the task bookkeeping
  /// outweighs any balance gain.  Results are byte-identical for every
  /// setting; only node accounting under a truncating node_limit depends
  /// on the task shape (the budget is per subtree task).
  std::uint32_t max_spawn_depth = 0;
  /// When non-null, receives search counters (overwritten per torus; the
  /// parallel sweep reports the winning torus's counters).
  TorusSearchStats* stats = nullptr;

  /// Sanity-checks the budget knobs (throws std::invalid_argument): a
  /// zero node_limit or non-positive max_period_cells would silently
  /// search nothing.  Every search entry point validates.
  void validate() const;
};

/// Exact-cover search on the torus Z^d / period; returns a Tiling whose
/// period is `period` when one exists within the node budget.
std::optional<Tiling> find_tiling_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    const TorusSearchConfig& config = {});

/// Enumerates ALL tilings on the given torus (up to `limit` results);
/// used to survey the schedule-quality spread across tilings (Figure 5's
/// point is that the optimum depends on the chosen tiling).
std::vector<Tiling> all_tilings_on_torus(
    const std::vector<Prototile>& prototiles, const Sublattice& period,
    std::size_t limit, const TorusSearchConfig& config = {});

/// Sweeps diagonal periods a·Z x b·Z (2-D) or cubes (higher d) of
/// increasing cell count and returns the first tiling found.
std::optional<Tiling> search_periodic_tiling(
    const std::vector<Prototile>& prototiles,
    const TorusSearchConfig& config = {});

}  // namespace latticesched
