#include "tune/auto_planner.hpp"

#include <stdexcept>

#include "tune/tune_cache.hpp"
#include "tune/tuner.hpp"

namespace latticesched::tune {

PlanResult AutoPlanner::plan(const PlanRequest& request) const {
  if (request.deployment == nullptr) {
    throw std::invalid_argument("auto: request.deployment is null");
  }
  // Resolve the registry lazily: the auto planner is itself registered
  // into PlannerRegistry::global() during its construction.
  const PlannerRegistry& registry = PlannerRegistry::global();

  // Null cache = a private in-memory one: the search still runs and the
  // provenance is honest, the knowledge just dies with the call.
  TuneCache local_cache;
  TuneCache* cache =
      request.tune_cache != nullptr ? request.tune_cache : &local_cache;

  const Fingerprint fp = fingerprint_of(request);
  std::string provenance;
  TunedConfig config;
  std::optional<TunedConfig> cached = cache->find(fp);
  if (cached.has_value() &&
      registry.find(cached->backend) != nullptr) {
    config = std::move(*cached);
    provenance = "cache-hit";
  } else {
    Tuner tuner(&registry, cache);
    TuneOptions options;
    options.trials = request.tune_trials;
    options.budget_ms = request.tune_budget_ms;
    const TuneOutcome outcome = tuner.search(request, options);
    config = outcome.best;
    provenance = "searched";
  }

  const Planner* delegate = registry.find(config.backend);
  if (delegate == nullptr) {
    // A cache entry naming an unregistered backend was filtered above;
    // this is a search returning one, which cannot happen — but degrade
    // to an explicit error rather than crash.
    PlanResult failed;
    failed.backend = "auto";
    failed.error = "auto: unknown delegate backend " + config.backend;
    failed.channels = request.channels;
    return failed;
  }

  // The real run keeps the caller's verification and tiling cache —
  // only the trial measurements bypassed them.
  PlanRequest delegated = request;
  delegated.tune_cache = nullptr;
  apply_config(config, &delegated);
  PlanResult result = delegate->plan(delegated);
  result.backend = "auto";
  result.detail = "auto(" + config.backend + ") " + result.detail;
  result.tuned = provenance;
  result.tuned_config = config.serialize();
  return result;
}

Planner::Raw AutoPlanner::compute(const PlanRequest& request) const {
  (void)request;
  throw std::logic_error("auto: compute() is unreachable");
}

}  // namespace latticesched::tune
