// The `auto` backend: tuned planning as a planner.
//
// AutoPlanner is a meta-backend — it owns no scheduling algorithm.  It
// fingerprints the request, asks the TuneCache for the family's winning
// config (a cache hit is the fleet warm-start: zero search), falls back
// to a bounded Tuner search on a miss, applies the chosen config onto a
// delegate request, and runs the chosen delegate's full pipeline.  The
// result is re-badged "auto" with the delegate named in `detail` and
// the provenance stamped into PlanResult::{tuned, tuned_config}, so
// reports can distinguish a cache-hit plan from a freshly searched one.
//
// Excluded from the default "all backends" selection (in_default_set()
// is false): an "all" sweep already runs every delegate, and auto would
// plan the winner a second time.
#pragma once

#include "core/planner.hpp"

namespace latticesched::tune {

class AutoPlanner : public Planner {
 public:
  std::string name() const override { return "auto"; }

  /// Supports whatever some delegate supports — in practice everything,
  /// since the coloring backends are unconditional.
  bool supports(const PlanRequest& request) const override {
    (void)request;
    return true;
  }

  /// The chosen delegate may be a coloring backend; let the session
  /// prebuild the conflict graph once so delegates (and trial runs)
  /// share it.
  bool wants_conflict_graph() const override { return true; }

  bool in_default_set() const override { return false; }

  PlanResult plan(const PlanRequest& request) const override;

 protected:
  /// Unreachable — plan() is fully overridden.
  Raw compute(const PlanRequest& request) const override;
};

}  // namespace latticesched::tune
